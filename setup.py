"""Shim so editable installs work in offline environments without `wheel`."""

from setuptools import setup

setup()

"""Regression test: reordered chain updates must not regress replicas.

Found by the protocol fuzzer: store-to-store chain updates cross the same
best-effort fabric as everything else, so an older update can arrive at a
replica *after* a newer one. Replicas apply an update only if its
(sequence, lease-expiry) version is not older than what they hold, while
still forwarding the acknowledgment (which carries piggybacked outputs of
a real request).
"""

from repro.core.protocol import MessageType, RedPlaneMessage
from repro.net.packet import FlowKey
from repro.net.simulator import Simulator
from repro.statestore.server import StateStoreNode, _pack_chain_update

from tests.test_statestore import FakeSwitch, KEY, micro_net


def make_state(vals, last_seq, owner, expiry):
    return (vals, True, last_seq, owner, expiry)


def apply_chain(node, state, reply_seq=0):
    reply = RedPlaneMessage(reply_seq, MessageType.REPL_WRITE_ACK, KEY)
    node._apply_chain(KEY, state, reply, requester_ip=1)


def test_reordered_older_update_ignored():
    sim = Simulator()
    _hub, (sw,), (node,) = micro_net(sim)
    node.successor_ip = None
    apply_chain(node, make_state([5], last_seq=5, owner=9, expiry=100.0))
    apply_chain(node, make_state([4], last_seq=4, owner=9, expiry=90.0))
    rec = node.records[KEY]
    assert rec.vals == [5]
    assert rec.last_seq == 5


def test_equal_seq_newer_lease_wins():
    sim = Simulator()
    _hub, (sw,), (node,) = micro_net(sim)
    node.successor_ip = None
    apply_chain(node, make_state([1], last_seq=1, owner=9, expiry=100.0))
    # A later lease grant at the same sequence (new owner) must apply...
    apply_chain(node, make_state([1], last_seq=1, owner=7, expiry=200.0))
    assert node.records[KEY].owner_ip == 7
    # ...and a reordered older grant must not claw ownership back.
    apply_chain(node, make_state([1], last_seq=1, owner=9, expiry=150.0))
    assert node.records[KEY].owner_ip == 7


def test_stale_update_still_forwards_reply():
    """Even when the replica ignores the state, the ack must travel on."""
    sim = Simulator()
    _hub, (sw,), stores = micro_net(sim, num_stores=2)
    mid, tail = stores
    mid.successor_ip = tail.ip
    tail.successor_ip = None
    apply_chain(mid, make_state([5], last_seq=5, owner=9, expiry=100.0))
    sim.run_until_idle()
    sw.acks.clear()
    # A stale chain update reaches mid: ignored, but the reply propagates
    # through the tail back to the requesting switch.
    reply = RedPlaneMessage(3, MessageType.REPL_WRITE_ACK, KEY,
                            piggyback=b"\x01\x00\x02ab")
    mid._apply_chain(KEY, make_state([3], 3, 9, 50.0), reply, sw.ip)
    sim.run_until_idle()
    assert mid.records[KEY].vals == [5]      # not regressed
    assert len(sw.acks) == 1                  # ack still delivered
    assert sw.acks[0].piggyback == b"\x01\x00\x02ab"


def test_snapshot_slot_epoch_guard_on_replicas():
    sim = Simulator()
    _hub, (sw,), (node,) = micro_net(sim)
    node.successor_ip = None

    def snap_reply(epoch, value):
        return RedPlaneMessage(epoch, MessageType.SNAPSHOT_REPL_ACK, KEY,
                               vals=[value], aux=3)

    node._apply_chain(KEY, make_state([], 0, None, 0.0), snap_reply(5, 50), 1)
    node._apply_chain(KEY, make_state([], 0, None, 0.0), snap_reply(4, 40), 1)
    rec = node.records[KEY]
    assert rec.snapshot_vals[3] == 50
    assert rec.snapshot_seqs[3] == 5

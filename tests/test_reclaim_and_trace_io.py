"""Tests for flow-table reclamation and trace file I/O."""

import io

import pytest

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.net.packet import PROTO_TCP, PROTO_UDP, Packet, ip_aton
from repro.workloads.trace_io import load_trace, save_trace
from repro.workloads.traces import five_tuple_trace


# ---------------------------------------------------------------------------
# flow-table reclamation
# ---------------------------------------------------------------------------


class TestReclamation:
    def make(self, sim, max_flows=4, lease_us=10_000.0):
        return deploy(sim, SyncCounterApp,
                      config=RedPlaneConfig(max_flows=max_flows,
                                            lease_period_us=lease_us))

    def run_flows(self, sim, dep, sports):
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        for i, sport in enumerate(sports):
            sim.schedule(i * 100.0, e1.send,
                         Packet.udp(e1.ip, s11.ip, sport, 7777))
        sim.run_until_idle()

    def active_engine(self, dep):
        return max(dep.engines.values(), key=lambda e: len(e._flow_idx))

    def test_idle_entries_reclaimed(self, sim):
        dep = self.make(sim)
        self.run_flows(sim, dep, [6001, 6002])
        eng = self.active_engine(dep)
        before = len(eng._flow_idx)
        assert before >= 1
        # Nothing reclaimable while leases are fresh.
        assert eng.reclaim_idle_flows() == 0
        # Two lease periods later everything is idle.
        sim.run(until=sim.now + 30_000.0)
        assert eng.reclaim_idle_flows() == before
        assert eng._flow_idx == {}

    def test_reclaimed_indices_are_reused_cleanly(self, sim):
        dep = self.make(sim, max_flows=2)
        self.run_flows(sim, dep, [6001, 6002])
        eng = self.active_engine(dep)
        per_engine = len(eng._flow_idx)
        sim.run(until=sim.now + 30_000.0)
        assert eng.reclaim_idle_flows() == per_engine

        # New flows fit into the freed slots and start from scratch.
        self.run_flows(sim, dep, [7001, 7002])
        key = Packet.udp(dep.bed.externals[0].ip, dep.bed.servers[0].ip,
                         7001, 7777).flow_key()
        for engine in dep.engines.values():
            state = engine.flow_state(key)
            if state is not None:
                assert state == [1]  # fresh count, no leftover state

    def test_table_exhaustion_recoverable_via_reclaim(self, sim):
        dep = self.make(sim, max_flows=1)
        self.run_flows(sim, dep, [6001])
        eng = self.active_engine(dep)
        sim.run(until=sim.now + 30_000.0)
        assert eng.reclaim_idle_flows() == 1
        # The freed slot hosts a (re-created) flow without exhaustion.
        self.run_flows(sim, dep, [6001])
        assert len(eng._flow_idx) == 1

    def test_busy_entries_not_reclaimed(self, sim):
        dep = self.make(sim)
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        # 100% loss deployment would be cleaner, but simply check a flow
        # with a pending lease: inject at the switch with stores failed.
        for store in dep.stores:
            store.fail()
        dep.bed.aggs[0].process(Packet.udp(e1.ip, s11.ip, 6001, 7777))
        sim.run(until=50_000.0)
        eng = dep.engines["agg1"]
        assert eng.reclaim_idle_flows() == 0  # lease still pending
        eng.shutdown()
        sim.run_until_idle(max_events=2_000_000)


# ---------------------------------------------------------------------------
# trace I/O
# ---------------------------------------------------------------------------


class TestTraceIO:
    def test_save_load_roundtrip(self):
        events = five_tuple_trace(50, 5, ip_aton("10.0.1.11"),
                                  ip_aton("172.16.0.11"), seed=3)
        buf = io.StringIO()
        assert save_trace(buf, events) == 50
        buf.seek(0)
        back = load_trace(buf)
        assert len(back) == 50
        for original, loaded in zip(events, back):
            assert loaded.time_us == pytest.approx(original.time_us, abs=1e-3)
            assert loaded.pkt.ip.src == original.pkt.ip.src
            assert loaded.pkt.l4.sport == original.pkt.l4.sport
            assert loaded.pkt.byte_size() == original.pkt.byte_size()
            assert loaded.pkt.ip.identification == loaded.trace_id

    def test_load_handles_comments_dotted_ips_and_vlan(self):
        csv_text = (
            "# a hand-written trace\n"
            "time_us,src_ip,dst_ip,proto,sport,dport,size_bytes,vlan\n"
            "0.0,10.0.1.11,172.16.0.11,17,1234,80,128,\n"
            "5.5,10.0.1.12,172.16.0.12,6,4321,443,1500,100\n"
        )
        events = load_trace(io.StringIO(csv_text))
        assert len(events) == 2
        assert events[0].pkt.ip.src == ip_aton("10.0.1.11")
        assert events[0].pkt.ip.proto == PROTO_UDP
        assert events[1].pkt.ip.proto == PROTO_TCP
        assert events[1].pkt.vlan == 100
        assert events[1].pkt.byte_size() == 1500

    def test_load_limit(self):
        events = five_tuple_trace(20, 3, 1, 2, seed=1)
        buf = io.StringIO()
        save_trace(buf, events)
        buf.seek(0)
        assert len(load_trace(buf, limit=7)) == 7

    def test_malformed_rows_rejected(self):
        with pytest.raises(ValueError):
            load_trace(io.StringIO("1.0,1,2,17\n"))
        with pytest.raises(ValueError):
            load_trace(io.StringIO("1.0,1,2,99,1,2,64\n"))  # bad proto

    def test_replayed_trace_drives_deployment(self, sim, counter_deployment):
        dep = counter_deployment
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        events = five_tuple_trace(30, 3, e1.ip, s11.ip, seed=9)
        buf = io.StringIO()
        save_trace(buf, events)
        buf.seek(0)
        loaded = load_trace(buf)
        got = []
        s11.default_handler = got.append
        for event in loaded:
            sim.schedule_at(event.time_us, e1.send, event.pkt)
        sim.run_until_idle()
        assert len(got) == 30

"""The ``repro.tools shard`` subcommand and the merged multi-file watch."""

from __future__ import annotations

import json

import pytest

from repro.observe.heartbeat import snapshot_json
from repro.tools import main as tools_main


def _snap(t_us, label_hint=0):
    return {
        "t_us": t_us,
        "events": label_hint,
        "pending": 0,
        "events_per_sim_ms": 0.0,
        "queues": {"link_backlog_us": 0.0},
        "counters": {"retransmissions": 0, "acks_received": 0,
                     "lease_requests": 0, "store_recoveries": 0,
                     "link_drops": 0},
    }


def test_shard_plan_renders_assignment_table(capsys):
    assert tools_main(["shard", "plan", "nat", "--workers", "4"]) == 0
    out = capsys.readouterr().out
    assert "partition_class=flow_local" in out
    assert "% 4 -> owner worker" in out
    assert "sync window : 0.35 us lookahead" in out


def test_shard_plan_json_is_the_committed_artifact(capsys):
    assert tools_main(["shard", "plan", "nat", "--json"]) == 0
    plan = json.loads(capsys.readouterr().out)
    assert plan["app"] == "nat"
    assert plan["cross_shard"]["sync_lookahead_us"] == 0.35


def test_shard_plan_unknown_app_fails(capsys):
    assert tools_main(["shard", "plan", "no_such_app"]) == 2
    assert "shard plan" in capsys.readouterr().err


def test_shard_diff_exit_code_reflects_identity(capsys):
    assert tools_main(["shard", "diff", "nat_quickstart",
                       "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "IDENTICAL" in out
    assert "DIFFERS" not in out


def test_shard_run_prints_merged_summary(capsys, tmp_path):
    assert tools_main(["shard", "run", "nat_quickstart", "--workers", "2",
                       "--save", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "nat_quickstart" in out
    assert "trace digest" in out
    saved = json.loads((tmp_path / "merged.json").read_text())
    assert saved["num_shards"] == 2
    assert saved["rng_draws"] == 0


def test_shard_run_json_mode(capsys):
    assert tools_main(["shard", "run", "nat_quickstart", "--workers", "2",
                       "--no-capture", "--json"]) == 0
    merged = json.loads(capsys.readouterr().out)
    assert merged["num_shards"] == 2
    assert "trace_digest" not in merged  # capture off: counts only


# -- merged multi-file watch ---------------------------------------------------


def test_watch_merges_shard_heartbeats_in_time_order(tmp_path, capsys):
    f0 = tmp_path / "heartbeat.shard0.ndjson"
    f1 = tmp_path / "heartbeat.shard1.ndjson"
    f0.write_text("".join(snapshot_json(_snap(t)) + "\n"
                          for t in (10_000.0, 30_000.0)))
    f1.write_text("".join(snapshot_json(_snap(t)) + "\n"
                          for t in (20_000.0, 40_000.0)))
    assert tools_main(["watch", str(f0), str(f1)]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert "source" in lines[0]
    labels = [line.split()[0] for line in lines[1:]]
    times = [line.split()[1] for line in lines[1:]]
    assert labels == ["shard0", "shard1", "shard0", "shard1"]
    assert times == ["10.0ms", "20.0ms", "30.0ms", "40.0ms"]


def test_watch_single_file_output_is_unchanged(tmp_path, capsys):
    """A one-file watch must not grow a label column."""
    f = tmp_path / "hb.ndjson"
    f.write_text(snapshot_json(_snap(10_000.0)) + "\n")
    assert tools_main(["watch", str(f)]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines[0].startswith("  sim time") or "sim time" in lines[0]
    assert not lines[0].lstrip().startswith("source")


def test_watch_merged_missing_file(tmp_path):
    f = tmp_path / "hb.ndjson"
    f.write_text(snapshot_json(_snap(1.0)) + "\n")
    assert tools_main(["watch", str(f), str(tmp_path / "nope.ndjson")]) == 2


def test_watch_merged_respects_max_lines(tmp_path, capsys):
    f0 = tmp_path / "heartbeat.a.ndjson"
    f1 = tmp_path / "heartbeat.b.ndjson"
    f0.write_text("".join(snapshot_json(_snap(t)) + "\n"
                          for t in (1_000.0, 3_000.0)))
    f1.write_text(snapshot_json(_snap(2_000.0)) + "\n")
    assert tools_main(["watch", str(f0), str(f1), "--max-lines", "2"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 3  # header + 2 snapshots

"""Tests for the telemetry-schema lint (repro.verify pass 3, RT3xx rules)."""

import os

from repro.verify import SuppressionIndex
from repro.verify.telemetry_pass import verify_telemetry


def lint(tmp_path, *sources):
    paths = []
    for i, source in enumerate(sources):
        path = tmp_path / f"fixture_{i}.py"
        path.write_text(source)
        paths.append(str(path))
    supp = SuppressionIndex()
    report = verify_telemetry(paths, suppressions=supp)
    report.finalize_suppressions(supp)
    return report


def rules_and_lines(report):
    return sorted((d.rule, d.line) for d in report.diagnostics)


#: A minimal closer so PACKET_SEND fixtures don't also trip RT310.
CLOSE_SEND = (
    "tracer.emit('packet.deliver', link='l0', dir='fwd', node='h1', uid=1)\n"
)


# -- trace emits --------------------------------------------------------------


def test_unknown_trace_type_is_rt301(tmp_path):
    report = lint(tmp_path, (
        "tracer.emit('packet.teleport', uid=1)\n"
    ))
    assert rules_and_lines(report) == [("RT301", 1)]


def test_missing_required_field_is_rt302(tmp_path):
    report = lint(tmp_path, (
        "import repro.telemetry.trace as tt\n"
        "tracer.emit(tt.PACKET_SEND, link='l0', dir='fwd', bytes=64)\n"
        + CLOSE_SEND
    ))
    assert rules_and_lines(report) == [("RT302", 2)]
    assert "uid" in report.diagnostics[0].message


def test_undeclared_field_is_rt302(tmp_path):
    report = lint(tmp_path, (
        "from repro.telemetry.trace import SNAPSHOT\n"
        "tracer.emit(SNAPSHOT, switch='sw', slot=0, epoch=1, color='red')\n"
    ))
    assert rules_and_lines(report) == [("RT302", 2)]
    assert "color" in report.diagnostics[0].message


def test_spread_emit_skips_field_check(tmp_path):
    report = lint(tmp_path, (
        "import repro.telemetry.trace as tt\n"
        "fields = build()\n"
        "tracer.emit(tt.SNAPSHOT, **fields)\n"
    ))
    assert report.diagnostics == []


def test_declared_emit_is_clean(tmp_path):
    report = lint(tmp_path, (
        "import repro.telemetry.trace as tt\n"
        "tracer.emit(tt.PACKET_SEND, link='l0', dir='fwd', bytes=64,\n"
        "            uid=1, kind='data', flow='f')\n"
        + CLOSE_SEND
    ))
    assert report.diagnostics == []


# -- metric instruments -------------------------------------------------------


def test_undeclared_metric_is_rt304(tmp_path):
    report = lint(tmp_path, (
        "c = sim.metrics.counter('switch.mystery_total', switch='sw')\n"
    ))
    assert rules_and_lines(report) == [("RT304", 1)]


def test_label_mismatch_is_rt305(tmp_path):
    report = lint(tmp_path, (
        "c = metrics.counter('link.tx_bytes', link='l0')\n"
    ))
    assert rules_and_lines(report) == [("RT305", 1)]
    assert "dir" in report.diagnostics[0].message


def test_kind_mismatch_is_rt306(tmp_path):
    report = lint(tmp_path, (
        "g = metrics.gauge('link.tx_bytes', link='l0', dir='fwd')\n"
    ))
    assert rules_and_lines(report) == [("RT306", 1)]


def test_unbounded_label_is_rt303(tmp_path):
    report = lint(tmp_path, (
        "c = metrics.counter('switch.pkts_processed', switch='sw', uid=7)\n"
    ))
    rules = [d.rule for d in report.diagnostics]
    assert "RT303" in rules
    assert "uid" in next(
        d.message for d in report.diagnostics if d.rule == "RT303"
    )


def test_wildcard_metric_and_fstring_name_are_clean(tmp_path):
    report = lint(tmp_path, (
        "g = metrics.gauge(f'redplane.resource.{key}', switch='sw')\n"
        "c = registry.counter('store.puts', node='n0')\n"
    ))
    assert report.diagnostics == []


def test_legacy_count_outside_patterns_is_rt304(tmp_path):
    report = lint(tmp_path, (
        "sim.count('switch.drops.queue')\n"
        "sim.count('switch.brand_new_counter')\n"
    ))
    assert rules_and_lines(report) == [("RT304", 2)]


# -- RT310: span pairing across the file set ----------------------------------


def test_unpaired_span_opener_is_rt310(tmp_path):
    report = lint(tmp_path, (
        "import repro.telemetry.trace as tt\n"
        "tracer.emit(tt.PACKET_SEND, link='l0', dir='fwd', bytes=64,\n"
        "            uid=1, kind='data')\n"
    ))
    assert rules_and_lines(report) == [("RT310", 2)]
    assert "packet.send" in report.diagnostics[0].message


def test_closer_in_another_file_pairs_the_span(tmp_path):
    report = lint(
        tmp_path,
        (
            "import repro.telemetry.trace as tt\n"
            "tracer.emit(tt.RP_REQUEST, switch='sw', kind='write',\n"
            "            flow='f', seq=0, uid=1)\n"
        ),
        (
            "import repro.telemetry.trace as tt\n"
            "tracer.emit(tt.RP_ACK, switch='sw', kind='write', flow='f',\n"
            "            seq=0, uid=2, req_uid=1, rtt_us=10.0)\n"
        ),
    )
    assert report.diagnostics == []


# -- the tree itself ----------------------------------------------------------


def test_repro_source_tree_matches_schema():
    src = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
    supp = SuppressionIndex()
    report = verify_telemetry([os.path.normpath(src)], suppressions=supp)
    # Standalone pass run: only unused suppressions of *telemetry* rules
    # are QA002 here — other passes' suppressions (RD201 in the observe
    # profiler, say) are theirs to account for.
    report.finalize_suppressions(supp, rules=("RT",))
    offending = report.active()
    assert offending == [], "\n".join(d.render() for d in offending)

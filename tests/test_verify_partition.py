"""Tests for the partition analyzer (repro.verify pass 5, RS4xx)."""

import json

import pytest

from repro.verify import Report, Severity, SuppressionIndex
from repro.verify.cli import baseline_regressions, rule_counts
from repro.verify.partition_pass import (
    plan_json, render_plan, verify_partition_app, verify_shard_hazards,
)
from repro.verify.rules import RULES, Rule, register
from repro.verify.diagnostics import Diagnostic


def analyze(factory, label=None, structures=None):
    report, plan = verify_partition_app(
        factory, label=label, structures=structures
    )
    return report, plan


def active_rules(report):
    return sorted(d.rule for d in report.active())


# -- rule registration --------------------------------------------------------


def test_partition_rules_are_registered():
    for rule_id in ("RS400", "RS401", "RS402", "RS403", "RS404",
                    "RS405", "RS406", "RS407", "RS408",
                    "RS410", "RS411", "RS412"):
        assert RULES[rule_id].owner == "partition"
    for rule_id in ("RS400", "RS401", "RS402", "RS403", "RS404",
                    "RS406", "RS408"):
        assert RULES[rule_id].severity is Severity.ERROR
    for rule_id in ("RS405", "RS407", "RS410", "RS411", "RS412"):
        assert RULES[rule_id].severity is Severity.WARNING


def test_duplicate_rule_id_rejected_at_registration():
    dup = [
        Rule("RX900", "first", Severity.ERROR, "test", "m"),
        Rule("RX900", "second", Severity.ERROR, "test", "m"),
    ]
    with pytest.raises(ValueError, match="duplicate rule id 'RX900'"):
        register(dup)


# -- the three partition classes ----------------------------------------------


def test_nat_is_flow_local():
    from repro.apps.nat import NatApp

    report, plan = analyze(lambda: NatApp(), label="nat")
    assert active_rules(report) == []
    assert plan["partition_class"] == "flow_local"
    assert plan["partition_key"]["class"] == "flow_local"
    assert plan["partition_key"]["fields"] == [
        "ip.dst", "ip.proto", "ip.src", "l4.dport", "l4.sport",
    ]
    assert plan["global_residue"] == []


def test_kv_store_is_flow_hash_over_payload():
    from repro.apps import BUILTIN_APPS

    spec = BUILTIN_APPS["kv_store"]
    report, plan = analyze(
        spec["factory"], label="kv_store",
        structures=spec.get("structures"),
    )
    assert active_rules(report) == []
    assert plan["partition_class"] == "flow_hash"
    assert plan["partition_key"]["fields"] == ["payload"]


def test_heavy_hitter_is_declared_global_with_reason():
    from repro.apps import BUILTIN_APPS

    spec = BUILTIN_APPS["heavy_hitter"]
    report, plan = analyze(
        spec["factory"], label="heavy_hitter",
        structures=spec.get("structures"),
    )
    assert active_rules(report) == []
    assert plan["partition_class"] == "global"
    assert plan["declared"]["shard_class"] == "global"
    assert plan["declared"]["shard_reason"]
    # The sketch rows are the global residue.
    assert plan["global_residue"]
    sketch_rows = [
        s for s in plan["structures"] if s["kind"] == "snapshot_array"
    ]
    assert sketch_rows
    assert all(s["partition_class"] == "global" for s in sketch_rows)


def test_cross_shard_links_and_lookahead_present():
    from repro.apps.nat import NatApp

    _, plan = analyze(lambda: NatApp(), label="nat")
    cross = plan["cross_shard"]
    assert sorted(cross["shards"]) == ["agg1", "agg2"]
    assert cross["links"]
    assert cross["sync_lookahead_us"] > 0


# -- declaration lattice violations -------------------------------------------


def test_declared_class_tighter_than_inferred_is_rs402():
    from repro.apps.kv_store import KvStoreApp

    class TightKv(KvStoreApp):
        shard_class = "flow_local"

    report, plan = analyze(lambda: TightKv(), label="tight_kv")
    assert "RS402" in active_rules(report)
    # The plan still records the honest (inferred) class.
    assert plan["partition_class"] == "flow_hash"


def test_global_declaration_without_reason_is_rs403():
    from repro.apps.sequencer import SequencerApp

    class Unjustified(SequencerApp):
        shard_reason = None

    report, _ = analyze(lambda: Unjustified(), label="unjustified")
    assert "RS403" in active_rules(report)


def test_unknown_shard_class_is_rs404():
    from repro.apps.nat import NatApp

    class Bogus(NatApp):
        shard_class = "per_rack"

    report, _ = analyze(lambda: Bogus(), label="bogus")
    assert "RS404" in active_rules(report)


def test_inferred_global_without_declaration_is_rs405():
    from repro.apps.superspreader import SuperSpreaderApp

    class Undeclared(SuperSpreaderApp):
        shard_class = None
        shard_reason = None

    report, plan = analyze(lambda: Undeclared(), label="undeclared")
    assert "RS405" in active_rules(report)
    assert plan["partition_class"] == "global"


def test_unanalyzable_partition_key_is_rs407():
    from repro.apps.nat import NatApp

    class Opaque(NatApp):
        pass

    Opaque.partition_key = lambda self, pkt: None

    report, plan = analyze(lambda: Opaque(), label="opaque")
    assert "RS407" in active_rules(report)
    assert plan["partition_key"]["class"] == "unknown"


# -- the shard plan artifact --------------------------------------------------


def test_plan_json_is_byte_deterministic_across_runs():
    from repro.apps import BUILTIN_APPS

    for name in ("nat", "heavy_hitter", "kv_store"):
        spec = BUILTIN_APPS[name]
        _, p1 = analyze(spec["factory"], label=name,
                        structures=spec.get("structures"))
        _, p2 = analyze(spec["factory"], label=name,
                        structures=spec.get("structures"))
        assert plan_json(p1) == plan_json(p2)


def test_plan_json_is_canonical_json():
    from repro.apps.nat import NatApp

    _, plan = analyze(lambda: NatApp(), label="nat")
    text = plan_json(plan)
    assert text.endswith("\n")
    doc = json.loads(text)
    assert doc["format"] == 1
    assert doc["app"] == "nat"
    roundtrip = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    assert roundtrip == text


def test_render_plan_mentions_key_and_shards():
    from repro.apps.nat import NatApp

    _, plan = analyze(lambda: NatApp(), label="nat")
    text = render_plan(plan)
    assert "partition_class=flow_local" in text
    assert "shards: agg1, agg2" in text


def test_committed_plans_match_fresh_analysis():
    """RS408's ground truth: shard_plans/ must track the analyzer."""
    import os

    from repro.apps import BUILTIN_APPS
    from repro.verify.cli import shard_plan_dir

    plan_dir = shard_plan_dir()
    if not os.path.isdir(plan_dir):
        pytest.skip("no committed shard_plans/ directory")
    for name in sorted(BUILTIN_APPS):
        spec = BUILTIN_APPS[name]
        _, plan = analyze(spec["factory"], label=name,
                          structures=spec.get("structures"))
        path = os.path.join(plan_dir, f"{name}.json")
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == plan_json(plan), f"stale plan for {name}"


# -- conformance over the builtin registry ------------------------------------


EXPECTED_CLASSES = {
    "async_counter": "flow_hash",
    "epc_sgw": "flow_hash",
    "firewall": "flow_local",
    "heavy_hitter": "global",
    "kv_store": "flow_hash",
    "load_balancer": "flow_local",
    "nat": "flow_local",
    "sequencer": "global",
    "superspreader": "global",
    "syn_defense": "flow_local",
    "sync_counter": "flow_local",
}


def test_every_builtin_app_classifies_cleanly():
    from repro.apps import BUILTIN_APPS

    assert sorted(BUILTIN_APPS) == sorted(EXPECTED_CLASSES)
    for name in sorted(BUILTIN_APPS):
        spec = BUILTIN_APPS[name]
        report, plan = analyze(spec["factory"], label=name,
                               structures=spec.get("structures"))
        assert active_rules(report) == [], f"{name}: {active_rules(report)}"
        assert plan["partition_class"] == EXPECTED_CLASSES[name], name


# -- RS406: cache-entry partition classes -------------------------------------


def test_entry_kind_without_partition_class_is_rs406(monkeypatch):
    from repro.fastpath import flowcache

    bad = dict(flowcache.ENTRY_DEPS)
    bad["evil"] = flowcache.EntryDep(frozenset({"table"}), "per_rack")
    monkeypatch.setattr(flowcache, "ENTRY_DEPS", bad)
    report = verify_shard_hazards([])
    assert "RS406" in active_rules(report)


def test_real_entry_deps_pass_rs406():
    report = verify_shard_hazards([])
    assert active_rules(report) == []


# -- RS410/411/412: Python-level shard hazards --------------------------------


def lint(tmp_path, source, name="fixture.py"):
    path = tmp_path / name
    path.write_text(source)
    supp = SuppressionIndex()
    report = verify_shard_hazards([str(path)], suppressions=supp)
    report.finalize_suppressions(supp, rules=("RS",))
    return report


def test_mutable_module_global_is_rs410(tmp_path):
    report = lint(tmp_path, (
        "PENDING = []\n"
        "def enqueue(x):\n"
        "    PENDING.append(x)\n"
    ))
    assert "RS410" in active_rules(report)


def test_global_statement_is_rs410(tmp_path):
    report = lint(tmp_path, (
        "counter = 0\n"
        "def bump():\n"
        "    global counter\n"
        "    counter += 1\n"
    ))
    assert "RS410" in active_rules(report)


def test_constant_module_global_is_clean(tmp_path):
    report = lint(tmp_path, (
        "LIMIT = 64\n"
        "NAMES = (\"a\", \"b\")\n"
    ))
    assert active_rules(report) == []


def test_lambda_on_instance_is_rs411(tmp_path):
    report = lint(tmp_path, (
        "class Widget:\n"
        "    def __init__(self):\n"
        "        self.scorer = lambda x: x + 1\n"
    ))
    assert "RS411" in active_rules(report)


def test_order_sensitive_first_pick_is_rs412(tmp_path):
    report = lint(tmp_path, (
        "def first_owner(owners):\n"
        "    return next(iter({o.lower() for o in owners}))\n"
    ))
    assert "RS412" in active_rules(report)


def test_next_iter_over_sorted_is_clean(tmp_path):
    report = lint(tmp_path, (
        "def first_owner(owners):\n"
        "    return next(iter(sorted(owners)))\n"
    ))
    assert active_rules(report) == []


def test_hazard_suppression_with_justification(tmp_path):
    report = lint(tmp_path, (
        "PENDING = []  # repro: noqa[RS410] -- drained per test\n"
    ))
    assert active_rules(report) == []
    assert [d.rule for d in report.diagnostics if d.suppressed] == ["RS410"]


def test_repro_tree_is_hazard_clean():
    import os

    from repro.verify.cli import source_root

    tree = os.path.join(source_root(), "repro")
    report = verify_shard_hazards([tree])
    assert active_rules(report) == []


# -- baseline comparison ------------------------------------------------------


def test_baseline_regressions_only_flags_increases():
    report = Report()
    for _ in range(3):
        report.add(Diagnostic("RS410", Severity.WARNING, "m", "f.py", 1))
    report.add(Diagnostic("RS412", Severity.WARNING, "m", "f.py", 2))
    counts = rule_counts(report)
    assert counts == {"RS410": 3, "RS412": 1}
    # At or below baseline: no regression, even with an extinct rule.
    assert baseline_regressions(
        counts, {"RS410": 3, "RS412": 2, "RD201": 5}
    ) == {}
    # Above baseline, or brand new: regression.
    regs = baseline_regressions(counts, {"RS410": 2})
    assert regs == {
        "RS410": {"count": 3, "baseline": 2},
        "RS412": {"count": 1, "baseline": 0},
    }

"""Tests for match-action tables."""

import pytest

from repro.switch.tables import ActionEntry, MatchKind, MatchTable


def entry(name="act", **data):
    return ActionEntry(action=name, data=data)


def test_exact_match_hit_and_miss():
    table = MatchTable("t", MatchKind.EXACT)
    table.install(("a", 1), entry(out=2))
    assert table.lookup(("a", 1)).data["out"] == 2
    assert table.lookup(("b", 1)) is None
    assert table.hits == 1 and table.misses == 1


def test_exact_remove():
    table = MatchTable("t", MatchKind.EXACT)
    table.install("k", entry())
    table.remove("k")
    assert table.lookup("k") is None
    table.remove("k")  # idempotent


def test_capacity_enforced():
    table = MatchTable("t", MatchKind.EXACT, max_entries=2)
    table.install(1, entry())
    table.install(2, entry())
    with pytest.raises(RuntimeError):
        table.install(3, entry())
    table.install(1, entry("replacement"))  # overwrite allowed


def test_lpm_longest_wins():
    table = MatchTable("t", MatchKind.LPM)
    table.install_lpm(0x0A000000, 8, entry("wide"))
    table.install_lpm(0x0A000100, 24, entry("narrow"))
    assert table.lookup(0x0A000105).action == "narrow"
    assert table.lookup(0x0A990000).action == "wide"
    assert table.lookup(0x0B000000) is None


def test_ternary_priority():
    table = MatchTable("t", MatchKind.TERNARY)
    table.install_ternary(0x10, 0xF0, entry("low"), priority=1)
    table.install_ternary(0x12, 0xFF, entry("high"), priority=9)
    assert table.lookup(0x12).action == "high"
    assert table.lookup(0x15).action == "low"
    assert table.lookup(0x25) is None


def test_range_match():
    table = MatchTable("t", MatchKind.RANGE)
    table.install_range(10, 20, entry("mid"))
    table.install_range(0, 100, entry("all"), priority=-1)
    assert table.lookup(15).action == "mid"
    assert table.lookup(50).action == "all"
    assert table.lookup(200) is None


def test_range_rejects_empty():
    table = MatchTable("t", MatchKind.RANGE)
    with pytest.raises(ValueError):
        table.install_range(5, 1, entry())


def test_kind_mismatch_rejected():
    table = MatchTable("t", MatchKind.EXACT)
    with pytest.raises(TypeError):
        table.install_lpm(0, 8, entry())
    with pytest.raises(TypeError):
        MatchTable("t2", MatchKind.RANGE).install("k", entry())


def test_resource_accounting_by_kind():
    exact = MatchTable("e", MatchKind.EXACT, key_width_bits=104,
                       entry_data_bits=24, max_entries=1000)
    assert exact.sram_bits() == 1000 * 128
    assert exact.tcam_bits() == 0
    rng = MatchTable("r", MatchKind.RANGE, key_width_bits=32,
                     entry_data_bits=32, max_entries=100)
    assert rng.tcam_bits() == 100 * 96
    assert rng.sram_bits() == 0


def test_clear():
    table = MatchTable("t", MatchKind.EXACT)
    table.install(1, entry())
    table.clear()
    assert table.entry_count() == 0

"""Tests for the determinism linter (repro.verify pass 2, RD2xx rules)."""

import os

from repro.verify import Report, Severity, SuppressionIndex
from repro.verify.determinism_pass import verify_determinism


def lint(tmp_path, source, name="fixture.py"):
    path = tmp_path / name
    path.write_text(source)
    supp = SuppressionIndex()
    report = verify_determinism([str(path)], suppressions=supp)
    report.finalize_suppressions(supp)
    return report


def rules_and_lines(report):
    return sorted((d.rule, d.line) for d in report.diagnostics)


# -- RD201: wall clock --------------------------------------------------------


def test_wall_clock_detected(tmp_path):
    report = lint(tmp_path, (
        "import time\n"                       # 1
        "from datetime import datetime\n"     # 2
        "def now_us():\n"                     # 3
        "    return time.time() * 1e6\n"      # 4
        "def stamp():\n"                      # 5
        "    return datetime.now()\n"         # 6
    ))
    assert rules_and_lines(report) == [("RD201", 4), ("RD201", 6)]
    assert all(d.severity is Severity.ERROR for d in report.diagnostics)


def test_perf_counter_detected(tmp_path):
    report = lint(tmp_path, (
        "import time\n"
        "t0 = time.perf_counter()\n"
    ))
    assert rules_and_lines(report) == [("RD201", 2)]


# -- RD202: unseeded randomness -----------------------------------------------


def test_unseeded_random_constructor_detected(tmp_path):
    report = lint(tmp_path, (
        "import random\n"
        "rng = random.Random()\n"
    ))
    assert rules_and_lines(report) == [("RD202", 2)]


def test_seeded_random_is_clean(tmp_path):
    report = lint(tmp_path, (
        "import random\n"
        "rng = random.Random(42)\n"
        "rng2 = random.Random(seed := 7)\n"
    ))
    assert report.diagnostics == []


def test_global_rng_functions_detected(tmp_path):
    report = lint(tmp_path, (
        "import random\n"
        "from random import shuffle\n"
        "x = random.randint(0, 9)\n"
        "shuffle([1, 2, 3])\n"
    ))
    assert rules_and_lines(report) == [("RD202", 3), ("RD202", 4)]


# -- RD203: set iteration order -----------------------------------------------


def test_set_iteration_detected(tmp_path):
    report = lint(tmp_path, (
        "names = {'a', 'b'}\n"
        "def run(items):\n"
        "    for n in set(items):\n"
        "        print(n)\n"
        "    return [x for x in {1, 2} | set(items)]\n"
    ))
    assert rules_and_lines(report) == [("RD203", 3), ("RD203", 5)]


def test_sorted_set_iteration_is_clean(tmp_path):
    report = lint(tmp_path, (
        "def run(items, other):\n"
        "    for n in sorted(set(items)):\n"
        "        print(n)\n"
        "    ok = any(x in other for x in set(items) - {None})\n"
        "    total = sum(x for x in set(items))\n"
        "    return ok, total\n"
    ))
    assert report.diagnostics == []


# -- RD204: identity ordering -------------------------------------------------


def test_id_sort_key_detected(tmp_path):
    report = lint(tmp_path, (
        "def order(blocks):\n"
        "    blocks.sort(key=lambda b: id(b))\n"
        "    return sorted(blocks, key=lambda b: (b.name, id(b)))\n"
    ))
    assert rules_and_lines(report) == [("RD204", 2), ("RD204", 3)]


def test_stable_sort_key_is_clean(tmp_path):
    report = lint(tmp_path, (
        "def order(blocks):\n"
        "    return sorted(blocks, key=lambda b: b.name)\n"
    ))
    assert report.diagnostics == []


# -- suppressions -------------------------------------------------------------


def test_justified_suppression_waives_the_error(tmp_path):
    report = lint(tmp_path, (
        "import time\n"
        "t = time.perf_counter()"
        "  # repro: noqa[RD201] -- wall-clock profiler fixture\n"
    ))
    assert len(report.diagnostics) == 1
    diag = report.diagnostics[0]
    assert diag.rule == "RD201"
    assert diag.suppressed
    assert diag.justification == "wall-clock profiler fixture"
    assert report.exit_code() == 0


def test_suppression_without_justification_is_qa001(tmp_path):
    report = lint(tmp_path, (
        "import time\n"
        "t = time.perf_counter()  # repro: noqa[RD201]\n"
    ))
    rules = sorted(d.rule for d in report.diagnostics)
    assert rules == ["QA001", "RD201"]
    assert report.exit_code() == 1


def test_unused_suppression_is_qa002(tmp_path):
    report = lint(tmp_path, (
        "x = 1  # repro: noqa[RD201] -- nothing here needs waiving\n"
    ))
    rules = sorted(d.rule for d in report.diagnostics)
    assert rules == ["QA002"]
    assert report.exit_code() == 0  # warning only
    assert report.exit_code(strict=True) == 1


def test_finalize_rules_filter_scopes_qa002_to_the_pass(tmp_path):
    # An unused suppression of another pass's rule (RT304 is telemetry's)
    # is not this pass's business when finalize is scoped to RD rules --
    # but an unused RD suppression still is.
    path = tmp_path / "fixture.py"
    path.write_text(
        "a = 1  # repro: noqa[RT304] -- belongs to the telemetry pass\n"
        "b = 2  # repro: noqa[RD201] -- stale, should still be QA002\n"
    )
    supp = SuppressionIndex()
    report = verify_determinism([str(path)], suppressions=supp)
    report.finalize_suppressions(supp, rules=("RD",))
    assert [(d.rule, d.line) for d in report.diagnostics] == [("QA002", 2)]


def test_docstring_mentioning_noqa_is_not_a_suppression(tmp_path):
    report = lint(tmp_path, (
        '"""Docs may show `# repro: noqa[RD201] -- why` verbatim."""\n'
        "x = 1\n"
    ))
    assert report.diagnostics == []


# -- the tree itself ----------------------------------------------------------


def test_repro_source_tree_is_deterministic():
    src = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
    supp = SuppressionIndex()
    report = verify_determinism([os.path.normpath(src)], suppressions=supp)
    # Only the determinism pass ran: scope the unused-suppression check
    # to RD rules, or other passes' noqas in the tree would false-flag.
    report.finalize_suppressions(supp, rules=("RD",))
    offending = report.active()
    assert offending == [], "\n".join(d.render() for d in offending)
    # The sanctioned wall-clock readers are waived, with justification:
    # the ScopedTimer profiler, the event-loop self-profiler, and the
    # perf-trajectory benchmark recorder. Nothing else — the simulator
    # itself included — may read the host clock.
    sanctioned = ("timers.py", "profiler.py", "trajectory.py")
    suppressed = [d for d in report.diagnostics if d.suppressed]
    assert {d.rule for d in suppressed} == {"RD201"}
    assert all(d.file.endswith(sanctioned) for d in suppressed), \
        "\n".join(d.render() for d in suppressed)

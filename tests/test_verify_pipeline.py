"""Tests for the pipeline verifier (repro.verify pass 1, RP1xx rules)."""

import inspect

import pytest

from repro.net.packet import Packet
from repro.net.simulator import Simulator
from repro.switch.asic import SwitchASIC
from repro.switch.pipeline import (
    ControlBlock,
    PipelineContext,
    RegisterAccessError,
)
from repro.switch.registers import RegisterArray
from repro.verify import Report, Severity, SuppressionIndex
from repro.verify.pipeline_pass import verify_app, verify_asic
from repro.apps import BUILTIN_APPS


def fresh_switch():
    return SwitchASIC(Simulator(seed=0), "sw", ip=1)


def run_pass(switch, finalize=False):
    # finalize=False by default: every fixture block lives in this one
    # file, so judging *unused* suppressions (QA002) would cross-talk
    # between tests; only the suppression test opts in.
    supp = SuppressionIndex()
    report = verify_asic(switch, suppressions=supp)
    if finalize:
        report.finalize_suppressions(supp)
    return report


def line_of(obj, needle):
    """Absolute line number of the first source line containing needle."""
    lines, start = inspect.getsourcelines(obj)
    for offset, text in enumerate(lines):
        if needle in text:
            return start + offset
    raise AssertionError(f"{needle!r} not found in {obj}")


# -- fixture blocks -----------------------------------------------------------


class GoodBlock(ControlBlock):
    name = "good"

    def __init__(self):
        self.reg = RegisterArray("good.reg", 16, 32)

    def process(self, ctx, switch):
        if ctx.pkt.l4 is None:
            return True
        self.reg.access(ctx, 0, lambda lo, hi: (lo + 1, hi))
        return True

    def resource_usage(self):
        return {"sram_bits": self.reg.sram_bits(), "meter_alus": 1}


class DoubleAccessBlock(ControlBlock):
    name = "double-access"

    def __init__(self):
        self.reg = RegisterArray("double.reg", 16, 32)

    def process(self, ctx, switch):
        value = self.reg.read(ctx, 0)  # first access
        if value > 3:
            self.reg.write(ctx, 1, value)  # second access, same packet
        return True

    def resource_usage(self):
        return {"sram_bits": self.reg.sram_bits(), "meter_alus": 2}


class SharedReader(ControlBlock):
    name = "shared-reader"

    def __init__(self, shared):
        self.shared = shared

    def process(self, ctx, switch):
        self.shared.read(ctx, 0)
        return True

    def resource_usage(self):
        return {"sram_bits": self.shared.sram_bits(), "meter_alus": 1}


class SharedWriter(ControlBlock):
    name = "shared-writer"

    def __init__(self, shared):
        self.shared = shared

    def process(self, ctx, switch):
        self.shared.write(ctx, 1, 7)
        return True

    def resource_usage(self):
        return {"meter_alus": 1}


class LoopBlock(ControlBlock):
    name = "loop-access"

    def __init__(self):
        self.reg = RegisterArray("loop.reg", 8, 32)

    def process(self, ctx, switch):
        for i in range(4):
            self.reg.access(ctx, i, lambda lo, hi: (lo, hi))  # per-packet loop
        return True

    def resource_usage(self):
        return {"sram_bits": self.reg.sram_bits(), "meter_alus": 1}


class RowsBlock(ControlBlock):
    """A loop over a *collection* of arrays: one access per member, legal."""

    name = "rows"

    def __init__(self, rows=3):
        self.rows = [RegisterArray(f"rows.{i}", 8, 32) for i in range(rows)]

    def process(self, ctx, switch):
        for row in self.rows:
            row.access(ctx, 0, lambda lo, hi: (lo + 1, hi))
        return True

    def resource_usage(self):
        return {
            "sram_bits": sum(r.sram_bits() for r in self.rows),
            "meter_alus": len(self.rows),
        }


class WideBlock(RowsBlock):
    """Enough parallel arrays to blow the 12-stage x 4-ALU budget."""

    name = "wide"

    def __init__(self):
        super().__init__(rows=60)


class HugeBlock(ControlBlock):
    name = "huge"

    def __init__(self):
        self.reg = RegisterArray("huge.reg", 6_000_000, 32)  # ~192 Mbit

    def process(self, ctx, switch):
        self.reg.read(ctx, 0)
        return True

    def resource_usage(self):
        return {"sram_bits": self.reg.sram_bits()}


class UnderDeclaredBlock(ControlBlock):
    name = "under-declared"

    def __init__(self):
        self.reg = RegisterArray("under.reg", 1024, 32)

    def process(self, ctx, switch):
        self.reg.read(ctx, 0)
        return True

    def resource_usage(self):
        return {"sram_bits": 64, "meter_alus": 1}  # reg is 32768 bits


class SuppressedDoubleBlock(ControlBlock):
    name = "suppressed-double"

    def __init__(self):
        self.reg = RegisterArray("supp.reg", 4, 32)

    def process(self, ctx, switch):
        self.reg.read(ctx, 0)  # repro: noqa[RP101] -- fixture: waived on purpose for the suppression test
        self.reg.write(ctx, 1, 1)
        return True

    def resource_usage(self):
        return {"sram_bits": self.reg.sram_bits(), "meter_alus": 2}


class LeakyHandlerBlock(ControlBlock):
    """Owns a mirror session whose handler never releases copies."""

    name = "leaky"

    def __init__(self, switch):
        self.session = switch.new_mirror_session(truncate_to_bytes=64)
        self.session.handler = self.on_pass

    def process(self, ctx, switch):
        self.session.mirror(ctx.pkt)
        return True

    def on_pass(self, pkt, meta):
        return True  # keep circulating, forever

    def resource_usage(self):
        return {}


# -- RP101: single access per register array per packet -----------------------


def test_known_good_block_is_clean():
    sw = fresh_switch()
    sw.add_block(GoodBlock())
    report = run_pass(sw)
    assert report.diagnostics == []
    assert report.exit_code() == 0


def test_double_access_detected_with_exact_location():
    sw = fresh_switch()
    sw.add_block(DoubleAccessBlock())
    report = run_pass(sw)
    hits = report.by_rule("RP101")
    assert len(hits) == 1
    diag = hits[0]
    assert diag.severity is Severity.ERROR
    assert "double.reg" in diag.message
    # Cited at the array's first access site, in this file.
    assert diag.file.endswith("test_verify_pipeline.py")
    assert diag.line == line_of(DoubleAccessBlock.process, "# first access")
    assert "block=double-access" in diag.site
    assert report.exit_code() == 1


def test_single_path_double_access_only_on_taken_path():
    # The analysis is path-sensitive: the verifier reports the *possible*
    # double access even though one branch is single-access.
    sw = fresh_switch()
    sw.add_block(DoubleAccessBlock())
    report = run_pass(sw)
    assert [d.rule for d in report.diagnostics] == ["RP101"]


def test_cross_block_double_access_detected():
    sw = fresh_switch()
    shared = RegisterArray("shared.reg", 4, 32)
    sw.add_block(SharedReader(shared))
    sw.add_block(SharedWriter(shared))
    report = run_pass(sw)
    hits = report.by_rule("RP101")
    assert len(hits) == 1
    assert "shared.reg" in hits[0].message


def test_static_and_runtime_cite_the_same_site_format():
    # Satellite: RegisterAccessError carries block=<name> exactly like the
    # RP101 diagnostic's site field.
    sw = fresh_switch()
    block = DoubleAccessBlock()
    sw.add_block(block)
    report = run_pass(sw)
    static_site = report.by_rule("RP101")[0].site  # "block=double-access pkt=*"

    block.reg.cp_write(0, 10)  # force the value > 3 branch
    ctx = PipelineContext(pkt=Packet(), now=0.0)
    with pytest.raises(RegisterAccessError) as err:
        sw.pipeline.run(ctx, sw)
    assert "block=double-access" in str(err.value)
    assert static_site.split(" pkt=")[0] in str(err.value)


# -- RP102: per-packet loops --------------------------------------------------


def test_loop_access_detected():
    sw = fresh_switch()
    sw.add_block(LoopBlock())
    report = run_pass(sw)
    hits = report.by_rule("RP102")
    assert len(hits) == 1
    assert hits[0].line == line_of(LoopBlock.process, "# per-packet loop")


def test_loop_over_array_collection_is_legal():
    sw = fresh_switch()
    sw.add_block(RowsBlock())
    report = run_pass(sw)
    assert report.diagnostics == []


# -- RP105 / RP110: structure and stage budget --------------------------------


def test_duplicate_block_instance_detected():
    sw = fresh_switch()
    block = GoodBlock()
    sw.add_block(block)
    sw.pipeline.append(block)  # same instance again: a cycle
    report = run_pass(sw)
    assert [d.rule for d in report.by_rule("RP105")] == ["RP105"]


def test_stage_budget_overflow_detected():
    sw = fresh_switch()
    sw.add_block(WideBlock())  # 60 arrays / 4 ALUs = 15 stages > 12
    report = run_pass(sw)
    assert len(report.by_rule("RP110")) == 1
    assert "15 stages" in report.by_rule("RP110")[0].message


# -- RP12x: mirror sessions ---------------------------------------------------


def test_unwired_mirror_session_flagged():
    sw = fresh_switch()
    sw.new_mirror_session()  # no handler, no truncation, never mirrored to
    report = run_pass(sw)
    rules = sorted({d.rule for d in report.diagnostics})
    assert rules == ["RP120", "RP121", "RP122"]


def test_leaky_handler_flagged():
    sw = fresh_switch()
    sw.add_block(LeakyHandlerBlock(sw))
    report = run_pass(sw)
    hits = report.by_rule("RP123")
    assert len(hits) == 1
    assert hits[0].line == inspect.unwrap(
        LeakyHandlerBlock.on_pass
    ).__code__.co_firstlineno
    assert not report.by_rule("RP120")
    assert not report.by_rule("RP122")


# -- RP13x: resources ---------------------------------------------------------


def test_over_capacity_detected():
    sw = fresh_switch()
    sw.add_block(HugeBlock())
    report = run_pass(sw)
    hits = report.by_rule("RP130")
    assert len(hits) == 1
    assert "sram_bits" in hits[0].message


def test_under_declared_sram_detected():
    sw = fresh_switch()
    sw.add_block(UnderDeclaredBlock())
    report = run_pass(sw)
    hits = report.by_rule("RP132")
    assert len(hits) == 1
    assert "UnderDeclaredBlock" in hits[0].message


def test_ledger_out_of_sync_detected():
    sw = fresh_switch()
    sw.pipeline.append(GoodBlock())  # bypasses add_block's registration
    report = run_pass(sw)
    hits = report.by_rule("RP133")
    assert len(hits) == 1
    assert hits[0].severity is Severity.WARNING
    assert report.exit_code() == 0  # warning only
    assert report.exit_code(strict=True) == 1


# -- suppressions -------------------------------------------------------------


def test_suppressed_double_access_keeps_exit_code_zero():
    sw = fresh_switch()
    sw.add_block(SuppressedDoubleBlock())
    report = run_pass(sw, finalize=True)
    hits = report.by_rule("RP101")
    assert len(hits) == 1
    assert hits[0].suppressed
    assert "fixture" in hits[0].justification
    assert report.exit_code() == 0
    assert not report.by_rule("QA001")
    assert not report.by_rule("QA002")


# -- the builtin applications (satellite: the RP132 sweep) --------------------


@pytest.mark.parametrize("name", sorted(BUILTIN_APPS))
def test_builtin_app_verifies_clean(name):
    spec = BUILTIN_APPS[name]
    supp = SuppressionIndex()
    report = Report()
    verify_app(
        spec["factory"],
        label=name,
        structures=spec.get("structures"),
        report=report,
        suppressions=supp,
    )
    # Standalone pass run: restrict QA002 to pipeline rules — the pass
    # walks live code into files (the simulator, say) whose suppressions
    # belong to other passes.
    report.finalize_suppressions(supp, rules=("RP",))
    unsuppressed = report.active()
    assert unsuppressed == [], "\n".join(d.render() for d in unsuppressed)


@pytest.mark.parametrize(
    "name", ["async_counter", "heavy_hitter", "superspreader"]
)
def test_lazy_snapshot_apps_declare_metadata_sram(name):
    # Regression for the RP132 fixes: the declared SRAM must cover the
    # active-flag and last-updated registers, not just the data slots.
    spec = BUILTIN_APPS[name]
    app = spec["factory"]()
    declared = app.resource_usage()["sram_bits"]
    structures = spec["structures"](app)
    for array in structures.values():
        assert declared >= array.sram_bits()


# -- RP150: store-backend registers on the packet path ------------------------


class CpServingStoreBlock(ControlBlock):
    """A bad in-switch store: serves packets via control-plane register
    ops, dodging the pipeline's stateful-ALU accounting."""

    name = "cp-serving-store"

    def __init__(self):
        from repro.statestore.netchain import NetChainBackend

        self.backend = NetChainBackend(label="bad", size=8)

    def process(self, ctx, switch):
        if ctx.pkt.l4 is None:
            return True
        seq = self.backend.reg_seq.cp_read(0)
        self.backend.reg_seq.cp_write(0, seq + 1)
        return True

    def resource_usage(self):
        return {"sram_bits": self.backend.sram_bits()}


def test_rp150_store_register_cp_ops_on_packet_path():
    switch = fresh_switch()
    block = CpServingStoreBlock()
    switch.add_block(block)
    report = run_pass(switch)
    rp150 = [d for d in report.diagnostics if d.rule == "RP150"]
    assert len(rp150) == 2  # one per cp_read / cp_write site
    assert all(d.severity is Severity.ERROR for d in rp150)
    assert rp150[0].line == line_of(CpServingStoreBlock, "cp_read(0)")
    assert rp150[1].line == line_of(CpServingStoreBlock, "cp_write(0, seq")


def test_rp150_not_raised_for_non_store_registers():
    """Engine-style cp ops on registers a backend does not own (state
    migration, RMW modeling shortcuts) stay legal."""

    class CpMigrationBlock(ControlBlock):
        name = "cp-migration"

        def __init__(self):
            self.reg = RegisterArray("mig.reg", 8, 32)

        def process(self, ctx, switch):
            self.reg.cp_write(0, 7)  # not backend-owned: no RP150
            return True

        def resource_usage(self):
            return {"sram_bits": self.reg.sram_bits()}

    switch = fresh_switch()
    switch.add_block(CpMigrationBlock())
    report = run_pass(switch)
    assert not [d for d in report.diagnostics if d.rule == "RP150"]


def test_netchain_store_block_verifies_clean():
    """The shipped in-switch store obeys RP101/RP110/RP150: every
    per-packet register touch goes through pipelined access()."""
    from repro.verify.pipeline_pass import verify_netchain

    report = verify_netchain()
    assert "store:netchain" in report.analyzed
    assert report.active(Severity.ERROR) == []
    assert report.by_rule("RP150") == []

"""Tests for the RedPlane wire format (Fig 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.protocol import (
    MessageType,
    RedPlaneMessage,
    STORE_UDP_PORT,
    SWITCH_UDP_PORT,
    make_protocol_packet,
    parse_protocol_packet,
)
from repro.net.packet import FlowKey, Packet


KEY = FlowKey(0x0A000101, 0xAC100101, 17, 1234, 5678)


def test_roundtrip_basic():
    msg = RedPlaneMessage(seq=7, msg_type=MessageType.REPL_WRITE_REQ,
                          flow_key=KEY, vals=[1, 2, 3])
    back = RedPlaneMessage.unpack(msg.pack())
    assert back == msg


def test_roundtrip_with_piggyback():
    inner = Packet.udp(1, 2, 3, 4, payload=b"inner").to_bytes()
    msg = RedPlaneMessage(seq=1, msg_type=MessageType.LEASE_NEW_REQ,
                          flow_key=KEY, piggyback=inner)
    back = RedPlaneMessage.unpack(msg.pack())
    assert back.piggyback == inner
    restored = Packet.from_bytes(back.piggyback)
    assert restored.payload == b"inner"


def test_no_piggyback_distinct_from_empty():
    with_empty = RedPlaneMessage(1, MessageType.LEASE_NEW_REQ, KEY, piggyback=b"")
    without = RedPlaneMessage(1, MessageType.LEASE_NEW_REQ, KEY, piggyback=None)
    assert RedPlaneMessage.unpack(with_empty.pack()).piggyback == b""
    assert RedPlaneMessage.unpack(without.pack()).piggyback is None


def test_aux_field_roundtrip():
    msg = RedPlaneMessage(3, MessageType.SNAPSHOT_REPL_REQ, KEY, vals=[9],
                          aux=63)
    assert RedPlaneMessage.unpack(msg.pack()).aux == 63


def test_request_ack_pairing():
    for req in (MessageType.LEASE_NEW_REQ, MessageType.REPL_WRITE_REQ,
                MessageType.LEASE_RENEW_REQ, MessageType.READ_BUFFER_REQ,
                MessageType.SNAPSHOT_REPL_REQ):
        ack = req.ack_type()
        assert not ack.is_request()
        assert ack - req == 16
    with pytest.raises(ValueError):
        MessageType.REPL_WRITE_ACK.ack_type()


def test_too_many_vals_rejected():
    msg = RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY, vals=[0] * 256)
    with pytest.raises(ValueError):
        msg.pack()


def test_truncated_input_rejected():
    msg = RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY, vals=[5])
    raw = msg.pack()
    with pytest.raises(ValueError):
        RedPlaneMessage.unpack(raw[:8])


def test_truncated_piggyback_rejected():
    msg = RedPlaneMessage(1, MessageType.LEASE_NEW_REQ, KEY, piggyback=b"abcdef")
    raw = msg.pack()
    with pytest.raises(ValueError):
        RedPlaneMessage.unpack(raw[:-3])


def test_header_size_excludes_piggyback_content():
    bare = RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY, vals=[1])
    loaded = RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY, vals=[1],
                             piggyback=b"\x00" * 500)
    assert loaded.header_size() == bare.header_size() + 2  # length prefix only
    assert len(loaded.pack()) == loaded.header_size() + 500


def test_make_protocol_packet_tags_and_addresses():
    msg = RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY, vals=[1])
    pkt = make_protocol_packet(0x0A0000FE, 0x0A0001C8, msg)
    assert pkt.meta["rp_kind"] == "request"
    assert pkt.l4.dport == STORE_UDP_PORT
    assert pkt.l4.sport == SWITCH_UDP_PORT
    assert parse_protocol_packet(pkt) == msg

    ack = RedPlaneMessage(1, MessageType.REPL_WRITE_ACK, KEY)
    reply = make_protocol_packet(1, 2, ack, sport=STORE_UDP_PORT,
                                 dport=SWITCH_UDP_PORT)
    assert reply.meta["rp_kind"] == "response"


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from(list(MessageType)),
    st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=8),
    st.one_of(st.none(), st.binary(max_size=200)),
    st.integers(min_value=0, max_value=0xFFFF),
)
def test_roundtrip_property(seq, msg_type, vals, piggyback, aux):
    msg = RedPlaneMessage(seq=seq, msg_type=msg_type, flow_key=KEY,
                          vals=vals, piggyback=piggyback, aux=aux)
    assert RedPlaneMessage.unpack(msg.pack()) == msg

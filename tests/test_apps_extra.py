"""Tests for the remaining Table 1 applications: SYN defense,
super-spreader detection, and the in-network sequencer."""

import pytest

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps import (
    SequencerApp,
    SuperSpreaderApp,
    SynDefenseApp,
    install_sequencer_routes,
    make_sequenced_request,
    parse_stamp,
    syn_cookie,
)
from repro.core.api import attach_snapshot_replication
from repro.core.engine import RedPlaneMode
from repro.net.packet import Packet, TCP_ACK, TCP_SYN


# ---------------------------------------------------------------------------
# SYN-flood defense
# ---------------------------------------------------------------------------


class TestSynDefense:
    @pytest.fixture
    def dep(self, sim):
        return deploy(sim, SynDefenseApp)

    def _verify_source(self, sim, dep, e1, s11, sport=7000):
        """Run the cookie handshake for e1; returns the challenge packet."""
        challenges = []
        e1.default_handler = challenges.append
        e1.send(Packet.tcp(e1.ip, s11.ip, sport, 80, flags=TCP_SYN, seq=5))
        sim.run_until_idle()
        assert len(challenges) == 1
        challenge = challenges[0]
        assert challenge.l4.has(TCP_SYN) and challenge.l4.has(TCP_ACK)
        # Echo the cookie back.
        e1.send(Packet.tcp(e1.ip, s11.ip, sport, 80, flags=TCP_ACK,
                           ack=(challenge.l4.seq + 1) & 0xFFFFFFFF))
        sim.run_until_idle()
        return challenge

    def test_syn_answered_with_cookie_not_forwarded(self, sim, dep):
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        inside = []
        s11.default_handler = inside.append
        challenge = self._verify_source(sim, dep, e1, s11)
        assert challenge.l4.seq == syn_cookie(e1.ip, 7000)
        assert inside == []  # neither SYN nor bare cookie-ACK reach inside

    def test_verified_source_passes(self, sim, dep):
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        inside = []
        s11.default_handler = inside.append
        self._verify_source(sim, dep, e1, s11)
        # Re-opened connection from the verified source flows through.
        e1.send(Packet.tcp(e1.ip, s11.ip, 7000, 80, flags=TCP_SYN))
        sim.run_until_idle()
        assert len(inside) == 1

    def test_wrong_cookie_dropped(self, sim, dep):
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        inside = []
        s11.default_handler = inside.append
        e1.send(Packet.tcp(e1.ip, s11.ip, 7000, 80, flags=TCP_ACK, ack=12345))
        sim.run_until_idle()
        assert inside == []
        app = max(dep.apps.values(), key=lambda a: a.dropped)
        assert app.dropped == 1

    def test_verification_survives_failover(self, sim, dep):
        """Table 1: without FT the defense drops valid clients' packets."""
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        inside = []
        s11.default_handler = inside.append
        self._verify_source(sim, dep, e1, s11)
        owner = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
        dep.bed.topology.fail_node(owner.switch)
        sim.run(until=sim.now + 400_000)
        e1.send(Packet.tcp(e1.ip, s11.ip, 7000, 80, flags=TCP_SYN))
        sim.run_until_idle()
        # The verified bit migrated: the SYN passes instead of being
        # re-challenged.
        assert len(inside) == 1


# ---------------------------------------------------------------------------
# Super-spreader detection
# ---------------------------------------------------------------------------


class TestSuperSpreader:
    def make(self, sim, threshold=8):
        return deploy(
            sim,
            lambda: SuperSpreaderApp(threshold=threshold),
            config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY),
        )

    def test_spread_counts_distinct_destinations(self, sim):
        dep = self.make(sim)
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        # 20 packets to only 3 distinct destinations.
        for i in range(20):
            dst = s11.ip + (i % 3)
            sim.schedule(i * 50.0, e1.send,
                         Packet.udp(e1.ip, dst, 6000, 7777))
        sim.run_until_idle()
        app = max(dep.apps.values(), key=lambda a: a.packets_processed)
        assert app.estimate(e1.ip) == 3

    def test_scanner_flagged(self, sim):
        dep = self.make(sim, threshold=8)
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        for i in range(16):
            sim.schedule(i * 50.0, e1.send,
                         Packet.udp(e1.ip, s11.ip + i, 6000, 7777))
        sim.run_until_idle()
        app = max(dep.apps.values(), key=lambda a: a.packets_processed)
        assert app.estimate(e1.ip) >= 8
        assert app.flagged > 0

    def test_snapshots_cover_all_structures(self, sim):
        dep = self.make(sim)
        app = dep.apps["agg1"]
        structures = app.snapshot_structures()
        assert len(structures) == app.hash_rows + 1
        sizes = {arr.size for arr in structures.values()}
        assert sizes == {512, 128}


# ---------------------------------------------------------------------------
# In-network sequencer
# ---------------------------------------------------------------------------


class TestSequencer:
    @pytest.fixture
    def dep(self, sim):
        dep = deploy(sim, SequencerApp)
        install_sequencer_routes(dep.bed)
        return dep

    def test_stamps_are_monotonic(self, sim, dep):
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        stamps = []
        s11.default_handler = lambda pkt: stamps.append(parse_stamp(pkt)[1])
        for i in range(10):
            sim.schedule(i * 200.0, e1.send,
                         make_sequenced_request(e1.ip, group=1, dst_ip=s11.ip))
        sim.run_until_idle()
        assert stamps == list(range(1, 11))

    def test_groups_are_independent(self, sim, dep):
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        stamps = []
        s11.default_handler = lambda pkt: stamps.append(parse_stamp(pkt))
        for group in (1, 2):
            e1.send(make_sequenced_request(e1.ip, group=group, dst_ip=s11.ip))
            sim.run_until_idle()
        assert sorted(stamps) == [(1, 1), (2, 1)]

    def test_sequence_never_regresses_across_failover(self, sim, dep):
        """Table 1's "incorrect sequencing" fixed: the counter migrates."""
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        stamps = []
        s11.default_handler = lambda pkt: stamps.append(parse_stamp(pkt)[1])
        for i in range(5):
            sim.schedule(i * 200.0, e1.send,
                         make_sequenced_request(e1.ip, group=1, dst_ip=s11.ip))
        sim.run_until_idle()
        owner = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
        dep.bed.topology.fail_node(owner.switch)
        sim.run(until=sim.now + 400_000)
        for i in range(5):
            sim.schedule(i * 200.0, e1.send,
                         make_sequenced_request(e1.ip, group=1, dst_ip=s11.ip))
        sim.run_until_idle()
        assert stamps == list(range(1, 11))  # no repeats, no regression

"""Tests for the fast-path replay lint (repro.verify pass 4, RP14x)."""

import os

from repro.verify import Report, Severity, SuppressionIndex
from repro.verify.fastpath_pass import verify_fastpath
from repro.verify.rules import RULES


def lint(tmp_path, source, name="fixture.py", in_fastpath=False):
    directory = tmp_path / ("fastpath" if in_fastpath else "plain")
    directory.mkdir(exist_ok=True)
    path = directory / name
    path.write_text(source)
    supp = SuppressionIndex()
    report = verify_fastpath([str(path)], suppressions=supp)
    report.finalize_suppressions(supp)
    return report


def rules_of(report):
    return sorted(d.rule for d in report.diagnostics)


def test_rules_are_registered():
    for rule_id in ("RP140", "RP141", "RP142"):
        assert RULES[rule_id].owner == "fastpath"
        assert RULES[rule_id].severity is Severity.ERROR


# -- RP140: replay side-effect surface ----------------------------------------


def test_replay_with_undeclared_call_flagged(tmp_path):
    report = lint(tmp_path, (
        "def replay_evil(switch, pkt, ip):\n"
        "    switch.table.add(ip.dst, 32, [])\n"   # 'add' not allowlisted
    ), in_fastpath=True)
    assert rules_of(report) == ["RP140"]


def test_replay_with_undeclared_assignment_flagged(tmp_path):
    report = lint(tmp_path, (
        "def replay_evil(switch, pkt, ip):\n"
        "    switch.owner = 7\n"
    ), in_fastpath=True)
    assert rules_of(report) == ["RP140"]


def test_replay_within_surface_is_clean(tmp_path):
    report = lint(tmp_path, (
        "def replay_ok(switch, pkt, ip):\n"
        "    switch._c_pkts_processed.inc()\n"
        "    switch._egress(pkt)\n"
    ), in_fastpath=True)
    assert rules_of(report) == []


def test_replay_outside_fastpath_dir_not_checked(tmp_path):
    """Only the fast-path package's replay_* functions carry the
    contract; an unrelated helper elsewhere is not subject to it."""
    report = lint(tmp_path, (
        "def replay_something(x):\n"
        "    x.whatever.mutate()\n"
    ), in_fastpath=False)
    assert rules_of(report) == []


# -- RP141: payload-sensitive partition keys ----------------------------------


def test_payload_reading_partition_key_without_declaration(tmp_path):
    report = lint(tmp_path, (
        "class App:\n"
        "    def partition_key(self, pkt):\n"
        "        return pkt.payload[0]\n"
    ))
    assert rules_of(report) == ["RP141"]


def test_payload_reading_partition_key_with_declaration(tmp_path):
    report = lint(tmp_path, (
        "class App:\n"
        "    partition_inputs = \"packet\"\n"
        "    def partition_key(self, pkt):\n"
        "        return pkt.payload[0]\n"
    ))
    assert rules_of(report) == []


def test_flow_only_partition_key_is_clean(tmp_path):
    report = lint(tmp_path, (
        "class App:\n"
        "    def partition_key(self, pkt):\n"
        "        return (pkt.ip.src, pkt.ip.dst)\n"
    ))
    assert rules_of(report) == []


# -- RP142: entry kinds need dependency sets ----------------------------------


def test_unknown_entry_kind_literal_flagged(tmp_path):
    report = lint(tmp_path, (
        "from repro.fastpath.flowcache import Entry\n"
        "e = Entry(\"warp\", None, 0)\n"
    ), in_fastpath=True)
    assert rules_of(report) == ["RP142"]


def test_unknown_entry_kind_via_variable_flagged(tmp_path):
    report = lint(tmp_path, (
        "from repro.fastpath.flowcache import Entry\n"
        "kind = \"transit\"\n"
        "kind = \"warp\"\n"
        "e = Entry(kind, None, 0)\n"
    ), in_fastpath=True)
    assert rules_of(report) == ["RP142"]


def test_declared_entry_kinds_are_clean(tmp_path):
    report = lint(tmp_path, (
        "from repro.fastpath.flowcache import Entry\n"
        "a = Entry(\"transit\", None, 0)\n"
        "b = Entry(\"app\", \"key\", 1)\n"
    ), in_fastpath=True)
    assert rules_of(report) == []


# -- suppression + real tree --------------------------------------------------


def test_suppression_with_justification(tmp_path):
    report = lint(tmp_path, (
        "def replay_odd(switch):\n"
        "    switch.mutate()  "
        "# repro: noqa[RP140] -- test fixture\n"
    ), in_fastpath=True)
    diags = [d for d in report.diagnostics if d.rule == "RP140"]
    assert len(diags) == 1 and diags[0].suppressed


def test_shipped_tree_is_clean():
    src = os.path.normpath(os.path.join(
        os.path.dirname(__file__), "..", "src", "repro"))
    report = verify_fastpath([src])
    assert [d for d in report.diagnostics if not d.suppressed] == []
    assert "replay function(s)" in report.analyzed["fastpath"]

"""Behavioural tests for the six in-switch applications."""

import pytest

from repro import Simulator, deploy, RedPlaneConfig
from repro.core.engine import RedPlaneMode
from repro.apps import (
    EpcSgwApp,
    FirewallApp,
    HeavyHitterApp,
    KvStoreApp,
    LoadBalancerApp,
    NatApp,
    NAT_PUBLIC_IP,
    VIP,
    install_kv_routes,
    install_nat_routes,
    install_vip_routes,
    make_data_packet,
    make_dip_allocator,
    make_request,
    make_signaling_packet,
    parse_reply,
    OP_READ,
    OP_UPDATE,
)
from repro.apps.heavy_hitter import vlan_store_key
from repro.core.api import attach_snapshot_replication
from repro.net.packet import Packet, TCP_SYN, TCP_ACK, ip_ntoa


# ---------------------------------------------------------------------------
# NAT
# ---------------------------------------------------------------------------


class TestNat:
    def test_outbound_snat_and_inbound_dnat(self, sim, nat_deployment):
        dep = nat_deployment
        s11, e1 = dep.bed.servers[0], dep.bed.externals[0]
        seen_ext, seen_int = [], []
        e1.default_handler = seen_ext.append
        s11.default_handler = seen_int.append

        s11.send(Packet.tcp(s11.ip, e1.ip, 7000, 80, flags=TCP_SYN))
        sim.run_until_idle()
        assert seen_ext[0].ip.src == NAT_PUBLIC_IP  # source translated

        e1.send(Packet.tcp(e1.ip, NAT_PUBLIC_IP, 80, 7000, flags=TCP_SYN | TCP_ACK))
        sim.run_until_idle()
        assert seen_int[0].ip.dst == s11.ip  # destination restored

    def test_unsolicited_inbound_dropped(self, sim, nat_deployment):
        dep = nat_deployment
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        seen_int = []
        s11.default_handler = seen_int.append
        e1.send(Packet.tcp(e1.ip, NAT_PUBLIC_IP, 80, 9999, flags=TCP_ACK))
        sim.run_until_idle()
        assert seen_int == []

    def test_translation_survives_switch_failure(self, sim, nat_deployment):
        """Table 1 / Fig 1: with RedPlane the connection is NOT broken."""
        dep = nat_deployment
        s11, e1 = dep.bed.servers[0], dep.bed.servers[0],
        s11, e1 = dep.bed.servers[0], dep.bed.externals[0]
        seen_int = []
        s11.default_handler = seen_int.append
        s11.send(Packet.tcp(s11.ip, e1.ip, 7000, 80, flags=TCP_SYN))
        sim.run_until_idle()

        owner = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
        dep.bed.topology.fail_node(owner.switch)
        sim.run(until=sim.now + 400_000)

        e1.send(Packet.tcp(e1.ip, NAT_PUBLIC_IP, 80, 7000, flags=TCP_ACK))
        sim.run_until_idle()
        assert len(seen_int) == 1
        assert seen_int[0].ip.dst == s11.ip

    def test_translation_lost_without_redplane(self, sim):
        """The failure impact the paper motivates with Fig 1."""
        from repro.baselines import PlainAppBlock
        from repro.net.topology import build_testbed
        from repro.switch.asic import SwitchASIC

        bed = build_testbed(
            sim, agg_factory=lambda s, n, ip: SwitchASIC(s, n, ip)
        )
        install_nat_routes(bed)
        blocks = {}
        for agg in bed.aggs:
            block = PlainAppBlock(agg, NatApp())
            agg.add_block(block)
            blocks[agg.name] = block
        s11, e1 = bed.servers[0], bed.externals[0]
        seen_int = []
        s11.default_handler = seen_int.append
        s11.send(Packet.tcp(s11.ip, e1.ip, 7000, 80, flags=TCP_SYN))
        sim.run_until_idle()

        owner = max(bed.aggs, key=lambda a: blocks[a.name].packets)
        bed.topology.fail_node(owner)
        sim.run(until=sim.now + 400_000)
        e1.send(Packet.tcp(e1.ip, NAT_PUBLIC_IP, 80, 7000, flags=TCP_ACK))
        sim.run_until_idle()
        assert seen_int == []  # connection broken: state was switch-local


# ---------------------------------------------------------------------------
# Firewall
# ---------------------------------------------------------------------------


class TestFirewall:
    @pytest.fixture
    def fw(self, sim):
        return deploy(sim, FirewallApp)

    def test_internal_initiated_allowed_both_ways(self, sim, fw):
        s11, e1 = fw.bed.servers[0], fw.bed.externals[0]
        seen_ext, seen_int = [], []
        e1.default_handler = seen_ext.append
        s11.default_handler = seen_int.append
        s11.send(Packet.tcp(s11.ip, e1.ip, 7000, 80, flags=TCP_SYN))
        sim.run_until_idle()
        e1.send(Packet.tcp(e1.ip, s11.ip, 80, 7000, flags=TCP_SYN | TCP_ACK))
        sim.run_until_idle()
        assert len(seen_ext) == 1 and len(seen_int) == 1

    def test_unsolicited_inbound_blocked(self, sim, fw):
        s11, e1 = fw.bed.servers[0], fw.bed.externals[0]
        seen_int = []
        s11.default_handler = seen_int.append
        e1.send(Packet.tcp(e1.ip, s11.ip, 80, 7000, flags=TCP_SYN))
        sim.run_until_idle()
        assert seen_int == []

    def test_pinhole_survives_failover(self, sim, fw):
        s11, e1 = fw.bed.servers[0], fw.bed.externals[0]
        seen_int = []
        s11.default_handler = seen_int.append
        s11.send(Packet.tcp(s11.ip, e1.ip, 7000, 80, flags=TCP_SYN))
        sim.run_until_idle()
        owner = max(fw.engines.values(), key=lambda e: e.stats["app_packets"])
        fw.bed.topology.fail_node(owner.switch)
        sim.run(until=sim.now + 400_000)
        e1.send(Packet.tcp(e1.ip, s11.ip, 80, 7000, flags=TCP_ACK))
        sim.run_until_idle()
        assert len(seen_int) == 1


# ---------------------------------------------------------------------------
# Load balancer
# ---------------------------------------------------------------------------


class TestLoadBalancer:
    def test_vip_traffic_mapped_to_dip(self, sim):
        # DIPs are the four internal servers; the pool lives at the store
        # (global state managed by store servers, §3).
        dep = deploy(sim, LoadBalancerApp)
        dips = [s.ip for s in dep.bed.servers]
        for store in dep.stores:
            store.allocator = make_dip_allocator(dips)
        install_vip_routes(dep.bed)
        e1 = dep.bed.externals[0]
        hits = {s.name: [] for s in dep.bed.servers}
        for server in dep.bed.servers:
            server.default_handler = (
                lambda pkt, name=server.name: hits[name].append(pkt)
            )
        for i in range(12):
            pkt = Packet.tcp(e1.ip, VIP, 10000 + i, 80, flags=TCP_SYN)
            sim.schedule(i * 400.0, e1.send, pkt)
        sim.run_until_idle()
        total = sum(len(v) for v in hits.values())
        assert total == 12
        # More than one DIP used across connections.
        assert sum(1 for v in hits.values() if v) >= 2

    def test_connection_affinity_per_flow(self, sim):
        dep = deploy(sim, LoadBalancerApp)
        dips = [s.ip for s in dep.bed.servers]
        for store in dep.stores:
            store.allocator = make_dip_allocator(dips)
        install_vip_routes(dep.bed)
        e1 = dep.bed.externals[0]
        got = []
        for server in dep.bed.servers:
            server.default_handler = lambda pkt, ip=server.ip: got.append(ip)
        for i in range(6):
            pkt = Packet.tcp(e1.ip, VIP, 12345, 80,
                             flags=TCP_SYN if i == 0 else TCP_ACK)
            sim.schedule(i * 300.0, e1.send, pkt)
        sim.run_until_idle()
        assert len(got) == 6
        assert len(set(got)) == 1  # every packet of the flow hit one DIP


# ---------------------------------------------------------------------------
# EPC-SGW
# ---------------------------------------------------------------------------


class TestEpcSgw:
    @pytest.fixture
    def epc(self, sim):
        return deploy(sim, EpcSgwApp)

    def test_signaling_installs_session_then_data_flows(self, sim, epc):
        e1, s11 = epc.bed.externals[0], epc.bed.servers[0]
        seen = []
        s11.default_handler = seen.append
        e1.send(make_signaling_packet(e1.ip, s11.ip, user_id=5, new_teid=777))
        sim.run_until_idle()
        e1.send(make_data_packet(e1.ip, s11.ip, user_id=5, teid=777))
        sim.run_until_idle()
        assert len(seen) == 2

    def test_data_without_session_dropped(self, sim, epc):
        e1, s11 = epc.bed.externals[0], epc.bed.servers[0]
        seen = []
        s11.default_handler = seen.append
        e1.send(make_data_packet(e1.ip, s11.ip, user_id=9, teid=1))
        sim.run_until_idle()
        assert seen == []

    def test_session_survives_failover(self, sim, epc):
        """Table 1: without FT, "active session broken"; with RedPlane the
        TEID state migrates and data keeps flowing."""
        e1, s11 = epc.bed.externals[0], epc.bed.servers[0]
        seen = []
        s11.default_handler = seen.append
        e1.send(make_signaling_packet(e1.ip, s11.ip, user_id=5, new_teid=777))
        sim.run_until_idle()
        owner = max(epc.engines.values(), key=lambda e: e.stats["app_packets"])
        epc.bed.topology.fail_node(owner.switch)
        sim.run(until=sim.now + 400_000)
        e1.send(make_data_packet(e1.ip, s11.ip, user_id=5, teid=777))
        sim.run_until_idle()
        from repro.apps import is_signaling
        data = [p for p in seen if not is_signaling(p)]
        assert len(data) == 1

    def test_stale_teid_reencapsulated(self, sim, epc):
        e1, s11 = epc.bed.externals[0], epc.bed.servers[0]
        seen = []
        s11.default_handler = seen.append
        e1.send(make_signaling_packet(e1.ip, s11.ip, user_id=5, new_teid=700))
        sim.run_until_idle()
        e1.send(make_signaling_packet(e1.ip, s11.ip, user_id=5, new_teid=701))
        sim.run_until_idle()
        e1.send(make_data_packet(e1.ip, s11.ip, user_id=5, teid=700))
        sim.run_until_idle()
        import struct

        from repro.apps import is_signaling
        data = [p for p in seen if not is_signaling(p)]
        assert len(data) == 1
        _kind, _uid, teid = struct.unpack_from("!BII", data[0].payload, 0)
        assert teid == 701


# ---------------------------------------------------------------------------
# Heavy-hitter detection
# ---------------------------------------------------------------------------


class TestHeavyHitter:
    def test_heavy_flow_flagged(self, sim):
        dep = deploy(
            sim,
            lambda: HeavyHitterApp(vlans=[10], threshold=20),
            config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY),
        )
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        for i in range(30):
            pkt = Packet.udp(e1.ip, s11.ip, 5555, 7777, vlan=10)
            sim.schedule(i * 10.0, e1.send, pkt)
        sim.run_until_idle()
        app = max(dep.apps.values(), key=lambda a: a.packets_sketched)
        assert app.heavy_hits > 0
        key = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()
        assert app.estimate(10, key) == 30

    def test_per_vlan_isolation(self, sim):
        dep = deploy(
            sim,
            lambda: HeavyHitterApp(vlans=[10, 20], threshold=1000),
            config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY),
        )
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        for i in range(10):
            sim.schedule(i * 10.0, e1.send,
                         Packet.udp(e1.ip, s11.ip, 5555, 7777, vlan=10))
        sim.run_until_idle()
        app = max(dep.apps.values(), key=lambda a: a.packets_sketched)
        key = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()
        assert app.estimate(10, key) == 10
        assert app.estimate(20, key) == 0

    def test_snapshots_reach_store_and_restore(self, sim):
        dep = deploy(
            sim,
            lambda: HeavyHitterApp(vlans=[10], threshold=1000, width=16),
            config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY),
        )
        reps = {}
        for agg in dep.bed.aggs:
            app = dep.apps[agg.name]
            reps[agg.name] = attach_snapshot_replication(
                dep.engines[agg.name], app.snapshot_structures(), period_us=1_000.0
            )
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        for i in range(25):
            sim.schedule(i * 10.0, e1.send,
                         Packet.udp(e1.ip, s11.ip, 5555, 7777, vlan=10))
        sim.run(until=5_000)
        for rep in reps.values():
            rep.stop()
        sim.run_until_idle()
        # The store holds a snapshot of every sketch row whose total equals
        # the packet count (count-min: each row sums all inserts).
        for row in range(3):
            rec = dep.stores[0].records[vlan_store_key(10, row)]
            assert sum(rec.snapshot_vals.values()) == 25


# ---------------------------------------------------------------------------
# KV store
# ---------------------------------------------------------------------------


class TestKvStore:
    @pytest.fixture
    def kv(self, sim):
        dep = deploy(sim, KvStoreApp)
        install_kv_routes(dep.bed)
        return dep

    def test_update_then_read(self, sim, kv):
        e1 = kv.bed.externals[0]
        replies = []
        e1.default_handler = lambda pkt: replies.append(parse_reply(pkt))
        e1.send(make_request(e1.ip, OP_UPDATE, key=3, value=99))
        sim.run_until_idle()
        e1.send(make_request(e1.ip, OP_READ, key=3))
        sim.run_until_idle()
        assert replies[0] == (OP_UPDATE, 3, 99)
        assert replies[1] == (OP_READ, 3, 99)

    def test_read_missing_key_returns_zero(self, sim, kv):
        e1 = kv.bed.externals[0]
        replies = []
        e1.default_handler = lambda pkt: replies.append(parse_reply(pkt))
        e1.send(make_request(e1.ip, OP_READ, key=42))
        sim.run_until_idle()
        assert replies[0] == (OP_READ, 42, 0)

    def test_values_survive_failover(self, sim, kv):
        """Table 1: "losing key-value pairs" is exactly what RedPlane fixes."""
        e1 = kv.bed.externals[0]
        replies = []
        e1.default_handler = lambda pkt: replies.append(parse_reply(pkt))
        e1.send(make_request(e1.ip, OP_UPDATE, key=7, value=1234))
        sim.run_until_idle()
        owner = max(kv.engines.values(), key=lambda e: e.stats["app_packets"])
        kv.bed.topology.fail_node(owner.switch)
        sim.run(until=sim.now + 400_000)
        e1.send(make_request(e1.ip, OP_READ, key=7))
        sim.run_until_idle()
        assert replies[-1] == (OP_READ, 7, 1234)

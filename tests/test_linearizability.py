"""Tests for the per-flow linearizability checker (Definitions 2-4)."""

import random

import pytest

from repro.model.linearizability import (
    FlowHistory,
    check_counter_history,
    check_linearizable,
    counter_apply,
    counter_decide,
    kv_apply,
)


def make_history(events):
    """events: list of ('in', tid, t) / ('out', tid, value, t)."""
    history = FlowHistory()
    for event in events:
        if event[0] == "in":
            _, tid, t = event
            history.add_input(tid, None, t)
        else:
            _, tid, value, t = event
            history.add_output(tid, value, t)
    return history


def test_sequential_counter_is_linearizable():
    history = make_history([
        ("in", 1, 1.0), ("out", 1, 1, 2.0),
        ("in", 2, 3.0), ("out", 2, 2, 4.0),
        ("in", 3, 5.0), ("out", 3, 3, 6.0),
    ])
    assert check_counter_history(history)


def test_reordered_outputs_of_concurrent_inputs_ok():
    # Inputs overlap in time; outputs 2 then 1 is a legal serialization.
    history = make_history([
        ("in", 1, 1.0), ("in", 2, 1.5),
        ("out", 2, 1, 3.0), ("out", 1, 2, 4.0),
    ])
    assert check_counter_history(history)


def test_lost_output_allowed():
    """Anomaly 1 (§4.2): input takes effect, output never seen."""
    history = make_history([
        ("in", 1, 1.0),                    # no output: lost after the switch
        ("in", 2, 2.0), ("out", 2, 2, 3.0),  # sees the effect of input 1
    ])
    assert check_counter_history(history)


def test_lost_input_allowed():
    """Anomaly 2 (§4.2): packet lost before the switch, no state effect."""
    history = make_history([
        ("in", 1, 1.0),                    # never processed
        ("in", 2, 2.0), ("out", 2, 1, 3.0),  # does NOT see input 1's effect
    ])
    assert check_counter_history(history)


def test_duplicate_count_value_not_linearizable():
    """Two outputs with the same counter value cannot happen."""
    history = make_history([
        ("in", 1, 1.0), ("out", 1, 1, 2.0),
        ("in", 2, 3.0), ("out", 2, 1, 4.0),
    ])
    assert not check_counter_history(history)


def test_rolled_back_state_not_linearizable():
    """The Fig 6a anomaly: output shows an older state after a newer one."""
    history = make_history([
        ("in", 1, 1.0), ("out", 1, 3, 2.0),   # claims count 3 with 1 input?
    ])
    assert not check_counter_history(history)


def test_precedence_respected():
    """Definition 3 condition (2): O_x before I_y forces I_x before I_y."""
    # Output of 1 (value 2!) precedes input 2; value 2 requires another
    # input before 1, but the only other input (2) arrived after O_1.
    history = make_history([
        ("in", 1, 1.0), ("out", 1, 2, 2.0),
        ("in", 2, 3.0), ("out", 2, 1, 4.0),
    ])
    assert not check_counter_history(history)


def test_stale_read_not_linearizable_kv():
    """A read returning a value older than a completed write is invalid."""
    history = FlowHistory()
    history.add_input(1, ("w", 10), 1.0)
    history.add_output(1, 10, 2.0)
    history.add_input(2, ("r", None), 3.0)   # after the write completed
    history.add_output(2, None, 4.0)          # but sees the initial state
    assert not check_linearizable(history, kv_apply, None)


def test_concurrent_read_may_see_either_kv():
    history = FlowHistory()
    history.add_input(1, ("w", 10), 1.0)
    history.add_input(2, ("r", None), 1.5)    # concurrent with the write
    history.add_output(1, 10, 3.0)
    history.add_output(2, None, 3.5)           # read serialized before write
    assert check_linearizable(history, kv_apply, None)


def test_empty_history_is_linearizable():
    assert check_counter_history(FlowHistory())


def test_node_budget_guard():
    history = FlowHistory()
    for i in range(12):
        history.add_input(i, None, float(i))
    # All inputs unmatched: search explores but must respect the budget.
    with pytest.raises(RuntimeError):
        check_linearizable(history, counter_apply, 0, max_nodes=10)


# -- the exact counter decision procedure --------------------------------------


def test_counter_decide_declines_non_counter_histories():
    history = FlowHistory()
    history.add_input(1, None, 1.0)
    history.add_output(1, "x", 2.0)  # non-integer output: not a counter
    assert counter_decide(history) is None
    orphan = FlowHistory()
    orphan.add_output(7, 1, 1.0)     # output without a matching input
    assert counter_decide(orphan) is None


def test_counter_decide_halls_condition():
    # Output value 3 needs two fillers placed before it, but the only
    # filler input arrived after that very output (earliest position 4):
    # the prefix cannot be filled, even though no pinned pair conflicts.
    history = make_history([
        ("in", 1, 1.0), ("out", 1, 1, 2.0),
        ("in", 2, 3.0), ("out", 2, 3, 4.0),
        ("in", 3, 5.0),                      # filler, after O_2
    ])
    assert counter_decide(history) is False
    # The same shape with the filler arriving before O_2 is fine... almost:
    # value 3 needs TWO earlier inputs; with only one filler it stays
    # infeasible. Add a second early filler and it becomes linearizable.
    feasible = make_history([
        ("in", 1, 1.0), ("in", 3, 1.5), ("in", 4, 1.6),
        ("out", 1, 1, 2.0),
        ("in", 2, 3.0), ("out", 2, 3, 4.0),
    ])
    assert counter_decide(feasible) is True


def test_counter_decide_agrees_with_backtracking_search():
    """Cross-validate the polynomial decision against the Definition-3
    search on random small histories (seeded: the corpus is fixed)."""
    rng = random.Random(20260808)
    checked = disagreements = 0
    for _ in range(400):
        n = rng.randint(1, 6)
        history = FlowHistory()
        t = 0.0
        for tid in range(1, n + 1):
            t += 1.0
            history.add_input(tid, None, t)
            if rng.random() < 0.6:
                t += rng.choice((0.5, 2.5))
                history.add_output(tid, rng.randint(1, n), t)
        decided = counter_decide(history)
        assert decided is not None
        checked += 1
        brute = check_linearizable(history, counter_apply, 0)
        if decided != brute:
            disagreements += 1
    assert checked == 400
    assert disagreements == 0


def test_counter_decide_scales_past_the_search_budget():
    # Hundreds of lossy inputs: exponential for the backtracker, trivial
    # for the exact procedure — this is what keeps long fuzz histories
    # decidable instead of LinSearchExceeded.
    history = FlowHistory()
    t = 0.0
    for tid in range(1, 401):
        t += 1.0
        history.add_input(tid, None, t)
        if tid % 25 == 0:
            t += 0.5
            history.add_output(tid, tid // 25, t)
    assert counter_decide(history) is True
    assert check_counter_history(history)

"""The telemetry spine: metric registry, trace ring, shims, timers."""

from __future__ import annotations

import pytest

from repro import Simulator, deploy
from repro.analysis import stats
from repro.apps.counter import SyncCounterApp
from repro.net.packet import Packet
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    ScopedTimer,
    TraceRecord,
    Tracer,
    read_jsonl,
)
from repro.telemetry.compat import LegacyCounters, StatGroupView
from repro.telemetry import trace as tt


# -- registry ----------------------------------------------------------------

def test_registry_get_or_create_identity():
    reg = MetricRegistry()
    a = reg.counter("pkts", switch="agg1")
    b = reg.counter("pkts", switch="agg1")
    other = reg.counter("pkts", switch="agg2")
    assert a is b
    assert a is not other
    a.inc(3)
    assert reg.value("pkts", switch="agg1") == 3.0
    assert reg.value("pkts", switch="agg2") == 0.0


def test_registry_kind_mismatch_rejected():
    reg = MetricRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_registry_total_filters_scalar_and_set():
    reg = MetricRegistry()
    reg.counter("bytes", switch="a").inc(10)
    reg.counter("bytes", switch="b").inc(20)
    reg.counter("bytes", switch="c").inc(40)
    assert reg.total("bytes") == 70.0
    assert reg.total("bytes", switch="a") == 10.0
    assert reg.total("bytes", switch={"a", "c"}) == 50.0
    assert reg.total("bytes", switch="missing") == 0.0


def test_counter_monotonic_and_gauge_ratchet():
    reg = MetricRegistry()
    c = reg.counter("c")
    with pytest.raises(ValueError):
        c.inc(-1)
    g = reg.gauge("g")
    g.add(5)
    g.add(-2)
    assert g.value == 3.0
    g.set_max(10)
    g.set_max(4)
    assert g.value == 10.0


def test_snapshot_sections_and_describe():
    reg = MetricRegistry()
    reg.counter("a.total", switch="s1").inc()
    reg.gauge("b.level").set(2)
    reg.histogram("c.dist").observe(1.0)
    snap = reg.snapshot()
    assert snap["counters"] == {"a.total{switch=s1}": 1.0}
    assert snap["gauges"] == {"b.level": 2.0}
    assert snap["histograms"]["c.dist"]["count"] == 1.0
    rendered = reg.render()
    assert "a.total{switch=s1}" in rendered


# -- histogram ----------------------------------------------------------------

def test_histogram_percentiles_match_analysis_stats():
    reg = MetricRegistry()
    hist = reg.histogram("rtt")
    samples = [float((7 * i) % 101) for i in range(100)]
    for s in samples:
        hist.observe(s)
    for p in (0, 25, 50, 90, 99, 100):
        assert hist.percentile(p) == stats.percentile(samples, p)
    summary = hist.summary()
    assert summary["p50"] == stats.percentile(samples, 50)
    assert summary["count"] == 100.0
    assert summary["min"] == min(samples)
    assert summary["max"] == max(samples)


def test_histogram_decimation_bounds_memory_keeps_exact_aggregates():
    reg = MetricRegistry()
    hist = reg.histogram("big", max_samples=64)
    n = 10_000
    for i in range(n):
        hist.observe(float(i))
    assert len(hist.samples) < 64
    assert hist.count == n
    assert hist.sum == sum(range(n))
    s = hist.summary()
    assert s["min"] == 0.0 and s["max"] == float(n - 1)
    # Decimated percentiles stay close to the true distribution.
    assert abs(s["p50"] - stats.percentile(list(map(float, range(n))), 50)) < n * 0.05


def test_histogram_decimation_is_deterministic():
    def fill():
        h = Histogram("h", max_samples=32)
        for i in range(1000):
            h.observe(float((13 * i) % 997))
        return h.samples

    assert fill() == fill()


# -- tracer -------------------------------------------------------------------

def test_tracer_ring_truncation():
    clock = [0.0]
    tracer = Tracer(clock=lambda: clock[0], maxlen=8)
    for i in range(20):
        clock[0] = float(i)
        tracer.emit("tick", i=i)
    assert len(tracer) == 8
    assert tracer.records_emitted == 20
    assert tracer.records_dropped == 12
    assert [r.fields["i"] for r in tracer.tail()] == list(range(12, 20))
    assert [r.fields["i"] for r in tracer.tail(3)] == [17, 18, 19]
    assert tracer.tail(0) == []  # not the whole ring ([-0:] pitfall)


def test_tracer_jsonl_round_trip(tmp_path):
    clock = [0.0]
    tracer = Tracer(clock=lambda: clock[0])
    clock[0] = 1.5
    tracer.emit(tt.PACKET_DROP, link="agg1<->core", reason="loss", size=64)
    clock[0] = 2.0
    tracer.emit(tt.LEASE_GRANT, switch="agg1", flow="f", migrated=False)
    path = tmp_path / "trace.jsonl"
    assert tracer.flush_to(str(path)) == 2
    back = read_jsonl(str(path))
    assert back == tracer.tail()
    assert back[0].ts == 1.5
    assert back[0].fields["reason"] == "loss"
    assert back[1].type == tt.LEASE_GRANT


def test_tracer_sink_streams_records(tmp_path):
    clock = [0.0]
    tracer = Tracer(clock=lambda: clock[0], maxlen=4)
    path = tmp_path / "stream.jsonl"
    tracer.open_sink(str(path))
    for i in range(10):  # more than the ring keeps
        tracer.emit("tick", i=i)
    tracer.close_sink()
    back = read_jsonl(str(path))
    assert len(back) == 10  # the sink sees everything, the ring only 4
    assert len(tracer) == 4


def _traced_run(seed: int):
    """One small end-to-end run; returns its full trace stream."""
    sim = Simulator(seed=seed)
    dep = deploy(sim, SyncCounterApp)
    sender = dep.bed.externals[0]
    receiver = dep.bed.servers[0]
    for i in range(10):
        sim.schedule(
            i * 200.0,
            lambda: sender.send(Packet.udp(sender.ip, receiver.ip, 5555, 7777)),
        )
    sim.run_until_idle()
    return [(r.ts, r.type, r.fields) for r in sim.tracer.tail()]


def test_trace_deterministic_for_same_seed():
    first = _traced_run(seed=11)
    second = _traced_run(seed=11)
    assert first == second
    assert first  # the run actually traced something
    types = {t for _ts, t, _f in first}
    assert tt.PACKET_SEND in types
    assert tt.LEASE_REQUEST in types
    assert tt.LEASE_GRANT in types


def test_end_to_end_metrics_population():
    sim = Simulator(seed=11)
    dep = deploy(sim, SyncCounterApp)
    sender = dep.bed.externals[0]
    receiver = dep.bed.servers[0]
    for i in range(10):
        sim.schedule(
            i * 200.0,
            lambda: sender.send(Packet.udp(sender.ip, receiver.ip, 5555, 7777)),
        )
    sim.run_until_idle()
    reg = sim.metrics
    # Every layer published: links, switches, engines, stores.
    assert reg.total("link.tx_packets") > 0
    assert reg.total("switch.pkts_processed") > 0
    # >= sends: a buffered packet bouncing through the network re-enters
    # the engine and counts again.
    assert reg.total("redplane.app_packets") >= 10.0
    assert reg.total("store.requests_processed") > 0
    snap = reg.snapshot()
    assert snap["counters"] and snap["gauges"] and snap["histograms"]


# -- legacy shims -------------------------------------------------------------

def test_legacy_counters_reads_reflect_registry():
    sim = Simulator(seed=0)
    sim.count("drops.loss", 2)
    assert sim.counters["drops.loss"] == 2.0
    assert "drops.loss" in sim.counters
    assert dict(sim.counters) == {"drops.loss": 2.0}
    with pytest.raises(KeyError):
        sim.counters["never.seen"]


def test_legacy_counters_write_warns_but_works():
    sim = Simulator(seed=0)
    with pytest.warns(DeprecationWarning):
        sim.counters["drops.loss"] = 5
    assert sim.metrics.value("drops.loss") == 5.0
    with pytest.warns(DeprecationWarning):
        del sim.counters["drops.loss"]
    assert sim.metrics.get("drops.loss") is None


def test_legacy_counters_hide_labeled_instruments():
    sim = Simulator(seed=0)
    sim.metrics.counter("switch.pkts_processed", switch="agg1").inc()
    assert "switch.pkts_processed" not in sim.counters


def test_stat_group_view_is_read_only_ints():
    reg = MetricRegistry()
    counters = {"app_packets": reg.counter("redplane.app_packets", switch="s")}
    view = StatGroupView(counters)
    counters["app_packets"].inc(2)
    assert view["app_packets"] == 2
    assert isinstance(view["app_packets"], int)
    assert dict(view) == {"app_packets": 2}
    with pytest.raises(TypeError):
        view["app_packets"] = 3  # Mapping: no __setitem__


# -- timers -------------------------------------------------------------------

def test_scoped_timer_measures_and_feeds_histogram():
    hist = Histogram("t")
    with ScopedTimer("scope", histogram=hist) as timer:
        sum(range(1000))
    assert timer.elapsed_s > 0.0
    assert hist.count == 1
    assert timer.rate(100) > 0.0
    before = timer.elapsed_s
    timer.stop()  # idempotent: a second stop does not re-observe
    assert timer.elapsed_s == before
    assert hist.count == 1

"""Packet-lifecycle spans: uid threading, completeness, determinism."""

import filecmp

import pytest

from repro.chaos import run_campaign
from repro.net.links import Link, LinkImpairment, SinkNode
from repro.net.packet import Packet
from repro.net.simulator import Simulator
from repro.telemetry import trace as tt
from repro.telemetry.perfetto import (
    dump_chrome_trace,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.telemetry.spans import SpanBuilder
from repro.telemetry.trace import TraceRecord, read_jsonl
from repro.tools.runner import demo_run


# -- uid threading on the wire -------------------------------------------------


def _one_link(sim):
    src = SinkNode(sim, "src")
    dst = SinkNode(sim, "dst")
    link = Link(sim, src.new_port(), dst.new_port(), latency_us=1.0)
    return src, dst, link


def test_transmit_assigns_uid_and_terminates():
    sim = Simulator(seed=1)
    src, dst, _link = _one_link(sim)
    pkt = Packet.udp(1, 2, 10, 20)
    src.ports[0].send(pkt)
    sim.run_until_idle()
    uid = pkt.meta["uid"]
    assert uid >= 1
    sends = sim.tracer.records_of(tt.PACKET_SEND)
    delivers = sim.tracer.records_of(tt.PACKET_DELIVER)
    assert [r.fields["uid"] for r in sends] == [uid]
    assert [r.fields["uid"] for r in delivers] == [uid]
    assert sends[0].fields["kind"] == "app"


def test_drop_on_down_link_still_carries_uid():
    sim = Simulator(seed=1)
    src, _dst, link = _one_link(sim)
    link.fail()
    pkt = Packet.udp(1, 2, 10, 20)
    src.ports[0].send(pkt)
    sim.run_until_idle()
    report = SpanBuilder.from_tracer(sim.tracer).verify()
    assert report.ok
    (drop,) = sim.tracer.records_of(tt.PACKET_DROP)
    assert drop.fields["uid"] == pkt.meta["uid"]
    assert drop.fields["reason"] == "down"


def test_duplicate_copy_gets_child_span():
    sim = Simulator(seed=1)
    src, dst, link = _one_link(sim)
    link.impair(LinkImpairment(duplicate_rate=1.0))
    src.ports[0].send(Packet.udp(1, 2, 10, 20))
    sim.run_until_idle()
    assert len(dst.received) == 2
    builder = SpanBuilder.from_tracer(sim.tracer)
    assert builder.verify().ok
    (dup,) = sim.tracer.records_of(tt.PACKET_DUP)
    child = builder.spans[dup.fields["uid"]]
    assert child.parent == dup.fields["parent"]
    assert child.uid in builder.spans[child.parent].children
    assert child.status == "delivered"


# -- completeness verification -------------------------------------------------


def test_verify_flags_unterminated_and_orphaned():
    records = [
        TraceRecord(1.0, tt.PACKET_SEND, {"uid": 1, "link": "l", "dir": "d",
                                          "bytes": 64, "kind": "app"}),
        TraceRecord(2.0, tt.PACKET_DELIVER, {"uid": 2, "link": "l",
                                             "dir": "d", "node": "n"}),
    ]
    report = SpanBuilder(records).verify()
    assert not report.ok
    assert report.unterminated == [1]
    assert report.orphaned == [2]


def test_quickstart_spans_complete(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    demo_run(seed=7, packets=10, trace_path=path)
    builder = SpanBuilder.from_jsonl(path)
    report = builder.verify()
    assert report.ok, report.summary()
    assert report.spans > 0
    statuses = {span.status for span in builder.spans.values()}
    assert "in_flight" not in statuses
    # Reinjected piggybacks / pktgen packets exist only as parents.
    assert "internal" in statuses


@pytest.mark.parametrize("campaign", ["flapping_link", "rolling_rack_failure"])
def test_chaos_campaign_spans_terminate(campaign, tmp_path):
    path = str(tmp_path / "trace.jsonl")
    report = run_campaign(campaign, seed=42, trace_path=path)
    assert report["verdict"] == "PASS"
    builder = SpanBuilder.from_jsonl(path)
    completeness = builder.verify()
    assert completeness.ok, completeness.summary()
    assert completeness.spans > 100


@pytest.mark.parametrize("campaign", ["flapping_link", "rolling_rack_failure"])
def test_span_stream_byte_identical_across_same_seed_runs(campaign, tmp_path):
    a = str(tmp_path / "a.jsonl")
    b = str(tmp_path / "b.jsonl")
    run_campaign(campaign, seed=42, trace_path=a)
    run_campaign(campaign, seed=42, trace_path=b)
    assert filecmp.cmp(a, b, shallow=False)


# -- causal flow closure -------------------------------------------------------


def test_flow_closure_reaches_protocol_spans(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    demo_run(seed=7, packets=10, trace_path=path)
    builder = SpanBuilder.from_jsonl(path)
    app_flow = builder.flows()[0]
    closure = builder.flow_spans(app_flow)
    kinds = {span.kind for span in closure}
    # Requests, store replies, and chain updates all descend from the
    # app packets even though they carry protocol 5-tuples.
    assert "response" in kinds
    assert "chain" in kinds
    assert any(span.kind.endswith("_req") for span in closure)


# -- Perfetto export -----------------------------------------------------------


def test_chrome_trace_validates_and_is_deterministic(tmp_path):
    paths = [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")]
    docs = []
    for path in paths:
        demo_run(seed=7, packets=10, trace_path=path)
        docs.append(export_chrome_trace(read_jsonl(path)))
    counts = validate_chrome_trace(docs[0])
    assert counts["X"] > 0 and counts["i"] > 0 and counts["M"] > 0
    assert dump_chrome_trace(docs[0]) == dump_chrome_trace(docs[1])


def test_chrome_trace_validation_rejects_bad_documents():
    with pytest.raises(ValueError):
        validate_chrome_trace({"events": []})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "Q", "name": "x",
                                                "pid": 1, "tid": 1}]})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [
            {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 1.0,
             "dur": -1.0}
        ]})

"""Flow-to-shard assignment: determinism, direction symmetry, keying."""

from __future__ import annotations

import zlib

import pytest

from repro.net.packet import Packet
from repro.shard.assign import (
    FIVE_TUPLE,
    extractable,
    find_packet,
    key_bytes,
    shard_of,
    shard_of_flow_key,
)


def _pkt(src=0x0A000001, dst=0x0A000002, sport=5555, dport=7777):
    return Packet.udp(src, dst, sport, dport)


def test_assignment_is_deterministic_and_in_range():
    for n in (1, 2, 3, 8):
        seen = set()
        for sport in range(2000, 2100):
            pkt = _pkt(sport=sport)
            owner = shard_of(pkt, FIVE_TUPLE, n)
            assert owner == shard_of(pkt, FIVE_TUPLE, n)
            assert 0 <= owner < n
            seen.add(owner)
        if n > 1:
            # 100 distinct flows must not all land on one worker.
            assert len(seen) > 1


def test_both_directions_share_a_shard():
    fwd = _pkt(src=1, dst=2, sport=4242, dport=80)
    rev = _pkt(src=2, dst=1, sport=80, dport=4242)
    for n in (2, 3, 8):
        assert shard_of(fwd, FIVE_TUPLE, n) == shard_of(rev, FIVE_TUPLE, n)


def test_assignment_matches_flow_key_hash():
    pkt = _pkt()
    n = 4
    assert shard_of(pkt, FIVE_TUPLE, n) == shard_of_flow_key(
        pkt.flow_key(), n
    )
    data = pkt.flow_key().canonical().pack()
    assert shard_of(pkt, FIVE_TUPLE, n) == zlib.crc32(data) % n


def test_single_shard_owns_everything():
    assert shard_of(_pkt(), FIVE_TUPLE, 1) == 0


def test_keyless_packet_pins_to_shard_zero():
    bare = Packet()
    assert key_bytes(bare, FIVE_TUPLE) == b""
    assert shard_of(bare, FIVE_TUPLE, 8) == 0


def test_partial_field_subsets_pack_positionally():
    pkt = _pkt()
    data = key_bytes(pkt, ("ip.src", "ip.dst"))
    assert data == f"{pkt.ip.dst}|{pkt.ip.src}".encode()


def test_extractable_rejects_payload_fields():
    assert extractable(FIVE_TUPLE)
    assert not extractable(("payload.key",))
    assert not extractable(())


def test_unknown_field_raises():
    with pytest.raises(ValueError):
        key_bytes(_pkt(), ("ip.src", "no.such.field"))


def test_find_packet_picks_first_packet_argument():
    pkt = _pkt()
    assert find_packet((1, "x", pkt, _pkt(sport=1))) is pkt
    assert find_packet((1, "x")) is None
    assert find_packet(()) is None


def test_invalid_num_shards_raises():
    with pytest.raises(ValueError):
        shard_of(_pkt(), FIVE_TUPLE, 0)

"""Lookahead math: every committed plan's sync window, and the
boundary-packet property the window protocol relies on."""

from __future__ import annotations

import copy
import random

import pytest

from repro.shard.plan import (
    PlanError,
    available_plans,
    load_plan,
    sync_window_us,
)
from repro.shard.window import BoundaryBuffer, BoundaryViolation


def _committed_plans():
    names = available_plans()
    assert names, "no committed shard plans found"
    return names


@pytest.mark.parametrize("app", _committed_plans())
def test_committed_lookahead_is_min_cross_shard_link_latency(app):
    plan = load_plan(app)
    links = (plan.get("cross_shard") or {}).get("links") or []
    window = sync_window_us(plan)
    if not links:
        assert window == 0.0
        return
    assert window == min(float(l["latency_us"]) for l in links)
    assert window > 0.0


@pytest.mark.parametrize("app", _committed_plans())
def test_tampered_lookahead_is_rejected(app):
    plan = load_plan(app)
    links = (plan.get("cross_shard") or {}).get("links") or []
    if not links:
        pytest.skip("plan has no cross-shard links")
    tampered = copy.deepcopy(plan)
    tampered["cross_shard"]["sync_lookahead_us"] = (
        float(tampered["cross_shard"]["sync_lookahead_us"]) * 2.0
    )
    with pytest.raises(PlanError):
        sync_window_us(tampered)


def test_nat_lookahead_matches_the_live_topology():
    """The committed artifact against ground truth: deploy the testbed
    and re-derive the minimum crossing-link latency."""
    from repro import Simulator, deploy
    from repro.apps.nat import NatApp

    plan = load_plan("nat")
    dep = deploy(Simulator(seed=1), NatApp)
    agg_names = {a.name for a in dep.bed.aggs}
    crossing = [
        link.latency_us
        for link in dep.bed.topology.links
        if (link.a.node.name in agg_names)
        != (link.b.node.name in agg_names)
    ]
    assert crossing, "testbed has no links crossing a shard group"
    assert sync_window_us(plan) == min(crossing)


def test_boundary_packets_never_arrive_earlier_than_the_window_allows():
    """Property test: for any stream of posts with arbitrary send times
    and wire delays >= the lookahead, every drained arrival respects
    ``arrive_at >= sent_at + lookahead`` and lands outside committed
    time. Delays below the lookahead always raise."""
    rng = random.Random(4242)
    for _trial in range(200):
        lookahead = rng.uniform(0.05, 5.0)
        buf = BoundaryBuffer(lookahead)
        posted = []
        now = 0.0
        for _ in range(rng.randrange(1, 20)):
            sent_at = now + rng.uniform(0.0, 10.0)
            legal_delay = lookahead + rng.uniform(0.0, 10.0)
            arrive = buf.post(sent_at, ("pkt", sent_at),
                              arrive_at=sent_at + legal_delay)
            assert arrive >= sent_at + lookahead - 1e-12
            posted.append((arrive, sent_at))
            if rng.random() < 0.3:
                # An impossible wire: faster than the slowest link.
                with pytest.raises(BoundaryViolation):
                    buf.post(sent_at, "fast",
                             arrive_at=sent_at
                             + lookahead * rng.uniform(0.0, 0.98))
            now = sent_at
        # Drain in windows; arrivals must be ordered and post-committed.
        horizon = 0.0
        drained = []
        while len(drained) < len(posted):
            horizon += lookahead
            for arrive_at, (_tag, sent_at) in buf.due(horizon):
                assert arrive_at >= sent_at + lookahead - 1e-12
                assert arrive_at > buf.committed_us
                drained.append(arrive_at)
            buf.commit(horizon)
        assert drained == sorted(drained)

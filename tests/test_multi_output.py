"""Tests for multi-output piggybacking (Definition 1's 0..n outputs)."""

import pytest
from hypothesis import given, strategies as st

from repro import Simulator, deploy
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import StateSpec
from repro.core.protocol import pack_packets, unpack_packets
from repro.net.packet import Packet


@given(st.lists(st.binary(min_size=0, max_size=120), max_size=6))
def test_pack_unpack_roundtrip(packets):
    assert unpack_packets(pack_packets(packets)) == packets


def test_pack_limits():
    with pytest.raises(ValueError):
        pack_packets([b""] * 256)
    with pytest.raises(ValueError):
        pack_packets([b"\x00" * 70000])
    with pytest.raises(ValueError):
        unpack_packets(b"")
    with pytest.raises(ValueError):
        unpack_packets(bytes([1]) + b"\x00\x05ab")  # truncated frame


class MirrorOnWriteApp(InSwitchApp):
    """On every packet: update state, forward the packet, AND emit a copy
    to a collector address — two outputs per input, both derived from the
    state transition, so both must wait for durability."""

    name = "mirror-on-write"
    state_spec = StateSpec.of(("count", 0))

    COLLECTOR_IP = 0x0A00020C  # 10.0.2.12 (s22)

    def process(self, state, pkt, ctx, switch):
        state.increment("count")
        copy = pkt.copy()
        copy.ip.dst = self.COLLECTOR_IP
        ctx.emit(copy)
        return AppVerdict.FORWARD


def test_emitted_outputs_withheld_until_ack():
    sim = Simulator(seed=3)
    dep = deploy(sim, MirrorOnWriteApp)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    collector = dep.bed.host_by_ip(MirrorOnWriteApp.COLLECTOR_IP)
    primary_times, mirror_times = [], []
    s11.default_handler = lambda pkt: primary_times.append(sim.now)
    collector.default_handler = lambda pkt: mirror_times.append(sim.now)

    for i in range(4):
        sim.schedule(i * 200.0, e1.send,
                     Packet.udp(e1.ip, s11.ip, 5555, 7777))
    sim.run_until_idle()

    # Both outputs of every input were delivered...
    assert len(primary_times) == 4
    assert len(mirror_times) == 4
    # ...and neither escaped before the replication round trip (> 15 us
    # one-way; the plain forwarding path would be ~4 us).
    first_in = 0.0
    assert min(primary_times) - first_in > 15.0
    assert min(mirror_times) - first_in > 15.0
    # The store saw every update exactly once per input.
    key = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key().canonical()
    assert dep.stores[0].records[key].vals == [4]


def test_drop_verdict_with_emissions_still_replicates():
    """An app that consumes the input but emits a response (SYN-proxy
    style): the emission is the only output and still gates on the ack."""

    class RespondAndDrop(InSwitchApp):
        name = "respond-drop"
        state_spec = StateSpec.of(("seen", 0))

        def process(self, state, pkt, ctx, switch):
            state.increment("seen")
            reply = Packet.udp(pkt.ip.dst, pkt.ip.src, 7777, 5555,
                               payload=b"resp")
            reply.ip.identification = pkt.ip.identification
            ctx.emit(reply)
            return AppVerdict.DROP

    sim = Simulator(seed=4)
    dep = deploy(sim, RespondAndDrop)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    replies, arrivals = [], []
    e1.default_handler = lambda pkt: replies.append(sim.now)
    s11.default_handler = lambda pkt: arrivals.append(sim.now)
    e1.send(Packet.udp(e1.ip, s11.ip, 5555, 7777))
    sim.run_until_idle()
    assert arrivals == []          # the input was consumed
    assert len(replies) == 1       # the response came back
    assert replies[0] > 15.0       # only after the update was durable

"""Tests for read gating: packets that read state with an update in flight
are buffered through the network until the update is acknowledged (§5.1).
"""

import struct

import pytest

from repro import Simulator, deploy
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import StateSpec
from repro.net.packet import Packet, UDPHeader
from repro.net.packet import FlowKey


class WriteThenReadApp(InSwitchApp):
    """Custom header: op byte 'w' writes the value, 'r' echoes it back
    into the payload — so a read's observed value is externally visible."""

    name = "write-then-read"
    state_spec = StateSpec.of(("value", 0))

    def partition_key(self, pkt):
        if (
            pkt.ip is None
            or not isinstance(pkt.l4, UDPHeader)
            or pkt.l4.dport != 7000
            or not pkt.payload
        ):
            return None
        return FlowKey(1, 0, 0xF0, 0, 0)  # one shared partition

    def process(self, state, pkt, ctx, switch):
        op = pkt.payload[0:1]
        if op == b"w":
            (value,) = struct.unpack_from("!I", pkt.payload, 1)
            state.set("value", value)
        else:
            pkt.payload = b"r" + struct.pack("!I", state.get("value"))
        return AppVerdict.FORWARD


def test_read_racing_write_is_gated_and_sees_the_write():
    sim = Simulator(seed=2)
    dep = deploy(sim, WriteThenReadApp)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    arrivals = []

    def on_receive(pkt):
        arrivals.append((pkt.payload[0:1], sim.now, pkt.payload))

    s11.default_handler = on_receive

    # Prime the partition (lease + initial write), then quiesce.
    e1.send(Packet.udp(e1.ip, s11.ip, 9000, 7000,
                       payload=b"w" + struct.pack("!I", 1)))
    sim.run_until_idle()
    arrivals.clear()

    # A write immediately followed (2 us later) by a read: the read races
    # the write's replication round trip.
    t0 = sim.now
    e1.send(Packet.udp(e1.ip, s11.ip, 9000, 7000,
                       payload=b"w" + struct.pack("!I", 42)))
    sim.schedule(2.0, e1.send, Packet.udp(e1.ip, s11.ip, 9001, 7000,
                                          payload=b"r\x00\x00\x00\x00"))
    sim.run_until_idle()

    reads = [(t, payload) for op, t, payload in arrivals if op == b"r"]
    writes = [(t, payload) for op, t, payload in arrivals if op == b"w"]
    assert len(reads) == 1 and len(writes) == 1
    read_t, read_payload = reads[0]
    (observed,) = struct.unpack_from("!I", read_payload, 1)
    # The read observed the new value...
    assert observed == 42
    # ...and was NOT released before the write's ack round trip: both took
    # a full store round trip (>15 us), though the read itself wrote
    # nothing.
    assert read_t - t0 > 15.0
    eng = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
    assert eng.stats["reads_buffered"] >= 1


def test_read_with_no_inflight_write_takes_fast_path():
    sim = Simulator(seed=3)
    dep = deploy(sim, WriteThenReadApp)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    times = []
    s11.default_handler = lambda pkt: times.append(sim.now)
    e1.send(Packet.udp(e1.ip, s11.ip, 9000, 7000,
                       payload=b"w" + struct.pack("!I", 7)))
    sim.run_until_idle()

    t0 = sim.now
    e1.send(Packet.udp(e1.ip, s11.ip, 9001, 7000,
                       payload=b"r\x00\x00\x00\x00"))
    sim.run_until_idle()
    # Line-rate path: one-way delivery in a few microseconds.
    assert times[-1] - t0 < 8.0
    eng = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
    assert eng.stats["fast_path_forwards"] >= 1


def test_gated_read_output_never_precedes_write_durability():
    """Ordering: the store applies the write before the read's bounce
    returns — the read's output can only exist after the update is durable."""
    sim = Simulator(seed=4)
    dep = deploy(sim, WriteThenReadApp)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    key = FlowKey(1, 0, 0xF0, 0, 0)
    read_seen_at = []
    store_value_at_read = []

    def on_receive(pkt):
        if pkt.payload[0:1] == b"r":
            read_seen_at.append(sim.now)
            rec = None
            for st in dep.stores:
                rec = st.records.get(key) or rec
            store_value_at_read.append(rec.vals[0] if rec else None)

    s11.default_handler = on_receive
    e1.send(Packet.udp(e1.ip, s11.ip, 9000, 7000,
                       payload=b"w" + struct.pack("!I", 5)))
    sim.schedule(1.0, e1.send, Packet.udp(e1.ip, s11.ip, 9001, 7000,
                                          payload=b"r\x00\x00\x00\x00"))
    sim.run_until_idle()
    assert read_seen_at
    assert store_value_at_read[0] == 5  # durable before the read emerged

"""Tests for the at-scale bandwidth model (§7.2)."""

import pytest

from repro.analysis.scale import (
    BandwidthBreakdown,
    TrafficProfile,
    overhead_at_scale,
    paper_profiles,
    per_switch_bandwidth,
    scale_sweep,
)


def test_read_centric_share_is_tiny():
    profiles = paper_profiles()
    for name in ("nat", "firewall", "load-balancer"):
        share = per_switch_bandwidth(profiles[name]).protocol_share
        assert share < 0.01, name


def test_sync_counter_share_matches_fig10_regime():
    share = per_switch_bandwidth(paper_profiles()["sync-counter"]).protocol_share
    assert 0.35 < share < 0.60


def test_epc_share_in_between():
    share = per_switch_bandwidth(paper_profiles()["epc-sgw"]).protocol_share
    nat = per_switch_bandwidth(paper_profiles()["nat"]).protocol_share
    sync = per_switch_bandwidth(paper_profiles()["sync-counter"]).protocol_share
    assert nat < share < sync


def test_hh_snapshot_share_negligible_and_rate_independent():
    profiles = paper_profiles()
    share_full = per_switch_bandwidth(profiles["hh-detector"]).protocol_share
    assert share_full < 0.01
    # Halving the traffic doubles the share (fixed snapshot stream).
    slower = TrafficProfile("hh", profiles["hh-detector"].packet_rate_pps / 2,
                            64, snapshot_bytes_per_s=3 * 64 * 26 * 1000.0)
    assert per_switch_bandwidth(slower).protocol_share > share_full


def test_share_is_scale_invariant():
    """The paper's §7.2 claim: more switches, same percentage overhead."""
    for name, profile in paper_profiles().items():
        sweep = scale_sweep(profile, [1, 2, 8, 64])
        values = list(sweep.values())
        for v in values[1:]:
            assert v == pytest.approx(values[0], rel=1e-9), name


def test_aggregate_scales_linearly():
    profile = paper_profiles()["sync-counter"]
    one = overhead_at_scale(profile, 1)
    eight = overhead_at_scale(profile, 8)
    assert eight.original_bps == pytest.approx(8 * one.original_bps)
    assert eight.request_bps == pytest.approx(8 * one.request_bps)


def test_invalid_cluster_size_rejected():
    with pytest.raises(ValueError):
        overhead_at_scale(paper_profiles()["nat"], 0)


def test_breakdown_share_of_zero_traffic():
    assert BandwidthBreakdown(0, 0, 0).protocol_share == 0.0

"""The observability layer: profiler identity + attribution, heartbeat
stream identity, health detectors, the perf-trajectory gate, and the
``profile``/``watch``/``bench --record`` CLI surfaces.

The load-bearing tests are the identity ones: attaching the profiler
and the heartbeat emitter to a chaos campaign must leave the verdict
report, the trace stream, and every non-``observe.*`` metric
byte-identical to the unobserved run. Observation never changes the run.
"""

import json

import pytest

from repro.chaos.campaigns import CAMPAIGNS
from repro.chaos.runner import run_campaign_result, verdict_json
from repro.observe import ObserveOptions, attach
from repro.observe.health import (
    HealthMonitor,
    QueueGrowthDetector,
    RecoverySloDetector,
    ResendStormDetector,
    WalStallDetector,
)
from repro.observe.heartbeat import read_heartbeats, snapshot_json
from repro.observe.profiler import CACHE_LIMIT, Profiler, subsystem_of
from repro.tools.runner import main as tools_main


def _metrics_without_observe(registry):
    snap = registry.snapshot()
    return {
        section: {k: v for k, v in entries.items()
                  if not k.startswith("observe.")}
        for section, entries in snap.items()
    }


# -- the identity contract -----------------------------------------------------


def test_profiled_campaign_is_byte_identical(tmp_path):
    """Profiler + heartbeats on: verdict, trace, and metrics (minus
    observe.*) match the unobserved run byte for byte."""
    campaign = CAMPAIGNS["single_failover"]
    trace_a = tmp_path / "a.jsonl"
    trace_b = tmp_path / "b.jsonl"
    hb = tmp_path / "hb.ndjson"

    plain = run_campaign_result(campaign, seed=7, trace_path=str(trace_a))
    observed = run_campaign_result(
        campaign, seed=7, trace_path=str(trace_b),
        observe=ObserveOptions(profile=True, heartbeat=True,
                               heartbeat_path=str(hb)))

    assert verdict_json(plain.report) == verdict_json(observed.report)
    assert trace_a.read_bytes() == trace_b.read_bytes()
    assert _metrics_without_observe(plain.metrics) == \
        _metrics_without_observe(observed.metrics)

    # The profiler actually saw the run: every simulator event, classified.
    profiler = observed.observe.profiler
    assert profiler.events > 0
    assert profiler.events == sum(
        row["calls"] for row in profiler.subsystem_table())
    assert hb.exists() and len(read_heartbeats(str(hb))) > 0


@pytest.mark.parametrize("seed", [3, 11])
def test_heartbeat_stream_ab_identity(tmp_path, seed):
    """Two same-seed runs produce byte-identical heartbeat streams."""
    campaign = CAMPAIGNS["gray_link"]
    paths = []
    for tag in ("a", "b"):
        path = tmp_path / f"hb-{seed}-{tag}.ndjson"
        run_campaign_result(
            campaign, seed=seed,
            observe=ObserveOptions(heartbeat=True,
                                   heartbeat_path=str(path)))
        paths.append(path)
    a, b = paths[0].read_bytes(), paths[1].read_bytes()
    assert a and a == b


def test_health_events_are_opt_in(tmp_path):
    """health=False (the default) emits no health.* trace records, so
    observing cannot inflate records_emitted in the verdict report."""
    campaign = CAMPAIGNS["single_failover"]
    plain = run_campaign_result(campaign, seed=7)
    observed = run_campaign_result(
        campaign, seed=7, observe=ObserveOptions(profile=True,
                                                 heartbeat=True))
    assert plain.report["trace"]["records_emitted"] == \
        observed.report["trace"]["records_emitted"]


# -- profiler unit behavior ----------------------------------------------------


def test_subsystem_mapping():
    assert subsystem_of("repro.core.engine") == "engine"
    assert subsystem_of("repro.net.links") == "links"
    assert subsystem_of("repro.net.routing") == "net"
    assert subsystem_of("repro.statestore.server") == "statestore"
    assert subsystem_of("repro.chaos.workload") == "chaos"
    assert subsystem_of("__main__") == "other"


def test_profiler_counts_and_flamegraph(tmp_path):
    prof = Profiler()

    def handler():
        pass

    for _ in range(5):
        prof.record(handler, 0.001)
    assert prof.events == 5
    assert prof.wall_s == pytest.approx(0.005)
    rows = prof.handler_rows()
    assert len(rows) == 1 and rows[0]["calls"] == 5
    assert rows[0]["handler"].endswith("handler")

    stacks = prof.collapsed_stacks()
    assert len(stacks) == 1
    frame, value = stacks[0].rsplit(" ", 1)
    assert frame.startswith("sim;") and frame.count(";") == 3
    assert int(value) == 5000  # 0.005 s in integer microseconds

    out = tmp_path / "flame.txt"
    assert prof.write_flamegraph(str(out)) == 1
    assert out.read_text().strip() == stacks[0]


def test_profiler_bound_method_memoization():
    """Bound methods of the same function share one stats entry."""

    class Thing:
        def cb(self):
            pass

    prof = Profiler()
    a, b = Thing(), Thing()
    prof.record(a.cb, 0.001)
    prof.record(b.cb, 0.001)
    rows = prof.handler_rows()
    assert len(rows) == 1 and rows[0]["calls"] == 2
    assert len(prof._cache) == 1


def test_profiler_cache_cap():
    prof = Profiler()
    prof._cache = {i: [0, 0.0] for i in range(CACHE_LIMIT)}
    before = dict(prof._stats)

    def uncached():
        pass

    prof.record(uncached, 0.002)
    prof.record(uncached, 0.002)
    assert prof.cache_overflows == 2
    assert prof.events == 2  # still counted, just resolved uncached
    assert len(prof._cache) == CACHE_LIMIT
    assert before == {}  # sanity: stats grew via the uncached path


# -- health detectors on synthetic series --------------------------------------


def _snap(t_us, retx=0, backlog=0.0, delivered=None, faults=None,
          stores_down=None, wal=0):
    snap = {
        "t_us": t_us,
        "events": 0,
        "pending": 0,
        "events_per_sim_ms": 0.0,
        "queues": {"link_backlog_us": backlog, "mirror_copies": 0,
                   "buffer_bytes": 0},
        "counters": {"retransmissions": retx, "acks_received": 0,
                     "lease_requests": 0, "store_recoveries": 0,
                     "wal_replayed": wal, "link_drops": 0},
    }
    if delivered is not None:
        snap["delivered"] = delivered
    if faults is not None:
        snap["faults_active"] = faults
    if stores_down is not None:
        snap["stores_down"] = stores_down
    return snap


def test_resend_storm_detector_edge_triggers():
    det = ResendStormDetector(threshold=10)
    series = [_snap(t * 1000.0, retx=r)
              for t, r in enumerate([0, 2, 30, 60, 61, 90])]
    firings = [det.update(s) for s in series]
    # Fires at the 2->30 jump, stays quiet during the sustained storm
    # (30->60 is the same episode), re-arms on the calm 60->61 interval,
    # then fires again at 61->90.
    assert [f is not None for f in firings] == \
        [False, False, True, False, False, True]
    value, threshold = firings[2]
    assert value == 28.0 and threshold == 10.0


def test_queue_growth_detector_needs_sustained_rise():
    det = QueueGrowthDetector(consecutive=3, floor_us=50.0)
    rising = [_snap(t * 1000.0, backlog=b)
              for t, b in enumerate([0.0, 40.0, 80.0, 120.0])]
    firings = [det.update(s) for s in rising]
    # Fires once the rise spans `consecutive` snapshots (index 2) and
    # stays quiet while the same episode keeps growing (index 3).
    assert [f is not None for f in firings] == [False, False, True, False]
    # A sawtooth never accumulates the consecutive rises.
    det2 = QueueGrowthDetector(consecutive=3, floor_us=50.0)
    saw = [_snap(t * 1000.0, backlog=b)
           for t, b in enumerate([0.0, 60.0, 10.0, 70.0, 20.0, 80.0])]
    assert all(det2.update(s) is None for s in saw)


def test_recovery_slo_detector():
    det = RecoverySloDetector(slo_us=100_000.0)
    # Delivery progress at t=0, fault lands, deliveries stall past SLO.
    assert det.update(_snap(0.0, delivered=5, faults=0)) is None
    assert det.update(_snap(50_000.0, delivered=5, faults=1)) is None
    fired = det.update(_snap(150_000.0, delivered=5, faults=1))
    assert fired is not None and fired[0] == pytest.approx(150_000.0)
    # Same episode: no re-fire; progress re-arms.
    assert det.update(_snap(200_000.0, delivered=5, faults=1)) is None
    assert det.update(_snap(210_000.0, delivered=6, faults=1)) is None
    # Snapshots without the provider fields are ignored.
    assert RecoverySloDetector().update(_snap(0.0)) is None


def test_wal_stall_detector():
    det = WalStallDetector(window_us=100_000.0)
    assert det.update(_snap(0.0, stores_down=0, wal=0)) is None
    assert det.update(_snap(10_000.0, stores_down=1, wal=0)) is None
    fired = det.update(_snap(150_000.0, stores_down=1, wal=0))
    assert fired is not None
    assert fired[0] == pytest.approx(140_000.0)
    # Replay progress clears the episode.
    assert det.update(_snap(160_000.0, stores_down=1, wal=500)) is None
    assert det.update(_snap(170_000.0, stores_down=1, wal=500)) is None


def test_health_monitor_emits_trace_and_metrics():
    from repro.net.simulator import Simulator

    sim = Simulator(seed=1)
    monitor = HealthMonitor(sim, [ResendStormDetector(threshold=5)])
    monitor.observe(_snap(1000.0, retx=0))
    monitor.observe(_snap(2000.0, retx=50))
    assert monitor.counts() == {"resend_storm": 1}
    records = [r for r in sim.tracer.tail(10)
               if r.type == "health.resend_storm"]
    assert len(records) == 1
    assert records[0].fields["detector"] == "resend_storm"
    assert sim.metrics.total("observe.health.detections",
                             detector="resend_storm") == 1.0


def test_fuzz_scorecard_pools_health_detections():
    from repro.chaos.fuzz import run_fuzz

    report = run_fuzz(seed=3, budget=2)
    assert "health_detections" in report["scorecard"]
    for entry in report["scorecard"]["fault_classes"].values():
        for count in entry.get("health_detections", {}).values():
            assert count > 0


# -- scorecard rendering determinism -------------------------------------------


def test_scorecard_render_sorts_input_order():
    from repro.chaos.scorecard import Scorecard

    entry = {"schedules": 1, "faults": 2, "violations": 0,
             "unrecovered": 0, "records_lost": 3, "max_resend_storm": 7,
             "total_resends": 7}
    forward = {
        "schedules_run": 2, "schedules_violated": 0,
        "health_detections": {"slo_burn": 1, "wal_stall": 2},
        "fault_classes": {"fail_link": dict(entry),
                          "crash_store": dict(entry)},
    }
    backward = {
        "schedules_run": 2, "schedules_violated": 0,
        "health_detections": {"wal_stall": 2, "slo_burn": 1},
        "fault_classes": {"crash_store": dict(entry),
                          "fail_link": dict(entry)},
    }
    assert Scorecard.render_dict(forward) == Scorecard.render_dict(backward)
    rendered = Scorecard.render_dict(forward)
    assert rendered.index("crash_store") < rendered.index("fail_link")
    assert "slo_burn=1" in rendered and "wal_stall=2" in rendered


# -- perfetto: the dedicated faults track --------------------------------------


def test_perfetto_faults_share_one_track():
    from repro.telemetry import trace as tt
    from repro.telemetry.perfetto import (
        PID_CHAOS, export_chrome_trace, validate_chrome_trace,
    )
    from repro.telemetry.trace import TraceRecord

    records = [
        TraceRecord(10.0, tt.FAULT_INJECT, {"kind": "fail_link",
                                            "target": "agg1<->tor1"}),
        TraceRecord(20.0, tt.FAULT_INJECT, {"kind": "crash_store",
                                            "target": "st2"}),
        TraceRecord(30.0, tt.FAULT_CLEAR, {"kind": "recover_link",
                                           "target": "agg1<->tor1"}),
        TraceRecord(40.0, tt.HEALTH_SLO_BURN, {"detector": "slo_burn",
                                               "value": 1.0,
                                               "threshold": 1.0}),
    ]
    doc = export_chrome_trace(records)
    validate_chrome_trace(doc)
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    fault_events = [e for e in instants if e["name"].startswith("fault.")]
    assert len(fault_events) == 3
    # One track: same pid and same tid for every fault, targets differ.
    assert {(e["pid"], e["tid"]) for e in fault_events} == {
        (PID_CHAOS, fault_events[0]["tid"])}
    assert fault_events[0]["name"] == "fault.inject agg1<->tor1"
    names = {e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"faults", "health"} <= names
    health = [e for e in instants if e["name"].startswith("health.")]
    assert len(health) == 1
    assert health[0]["tid"] != fault_events[0]["tid"]


# -- the trajectory gate -------------------------------------------------------


def test_trajectory_gate_logic():
    from repro.observe import trajectory as tj

    baseline = {"eventloop": {"bench": "eventloop", "normalized": 0.0020}}
    ok_entry = {"bench": "eventloop", "normalized": 0.0019}
    bad_entry = {"bench": "eventloop", "normalized": 0.0015}
    fresh_entry = {"bench": "fastpath", "normalized": 0.0180}

    report = tj.check([ok_entry, fresh_entry], baseline)
    assert report["ok"]
    statuses = {c["bench"]: c["status"] for c in report["comparisons"]}
    assert statuses == {"eventloop": "ok", "fastpath": "no-baseline"}

    report = tj.check([bad_entry], baseline)
    assert not report["ok"]
    assert report["comparisons"][0]["status"] == "REGRESSED"
    assert "FAIL" in tj.render_check(report)


def test_trajectory_record_and_check_roundtrip(tmp_path):
    from repro.observe import trajectory as tj

    path = tmp_path / "traj.json"
    fake = [{"schema": 1, "bench": "eventloop", "raw_events_per_s": 100.0,
             "throughput": 10.0, "unit": "x", "normalized": 0.1,
             "meta": {}}]
    report = tj.record_and_check(path=str(path), record=True, gate=True,
                                 measure_fn=lambda: [dict(e) for e in fake])
    assert report["ok"] and report["recorded"]
    doc = tj.load(str(path))
    assert len(doc["entries"]) == 1

    # Second recording gates against the first and passes (identical).
    report = tj.record_and_check(path=str(path), record=True, gate=True,
                                 measure_fn=lambda: [dict(e) for e in fake])
    assert report["ok"]
    assert tj.last_by_bench(tj.load(str(path)))["eventloop"]["normalized"] \
        == 0.1

    # A >20% normalized drop fails the gate but still records.
    slow = [dict(fake[0], normalized=0.07)]
    report = tj.record_and_check(path=str(path), record=True, gate=True,
                                 measure_fn=lambda: [dict(e) for e in slow])
    assert not report["ok"]
    assert len(tj.load(str(path))["entries"]) == 3


# -- CLI surfaces --------------------------------------------------------------


def test_cli_profile_quickstart_with_flame_and_heartbeat(tmp_path, capsys):
    flame = tmp_path / "flame.txt"
    hb = tmp_path / "hb.ndjson"
    code = tools_main(["profile", "quickstart", "--flame", str(flame),
                       "--heartbeat", str(hb)])
    assert code == 0
    out = capsys.readouterr().out
    assert "subsystem" in out and "hottest handlers" in out
    lines = flame.read_text().splitlines()
    assert lines and all(" " in ln and ln.startswith("sim;") for ln in lines)
    assert read_heartbeats(str(hb))


def test_cli_profile_campaign_json(capsys):
    code = tools_main(["profile", "single_failover", "--json"])
    assert code == 0
    profile = json.loads(capsys.readouterr().out)
    assert profile["events"] > 0
    assert {row["subsystem"] for row in profile["subsystems"]} >= \
        {"links", "statestore"}


def test_cli_profile_unknown_target(capsys):
    assert tools_main(["profile", "nope"]) == 2


def test_cli_watch_renders_heartbeats(tmp_path, capsys):
    path = tmp_path / "hb.ndjson"
    snaps = [_snap(10_000.0, retx=3), _snap(20_000.0, retx=5)]
    path.write_text("".join(snapshot_json(s) + "\n" for s in snaps))
    assert tools_main(["watch", str(path)]) == 0
    out = capsys.readouterr().out
    lines = out.strip().splitlines()
    assert len(lines) == 3  # header + one line per snapshot
    assert "sim time" in lines[0]
    assert "10.0ms" in lines[1] and "20.0ms" in lines[2]


def test_cli_watch_missing_file():
    assert tools_main(["watch", "/nonexistent/hb.ndjson"]) == 2


def test_cli_metrics_filter_and_csv(capsys):
    assert tools_main(["metrics", "--filter", "redplane.*",
                       "--format", "csv"]) == 0
    out = capsys.readouterr().out
    lines = out.strip().splitlines()
    assert lines[0] == "section,metric,field,value"
    assert len(lines) > 1
    assert all(ln.split(",")[1].startswith("redplane.")
               for ln in lines[1:])


def test_cli_trace_since(capsys):
    assert tools_main(["trace", "--since", "900000", "--tail", "500"]) == 0
    out = capsys.readouterr().out
    ts = [float(ln.split()[0]) for ln in out.strip().splitlines() if ln]
    assert ts and all(t >= 900000.0 for t in ts)


# -- attach() plumbing ---------------------------------------------------------


def test_attach_and_detach_roundtrip():
    from repro.net.simulator import Simulator

    sim = Simulator(seed=1)
    bundle = attach(sim, profile=True)
    assert sim.observe is bundle
    sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    assert bundle.profiler.events == 1
    sim.detach_observe()
    assert sim.observe is None

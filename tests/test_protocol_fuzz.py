"""Property-based fuzzing of the full protocol stack.

Hypothesis generates adversarial schedules — packet counts, gaps, fabric
loss and reordering, an optional mid-run switch failure — and every run
must uphold the protocol's global invariants:

* the store's applied sequence number never regresses and never exceeds
  the number of updates the switches produced;
* switch-local state for a flow always equals the store's state once the
  system quiesces (every unacknowledged update is eventually retransmitted
  or superseded);
* delivered outputs never duplicate a state version (per-flow counter
  values are unique);
* the simulation quiesces (no protocol livelock).
"""

from __future__ import annotations

import struct

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import RedPlaneConfig, Simulator, deploy
from repro.core.app import AppVerdict
from repro.apps.counter import SyncCounterApp
from repro.net.packet import Packet


class EchoCounter(SyncCounterApp):
    """Counter echoing its value in the payload (observable outputs)."""

    def process(self, state, pkt, ctx, switch):
        count = state.increment("count")
        pkt.payload = struct.pack("!I", count)
        return AppVerdict.FORWARD


schedule = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=2**16),
    "packets": st.integers(min_value=1, max_value=15),
    "gap_us": st.sampled_from([20.0, 200.0, 2_000.0]),
    "loss": st.sampled_from([0.0, 0.03, 0.1]),
    "reorder": st.sampled_from([0.0, 0.3]),
    "fail_after": st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
})


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule)
def test_protocol_invariants_under_adversarial_schedules(params):
    sim = Simulator(seed=params["seed"])
    dep = deploy(
        sim,
        EchoCounter,
        link_loss=params["loss"],
        link_reorder=params["reorder"],
        config=RedPlaneConfig(lease_period_us=100_000.0),
    )
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    outputs = []

    def on_receive(pkt):
        (value,) = struct.unpack_from("!I", pkt.payload, 0)
        outputs.append(value)

    s11.default_handler = on_receive
    flow = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()

    n = params["packets"]
    for i in range(n):
        pkt = Packet.udp(e1.ip, s11.ip, 5555, 7777)
        pkt.ip.identification = i
        sim.schedule(i * params["gap_us"], e1.send, pkt)
    if params["fail_after"] is not None and params["fail_after"] < n:
        sim.schedule(params["fail_after"] * params["gap_us"] + 1.0,
                     dep.bed.topology.fail_node, dep.bed.aggs[0])

    # Long horizon: leases expire, retransmissions drain, and the run must
    # quiesce (livelock would trip the event guard).
    sim.run(until=2_000_000)
    sim.run_until_idle(max_events=3_000_000)

    # -- invariants -----------------------------------------------------------
    record = None
    for store in dep.stores:
        rec = store.records.get(flow)
        if rec is not None and rec.initialized:
            record = rec
            break
    total_counted = 0
    for engine in dep.engines.values():
        if engine.switch.failed:
            continue
        state = engine.flow_state(flow)
        if state is not None:
            total_counted = max(total_counted, state[0])

    if record is not None:
        assert 0 <= record.last_seq <= n
        # vals may be empty if a lease was granted but every write was
        # lost before reaching the store (permitted input loss).
        assert not record.vals or 0 <= record.vals[0] <= n
        # Quiesced: the live switch's state cannot be newer than the
        # store's (every write was acknowledged or retransmitted to done).
        if total_counted:
            assert record.vals[0] >= total_counted or record.vals[0] == 0

    # No duplicated counter values among delivered outputs.
    assert len(outputs) == len(set(outputs))
    # Outputs never exceed the number of inputs.
    assert all(1 <= v <= n for v in outputs)
    # Chain replicas that saw the flow agree with each other at quiescence.
    versions = {
        st_.records[flow].last_seq
        for st_ in dep.stores
        if flow in st_.records and st_.records[flow].initialized
    }
    assert len(versions) <= 1, f"replicas diverged: {versions}"

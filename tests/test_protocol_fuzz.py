"""Property-based fuzzing of the full protocol stack.

Hypothesis generates adversarial schedules — packet counts, gaps, fabric
loss and reordering, an optional mid-run switch failure — and every run
must uphold the protocol's global invariants:

* the store's applied sequence number never regresses and never exceeds
  the number of updates the switches produced;
* switch-local state for a flow always equals the store's state once the
  system quiesces (every unacknowledged update is eventually retransmitted
  or superseded);
* delivered outputs never duplicate a state version (per-flow counter
  values are unique);
* the simulation quiesces (no protocol livelock).
"""

from __future__ import annotations

import struct

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import RedPlaneConfig, Simulator, deploy
from repro.core.app import AppVerdict
from repro.apps.counter import SyncCounterApp
from repro.net.packet import Packet


class EchoCounter(SyncCounterApp):
    """Counter echoing its value in the payload (observable outputs)."""

    def process(self, state, pkt, ctx, switch):
        count = state.increment("count")
        pkt.payload = struct.pack("!I", count)
        return AppVerdict.FORWARD


schedule = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=2**16),
    "packets": st.integers(min_value=1, max_value=15),
    "gap_us": st.sampled_from([20.0, 200.0, 2_000.0]),
    "loss": st.sampled_from([0.0, 0.03, 0.1]),
    "reorder": st.sampled_from([0.0, 0.3]),
    "fail_after": st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
})


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule)
def test_protocol_invariants_under_adversarial_schedules(params):
    sim = Simulator(seed=params["seed"])
    dep = deploy(
        sim,
        EchoCounter,
        link_loss=params["loss"],
        link_reorder=params["reorder"],
        config=RedPlaneConfig(lease_period_us=100_000.0),
    )
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    outputs = []

    def on_receive(pkt):
        (value,) = struct.unpack_from("!I", pkt.payload, 0)
        outputs.append(value)

    s11.default_handler = on_receive
    flow = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()

    n = params["packets"]
    for i in range(n):
        pkt = Packet.udp(e1.ip, s11.ip, 5555, 7777)
        pkt.ip.identification = i
        sim.schedule(i * params["gap_us"], e1.send, pkt)
    if params["fail_after"] is not None and params["fail_after"] < n:
        sim.schedule(params["fail_after"] * params["gap_us"] + 1.0,
                     dep.bed.topology.fail_node, dep.bed.aggs[0])

    # Long horizon: leases expire, retransmissions drain, and the run must
    # quiesce (livelock would trip the event guard).
    sim.run(until=2_000_000)
    sim.run_until_idle(max_events=3_000_000)

    # -- invariants -----------------------------------------------------------
    record = None
    for store in dep.stores:
        rec = store.records.get(flow)
        if rec is not None and rec.initialized:
            record = rec
            break
    total_counted = 0
    for engine in dep.engines.values():
        if engine.switch.failed:
            continue
        state = engine.flow_state(flow)
        if state is not None:
            total_counted = max(total_counted, state[0])

    if record is not None:
        assert 0 <= record.last_seq <= n
        # vals may be empty if a lease was granted but every write was
        # lost before reaching the store (permitted input loss).
        assert not record.vals or 0 <= record.vals[0] <= n
        # Quiesced: the live switch's state cannot be newer than the
        # store's (every write was acknowledged or retransmitted to done).
        if total_counted:
            assert record.vals[0] >= total_counted or record.vals[0] == 0

    # No duplicated counter values among delivered outputs.
    assert len(outputs) == len(set(outputs))
    # Outputs never exceed the number of inputs.
    assert all(1 <= v <= n for v in outputs)
    # Chain replicas that saw the flow agree with each other at quiescence.
    versions = {
        st_.records[flow].last_seq
        for st_ in dep.stores
        if flow in st_.records and st_.records[flow].initialized
    }
    assert len(versions) <= 1, f"replicas diverged: {versions}"


# -- statestore codec: round trips and malformed input ------------------------

import pytest

from repro.net.packet import FlowKey
from repro.core.protocol import MessageType, RedPlaneMessage
from repro.statestore.backend import FlowRecord
from repro.statestore.codec import (
    pack_chain_ack,
    pack_chain_update,
    pack_record,
    unpack_chain_ack,
    unpack_chain_update,
    unpack_record,
)

flow_keys = st.builds(
    FlowKey,
    st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
    st.sampled_from([6, 17]),
    st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1),
)

protocol_messages = st.builds(
    RedPlaneMessage,
    seq=st.integers(0, 2**32 - 1),
    msg_type=st.sampled_from(list(MessageType)),
    flow_key=flow_keys,
    vals=st.lists(st.integers(0, 2**32 - 1), max_size=4),
    piggyback=st.one_of(st.none(), st.binary(max_size=64)),
    aux=st.integers(0, 2**16 - 1),
)


@st.composite
def flow_records(draw):
    rec = FlowRecord(
        vals=draw(st.lists(st.integers(0, 2**32 - 1), max_size=4)),
        initialized=draw(st.booleans()),
        last_seq=draw(st.integers(0, 2**32 - 1)),
        owner_ip=draw(st.one_of(st.none(), st.integers(1, 2**32 - 1))),
        lease_expiry=draw(st.floats(0, 1e12, allow_nan=False)),
    )
    for slot in draw(st.lists(st.integers(0, 2**16 - 1), max_size=3,
                              unique=True)):
        rec.snapshot_vals[slot] = draw(st.integers(0, 2**32 - 1))
        rec.snapshot_seqs[slot] = draw(st.integers(0, 2**32 - 1))
    return rec


def _same_message(a, b):
    return (a.seq == b.seq and a.msg_type is b.msg_type
            and a.flow_key == b.flow_key and a.vals == b.vals
            and a.piggyback == b.piggyback and a.aux == b.aux)


@settings(max_examples=25, deadline=None)
@given(flow_keys, flow_records(), protocol_messages,
       st.integers(1, 2**32 - 1))
def test_chain_update_roundtrip(key, rec, reply, requester_ip):
    data = pack_chain_update(key, rec, reply, requester_ip)
    out_key, state, out_reply, out_ip = unpack_chain_update(data)
    vals, initialized, last_seq, owner_ip, expiry = state
    assert out_key == key and out_ip == requester_ip
    assert vals == rec.vals
    assert initialized == rec.initialized
    assert last_seq == rec.last_seq
    assert owner_ip == rec.owner_ip
    assert expiry == rec.lease_expiry
    assert _same_message(out_reply, reply)


@settings(max_examples=25, deadline=None)
@given(flow_keys, st.integers(0, 2**32 - 1),
       st.floats(0, 1e12, allow_nan=False))
def test_chain_ack_roundtrip(key, seq, expiry):
    assert unpack_chain_ack(pack_chain_ack(key, seq, expiry)) == \
        (key, seq, expiry)


@settings(max_examples=25, deadline=None)
@given(flow_keys, flow_records())
def test_record_frame_roundtrip(key, rec):
    out_key, out = unpack_record(pack_record(key, rec))
    assert out_key == key
    assert out.vals == rec.vals
    assert out.initialized == rec.initialized
    assert out.last_seq == rec.last_seq
    assert out.owner_ip == rec.owner_ip
    assert out.lease_expiry == rec.lease_expiry
    assert out.snapshot_vals == rec.snapshot_vals
    assert out.snapshot_seqs == {
        slot: rec.snapshot_seqs.get(slot, 0) for slot in rec.snapshot_vals
    }
    assert len(out.pending) == 0  # volatile state never travels


def test_truncated_codec_input_raises_valueerror_not_struct_error():
    """Every strict prefix of a valid frame is a recoverable ValueError."""
    key = FlowKey(1, 2, 17, 10, 20)
    rec = FlowRecord(vals=[7, 8], initialized=True, last_seq=3,
                     owner_ip=9, lease_expiry=100.0)
    rec.snapshot_vals[2] = 5
    rec.snapshot_seqs[2] = 1
    reply = RedPlaneMessage(3, MessageType.REPL_WRITE_ACK, key,
                            piggyback=b"held")
    frames = [
        (unpack_chain_update, pack_chain_update(key, rec, reply, 42)),
        (unpack_chain_ack, pack_chain_ack(key, 3, 100.0)),
        (unpack_record, pack_record(key, rec)),
    ]
    for unpack, data in frames:
        for cut in range(len(data)):
            with pytest.raises(ValueError):
                unpack(data[:cut])


def test_chain_update_with_lying_reply_length_is_malformed():
    key = FlowKey(1, 2, 17, 10, 20)
    rec = FlowRecord(vals=[1], initialized=True, last_seq=1,
                     owner_ip=None, lease_expiry=0.0)
    reply = RedPlaneMessage(1, MessageType.REPL_WRITE_ACK, key)
    data = bytearray(pack_chain_update(key, rec, reply, 7))
    data[31:33] = (9999).to_bytes(2, "big")  # the head's reply_len field
    with pytest.raises(ValueError):
        unpack_chain_update(bytes(data))

"""Tests for the fast-path subsystem: timer wheel, invalidation bus,
flow cache, lane batching, and the bit-identity contract."""

import random

import pytest

from repro import Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.apps.nat import NatApp, install_nat_routes
from repro.fastpath import FLOW_SCOPES, SCOPES, FastPath, InvalidationBus, \
    TimerWheel
from repro.fastpath.bench import identity_report, run_scenario
from repro.fastpath.flowcache import ENTRY_DEPS, Entry
from repro.net.links import Link, SinkNode
from repro.net.packet import Packet
from repro.net.simulator import Event


# -- timer wheel --------------------------------------------------------------


def _drain_wheel(wheel):
    order = []
    while True:
        entry = wheel.pop_due(None)
        if entry is None:
            break
        order.append((entry[0], entry[1]))
    return order


def test_wheel_matches_heap_order_on_mixed_workload():
    """The correctness contract: exactly the heap's (time, seq) order."""
    rng = random.Random(11)
    entries = []
    for seq in range(2000):
        # Calendar-shaped mix: dense near-future, sparse far tail, plus
        # sub-microsecond offsets that land several entries in one bucket.
        time = rng.choice([
            rng.uniform(0.0, 10.0),
            float(rng.randrange(0, 8)),           # exact bucket edges
            rng.uniform(0.0, 10.0) + 1e-4,
            rng.uniform(1000.0, 500000.0),
        ])
        entries.append((time, seq, Event(time, seq, lambda: None)))
    wheel = TimerWheel()
    for time, seq, event in entries:
        wheel.push(time, seq, event)
    expected = sorted((t, s) for t, s, _e in entries)
    assert _drain_wheel(wheel) == expected


def test_wheel_insert_into_draining_bucket():
    """A sub-microsecond relative delay lands in the bucket currently
    being drained and must still fire in (time, seq) position."""
    wheel = TimerWheel()
    wheel.push(1.0, 0, Event(1.0, 0, lambda: None))
    wheel.push(1.5, 1, Event(1.5, 1, lambda: None))
    first = wheel.pop_due(None)
    assert first[0] == 1.0
    # Now 1.2 goes into the bucket being drained, ahead of 1.5.
    wheel.push(1.2, 2, Event(1.2, 2, lambda: None))
    assert [e[0] for e in (wheel.pop_due(None), wheel.pop_due(None))] == \
        [1.2, 1.5]
    assert wheel.pop_due(None) is None


def test_wheel_pop_due_respects_until():
    wheel = TimerWheel()
    for seq, time in enumerate([0.5, 2.5, 7.0]):
        wheel.push(time, seq, Event(time, seq, lambda: None))
    assert wheel.pop_due(1.0)[0] == 0.5
    assert wheel.pop_due(1.0) is None      # 2.5 is beyond until
    assert wheel.pop_due(None)[0] == 2.5   # still there, not lost
    assert len(wheel) == 1


def test_wheel_skips_cancelled_tombstones():
    wheel = TimerWheel()
    events = [Event(float(i), i, lambda: None) for i in range(6)]
    for i, event in enumerate(events):
        wheel.push(float(i), i, event)
    for i in (0, 2, 3):
        events[i].cancel()
    assert [e[1] for e in iter(lambda: wheel.pop_due(None), None)] == \
        [1, 4, 5]


def test_wheel_scheduler_runs_simulation_identically():
    """Simulator(scheduler='wheel') is event-order identical to the heap
    on a full RedPlane run (no fast path involved)."""
    results = [run_scenario(flows=6, packets_per_flow=30, fastpath=False,
                            scheduler=s) for s in ("heap", "wheel")]
    report = identity_report(results[0], results[1])
    assert all(report.values()), report


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        Simulator(scheduler="calendar")


# -- invalidation bus ---------------------------------------------------------


def test_bus_scopes_and_flow_generation():
    bus = InvalidationBus()
    gen = bus.flow_gen
    for scope in SCOPES:
        bus.publish(scope)
        assert bus.counts[scope] == 1
    # Only the flow-relevant scopes bumped the generation.
    assert bus.flow_gen == gen + len(FLOW_SCOPES)
    with pytest.raises(ValueError):
        bus.publish("weather")


def test_register_and_routing_are_not_flow_scopes():
    """Replay reads registers live and route caches use local version
    counters; neither scope may flush flow entries (a per-new-flow state
    install would otherwise wipe the whole cache)."""
    assert "register" not in FLOW_SCOPES
    assert "routing" not in FLOW_SCOPES
    assert FLOW_SCOPES <= set(SCOPES)


def test_entry_deps_are_declared_flow_scopes():
    for kind, dep in ENTRY_DEPS.items():
        assert dep.scopes <= FLOW_SCOPES, kind
    assert Entry("app", None, 0).deps == ENTRY_DEPS["app"].scopes


def test_entry_deps_declare_partition_classes():
    """Every entry kind carries a cohort-safety class (verify RS406)."""
    for kind, dep in ENTRY_DEPS.items():
        assert dep.partition_class in {"flow_local", "app_keyed"}, kind
    assert Entry("transit", None, 0).partition_class == "flow_local"


# -- flow cache ---------------------------------------------------------------


def _nat_sim(fastpath=True, flows=4, packets=25):
    sim = Simulator(seed=9)
    dep = deploy(sim, NatApp)
    install_nat_routes(dep.bed)
    fp = FastPath.install(sim) if fastpath else None
    sender = dep.bed.servers[0]
    dst = dep.bed.externals[0].ip
    t = 0.0
    for _p in range(packets):
        for f in range(flows):
            sim.schedule_at(t, lambda sport: sender.send(
                Packet.udp(sender.ip, dst, sport, 7777)), 6000 + f)
            t += 2.0
    sim.run_until_idle()
    return sim, dep, fp


def test_flow_cache_hits_after_first_packet():
    _sim, _dep, fp = _nat_sim()
    stats = fp.stats()["flow_cache"]
    assert stats["hits"] > 0
    assert stats["hits"] > stats["misses"]
    assert stats["entries"] > 0


def test_chaos_publish_invalidates_flow_entries():
    sim, dep, fp = _nat_sim()
    hits_before = fp.stats()["flow_cache"]["hits"]
    fp.bus.publish("chaos")
    # Same flow again: the stale stamp forces one miss, then hits resume.
    sender = dep.bed.servers[0]
    dst = dep.bed.externals[0].ip
    for _ in range(3):
        sender.send(Packet.udp(sender.ip, dst, 6000, 7777))
        sim.run_until_idle()
    stats = fp.stats()["flow_cache"]
    assert stats["hits"] > hits_before  # hits resumed after re-record
    assert fp.bus.counts["chaos"] == 1


def test_register_publish_does_not_invalidate_flow_entries():
    _sim, _dep, fp = _nat_sim()
    gen = fp.bus.flow_gen
    fp.bus.publish("register")
    assert fp.bus.flow_gen == gen


def test_fastpath_install_is_idempotent_and_uninstalls():
    sim = Simulator(seed=1)
    fp = FastPath.install(sim)
    assert FastPath.install(sim) is fp
    fp.uninstall()
    assert sim.fastpath is None


# -- bit-identity -------------------------------------------------------------


def test_fastpath_run_is_bit_identical_to_reference():
    """The whole contract in one assertion: events, trace ring (types,
    timestamps, field order), and metrics are identical on vs off."""
    off = run_scenario(flows=8, packets_per_flow=40, fastpath=False)
    on = run_scenario(flows=8, packets_per_flow=40, fastpath=True)
    report = identity_report(off, on)
    assert all(report.values()), report
    assert on["fastpath_stats"]["flow_cache"]["hits"] > 0


def test_fastpath_identical_under_sync_counter_writes():
    """A write-per-packet app exercises the replication protocol on
    every replay; identity must hold there too."""
    def run(fastpath):
        sim = Simulator(seed=3)
        dep = deploy(sim, SyncCounterApp)
        if fastpath:
            FastPath.install(sim)
        sender = dep.bed.externals[0]
        receiver = dep.bed.servers[0]
        for i in range(60):
            sim.schedule(i * 10.0, lambda: sender.send(
                Packet.udp(sender.ip, receiver.ip, 5555, 7777)))
        sim.run_until_idle()
        ring = [(r.ts, r.type, tuple(r.fields.items()))
                for r in sim.tracer.tail(len(sim.tracer))]
        metrics = {k: v for k, v in sim.metrics.snapshot().items()
                   if not k.startswith("fastpath.")}
        return sim.events_executed, ring, metrics

    assert run(False) == run(True)


def test_impaired_link_falls_back_to_reference_path():
    """Lanes decline lossy/reordering links; identity holds because the
    reference path (and its seeded RNG draws) executes either way."""
    def run(fastpath):
        sim = Simulator(seed=21)
        a = SinkNode(sim, "a")
        b = SinkNode(sim, "b")
        Link(sim, a.new_port(), b.new_port(), loss_rate=0.3)
        if fastpath:
            FastPath.install(sim)
        for _ in range(200):
            a.ports[0].send(Packet.udp(1, 2, 3, 4))
        sim.run_until_idle()
        return len(b.received), dict(sim.counters)

    assert run(False) == run(True)
    # And the lane really did decline: no batched deliveries, no lanes
    # doing work on a lossy link.
    sim = Simulator(seed=21)
    a = SinkNode(sim, "a")
    b = SinkNode(sim, "b")
    Link(sim, a.new_port(), b.new_port(), loss_rate=0.3)
    fp = FastPath.install(sim)
    a.ports[0].send(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert fp.stats()["lanes"]["batched_deliveries"] == 0


# -- lane batching ------------------------------------------------------------


def test_same_edge_batching_on_infinite_bandwidth_link():
    """Zero serialization + back-to-back sends in one event coalesce
    into one delivery event; results stay identical to the reference."""
    def run(fastpath):
        sim = Simulator(seed=2)
        a = SinkNode(sim, "a")
        b = SinkNode(sim, "b")
        Link(sim, a.new_port(), b.new_port(), latency_us=1.0,
             bandwidth_gbps=float("inf"))
        fp = FastPath.install(sim) if fastpath else None

        def burst():
            for i in range(5):
                pkt = Packet.udp(1, 2, 3, 4)
                pkt.meta["i"] = i
                a.ports[0].send(pkt)

        sim.schedule(1.0, burst)
        sim.run_until_idle()
        order = [pkt.meta["i"] for pkt in b.received]
        times = list(b.receive_times)
        return order, times, fp

    ref_order, ref_times, _ = run(False)
    fp_order, fp_times, fp = run(True)
    assert fp_order == ref_order
    assert fp_times == ref_times
    assert fp.batched_deliveries == 4  # 5 sends, 1 event, 4 coalesced


def test_serializing_link_never_batches():
    """Consecutive transmits on a finite-bandwidth link land at strictly
    increasing instants, so coalescing never engages (by design — see
    docs/PERFORMANCE.md)."""
    sim = Simulator(seed=2)
    a = SinkNode(sim, "a")
    b = SinkNode(sim, "b")
    Link(sim, a.new_port(), b.new_port(), latency_us=1.0,
         bandwidth_gbps=10.0)
    fp = FastPath.install(sim)
    for _ in range(10):
        a.ports[0].send(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert len(b.received) == 10
    assert fp.batched_deliveries == 0


# -- CLI ----------------------------------------------------------------------


def test_tools_fastpath_stats_and_diff(capsys):
    from repro.tools.runner import main as tools_main

    assert tools_main(["fastpath", "--flows", "4", "--packets", "20"]) == 0
    out = capsys.readouterr().out
    assert "flow cache" in out and "invalidations" in out

    assert tools_main(["fastpath", "--diff", "--flows", "4",
                       "--packets", "20"]) == 0
    out = capsys.readouterr().out
    assert "identical" in out and "DIVERGED" not in out


def test_tools_bench_section_parser():
    from repro.tools.runner import _parse_sections

    bar = "=" * 74
    text = "\n".join([
        "", bar, "Fig 1 — demo", bar, "row a", "row b", "",
        "", bar, "Fig 2 — other", bar, "row c", "",
    ])
    sections = _parse_sections(text)
    assert sections == {
        "Fig 1 — demo": ["row a", "row b"],
        "Fig 2 — other": ["row c"],
    }

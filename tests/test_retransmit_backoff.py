"""Retransmission backoff: geometric growth, the cap, and telemetry.

§5.2's reliability layer resends unacknowledged request copies on a
timeout that doubles per resend (``retransmit_backoff``) up to
``retransmit_timeout_max_us``, so a request stranded behind a long
outage cannot generate an unbounded duplicate storm. These tests drive
the ``partitioned_store_head`` campaign (a 150ms egress blackhole — far
longer than the cap-reaching backoff ladder) and check the ladder from
the RETRANSMIT trace stream, then check the quiet path and the
``redplane.resends_per_request`` histogram both ways.
"""

import pytest

from repro.chaos.campaigns import CAMPAIGNS
from repro.chaos.runner import run_campaign_result
from repro.core.engine import RedPlaneConfig
from repro.net import constants
from repro.telemetry import schema, trace
from repro.telemetry.metrics import Histogram
from repro.telemetry.trace import read_jsonl
from repro.tools.runner import demo_run

_CONFIG = RedPlaneConfig()


@pytest.fixture(scope="module")
def partitioned(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("backoff") / "trace.jsonl")
    result = run_campaign_result(
        CAMPAIGNS["partitioned_store_head"], seed=11, trace_path=path)
    return result, read_jsonl(path)


def _resend_chains(records):
    """Reconstruct resend ladders by following parent -> uid links.

    Every RETRANSMIT record names the copy it supersedes (``parent``)
    and the fresh copy it sent (``uid``), so each ladder is a linked
    list rooted at an original request uid.
    """
    by_parent = {}
    children = set()
    for rec in records:
        if rec.type != trace.RETRANSMIT:
            continue
        by_parent[rec.fields["parent"]] = rec
        children.add(rec.fields["uid"])
    chains = []
    for parent, rec in by_parent.items():
        if parent in children:
            continue  # not a ladder root
        chain = []
        while rec is not None:
            chain.append(rec)
            rec = by_parent.get(rec.fields["uid"])
        chains.append(chain)
    return chains


def test_campaign_produces_resend_ladders(partitioned):
    result, records = partitioned
    chains = _resend_chains(records)
    assert chains, "150ms blackhole produced no retransmissions"
    total = sum(len(c) for c in chains)
    assert total == int(result.metrics.total("redplane.retransmissions"))


def test_backoff_is_geometric_and_capped(partitioned):
    _result, records = partitioned
    chains = _resend_chains(records)
    for chain in chains:
        timeouts = [rec.fields["timeout_us"] for rec in chain]
        # The first expiry fires at the configured base timeout...
        assert timeouts[0] == pytest.approx(_CONFIG.retransmit_timeout_us)
        # ...and each later one at exactly min(prev * backoff, cap).
        for prev, cur in zip(timeouts, timeouts[1:]):
            expected = min(prev * _CONFIG.retransmit_backoff,
                           _CONFIG.retransmit_timeout_max_us)
            assert cur == pytest.approx(expected)
        assert max(timeouts) <= _CONFIG.retransmit_timeout_max_us


def test_long_outage_reaches_the_cap(partitioned):
    _result, records = partitioned
    chains = _resend_chains(records)
    capped = [
        c for c in chains
        if any(r.fields["timeout_us"] == _CONFIG.retransmit_timeout_max_us
               for r in c)
    ]
    # 48us doubling reaches the 5ms cap within ~10ms; the outage is 150ms.
    assert capped, "no ladder reached retransmit_timeout_max_us"


def test_resends_histogram_counts_acknowledged_requests(partitioned):
    result, _records = partitioned
    resend_count = 0
    resend_max = 0.0
    for inst in result.metrics.instruments("redplane.resends_per_request"):
        assert isinstance(inst, Histogram)
        resend_count += inst.count
        if inst.count:
            resend_max = max(resend_max, inst.summary()["max"])
    ack_count = sum(
        inst.count
        for inst in result.metrics.instruments("redplane.ack_rtt_us"))
    # One observation per released request copy, same event as the RTT.
    assert resend_count == ack_count > 0
    assert resend_max >= 1.0, "a healed outage must show resent requests"


def test_resends_histogram_quiet_without_faults():
    sim = demo_run(seed=7, packets=10, fail_owner=False)
    count = 0
    for inst in sim.metrics.instruments("redplane.resends_per_request"):
        assert isinstance(inst, Histogram)
        count += inst.count
        if inst.count:
            assert inst.summary()["max"] == 0.0
    assert count > 0
    assert sim.metrics.total("redplane.retransmissions") == 0


def test_schema_declares_resends_histogram():
    spec = next(s for s in schema.METRICS
                if s.name == "redplane.resends_per_request")
    assert spec.kind == "histogram"
    assert spec.labels == frozenset({"switch"})
    # Declared before the redplane.* counter wildcard, or the verifier
    # would judge the histogram against the wrong kind.
    names = [s.name for s in schema.METRICS]
    assert (names.index("redplane.resends_per_request")
            < names.index("redplane.*"))


def test_base_timeout_is_far_below_the_packet_gap():
    # The protocol's loss-recovery latency hides inside the inter-packet
    # gap of every campaign workload: a dropped write is resent and
    # acknowledged before the flow's next packet, so drops never reorder.
    assert constants.RETRANSMIT_TIMEOUT_US == _CONFIG.retransmit_timeout_us
    assert _CONFIG.retransmit_timeout_us < 1_000.0

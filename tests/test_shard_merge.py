"""Merge-layer units: ghost subtraction, peak replay, uid remapping."""

from __future__ import annotations

import pytest

from repro.shard.merge import (
    PEAK_GAUGE_SOURCES,
    UID_FIELDS,
    MergeError,
    _replay_peak_gauges,
    strip_non_identity,
    summary_results,
)


def _counts(events, records, flows, ghost=False):
    return {
        "ghost": ghost,
        "events_executed": events,
        "records_emitted": records,
        "rng_draws": 0,
        "flows_injected": flows,
        "final_now": 100.0,
    }


def test_summary_results_ghost_subtraction():
    """N shards each replay the shared work; the ghost run measures
    exactly that shared part, so sum - (N-1)*ghost is the reference."""
    shards = [_counts(1000, 400, 30), _counts(900, 350, 20)]
    ghost = _counts(500, 200, 0, ghost=True)
    merged = summary_results(shards, ghost)
    assert merged["events"] == 1000 + 900 - 500
    assert merged["records_emitted"] == 400 + 350 - 200
    assert merged["flows_injected"] == 50
    assert merged["num_shards"] == 2
    assert merged["final_now"] == 100.0


def test_summary_results_requires_a_ghost():
    with pytest.raises(MergeError):
        summary_results([_counts(1, 1, 1)], _counts(1, 1, 0))


def test_uid_fields_cover_every_correlation_slot():
    # 'cause' is the ack's originating-request uid — forgetting it left
    # unremapped uids in merged traces once; keep the contract explicit.
    assert {"uid", "parent", "req_uid", "parent_uid", "cause"} <= UID_FIELDS


def test_strip_non_identity_drops_bookkeeping_families():
    snap = {
        "counters": {
            "packets_total": 7.0,
            "shard.flows_owned": 3.0,
            "fastpath.hits": 5.0,
            "observe.heartbeats": 1.0,
        },
        "gauges": {"switch.buffer_peak_bytes{sw=agg1}": 240.0},
        "histograms": {},
    }
    stripped = strip_non_identity(snap)
    assert set(stripped["counters"]) == {"packets_total"}
    assert "switch.buffer_peak_bytes{sw=agg1}" in stripped["gauges"]


# -- peak-gauge replay ---------------------------------------------------------

SRC = "switch.buffer_occupancy_bytes{switch=agg1}"
PEAK = "switch.buffer_peak_bytes{switch=agg1}"


def _shard(shard, flow_ranks, owned, ops):
    return {
        "shard": shard,
        "flow_ranks": list(flow_ranks),
        "owned_flow_ranks": list(owned),
        "gauge_ops": [list(o) for o in ops],
    }


def test_peak_replay_reconstructs_the_interleaved_maximum():
    """Each shard alone peaks at 100; interleaved in global time order
    the occupancy stacks to 160 — the reference's peak. A max-over-
    shards merge would report 100 and be wrong."""
    # (describe, ts, rank, op_idx, op, amount); ranks 1 and 2 are flow
    # roots owned by shards 0 and 1 respectively.
    s0 = _shard(0, {1, 2}, {1}, [
        (SRC, 1.0, 1, 0, "add", 100.0),
        (SRC, 4.0, 1, 1, "add", -100.0),
    ])
    s1 = _shard(1, {1, 2}, {2}, [
        (SRC, 2.0, 2, 0, "add", 60.0),
        (SRC, 3.0, 2, 1, "add", -60.0),
    ])
    ghost = _shard(0, {1, 2}, set(), [])
    ghost["ghost"] = True
    peaks = _replay_peak_gauges([s0, s1], ghost)
    assert peaks == {PEAK: 160.0}


def test_peak_replay_set_resets_the_level():
    s0 = _shard(0, {1}, {1}, [
        (SRC, 1.0, 1, 0, "add", 50.0),
        (SRC, 2.0, 1, 1, "set", 10.0),
        (SRC, 3.0, 1, 2, "add", 5.0),
    ])
    ghost = _shard(0, {1}, set(), [])
    ghost["ghost"] = True
    peaks = _replay_peak_gauges([s0], ghost)
    assert peaks == {PEAK: 50.0}


def test_peak_replay_validates_shared_ops_across_replicas():
    shared_op = (SRC, 1.0, 0, 0, "add", 10.0)  # rank 0 is not a flow root
    s0 = _shard(0, {5}, {5}, [shared_op])
    s1 = _shard(1, {5}, set(), [(SRC, 1.0, 0, 0, "add", 999.0)])
    ghost = _shard(0, {5}, set(), [shared_op])
    ghost["ghost"] = True
    with pytest.raises(MergeError, match="diverge"):
        _replay_peak_gauges([s0, s1], ghost)


def test_peak_sources_table_names_real_instruments():
    for peak_name, source_name in PEAK_GAUGE_SOURCES.items():
        assert peak_name != source_name
        assert peak_name.startswith("switch.")

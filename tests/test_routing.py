"""Unit tests for LPM routing and ECMP next-hop selection."""

import pytest

from repro.net.links import Link, SinkNode
from repro.net.packet import FlowKey, Packet, ip_aton
from repro.net.routing import L3Switch, RoutingTable, Route, ecmp_hash
from repro.net.simulator import Simulator


def test_lpm_prefers_longest_prefix():
    sim = Simulator()
    sw = L3Switch(sim, "sw")
    sink_wide = SinkNode(sim, "wide")
    sink_narrow = SinkNode(sim, "narrow")
    wide = Link(sim, sw.new_port(), sink_wide.new_port())
    narrow = Link(sim, sw.new_port(), sink_narrow.new_port())
    sw.table.add(ip_aton("10.0.0.0"), 8, [sw.ports[0]])
    sw.table.add(ip_aton("10.0.1.0"), 24, [sw.ports[1]])

    route = sw.table.lookup(ip_aton("10.0.1.5"))
    assert route.mask_len == 24
    route = sw.table.lookup(ip_aton("10.9.9.9"))
    assert route.mask_len == 8


def test_default_route_matches_everything():
    table = RoutingTable()
    sim = Simulator()
    sink = SinkNode(sim, "s")
    port = sink.new_port()
    table.add(0, 0, [port])
    assert table.lookup(ip_aton("203.0.113.9")).ports == [port]


def test_route_requires_ports():
    table = RoutingTable()
    with pytest.raises(ValueError):
        table.add(0, 0, [])


def test_ecmp_hash_symmetric_in_ports():
    forward = FlowKey(1, 2, 6, 1000, 80)
    reverse = FlowKey(2, 1, 6, 80, 1000)
    assert ecmp_hash(forward) == ecmp_hash(reverse)


def test_ecmp_hash_ignores_rewritten_addresses():
    # NAT rewrites IPs asymmetrically; the hash must not change.
    pre = FlowKey(ip_aton("10.0.1.11"), ip_aton("172.16.0.11"), 6, 7000, 80)
    post = FlowKey(ip_aton("192.0.2.1"), ip_aton("172.16.0.11"), 6, 7000, 80)
    assert ecmp_hash(pre) == ecmp_hash(post)


def test_ecmp_spreads_flows():
    keys = [FlowKey(1, 2, 17, 10000 + i, 80) for i in range(512)]
    buckets = [ecmp_hash(k) % 2 for k in keys]
    ones = sum(buckets)
    assert 150 < ones < 362  # roughly balanced across two next hops


def test_forwarding_decrements_ttl_and_drops_at_zero():
    sim = Simulator()
    sw = L3Switch(sim, "sw")
    sink = SinkNode(sim, "sink")
    Link(sim, sw.new_port(), sink.new_port())
    sw.table.add(0, 0, [sw.ports[0]])

    pkt = Packet.udp(1, 2, 3, 4)
    pkt.ip.ttl = 2
    sw.forward(pkt)
    sim.run_until_idle()
    assert len(sink.received) == 1
    assert sink.received[0].ip.ttl == 1

    expired = Packet.udp(1, 2, 3, 4)
    expired.ip.ttl = 1
    sw.forward(expired)
    sim.run_until_idle()
    assert len(sink.received) == 1
    assert sw.dropped_ttl == 1


def test_no_route_drops():
    sim = Simulator()
    sw = L3Switch(sim, "sw")
    pkt = Packet.udp(ip_aton("9.9.9.9"), ip_aton("8.8.8.8"), 1, 2)
    sw.forward(pkt)
    sim.run_until_idle()
    assert sw.dropped_no_route == 1


def test_belief_excludes_down_next_hops():
    sim = Simulator()
    sw = L3Switch(sim, "sw")
    sink_a = SinkNode(sim, "a")
    sink_b = SinkNode(sim, "b")
    Link(sim, sw.new_port(), sink_a.new_port())
    Link(sim, sw.new_port(), sink_b.new_port())
    sw.table.add(0, 0, [sw.ports[0], sw.ports[1]])

    sw.set_port_belief(sw.ports[0], False)
    for i in range(20):
        sw.forward(Packet.udp(1, 2, 100 + i, 4))
    sim.run_until_idle()
    assert len(sink_a.received) == 0
    assert len(sink_b.received) == 20

    sw.set_port_belief(sw.ports[0], True)
    sw.set_port_belief(sw.ports[1], False)
    for i in range(20):
        sw.forward(Packet.udp(1, 2, 100 + i, 4))
    sim.run_until_idle()
    assert len(sink_a.received) == 20


def test_all_next_hops_down_counts_drop():
    sim = Simulator()
    sw = L3Switch(sim, "sw")
    sink = SinkNode(sim, "a")
    Link(sim, sw.new_port(), sink.new_port())
    sw.table.add(0, 0, [sw.ports[0]])
    sw.set_port_belief(sw.ports[0], False)
    sw.forward(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert sw.dropped_no_next_hop == 1


def test_select_port_is_deterministic_per_flow():
    sim = Simulator()
    sw = L3Switch(sim, "sw")
    a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
    Link(sim, sw.new_port(), a.new_port())
    Link(sim, sw.new_port(), b.new_port())
    sw.table.add(0, 0, [sw.ports[0], sw.ports[1]])
    pkt = Packet.udp(1, 2, 33, 44)
    first = sw.select_port(pkt)
    for _ in range(10):
        assert sw.select_port(pkt) is first

"""Tests for the Appendix-D testbed topology and failure injection."""

import itertools

import pytest

from repro.net import Simulator, build_testbed, Packet
from repro.net.topology import Topology
from repro.net.links import SinkNode


def test_testbed_inventory():
    sim = Simulator()
    bed = build_testbed(sim)
    assert len(bed.cores) == 2
    assert len(bed.aggs) == 2
    assert len(bed.tors) == 2
    assert len(bed.servers) == 4
    assert len(bed.externals) == 4
    assert len(bed.store_servers) == 3


def test_all_host_pairs_reachable():
    sim = Simulator(seed=1)
    bed = build_testbed(sim)
    hosts = bed.servers + bed.externals + bed.store_servers
    received = {}
    for host in hosts:
        received[host.name] = []
        host.default_handler = (
            lambda pkt, name=host.name: received[name].append(pkt)
        )
    for src, dst in itertools.permutations(hosts, 2):
        src.send(Packet.udp(src.ip, dst.ip, 1111, 2222))
    sim.run_until_idle()
    for host in hosts:
        assert len(received[host.name]) == len(hosts) - 1, host.name


def test_agg_failure_reroutes_after_detection():
    sim = Simulator(seed=2)
    bed = build_testbed(sim)
    src, dst = bed.externals[0], bed.servers[0]
    got = []
    dst.default_handler = got.append

    bed.topology.fail_node(bed.aggs[0])
    # Before detection, some flows black-hole; after detection all arrive.
    sim.run(until=sim.now + 400_000)
    for i in range(30):
        src.send(Packet.udp(src.ip, dst.ip, 3000 + i, 2222))
    sim.run_until_idle()
    assert len(got) == 30


def test_agg_failure_drops_traffic_before_detection():
    sim = Simulator(seed=3)
    bed = build_testbed(sim)
    src, dst = bed.externals[0], bed.servers[0]
    got = []
    dst.default_handler = got.append
    bed.topology.fail_node(bed.aggs[0], detect_delay_us=1_000_000)
    # Immediately after the failure, flows hashed to agg1 are lost.
    for i in range(40):
        src.send(Packet.udp(src.ip, dst.ip, 3000 + i, 2222))
    sim.run(until=500_000)
    assert 0 < len(got) < 40


def test_recovery_restores_paths():
    sim = Simulator(seed=4)
    bed = build_testbed(sim)
    src, dst = bed.externals[0], bed.servers[0]
    got = []
    dst.default_handler = got.append
    bed.topology.fail_node(bed.aggs[0])
    sim.run(until=sim.now + 400_000)
    bed.topology.recover_node(bed.aggs[0])
    sim.run(until=sim.now + 400_000)
    for i in range(30):
        src.send(Packet.udp(src.ip, dst.ip, 4000 + i, 2222))
    sim.run_until_idle()
    assert len(got) == 30


def test_link_failure_and_recovery():
    sim = Simulator(seed=5)
    bed = build_testbed(sim)
    link = bed.topology.links[0]  # core1 <-> agg1
    bed.topology.fail_link(link)
    assert not link.up
    bed.topology.recover_link(link)
    assert link.up


def test_duplicate_node_names_rejected():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_node(SinkNode(sim, "x"))
    with pytest.raises(ValueError):
        topo.add_node(SinkNode(sim, "x"))


def test_host_by_ip():
    sim = Simulator()
    bed = build_testbed(sim)
    host = bed.servers[0]
    assert bed.host_by_ip(host.ip) is host
    with pytest.raises(KeyError):
        bed.host_by_ip(0xDEADBEEF)


def test_store_factory_used():
    from repro.net.hosts import Host

    class MyStore(Host):
        pass

    sim = Simulator()
    bed = build_testbed(sim, store_factory=lambda s, n, ip: MyStore(s, n, ip))
    assert all(isinstance(st, MyStore) for st in bed.store_servers)

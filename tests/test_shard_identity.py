"""The identity contract: a sharded run is byte-identical to the
single-process reference.

This is the committed acceptance gate for the shard subsystem: the NAT
quickstart and a chaos campaign, split across 2 workers, must reproduce
the reference's records, trace ring, and metrics (minus the per-shard
``shard.*`` bookkeeping) exactly — same bytes, not approximately.
"""

from __future__ import annotations

import pytest

from repro.shard.runner import resolve, run_identity, run_sharded


def _assert_identical(out):
    report = out["report"]
    failed = [axis for axis, same in report.items() if not same]
    assert out["identical"], f"diverging axes: {failed} ({report})"


@pytest.mark.parametrize("scenario", ["nat_quickstart", "chaos:single_failover"])
def test_two_shard_run_is_byte_identical(scenario):
    _assert_identical(run_identity(scenario, workers=2))


def test_two_shard_nat_steady_splits_flows_and_stays_identical():
    """nat_steady is the only-real-multi-shard case in the gate: its 12
    flows hash onto both workers, so the merge actually interleaves."""
    out = run_identity("nat_steady", workers=2)
    _assert_identical(out)
    flows = out["merged"]["flows_per_shard"]
    assert len(flows) == 2 and all(f > 0 for f in flows), flows


def test_four_shard_nat_steady_is_byte_identical():
    out = run_identity("nat_steady", workers=4)
    _assert_identical(out)
    assert len(out["merged"]["flows_per_shard"]) == 4


def test_quickstart_two_shards_identical_with_fastpath():
    _assert_identical(run_identity("quickstart", workers=2, fastpath=True))


def test_merged_extras_are_ghost_subtracted():
    """Scenario return values come back as reference totals, not
    shard-0-local counts."""
    config = resolve("nat_steady", 2)
    merged = run_sharded(config)
    # 12 flows x 40 packets, all translated in steady state.
    assert merged["extra"]["flows"] == 12
    assert merged["extra"]["packets"] == 480


def test_identity_requires_rng_silence():
    out = run_identity("nat_quickstart", workers=2)
    assert out["report"]["rng_silent"]
    assert out["merged"]["rng_draws"] == 0

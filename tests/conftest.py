"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import Simulator, deploy
from repro.apps import NatApp, install_nat_routes
from repro.apps.counter import SyncCounterApp


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def counter_deployment(sim):
    """A testbed running the sync per-flow counter on both agg switches."""
    return deploy(sim, SyncCounterApp)


@pytest.fixture
def nat_deployment(sim):
    """A testbed running the RedPlane NAT, with public routes installed."""
    dep = deploy(sim, NatApp)
    install_nat_routes(dep.bed)
    return dep


def drain(sim: Simulator, max_events: int = 5_000_000) -> None:
    """Run the simulation until no events remain."""
    sim.run_until_idle(max_events=max_events)

"""Tests for trace generation and the measurement harness."""

import struct

from repro import Simulator, deploy
from repro.apps import GTP_PORT, OP_UPDATE, is_signaling
from repro.apps.counter import SyncCounterApp
from repro.workloads.traces import (
    SIZE_BUCKETS,
    epc_trace,
    five_tuple_trace,
    kv_trace,
    vlan_trace,
)
from repro.workloads.harness import EchoResponder, RttProbe


def test_five_tuple_trace_determinism_and_sizes():
    a = five_tuple_trace(500, 20, 1, 2, seed=3)
    b = five_tuple_trace(500, 20, 1, 2, seed=3)
    assert [(e.time_us, e.pkt.byte_size()) for e in a] == [
        (e.time_us, e.pkt.byte_size()) for e in b
    ]
    sizes = {e.pkt.byte_size() for e in a}
    valid = {max(s, 60) for s, _w in SIZE_BUCKETS}
    assert sizes <= valid
    assert len(sizes) > 2  # the mix is actually bimodal-ish


def test_five_tuple_trace_zipf_skew():
    events = five_tuple_trace(2000, 50, 1, 2, seed=1)
    counts = {}
    for event in events:
        counts[event.flow] = counts.get(event.flow, 0) + 1
    top = max(counts.values())
    assert top > 2000 / 50 * 3  # far above uniform share


def test_flow_stagger_limits_early_flows():
    events = five_tuple_trace(1000, 100, 1, 2, flow_stagger_us=1000.0, seed=2)
    early = [e.flow for e in events if e.time_us < 1000.0]
    assert max(early) == 0  # only flow 0 eligible in the first window


def test_trace_ids_monotonic_and_embedded():
    events = five_tuple_trace(100, 5, 1, 2, seed=0)
    assert [e.trace_id for e in events] == list(range(100))
    assert all(e.pkt.ip.identification == e.trace_id for e in events)


def test_epc_trace_signaling_ratio():
    events = epc_trace(1800, 10, 1, 2, seed=4)
    signaling = [e for e in events if is_signaling(e.pkt)]
    data = [e for e in events if not is_signaling(e.pkt)]
    assert len(signaling) == 1800 // 18
    assert len(signaling) + len(data) == 1800
    assert all(e.pkt.l4.dport == GTP_PORT for e in events)


def test_epc_signaling_carries_fresh_teid():
    events = epc_trace(36, 1, 1, 2, seed=4)
    sig = [e for e in events if is_signaling(e.pkt)]
    teids = [struct.unpack_from("!BII", e.pkt.payload, 0)[2] for e in sig]
    assert teids == sorted(teids) and len(set(teids)) == len(teids)


def test_kv_trace_update_ratio():
    events = kv_trace(3000, 100, 1, update_ratio=0.25, seed=5)
    updates = sum(1 for e in events if e.pkt.payload[0] == OP_UPDATE)
    assert 0.20 < updates / 3000 < 0.30
    assert all(e.pkt.l4.dport == 5300 for e in events)


def test_kv_trace_ratio_bounds():
    import pytest

    with pytest.raises(ValueError):
        kv_trace(10, 10, 1, update_ratio=1.5)


def test_vlan_trace_tags():
    events = vlan_trace(300, vlans=[10, 20], flows_per_vlan=5, src_ip=1,
                        dst_ip=2, seed=6)
    tags = {e.pkt.vlan for e in events}
    assert tags == {10, 20}


def test_rtt_probe_and_echo(sim, counter_deployment):
    dep = counter_deployment
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    EchoResponder(s11)
    probe = RttProbe(e1)
    events = five_tuple_trace(200, 10, e1.ip, s11.ip, seed=7,
                              flow_stagger_us=500.0)
    probe.replay(events)
    sim.run_until_idle()
    assert len(probe.rtts_us) == 200
    assert probe.lost == 0
    assert all(rtt > 0 for rtt in probe.rtts_us)

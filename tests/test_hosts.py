"""Tests for the Host dispatch layer."""

import pytest

from repro.net.hosts import Host
from repro.net.links import Link
from repro.net.packet import Packet
from repro.net.simulator import Simulator


def pair(sim):
    a = Host(sim, "a", 1)
    b = Host(sim, "b", 2)
    Link(sim, a.nic, b.nic)
    return a, b


def test_bound_handler_receives(sim=None):
    sim = Simulator()
    a, b = pair(sim)
    got = []
    b.bind(80, got.append)
    a.send(Packet.udp(1, 2, 999, 80, payload=b"x"))
    sim.run_until_idle()
    assert len(got) == 1
    assert b.rx_packets == 1 and a.tx_packets == 1


def test_default_handler_fallback():
    sim = Simulator()
    a, b = pair(sim)
    got = []
    b.default_handler = got.append
    a.send(Packet.udp(1, 2, 999, 12345))
    sim.run_until_idle()
    assert len(got) == 1


def test_unhandled_packets_collect_in_received():
    sim = Simulator()
    a, b = pair(sim)
    a.send(Packet.udp(1, 2, 999, 12345))
    sim.run_until_idle()
    assert len(b.received) == 1


def test_wrong_destination_dropped():
    sim = Simulator()
    a, b = pair(sim)
    a.send(Packet.udp(1, 99, 1, 2))
    sim.run_until_idle()
    assert b.rx_packets == 0
    assert sim.counters.get("b.drops.wrong_dst") == 1


def test_extra_ips_accepted():
    sim = Simulator()
    a, b = pair(sim)
    b.extra_ips.add(99)
    got = []
    b.default_handler = got.append
    a.send(Packet.udp(1, 99, 1, 2))
    sim.run_until_idle()
    assert len(got) == 1


def test_double_bind_rejected():
    sim = Simulator()
    host = Host(sim, "h", 1)
    host.bind(80, lambda pkt: None)
    with pytest.raises(ValueError):
        host.bind(80, lambda pkt: None)
    host.unbind(80)
    host.bind(80, lambda pkt: None)  # rebindable after unbind


def test_send_adds_stack_delay():
    sim = Simulator()
    a, b = pair(sim)
    times = []
    b.default_handler = lambda pkt: times.append(sim.now)
    a.send(Packet.udp(1, 2, 1, 2))
    sim.run_until_idle()
    assert times[0] > 0.4  # host stack processing + link

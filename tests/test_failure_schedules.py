"""Tests for the failure-scenario library."""

import pytest

from repro import Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.net.packet import Packet
from repro.workloads.failures import FailureSchedule


def steady_traffic(sim, dep, n, gap_us=100_000.0):
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    got = []
    s11.default_handler = got.append
    for i in range(n):
        sim.schedule(i * gap_us, e1.send, Packet.udp(e1.ip, s11.ip, 5555, 7777))
    return got


def test_single_failover_schedule(sim, counter_deployment):
    dep = counter_deployment
    schedule = FailureSchedule(dep, detect_delay_us=50_000.0)
    schedule.single_failover(fail_at_us=250_000.0, recover_at_us=800_000.0)
    got = steady_traffic(sim, dep, 12)
    sim.run(until=1_500_000)
    sim.run_until_idle()
    events = schedule.summary()
    assert [(k, t) for t, k, _n in events] == [
        ("fail_node", 250_000.0), ("recover_node", 800_000.0)]
    # Traffic continued across the failure (state migrated).
    assert len(got) >= 10


def test_flapping_link_schedule(sim, counter_deployment):
    dep = counter_deployment
    schedule = FailureSchedule(dep, detect_delay_us=1_000.0)
    schedule.flapping_link(first_fail_us=10_000.0, period_us=20_000.0, flaps=3)
    sim.run(until=100_000)
    kinds = [k for _t, k, _n in schedule.summary()]
    assert kinds.count("fail_link") == 3
    assert kinds.count("recover_link") == 3
    link = dep.bed.topology.links[0]
    assert link.up  # last action was a recovery


def test_rolling_failures_migrate_state(sim, counter_deployment):
    dep = counter_deployment
    schedule = FailureSchedule(dep, detect_delay_us=20_000.0)
    schedule.rolling_switch_failures(start_us=200_000.0, gap_us=400_000.0)
    got = steady_traffic(sim, dep, 15)
    sim.run(until=2_000_000)
    sim.run_until_idle()
    kinds = [k for _t, k, _n in schedule.summary()]
    assert kinds.count("fail_node") == 2   # both aggs failed at some point
    assert kinds.count("recover_node") == 2
    key = Packet.udp(dep.bed.externals[0].ip, dep.bed.servers[0].ip,
                     5555, 7777).flow_key()
    # The count survived both migrations: the store's total covers every
    # delivered packet (it may exceed it — an update can commit while its
    # output is lost in a failure window, the §4.2 anomaly — but it can
    # never be below what was observably delivered, and never above the
    # offered packet count).
    rec = dep.stores[0].records[key]
    assert len(got) <= rec.vals[0] <= 15
    assert len(got) >= 10  # the workload largely survived the rolling faults


def test_rack_failure_takes_tor_and_store(sim, counter_deployment):
    dep = counter_deployment
    schedule = FailureSchedule(dep)
    schedule.rack_failure(time_us=1_000.0, rack=1)
    sim.run(until=10_000)
    assert dep.bed.tors[0].failed
    assert dep.stores[0].failed
    names = {n for _t, _k, n in schedule.summary()}
    assert names == {"tor1", "st1"}

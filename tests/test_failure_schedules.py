"""Tests for the failure-scenario library."""

import pytest

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.chaos.workload import CounterWorkload, EchoCounterApp
from repro.model.linearizability import check_counter_history
from repro.net.links import LinkImpairment
from repro.net.packet import Packet
from repro.telemetry import trace as tt
from repro.workloads.failures import FailureSchedule, ScheduleError


def steady_traffic(sim, dep, n, gap_us=100_000.0):
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    got = []
    s11.default_handler = got.append
    for i in range(n):
        sim.schedule(i * gap_us, e1.send, Packet.udp(e1.ip, s11.ip, 5555, 7777))
    return got


def test_single_failover_schedule(sim, counter_deployment):
    dep = counter_deployment
    schedule = FailureSchedule(dep, detect_delay_us=50_000.0)
    schedule.single_failover(fail_at_us=250_000.0, recover_at_us=800_000.0)
    got = steady_traffic(sim, dep, 12)
    sim.run(until=1_500_000)
    sim.run_until_idle()
    events = schedule.summary()
    assert [(k, t) for t, k, _n in events] == [
        ("fail_node", 250_000.0), ("recover_node", 800_000.0)]
    # Traffic continued across the failure (state migrated).
    assert len(got) >= 10


def test_flapping_link_schedule(sim, counter_deployment):
    dep = counter_deployment
    schedule = FailureSchedule(dep, detect_delay_us=1_000.0)
    schedule.flapping_link(first_fail_us=10_000.0, period_us=20_000.0, flaps=3)
    sim.run(until=100_000)
    kinds = [k for _t, k, _n in schedule.summary()]
    assert kinds.count("fail_link") == 3
    assert kinds.count("recover_link") == 3
    link = dep.bed.topology.links[0]
    assert link.up  # last action was a recovery


def test_rolling_failures_migrate_state(sim, counter_deployment):
    dep = counter_deployment
    schedule = FailureSchedule(dep, detect_delay_us=20_000.0)
    schedule.rolling_switch_failures(start_us=200_000.0, gap_us=400_000.0)
    got = steady_traffic(sim, dep, 15)
    sim.run(until=2_000_000)
    sim.run_until_idle()
    kinds = [k for _t, k, _n in schedule.summary()]
    assert kinds.count("fail_node") == 2   # both aggs failed at some point
    assert kinds.count("recover_node") == 2
    key = Packet.udp(dep.bed.externals[0].ip, dep.bed.servers[0].ip,
                     5555, 7777).flow_key()
    # The count survived both migrations: the store's total covers every
    # delivered packet (it may exceed it — an update can commit while its
    # output is lost in a failure window, the §4.2 anomaly — but it can
    # never be below what was observably delivered, and never above the
    # offered packet count).
    rec = dep.stores[0].records[key]
    assert len(got) <= rec.vals[0] <= 15
    assert len(got) >= 10  # the workload largely survived the rolling faults


def test_flapping_link_history_linearizable():
    """Fig 7a's hazard end-to-end: a link flapping under the owning switch
    must not duplicate or regress state — the surviving history is
    checked against the counter's sequential spec."""
    sim = Simulator(seed=11)
    dep = deploy(sim, EchoCounterApp,
                 config=RedPlaneConfig(lease_period_us=200_000.0))
    workload = CounterWorkload(dep, packets=40, gap_us=10_000.0,
                               start_us=10_000.0)
    workload.start()
    schedule = FailureSchedule(dep, detect_delay_us=20_000.0)
    schedule.flapping_link(first_fail_us=100_000.0, period_us=150_000.0,
                           flaps=3, link_index=4)  # agg1<->tor1
    sim.run(until=1_200_000)
    sim.run_until_idle()

    assert check_counter_history(workload.history())
    values = workload.delivered_values()
    assert values == sorted(set(values))  # no duplicated state values
    assert workload.delivered >= 25       # traffic largely survived


def test_rolling_failures_history_linearizable():
    """State migrates across every switch in turn; each migration must
    preserve per-flow linearizability, not just the final count."""
    sim = Simulator(seed=13)
    dep = deploy(sim, EchoCounterApp,
                 config=RedPlaneConfig(lease_period_us=200_000.0))
    workload = CounterWorkload(dep, packets=15, gap_us=100_000.0,
                               start_us=10_000.0)
    workload.start()
    schedule = FailureSchedule(dep, detect_delay_us=20_000.0)
    schedule.rolling_switch_failures(start_us=200_000.0, gap_us=400_000.0)
    sim.run(until=2_500_000)
    sim.run_until_idle()

    assert check_counter_history(workload.history())
    values = workload.delivered_values()
    assert values == sorted(set(values))
    assert workload.delivered >= 10


def test_faults_emit_trace_events(sim, counter_deployment):
    dep = counter_deployment
    schedule = FailureSchedule(dep, detect_delay_us=10_000.0)
    schedule.fail_switch_at(1_000.0, "agg1")
    schedule.recover_switch_at(5_000.0, "agg1")
    schedule.impair_link_at(2_000.0, schedule.link_between("agg1", "tor1"),
                            LinkImpairment(corrupt_rate=0.1))
    sim.run(until=10_000)
    injects = sim.tracer.records_of(tt.FAULT_INJECT)
    clears = sim.tracer.records_of(tt.FAULT_CLEAR)
    assert [(r.fields["kind"], r.fields["target"]) for r in injects] == [
        ("fail_node", "agg1"), ("impair_link", "agg1<->tor1")]
    assert injects[1].fields["detail"] == "corrupt_rate=0.1"
    assert [(r.fields["kind"], r.fields["target"]) for r in clears] == [
        ("recover_node", "agg1")]


def test_gray_primitives_schedule_and_log():
    sim = Simulator(seed=3)
    dep = deploy(sim, SyncCounterApp)
    schedule = FailureSchedule(dep)
    link = schedule.link_between("tor1", "st1")
    schedule.block_direction_at(1_000.0, link, from_node="st1")
    schedule.clear_link_at(2_000.0, link, from_node="st1")
    schedule.degrade_store_at(1_000.0, 0, proc_delay_us=500.0)
    schedule.restore_store_at(3_000.0, 0)
    schedule.restart_store_at(4_000.0, 1, down_for_us=1_000.0)
    schedule.expire_leases_at(6_000.0)
    baseline_proc = dep.stores[0].proc_delay_us

    sim.run(until=1_500.0)
    st1_port = link.a if link.a.node.name == "st1" else link.b
    assert link.impairment_of(st1_port).blocked
    assert link.impaired
    assert dep.stores[0].proc_delay_us == 500.0
    sim.run(until=4_500.0)
    assert not link.impaired
    assert dep.stores[0].proc_delay_us == baseline_proc
    assert dep.stores[1].failed
    sim.run(until=7_000.0)
    assert not dep.stores[1].failed
    kinds = [k for _t, k, _n in schedule.summary()]
    assert kinds == ["impair_link", "degrade_store", "clear_link",
                     "restore_store", "fail_node", "recover_node",
                     "expire_leases"]
    detailed = schedule.detailed_summary()
    assert all(set(f) == {"time_us", "kind", "target", "detail"}
               for f in detailed)


def test_schedule_rejects_fault_at_or_after_duration(sim, counter_deployment):
    schedule = FailureSchedule(counter_deployment, duration_us=1_000_000.0)
    with pytest.raises(ScheduleError, match="drain window"):
        schedule.fail_switch_at(1_000_000.0, "agg1")
    with pytest.raises(ScheduleError, match="drain window"):
        schedule.expire_leases_at(1_500_000.0)
    # Without a declared duration anything non-negative is accepted.
    open_ended = FailureSchedule(counter_deployment)
    open_ended.expire_leases_at(9_000_000.0)


def test_schedule_rejects_negative_time(sim, counter_deployment):
    schedule = FailureSchedule(counter_deployment)
    with pytest.raises(ScheduleError, match="negative"):
        schedule.fail_switch_at(-1.0, "agg1")


def test_validate_rejects_recover_before_fail(sim, counter_deployment):
    schedule = FailureSchedule(counter_deployment)
    schedule.recover_switch_at(5_000.0, "agg1")
    with pytest.raises(ScheduleError, match="recover-before-fail"):
        schedule.validate()


def test_validate_requires_matching_target(sim, counter_deployment):
    # A recovery only clears a fault on the *same* target: failing agg1
    # does not license recovering agg2.
    schedule = FailureSchedule(counter_deployment)
    schedule.fail_switch_at(1_000.0, "agg1")
    schedule.recover_switch_at(5_000.0, "agg2")
    with pytest.raises(ScheduleError, match="agg2"):
        schedule.validate()


def test_validate_accepts_ordered_pairs_and_standalone_faults(
        sim, counter_deployment):
    schedule = FailureSchedule(counter_deployment)
    schedule.fail_switch_at(1_000.0, "agg1")
    schedule.recover_switch_at(5_000.0, "agg1")
    schedule.expire_leases_at(2_000.0)  # no clear kind; always valid
    schedule.validate()


def test_rack_failure_takes_tor_and_store(sim, counter_deployment):
    dep = counter_deployment
    schedule = FailureSchedule(dep)
    schedule.rack_failure(time_us=1_000.0, rack=1)
    sim.run(until=10_000)
    assert dep.bed.tors[0].failed
    assert dep.stores[0].failed
    names = {n for _t, _k, n in schedule.summary()}
    assert names == {"tor1", "st1"}

"""Latency attribution: exact decomposition of measured ack RTTs."""

import pytest

from repro.analysis.attribution import (
    attribute_acks,
    flow_table,
    render_table,
    verify_sums,
)
from repro.chaos import run_campaign
from repro.telemetry.metrics import Histogram
from repro.telemetry.trace import read_jsonl
from repro.tools.runner import demo_run


@pytest.fixture(scope="module")
def quickstart(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("attr") / "trace.jsonl")
    sim = demo_run(seed=7, packets=10, trace_path=path)
    return sim, read_jsonl(path)


def test_components_sum_to_measured_rtt(quickstart):
    _sim, records = quickstart
    breakdowns = attribute_acks(records)
    assert breakdowns, "quickstart produced no acknowledged requests"
    assert verify_sums(breakdowns, tolerance_us=1.0) is None


def test_exact_acks_have_no_residual(quickstart):
    _sim, records = quickstart
    breakdowns = attribute_acks(records)
    exact = [b for b in breakdowns if b.exact]
    assert exact, "no ack resolved its full causal path"
    for b in exact:
        assert b.cause_uid == b.req_uid
        assert abs(b.retransmit_wait_us) < 1.0


def test_breakdowns_match_ack_rtt_histogram(quickstart):
    sim, records = quickstart
    breakdowns = attribute_acks(records)
    hist_count = 0
    hist_sum = 0.0
    for inst in sim.metrics.instruments("redplane.ack_rtt_us"):
        assert isinstance(inst, Histogram)
        hist_count += inst.count
        hist_sum += inst.sum
    assert len(breakdowns) == hist_count
    assert sum(b.rtt_us for b in breakdowns) == pytest.approx(hist_sum)


def test_chain_component_present_for_replicated_store(quickstart):
    _sim, records = quickstart
    breakdowns = attribute_acks(records)
    # The paper testbed replicates through a store chain, so resolved
    # acks must attribute some propagation time to it.
    assert any(b.chain_us > 0.0 for b in breakdowns if b.exact)


def test_flow_table_aggregates_and_renders(quickstart):
    _sim, records = quickstart
    rows = flow_table(attribute_acks(records))
    assert rows
    for row in rows:
        components = (row["pipeline_us"] + row["wire_us"] + row["store_us"]
                      + row["chain_us"] + row["retransmit_wait_us"])
        assert components == pytest.approx(row["rtt_total_us"])
    rendered = render_table(rows)
    assert rendered.splitlines()[0].startswith("flow")
    assert len(rendered.splitlines()) == len(rows) + 2


def test_attribution_table_byte_identical_across_same_seed_runs(tmp_path):
    tables = []
    for tag in ("a", "b"):
        path = str(tmp_path / f"{tag}.jsonl")
        run_campaign("flapping_link", seed=42, trace_path=path)
        tables.append(render_table(flow_table(attribute_acks(
            read_jsonl(path)))))
    assert tables[0] == tables[1]


def test_unresolvable_ack_degrades_gracefully():
    # An rp.ack with no matching wire events (ring truncation) must keep
    # the full RTT in the residual bucket instead of guessing.
    from repro.telemetry import trace as tt
    from repro.telemetry.trace import TraceRecord

    record = TraceRecord(50.0, tt.RP_ACK, {
        "switch": "s1", "kind": "write", "flow": "f", "seq": 3,
        "uid": 9, "req_uid": 7, "rtt_us": 12.5, "cause": 7,
    })
    (breakdown,) = attribute_acks([record])
    assert not breakdown.exact
    assert breakdown.retransmit_wait_us == 12.5
    assert breakdown.components_sum_us == pytest.approx(12.5)

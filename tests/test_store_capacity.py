"""Tests for the state store's finite-capacity (service-rate) model."""

import pytest

from repro.core.protocol import MessageType, RedPlaneMessage
from repro.net.simulator import Simulator

from tests.test_statestore import FakeSwitch, KEY, micro_net


def test_zero_service_time_is_latency_only():
    sim = Simulator()
    _hub, (sw,), (store,) = micro_net(sim)
    assert store.service_time_us == 0.0
    t0 = sim.now
    sw.request(store.ip, RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY,
                                         vals=[1]))
    sim.run_until_idle()
    first_latency = sw.acks and sim.now - t0
    assert first_latency < 20.0


def test_service_time_serializes_requests():
    sim = Simulator()
    _hub, (sw,), (store,) = micro_net(sim)
    store.service_time_us = 50.0
    for i, key in enumerate([KEY, KEY.reversed()]):
        sw.request(store.ip, RedPlaneMessage(1, MessageType.REPL_WRITE_REQ,
                                             key, vals=[i]))
    sim.run_until_idle()
    # Both served; the store applied each under its own flow record.
    assert len(sw.acks) == 2
    assert len(store.records) == 2


def test_queue_grows_under_overload():
    sim = Simulator()
    _hub, (sw,), (store,) = micro_net(sim)
    store.service_time_us = 100.0
    ack_times = []

    class Recorder(list):
        def append(self, item):
            ack_times.append(sim.now)
            super().append(item)

    sw.acks = Recorder()
    # Offer 10 requests in a burst: service takes 1 ms total.
    for i in range(10):
        sw.request(store.ip, RedPlaneMessage(
            i + 1, MessageType.REPL_WRITE_REQ, KEY, vals=[i]))
    sim.run_until_idle()
    assert len(ack_times) == 10
    # Ack spacing equals the service time (the server is the bottleneck).
    gaps = [b - a for a, b in zip(ack_times, ack_times[1:])]
    for gap in gaps[2:]:
        assert gap == pytest.approx(100.0, rel=0.05)
    # Total drain time reflects the queue, not just per-request latency.
    assert ack_times[-1] - ack_times[0] >= 850.0

"""Tests for the RedPlane protocol engine (the switch-side data plane)."""

import pytest

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.apps import NatApp, install_nat_routes
from repro.core.protocol import MessageType
from repro.net.packet import Packet


def send_flow_packets(sim, dep, n, sport=5555, gap_us=200.0, payload=b"x" * 40):
    """Send n packets of one flow from external e1 to internal s11."""
    e1 = dep.bed.externals[0]
    s11 = dep.bed.servers[0]
    got = []
    s11.default_handler = got.append
    for i in range(n):
        pkt = Packet.udp(e1.ip, s11.ip, sport, 7777, payload=payload)
        pkt.ip.identification = i
        sim.schedule(i * gap_us, e1.send, pkt)
    return got


def active_engine(dep):
    """The engine that actually processed traffic."""
    return max(dep.engines.values(), key=lambda e: e.stats["app_packets"])


def test_every_write_synchronously_replicated(sim, counter_deployment):
    got = send_flow_packets(sim, counter_deployment, 10)
    sim.run_until_idle()
    assert len(got) == 10
    eng = active_engine(counter_deployment)
    assert eng.stats["writes_replicated"] == 10
    assert eng.stats["piggybacks_released"] == 10
    # Store has the final count.
    key = got[0].flow_key()
    recs = [st.records.get(key) for st in counter_deployment.stores]
    assert all(rec is not None and rec.vals == [10] for rec in recs)


def test_output_not_released_before_store_ack(sim, counter_deployment):
    """Piggybacking: the packet leaves only after the update is durable."""
    dep = counter_deployment
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    got_times = []
    s11.default_handler = lambda pkt: got_times.append(sim.now)
    pkt = Packet.udp(e1.ip, s11.ip, 5555, 7777)
    e1.send(pkt)
    sim.run_until_idle()
    key = pkt.flow_key()
    # The delivery time must exceed a store round trip (several us), far
    # above the plain forwarding path (~4 us one way).
    assert got_times[0] > 15.0
    assert dep.stores[0].records[key].vals == [1]


def test_flow_state_and_lease_introspection(sim, counter_deployment):
    got = send_flow_packets(sim, counter_deployment, 3)
    sim.run_until_idle()
    key = got[0].flow_key()
    eng = active_engine(counter_deployment)
    assert eng.flow_state(key) == [3]
    assert eng.lease_valid(key)
    assert eng.flow_state(key.reversed()) is None


def test_lease_migrates_between_switches(sim, counter_deployment):
    """Fig 5 step 4: after a failure the other switch gets the state."""
    dep = counter_deployment
    got = send_flow_packets(sim, dep, 5)
    sim.run_until_idle()
    first = active_engine(dep)
    first_switch = first.switch
    key = got[0].flow_key()
    assert first.flow_state(key) == [5]

    # Fail the owning switch; ECMP reroutes to the other one.
    dep.bed.topology.fail_node(first_switch)
    sim.run(until=sim.now + 400_000)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    for i in range(5):
        pkt = Packet.udp(e1.ip, s11.ip, 5555, 7777, payload=b"x" * 40)
        sim.schedule(i * 200, e1.send, pkt)
    sim.run_until_idle()
    other = dep.engines[
        [sw.name for sw in dep.bed.aggs if sw is not first_switch][0]
    ]
    # The replacement switch restored the count and continued it.
    assert other.flow_state(key) == [10]
    assert len(got) == 10


def test_stale_lease_ack_does_not_roll_back_state(sim, counter_deployment):
    """A duplicate LEASE_NEW_ACK must not clobber newer local state."""
    dep = counter_deployment
    got = send_flow_packets(sim, dep, 4)
    sim.run_until_idle()
    eng = active_engine(dep)
    key = got[0].flow_key()
    assert eng.flow_state(key) == [4]
    # Hand-craft a stale lease ack carrying the original value.
    from repro.core.protocol import RedPlaneMessage, make_protocol_packet, STORE_UDP_PORT, SWITCH_UDP_PORT

    stale = RedPlaneMessage(seq=1, msg_type=MessageType.LEASE_NEW_ACK,
                            flow_key=key, vals=[1], aux=1)
    pkt = make_protocol_packet(dep.stores[0].ip, eng.switch.ip, stale,
                               sport=STORE_UDP_PORT, dport=SWITCH_UDP_PORT)
    eng.switch.process(pkt)
    sim.run_until_idle()
    assert eng.flow_state(key) == [4]


def test_retransmission_recovers_lost_updates():
    """§5.2: replication survives request loss on the fabric."""
    sim = Simulator(seed=9)
    dep = deploy(sim, SyncCounterApp, link_loss=0.05)
    got = send_flow_packets(sim, dep, 30, gap_us=500.0)
    sim.run(until=10_000_000)
    eng = active_engine(dep)
    key = Packet.udp(dep.bed.externals[0].ip, dep.bed.servers[0].ip,
                     5555, 7777).flow_key()
    # Despite loss, the store eventually holds a state at least as new as
    # every released output (some outputs may be lost: that is permitted).
    rec = dep.stores[0].records[key]
    assert rec.vals == eng.flow_state(key)
    assert eng.stats["retransmissions"] > 0
    assert len(got) <= 30  # losses allowed, duplicates not


def test_reordering_never_regresses_store_state():
    sim = Simulator(seed=3)
    dep = deploy(sim, SyncCounterApp, link_reorder=0.3)
    send_flow_packets(sim, dep, 40, gap_us=30.0)
    sim.run_until_idle()
    eng = active_engine(dep)
    key = Packet.udp(dep.bed.externals[0].ip, dep.bed.servers[0].ip,
                     5555, 7777).flow_key()
    rec = dep.stores[0].records[key]
    assert rec.vals == [40]
    assert rec.last_seq == 40


def test_read_heavy_flow_renews_lease(sim, nat_deployment):
    """§5.3: read-centric flows renew every 0.5 s without writes."""
    dep = nat_deployment
    s11, e1 = dep.bed.servers[0], dep.bed.servers[1]
    # NAT outbound: one write (table create), then reads only.
    dst = dep.bed.externals[0]
    got = []
    dst.default_handler = got.append
    from repro.net.packet import TCP_SYN

    for i in range(8):
        pkt = Packet.tcp(s11.ip, dst.ip, 7100, 80,
                         flags=TCP_SYN if i == 0 else 0)
        sim.schedule(i * 300_000.0, s11.send, pkt)  # over 2.4 s
    sim.run_until_idle()
    eng = active_engine(dep)
    assert eng.stats["lease_renewals"] >= 3
    assert len(got) == 8


def test_protocol_transit_traffic_not_app_processed(sim, counter_deployment):
    """Chain/store packets crossing a switch must bypass the app."""
    dep = counter_deployment
    send_flow_packets(sim, dep, 5)
    sim.run_until_idle()
    for eng in dep.engines.values():
        # 5 app packets + reinjected piggyback (lease) at the active switch;
        # chain traffic between store racks crossed switches but none of it
        # may appear as app packets.
        assert eng.stats["app_packets"] <= 6


def test_flow_table_capacity_enforced():
    sim = Simulator(seed=1)
    dep = deploy(sim, SyncCounterApp, config=RedPlaneConfig(max_flows=2))
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    with pytest.raises(RuntimeError):
        for i in range(50):
            pkt = Packet.udp(e1.ip, s11.ip, 6000 + i, 7777)
            e1.send(pkt)
            sim.run_until_idle()


def test_history_recording(sim, counter_deployment):
    got = send_flow_packets(sim, counter_deployment, 6)
    sim.run_until_idle()
    eng = active_engine(counter_deployment)
    inputs = [e for e in eng.history if e.kind == "input"]
    outputs = [e for e in eng.history if e.kind == "output"]
    assert len(inputs) == 6
    assert len(outputs) == 6
    assert {e.trace_id for e in inputs} == set(range(6))

"""Tests for ASIC resource accounting — the Table 2 reproduction."""

import pytest

from repro import Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.core.engine import RedPlaneConfig, RedPlaneEngine
from repro.switch.resources import CAPACITY, ResourceModel, TABLE2_ROWS

#: Table 2 of the paper: additional ASIC resources used by RedPlane for
#: 100 k concurrent flows.
PAPER_TABLE2 = {
    "Match Crossbar": 5.3,
    "Meter ALU": 8.3,
    "Gateway": 9.9,
    "SRAM": 13.2,
    "TCAM": 11.8,
    "VLIW Instruction": 5.5,
    "Hash Bits": 3.7,
}


def test_register_and_percentages():
    model = ResourceModel()
    model.register({"sram_bits": CAPACITY["sram_bits"] / 2})
    assert model.percentage("sram_bits") == pytest.approx(50.0)
    assert model.percentage("tcam_bits") == 0.0


def test_unknown_resource_rejected():
    model = ResourceModel()
    with pytest.raises(KeyError):
        model.register({"quantum_bits": 1})
    with pytest.raises(ValueError):
        model.register({"sram_bits": -1})


def test_over_capacity_detection():
    model = ResourceModel()
    model.register({"meter_alus": CAPACITY["meter_alus"] + 1})
    assert list(model.over_capacity()) == ["meter_alus"]


def test_engine_inventory_reproduces_table2():
    """The headline check: RedPlane's additional usage at 100 k flows
    lands on the paper's Table 2 percentages."""
    sim = Simulator()
    dep = deploy(sim, SyncCounterApp,
                 config=RedPlaneConfig(max_flows=100_000))
    engine = dep.engines["agg1"]
    model = ResourceModel()
    model.register(engine.resource_usage())
    table = model.table2()
    for label, paper_pct in PAPER_TABLE2.items():
        assert table[label] == pytest.approx(paper_pct, abs=0.5), label


def test_sram_scales_with_flow_count():
    """§7.4: 'Scaling up concurrent flows would increase only SRAM usage'."""
    sim = Simulator()
    small = deploy(sim, SyncCounterApp,
                   config=RedPlaneConfig(max_flows=10_000)).engines["agg1"]
    sim2 = Simulator()
    large = deploy(sim2, SyncCounterApp,
                   config=RedPlaneConfig(max_flows=100_000)).engines["agg1"]
    su, lu = small.resource_usage(), large.resource_usage()
    assert lu["sram_bits"] > su["sram_bits"]
    for key in ("tcam_bits", "meter_alus", "gateways", "vliw_instructions",
                "match_crossbar_bits", "hash_bits"):
        assert lu[key] == su[key], key


def test_redplane_plus_app_fit_on_chip():
    sim = Simulator()
    dep = deploy(sim, SyncCounterApp,
                 config=RedPlaneConfig(max_flows=100_000))
    assert list(dep.engines["agg1"].switch.resources.over_capacity()) == []


def test_table2_rows_complete():
    assert [label for _k, label in TABLE2_ROWS] == list(PAPER_TABLE2)

"""Property tests: the linearizability checker vs. brute-force enumeration.

For tiny histories, brute force enumerates *every* permutation of inputs
and every effect/skip choice for unmatched inputs, deciding Definition 3
from first principles. The production checker (with its pruning and
precedence handling) must agree on every randomly generated history.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.model.linearizability import (
    FlowHistory,
    check_linearizable,
    counter_apply,
)


def brute_force_linearizable(history: FlowHistory) -> bool:
    ids = [tid for tid, _v in history.inputs]
    outputs = history.outputs
    constraints = set(history.precedence_pairs())

    matched = [tid for tid in ids if tid in outputs]
    unmatched = [tid for tid in ids if tid not in outputs]

    # Choose which unmatched inputs take effect (others vanish, permitted
    # only if nothing is constrained to follow them).
    for effect_mask in itertools.product([False, True], repeat=len(unmatched)):
        effective = set(matched)
        skipped = set()
        for tid, takes_effect in zip(unmatched, effect_mask):
            if takes_effect:
                effective.add(tid)
            else:
                skipped.add(tid)
        if any(x in skipped for x, _y in constraints):
            continue  # a skipped input cannot be ordered before another
        ordered_ids = sorted(effective)
        for perm in itertools.permutations(ordered_ids):
            position = {tid: i for i, tid in enumerate(perm)}
            if any(
                x in position and y in position and position[x] >= position[y]
                for x, y in constraints
            ):
                continue
            state = 0
            ok = True
            for tid in perm:
                state, out = counter_apply(state, None)
                if tid in outputs and outputs[tid] != out:
                    ok = False
                    break
            if ok:
                return True
    return False


events = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),  # in time
        st.one_of(st.none(), st.tuples(
            st.integers(min_value=1, max_value=6),                # out value
            st.floats(min_value=0, max_value=100, allow_nan=False),
        )),
    ),
    min_size=0,
    max_size=5,
)


@settings(max_examples=200, deadline=None)
@given(events)
def test_checker_agrees_with_brute_force(raw):
    history = FlowHistory()
    for tid, (in_time, out) in enumerate(raw):
        history.add_input(tid, None, in_time)
        if out is not None:
            value, out_time = out
            history.add_output(tid, value, max(out_time, in_time))
    expected = brute_force_linearizable(history)
    assert check_linearizable(history, counter_apply, 0) == expected

"""Tests for mirror-copy lifecycle: release on acknowledgment, not timeout."""

import pytest

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.net.links import Link, SinkNode
from repro.net.packet import Packet, ip_aton
from repro.switch.asic import SwitchASIC


def test_copy_released_when_ack_arrives_not_at_timeout():
    """With a 1 ms RTO, an acked write's copy must leave the buffer after
    one store round trip (~tens of us), not after the timeout."""
    sim = Simulator(seed=1)
    dep = deploy(sim, SyncCounterApp, chain_length=1,
                 config=RedPlaneConfig(retransmit_timeout_us=1_000.0))
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    e1.send(Packet.udp(e1.ip, s11.ip, 5555, 7777))
    sim.run(until=200.0)  # well before the 1 ms timeout
    for agg in dep.bed.aggs:
        assert agg.buffer_occupancy == 0
        assert dep.engines[agg.name].mirror.active_copies == 0
    sim.run_until_idle()
    # And no retransmissions were ever needed.
    assert all(e.stats["retransmissions"] == 0 for e in dep.engines.values())


def test_lost_ack_copy_survives_until_retransmission():
    sim = Simulator(seed=6)
    dep = deploy(sim, SyncCounterApp, chain_length=1, link_loss=1.0,
                 config=RedPlaneConfig(retransmit_timeout_us=500.0))
    # 100% fabric loss: the request itself is lost; the copy must persist.
    # (Inject at the switch: the fabric would otherwise eat the probe too.)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    dep.bed.aggs[0].process(Packet.udp(e1.ip, s11.ip, 5555, 7777))
    sim.run(until=400.0)
    eng = max(dep.engines.values(), key=lambda e: e.stats["lease_requests"])
    assert eng.mirror.active_copies == 1
    assert eng.switch.buffer_occupancy > 0
    sim.run(until=2_000.0)
    assert eng.stats["retransmissions"] >= 1


def test_release_is_idempotent():
    sim = Simulator()
    sw = SwitchASIC(sim, "sw", ip=ip_aton("10.254.0.9"))
    sink = SinkNode(sim, "sink")
    Link(sim, sw.new_port(), sink.new_port())
    sw.table.add(0, 0, [sw.ports[0]])
    session = sw.new_mirror_session()
    session.handler = lambda pkt, meta: True
    copy = session.mirror(Packet.udp(1, 2, 3, 4))
    assert session.active_copies == 1
    session.release(copy)
    session.release(copy)
    assert session.active_copies == 0
    assert sw.buffer_occupancy == 0
    sim.run_until_idle()  # the cancelled pass event must not fire


def test_released_copy_pass_is_noop():
    sim = Simulator()
    sw = SwitchASIC(sim, "sw", ip=1)
    session = sw.new_mirror_session()
    passes = []
    session.handler = lambda pkt, meta: passes.append(1) or True
    copy = session.mirror(Packet.udp(1, 2, 3, 4))
    sim.run(until=5.0)
    assert passes  # circulated a few times
    count = len(passes)
    session.release(copy)
    sim.run(until=50.0)
    assert len(passes) == count  # no further passes after release

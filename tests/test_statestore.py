"""Tests for the state store: leases, sequencing, buffering, chains."""

import pytest

from repro.core.protocol import (
    MessageType,
    RedPlaneMessage,
    STORE_UDP_PORT,
    SWITCH_UDP_PORT,
    make_protocol_packet,
    parse_protocol_packet,
)
from repro.net.links import Link
from repro.net.hosts import Host
from repro.net.packet import FlowKey, Packet
from repro.net.routing import L3Switch
from repro.net.simulator import Simulator
from repro.statestore.server import StateStoreNode, build_chain, reconfigure_chain

KEY = FlowKey(1, 2, 17, 10, 20)
LEASE_US = 10_000.0


class FakeSwitch(Host):
    """A host standing in for a RedPlane switch: collects acks."""

    def __init__(self, sim, name, ip):
        super().__init__(sim, name, ip)
        self.acks = []
        self.bind(SWITCH_UDP_PORT, lambda pkt: self.acks.append(
            parse_protocol_packet(pkt)))

    def request(self, store_ip, msg):
        self.send(make_protocol_packet(self.ip, store_ip, msg))


def micro_net(sim, num_switches=1, num_stores=1, lease_us=LEASE_US):
    """A hub switch connecting fake switches and store nodes."""
    hub = L3Switch(sim, "hub")
    switches = []
    stores = []
    for i in range(num_switches):
        sw = FakeSwitch(sim, f"fsw{i}", 0x0AFE0001 + i)
        link = Link(sim, hub.new_port(), sw.nic)
        hub.table.add(sw.ip, 32, [link.a])
        switches.append(sw)
    for i in range(num_stores):
        st = StateStoreNode(sim, f"fst{i}", 0x0AFE0100 + i, lease_period_us=lease_us)
        link = Link(sim, hub.new_port(), st.nic)
        hub.table.add(st.ip, 32, [link.a])
        stores.append(st)
    return hub, switches, stores


def test_lease_new_grants_fresh_flow():
    sim = Simulator()
    _hub, (sw,), (store,) = micro_net(sim)
    sw.request(store.ip, RedPlaneMessage(0, MessageType.LEASE_NEW_REQ, KEY))
    sim.run_until_idle()
    assert len(sw.acks) == 1
    ack = sw.acks[0]
    assert ack.msg_type is MessageType.LEASE_NEW_ACK
    assert ack.aux == 0  # fresh flow
    rec = store.records[KEY]
    assert rec.owner_ip == sw.ip
    assert rec.lease_expiry > sim.now


def test_write_applies_and_renews_lease():
    sim = Simulator()
    _hub, (sw,), (store,) = micro_net(sim)
    sw.request(store.ip, RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY,
                                         vals=[42]))
    sim.run_until_idle()
    rec = store.records[KEY]
    assert rec.vals == [42]
    assert rec.last_seq == 1
    assert sw.acks[-1].msg_type is MessageType.REPL_WRITE_ACK


def test_stale_update_never_overwrites_newer(sim=None):
    """Fig 6b: sequencing rejects out-of-order replication requests."""
    sim = Simulator()
    _hub, (sw,), (store,) = micro_net(sim)
    sw.request(store.ip, RedPlaneMessage(2, MessageType.REPL_WRITE_REQ, KEY,
                                         vals=[4]))
    sim.run_until_idle()
    sw.request(store.ip, RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY,
                                         vals=[3]))
    sim.run_until_idle()
    rec = store.records[KEY]
    assert rec.vals == [4]
    assert rec.last_seq == 2
    assert store.updates_rejected_stale == 1
    # The stale request is still acknowledged, with the newer seq.
    assert sw.acks[-1].seq == 2


def test_piggyback_echoed_in_ack():
    sim = Simulator()
    _hub, (sw,), (store,) = micro_net(sim)
    inner = Packet.udp(9, 8, 7, 6, payload=b"held").to_bytes()
    sw.request(store.ip, RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY,
                                         vals=[1], piggyback=inner))
    sim.run_until_idle()
    assert sw.acks[-1].piggyback == inner


def test_second_switch_buffered_until_lease_expires():
    """Fig 7b: only one switch holds a lease; others wait."""
    sim = Simulator()
    _hub, (sw1, sw2), (store,) = micro_net(sim, num_switches=2)
    sw1.request(store.ip, RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY,
                                          vals=[7]))
    sim.run(until=1_000)
    sw2.request(store.ip, RedPlaneMessage(0, MessageType.LEASE_NEW_REQ, KEY))
    sim.run(until=5_000)
    assert sw2.acks == []  # buffered: sw1's lease is active
    assert store.requests_buffered == 1
    sim.run_until_idle()
    assert len(sw2.acks) == 1
    ack = sw2.acks[0]
    assert ack.msg_type is MessageType.LEASE_NEW_ACK
    assert ack.aux == 1            # migrated state
    assert ack.vals == [7]          # latest value travels to the new owner
    assert ack.seq == 1
    # Grant happens only after the first lease expired.
    assert sim.now >= 1_000 + LEASE_US - 1_000


def test_same_switch_lease_new_not_buffered():
    sim = Simulator()
    _hub, (sw,), (store,) = micro_net(sim)
    sw.request(store.ip, RedPlaneMessage(0, MessageType.LEASE_NEW_REQ, KEY))
    sim.run_until_idle()
    sw.request(store.ip, RedPlaneMessage(0, MessageType.LEASE_NEW_REQ, KEY))
    sim.run_until_idle()
    assert len(sw.acks) == 2  # owner re-requesting is served immediately


def test_duplicate_headerless_lease_requests_deduped_while_buffered():
    sim = Simulator()
    _hub, (sw1, sw2), (store,) = micro_net(sim, num_switches=2)
    sw1.request(store.ip, RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY,
                                          vals=[1]))
    sim.run(until=1_000)
    # Retransmissions (no piggyback) of the same buffered lease request.
    for _ in range(5):
        sw2.request(store.ip, RedPlaneMessage(0, MessageType.LEASE_NEW_REQ, KEY))
        sim.run(until=sim.now + 100)
    assert len(store.records[KEY].pending) == 1
    # Piggybacked requests are distinct buffered packets: all kept.
    pb = Packet.udp(1, 2, 3, 4).to_bytes()
    sw2.request(store.ip, RedPlaneMessage(
        0, MessageType.LEASE_NEW_REQ, KEY, piggyback=pb))
    sim.run(until=sim.now + 100)
    assert len(store.records[KEY].pending) == 2


def test_read_buffer_bounces_without_mutation():
    sim = Simulator()
    _hub, (sw,), (store,) = micro_net(sim)
    inner = Packet.udp(1, 2, 3, 4).to_bytes()
    sw.request(store.ip, RedPlaneMessage(5, MessageType.READ_BUFFER_REQ, KEY,
                                         piggyback=inner))
    sim.run_until_idle()
    ack = sw.acks[-1]
    assert ack.msg_type is MessageType.READ_BUFFER_ACK
    assert ack.piggyback == inner
    assert KEY in store.records and store.records[KEY].owner_ip is None


def test_snapshot_epoch_filtering():
    sim = Simulator()
    _hub, (sw,), (store,) = micro_net(sim)
    sw.request(store.ip, RedPlaneMessage(2, MessageType.SNAPSHOT_REPL_REQ, KEY,
                                         vals=[20], aux=3))
    sim.run_until_idle()
    sw.request(store.ip, RedPlaneMessage(1, MessageType.SNAPSHOT_REPL_REQ, KEY,
                                         vals=[10], aux=3))
    sim.run_until_idle()
    rec = store.records[KEY]
    assert rec.snapshot_vals[3] == 20  # older epoch rejected
    assert rec.snapshot_seqs[3] == 2


def test_chain_replication_converges_and_tail_replies():
    sim = Simulator()
    _hub, (sw,), stores = micro_net(sim, num_stores=3)
    build_chain(stores)
    head = stores[0]
    sw.request(head.ip, RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY,
                                        vals=[99]))
    sim.run_until_idle()
    for node in stores:
        assert node.records[KEY].vals == [99]
        assert node.records[KEY].last_seq == 1
    # The reply comes from the tail.
    assert len(sw.acks) == 1


def test_chain_reconfiguration_skips_failed_node():
    sim = Simulator()
    _hub, (sw,), stores = micro_net(sim, num_stores=3)
    build_chain(stores)
    stores[1].fail()
    alive = reconfigure_chain(stores)
    assert [n.name for n in alive] == ["fst0", "fst2"]
    sw.request(stores[0].ip, RedPlaneMessage(
        1, MessageType.REPL_WRITE_REQ, KEY, vals=[5]))
    sim.run_until_idle()
    assert stores[2].records[KEY].vals == [5]
    assert len(sw.acks) == 1


def test_chain_acks_clear_inflight_ledgers():
    """Hop-by-hop chain acks flow tail -> head; once the write commits,
    no node still holds it as in flight."""
    sim = Simulator()
    _hub, (sw,), stores = micro_net(sim, num_stores=3)
    build_chain(stores)
    sw.request(stores[0].ip, RedPlaneMessage(
        1, MessageType.REPL_WRITE_REQ, KEY, vals=[7]))
    sim.run_until_idle()
    assert len(sw.acks) == 1
    for node in stores:
        assert not node._chain_inflight
        assert node.chain_repairs == 0


def test_chain_repair_repropagates_stranded_update():
    """A mid-chain node dies while holding an un-acked update; the splice
    must re-propagate it from the head or the tail never converges and
    the requester never hears back."""
    sim = Simulator()
    _hub, (sw,), stores = micro_net(sim, num_stores=3)
    build_chain(stores)
    stores[1].fail()  # the head's downstream hop swallows the update
    sw.request(stores[0].ip, RedPlaneMessage(
        1, MessageType.REPL_WRITE_REQ, KEY, vals=[42]))
    sim.run_until_idle()
    # Stranded: the head applied and propagated, but nothing came back.
    assert stores[0].records[KEY].vals == [42]
    assert KEY not in stores[2].records
    assert sw.acks == []
    assert stores[0]._chain_inflight

    alive = reconfigure_chain(stores)  # triggers repropagate_inflight()
    sim.run_until_idle()
    assert [n.name for n in alive] == ["fst0", "fst2"]
    assert stores[2].records[KEY].vals == [42]
    assert stores[2].records[KEY].last_seq == 1
    assert len(sw.acks) == 1           # the requester finally got its ack
    assert not stores[0]._chain_inflight
    assert stores[0].chain_repairs == 1


def test_allocator_initializes_fresh_flows():
    sim = Simulator()
    hub, (sw,), _ = micro_net(sim, num_stores=0)
    store = StateStoreNode(sim, "alloc", 0x0AFE0200,
                           lease_period_us=LEASE_US,
                           allocator=lambda key: [key.sport + 1000])
    link = Link(sim, hub.new_port(), store.nic)
    hub.table.add(store.ip, 32, [link.a])
    sw.request(store.ip, RedPlaneMessage(0, MessageType.LEASE_NEW_REQ, KEY))
    sim.run_until_idle()
    assert sw.acks[0].vals == [KEY.sport + 1000]


def test_empty_chain_rejected():
    with pytest.raises(ValueError):
        build_chain([])


def test_single_node_chain_serves_and_survives_reconfiguration():
    """A chain of one is legal: the head is also the tail (no propagation,
    no inflight ledger), and reconfiguring it is a no-op."""
    sim = Simulator()
    _hub, (sw,), (store,) = micro_net(sim)
    build_chain([store])
    assert store.successor_ip is None
    sw.request(store.ip, RedPlaneMessage(1, MessageType.REPL_WRITE_REQ, KEY,
                                         vals=[11]))
    sim.run_until_idle()
    assert len(sw.acks) == 1
    assert not store._chain_inflight
    alive = reconfigure_chain([store])
    assert alive == [store]
    assert store.chain_repairs == 0
    sw.request(store.ip, RedPlaneMessage(2, MessageType.REPL_WRITE_REQ, KEY,
                                         vals=[12]))
    sim.run_until_idle()
    assert len(sw.acks) == 2
    assert store.records[KEY].vals == [12]


def test_repeated_reconfiguration_down_to_one_node():
    """The chain shrinks fault by fault; writes keep committing and the
    survivors' ledgers stay clean after every splice."""
    sim = Simulator()
    _hub, (sw,), stores = micro_net(sim, num_stores=3)
    build_chain(stores)

    stores[1].fail()
    alive = reconfigure_chain(stores)
    assert [n.name for n in alive] == ["fst0", "fst2"]
    sw.request(stores[0].ip, RedPlaneMessage(
        1, MessageType.REPL_WRITE_REQ, KEY, vals=[1]))
    sim.run_until_idle()
    assert len(sw.acks) == 1
    assert stores[2].records[KEY].vals == [1]

    stores[2].fail()
    alive = reconfigure_chain(stores)
    assert [n.name for n in alive] == ["fst0"]
    assert stores[0].successor_ip is None
    sw.request(stores[0].ip, RedPlaneMessage(
        2, MessageType.REPL_WRITE_REQ, KEY, vals=[2]))
    sim.run_until_idle()
    assert len(sw.acks) == 2          # the lone survivor replies itself
    assert stores[0].records[KEY].vals == [2]
    assert stores[0].records[KEY].last_seq == 2
    assert not stores[0]._chain_inflight


def test_reconfiguration_with_chain_acks_still_in_flight():
    """A splice can race the tail's acks: the tail already replied to the
    requester, but the hop-by-hop chain acks have not reached the head
    yet. Repropagating the head's in-flight update must be harmless —
    replicas apply it idempotently and nothing regresses."""
    sim = Simulator()
    _hub, (sw,), stores = micro_net(sim, num_stores=3)
    build_chain(stores)
    sw.request(stores[0].ip, RedPlaneMessage(
        1, MessageType.REPL_WRITE_REQ, KEY, vals=[33]))
    # Step until the tail's reply lands; its chain ack (one extra hub
    # traversal away from the head) is still in flight at that instant.
    while not sw.acks:
        sim.run(until=sim.now + 1.0)
    assert stores[0]._chain_inflight, "ack must still be travelling"

    alive = reconfigure_chain(stores)  # nobody failed: pure repropagation
    assert [n.name for n in alive] == ["fst0", "fst1", "fst2"]
    assert stores[0].chain_repairs == 1
    sim.run_until_idle()
    # The re-propagated update was applied idempotently everywhere and
    # every ledger (old acks plus repair acks) drained.
    for node in stores:
        assert node.records[KEY].vals == [33]
        assert node.records[KEY].last_seq == 1
        assert not node._chain_inflight
    # The requester may see the reply again (at-least-once; the switch
    # dedups via sequence numbers) but never with a regressed sequence.
    assert all(ack.seq == 1 for ack in sw.acks)

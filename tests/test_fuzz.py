"""Tests for the fault-schedule fuzzer: generation determinism and
fairness, shrinking, witnesses, the mutation self-check, and the CLI."""

import json
import os

import pytest

from repro.chaos.fuzz import (
    EARLIEST_FAULT_US,
    SETTLE_BEFORE_END_US,
    STORE_LINK,
    TIME_GRID_US,
    ScheduleSpec,
    generate_spec,
    mutation_self_check,
    regression_payload,
    replay_regression,
    run_fuzz,
    run_spec,
    spec_witness,
)
from repro.chaos.shrink import _units, shrink_spec
from repro.model.witness import ViolationWitness
from repro.mutation import MUTATIONS, mutation_active, seeded_bug
from repro.workloads.failures import FaultSpec

_REGRESSION = os.path.join(os.path.dirname(__file__), "regressions",
                           "fuzz-s5-i5.json")


def _minimal_spec() -> ScheduleSpec:
    with open(_REGRESSION, "r", encoding="utf-8") as fh:
        return ScheduleSpec.from_dict(json.load(fh)["spec"])


# -- generation ----------------------------------------------------------------


def test_generation_is_deterministic():
    for index in range(8):
        a = generate_spec(17, index)
        b = generate_spec(17, index)
        assert a == b
        assert a.to_dict() == b.to_dict()


def test_generation_varies_with_seed_and_index():
    specs = {json.dumps(generate_spec(seed, index).to_dict(), sort_keys=True)
             for seed in (1, 2) for index in range(6)}
    assert len(specs) == 12, "seed/index collisions in the generator"


def test_spec_round_trips_through_json():
    for index in range(8):
        spec = generate_spec(9, index)
        again = ScheduleSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert again == spec


def test_generated_schedules_are_fair():
    """Every generated schedule obeys the generator's own fairness rules:
    faults land on the time grid, inside [earliest, duration - settle],
    crash faults only on WAL-backed deployments, store faults only on
    links/nodes the deployment actually activates."""
    for index in range(30):
        spec = generate_spec(23, index)
        assert spec.faults
        active_links = {STORE_LINK[i]
                        for i in range(spec.num_shards * spec.chain_length)}
        for fault in spec.faults:
            assert fault.time_us % TIME_GRID_US == 0
            assert EARLIEST_FAULT_US <= fault.time_us
            assert fault.time_us <= spec.duration_us - SETTLE_BEFORE_END_US
            if fault.kind in ("crash_store", "recover_store_from_disk"):
                assert spec.store_backend == "wal"
            link = fault.param_dict.get("link")
            if link in STORE_LINK.values():
                assert link in active_links


def test_generated_schedules_validate_and_pass():
    # The reference protocol must ride out a generated schedule: this is
    # the fuzzer's PASS direction on two arbitrary points.
    for index in (0, 1):
        spec = generate_spec(5, index)
        result = run_spec(spec)
        assert result.report["verdict"] == "PASS"
        assert result.schedule.log  # faults actually fired


# -- witnesses -----------------------------------------------------------------


def test_witness_coverage_is_subset_semantics():
    lin = ViolationWitness(kinds=("NonLinearizable",))
    both = ViolationWitness(kinds=("NoProgress", "NonLinearizable"))
    empty = ViolationWitness(kinds=())
    assert both.covers(lin)
    assert not lin.covers(both)
    assert lin.covers(empty)
    assert not empty.covers(lin)
    assert not empty and lin and both


def test_witness_from_report_classifies_failures():
    report = {
        "invariants": {"violations": [
            {"invariant": "SingleOwner", "detail": "two owners"},
            {"invariant": "SingleOwner", "detail": "again"},
        ]},
        "linearizable": False,
        "linearizability_search_exhausted": False,
        "traffic": {"delivered": 0},
    }
    witness = ViolationWitness.from_report(report)
    assert witness.kinds == ("NoProgress", "NonLinearizable", "SingleOwner")
    assert dict(witness.first_details)["SingleOwner"] == "two owners"
    exhausted = ViolationWitness.from_report(
        {"linearizable": False, "linearizability_search_exhausted": True})
    assert exhausted.kinds == ("LinSearchExceeded",)


# -- shrinking -----------------------------------------------------------------


def test_units_pair_faults_with_their_clears():
    faults = (
        FaultSpec.make("fail_link", 1_000.0, link=3),
        FaultSpec.make("expire_leases", 2_000.0),
        FaultSpec.make("recover_link", 5_000.0, link=3),
        FaultSpec.make("impair_link", 6_000.0, link=4, corrupt_rate=0.1),
        FaultSpec.make("clear_link", 9_000.0, link=4),
    )
    units = _units(faults)
    kinds = [tuple(f.kind for f in unit) for unit in units]
    assert ("fail_link", "recover_link") in kinds
    assert ("impair_link", "clear_link") in kinds
    assert ("expire_leases",) in kinds
    assert len(units) == 3


def test_units_attach_clear_to_nearest_open_fault():
    faults = (
        FaultSpec.make("fail_link", 1_000.0, link=3),
        FaultSpec.make("fail_link", 2_000.0, link=3),
        FaultSpec.make("recover_link", 3_000.0, link=3),
    )
    units = _units(faults)
    assert len(units) == 2
    # The clear undoes the *latest* open fault on its target.
    paired = next(u for u in units if len(u) == 2)
    assert paired[0].time_us == 2_000.0


def test_shrinking_the_committed_reproducer_is_a_fixpoint():
    spec = _minimal_spec()
    witness = ViolationWitness(kinds=("NonLinearizable",))
    shrunk = shrink_spec(spec, witness, bug="skip_hold_dedup", budget=30)
    assert shrunk.witness.covers(witness)
    assert len(shrunk.spec.faults) == len(spec.faults) == 3
    assert shrunk.runs_used <= 30


# -- mutations and the engine bugs they revert ---------------------------------


def test_mutation_registry_and_guard():
    assert {"skip_store_dedup", "skip_chain_repair", "skip_hold_dedup",
            "skip_lease_install_guard"} <= set(MUTATIONS)
    assert not mutation_active("skip_hold_dedup")
    with seeded_bug("skip_hold_dedup"):
        assert mutation_active("skip_hold_dedup")
    assert not mutation_active("skip_hold_dedup")
    with pytest.raises(KeyError):
        with seeded_bug("not_a_mutation"):
            pass


def test_hold_dedup_guard_is_load_bearing():
    """The duplicate-storm reproducer only passes because the engine
    drops re-delivered lease-ack piggybacks: the clean run must show the
    dedup firing, and reverting it must break linearizability."""
    spec = _minimal_spec()
    clean = run_spec(spec)
    assert clean.report["verdict"] == "PASS"
    assert clean.metrics.total("redplane.piggyback_dups_dropped") > 0
    mutated = spec_witness(spec, bug="skip_hold_dedup")
    assert "NonLinearizable" in mutated.kinds


# -- the fuzz loop and self-check ----------------------------------------------


def test_run_fuzz_report_shape_and_determinism():
    a = run_fuzz(seed=5, budget=2, shrink_violations=False)
    b = run_fuzz(seed=5, budget=2, shrink_violations=False)
    assert a == b
    assert a["kind"] == "chaos-fuzz-report"
    assert a["schedules_run"] == 2
    assert a["violations"] == []
    scorecard = a["scorecard"]
    assert scorecard["schedules_run"] == 2
    assert scorecard["schedules_violated"] == 0
    for entry in scorecard["fault_classes"].values():
        assert entry["schedules"] >= 1
        assert entry["faults"] >= entry["schedules"]


def test_mutation_self_check_end_to_end():
    """The acceptance bar: with the seeded bug the fuzzer finds a
    linearizability violation and shrinks it to <= 3 faults; without it
    the same schedules all pass; verdicts are byte-stable."""
    report = mutation_self_check(seed=5, budget=24, bug="skip_hold_dedup")
    assert report["ok"], report.get("reason")
    assert report["found_linearizability_violation"]
    assert report["minimal_faults"] <= 3
    assert report["clean_violations"] == []
    assert report["deterministic"]


def test_regression_payload_prefers_minimal_spec():
    entry = {
        "index": 4,
        "spec": {"name": "big"},
        "witness": {"kinds": ["NonLinearizable"]},
        "minimal": {"spec": {"name": "small"},
                    "witness": {"kinds": ["NonLinearizable"]},
                    "faults": 2, "runs_used": 9},
    }
    payload = regression_payload(entry, seed=5, bug="skip_hold_dedup")
    assert payload["kind"] == "chaos-fuzz-regression"
    assert payload["spec"]["name"] == "small"
    assert payload["fuzzer"] == {"seed": 5, "index": 4,
                                 "mutation": "skip_hold_dedup"}


def test_replay_rejects_foreign_payloads():
    with pytest.raises(ValueError, match="not a chaos-fuzz regression"):
        replay_regression({"kind": "something-else"})


# -- CLI -----------------------------------------------------------------------


def test_cli_fuzz_run_writes_reproducers_and_scorecard(tmp_path, capsys):
    from repro.tools.runner import main as tools_main

    out_dir = tmp_path / "repros"
    scorecard = tmp_path / "scorecard.json"
    rc = tools_main([
        "fuzz", "run", "--seed", "5", "--budget", "1",
        "--out-dir", str(out_dir), "--scorecard", str(scorecard),
    ])
    assert rc == 0  # seed 5 index 0 is clean on the real protocol
    assert json.loads(scorecard.read_text())["schedules_run"] == 1
    assert list(out_dir.glob("*.json")) == []  # no violations, no files
    assert "schedules" in capsys.readouterr().out


def test_cli_fuzz_replay_committed_corpus(capsys):
    from repro.tools.runner import main as tools_main

    rc = tools_main(["fuzz", "replay", _REGRESSION])
    assert rc == 0
    assert "[ok]" in capsys.readouterr().out

"""Tests for the §2.2 / Fig 8 baselines — including their failure modes."""

import pytest

from repro import Simulator
from repro.apps import NatApp, install_nat_routes, NAT_PUBLIC_IP
from repro.apps.counter import SyncCounterApp
from repro.baselines import (
    CheckpointingAgent,
    ControllerFtBlock,
    ExternalController,
    PacketLogger,
    PlainAppBlock,
    ServerNat,
    SwitchChainBackup,
    SwitchChainHead,
    ftmb_sample_latencies,
    install_nf_routes,
    memory_overhead,
    tunnel_to_nf,
)
from repro.net.packet import Packet, TCP_SYN, ip_aton
from repro.net.topology import build_testbed
from repro.switch.asic import SwitchASIC


def make_bed(sim):
    return build_testbed(sim, agg_factory=lambda s, n, ip: SwitchASIC(s, n, ip))


# ---------------------------------------------------------------------------
# Plain (no-FT) switch app
# ---------------------------------------------------------------------------


def test_plain_block_state_and_slow_path(sim):
    bed = make_bed(sim)
    blocks = {}
    for agg in bed.aggs:
        block = PlainAppBlock(agg, SyncCounterApp())
        agg.add_block(block)
        blocks[agg.name] = block
    e1, s11 = bed.externals[0], bed.servers[0]
    got = []
    s11.default_handler = got.append
    for i in range(5):
        sim.schedule(i * 100.0, e1.send, Packet.udp(e1.ip, s11.ip, 5555, 7777))
    sim.run_until_idle()
    assert len(got) == 5
    active = max(blocks.values(), key=lambda b: b.packets)
    key = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()
    assert active.state[key] == [5]
    # Counters need no control-plane install.
    assert active.slow_path_packets == 0


def test_plain_block_first_packet_slow_path_for_table_apps(sim):
    bed = make_bed(sim)
    install_nat_routes(bed)
    for agg in bed.aggs:
        agg.add_block(PlainAppBlock(agg, NatApp()))
    s11, e1 = bed.servers[0], bed.externals[0]
    times = []
    e1.default_handler = lambda pkt: times.append(sim.now)
    t0 = sim.now
    s11.send(Packet.tcp(s11.ip, e1.ip, 7000, 80, flags=TCP_SYN))
    sim.run_until_idle()
    first_latency = times[0] - t0
    t1 = sim.now
    s11.send(Packet.tcp(s11.ip, e1.ip, 7000, 80))
    sim.run_until_idle()
    second_latency = times[1] - t1
    assert first_latency > 80.0       # control-plane install
    assert second_latency < 10.0      # data-plane fast path


def test_plain_block_loses_state_on_failure(sim):
    bed = make_bed(sim)
    block = PlainAppBlock(bed.aggs[0], SyncCounterApp())
    bed.aggs[0].add_block(block)
    block.state[Packet.udp(1, 2, 3, 4).flow_key()] = [9]
    assert block.lose_all_state() == 1
    assert block.state == {}


# ---------------------------------------------------------------------------
# Controller-based FT
# ---------------------------------------------------------------------------


def test_controller_ft_mirrors_and_restores(sim):
    bed = make_bed(sim)
    install_nat_routes(bed)
    controller = ExternalController(sim)
    blocks = {}
    for agg in bed.aggs:
        block = ControllerFtBlock(agg, NatApp(), controller)
        agg.add_block(block)
        blocks[agg.name] = block
    s11, e1 = bed.servers[0], bed.externals[0]
    got = []
    e1.default_handler = got.append
    s11.send(Packet.tcp(s11.ip, e1.ip, 7000, 80, flags=TCP_SYN))
    sim.run_until_idle()
    assert len(got) == 1
    assert controller.updates_recorded == 1

    active = max(blocks.values(), key=lambda b: b.packets)
    other = next(b for b in blocks.values() if b is not active)
    assert other.restore_from_controller() == 1
    assert other.state == active.state


def test_controller_ft_adds_latency_vs_local(sim):
    controller = ExternalController(sim, replicated=True)
    unreplicated = ExternalController(sim, replicated=False)
    assert controller.update_latency_us() > unreplicated.update_latency_us()
    assert controller.update_latency_us() > 50.0


def test_checkpointing_loses_recent_updates(sim):
    """§2.2: checkpoint-recovery restores a stale snapshot."""
    bed = make_bed(sim)
    controller = ExternalController(sim)
    blocks, agents = [], []
    for agg in bed.aggs:
        block = PlainAppBlock(agg, SyncCounterApp())
        agg.add_block(block)
        agent = CheckpointingAgent(block, controller, period_us=1_000.0)
        agent.start()
        blocks.append(block)
        agents.append(agent)
    e1, s11 = bed.externals[0], bed.servers[0]
    key = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()
    # 10 packets over 2.5 ms: snapshots at ~1 ms and ~2 ms.
    for i in range(10):
        sim.schedule(i * 250.0, e1.send, Packet.udp(e1.ip, s11.ip, 5555, 7777))
    sim.run(until=2_600)
    for agent in agents:
        agent.stop()
    block = max(blocks, key=lambda b: b.packets)
    truth = block.state[key][0]
    snap_val = controller.latest_snapshot().get(key, [0])[0]
    assert truth == 10
    assert snap_val < truth  # the delta since the last snapshot is LOST


# ---------------------------------------------------------------------------
# Rollback (packet logging)
# ---------------------------------------------------------------------------


def test_rollback_replay_correct_at_low_rate(sim):
    bed = make_bed(sim)
    app = SyncCounterApp()
    logger = PacketLogger(bed.aggs[0], app)
    block = PlainAppBlock(bed.aggs[0], app)
    bed.aggs[0].add_block(logger)
    bed.aggs[0].add_block(block)
    e1, s11 = bed.externals[0], bed.servers[0]
    for i in range(10):
        sim.schedule(i * 1000.0, bed.aggs[0].process,
                     Packet.udp(e1.ip, s11.ip, 5555, 7777))
    sim.run_until_idle()
    assert block.packets == 10
    assert logger.log_drops == 0
    assert logger.replay_divergence(block) == 0


def test_rollback_diverges_when_channel_saturates(sim):
    """§2.2: the Tbps-vs-Gbps mismatch makes packet logging incorrect."""
    bed = make_bed(sim)
    app = SyncCounterApp()
    agg = bed.aggs[0]
    logger = PacketLogger(agg, app)
    block = PlainAppBlock(agg, app)
    agg.add_block(logger)
    agg.add_block(block)
    # Drive packets into the switch far faster than PCIe can log: 1500-byte
    # packets every 0.1 us is 120 Gbps against a 10 Gbps channel.
    pkt_template = Packet.udp(1, ip_aton("10.0.1.11"), 5555, 7777,
                              payload=b"\x00" * 1458)
    for i in range(2000):
        pkt = pkt_template.copy()
        sim.schedule(i * 0.1, agg.process, pkt)
    sim.run_until_idle()
    assert logger.log_drops > 0
    assert logger.replay_divergence(block) > 0


# ---------------------------------------------------------------------------
# Switch-to-switch chain replication
# ---------------------------------------------------------------------------


def test_switch_chain_replicates_but_reordering_corrupts():
    sim = Simulator(seed=12)
    bed = build_testbed(
        sim,
        agg_factory=lambda s, n, ip: SwitchASIC(s, n, ip),
        link_reorder=0.4,
    )
    head_sw, backup_sw = bed.aggs
    app = SyncCounterApp()
    head = SwitchChainHead(head_sw, app, backup_ip=backup_sw.ip)
    backup = SwitchChainBackup(backup_sw, SyncCounterApp())
    head_sw.add_block(head)
    backup_sw.add_block(backup)
    e1, s11 = bed.externals[0], bed.servers[0]
    # Force processing at the head switch directly (chain replication
    # constrains routing, which is one of its §2.2 problems).
    for i in range(50):
        pkt = Packet.udp(e1.ip, s11.ip, 5555, 7777)
        sim.schedule(i * 3.0, head_sw.process, pkt)
    sim.run_until_idle()
    key = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()
    assert head.state[key] == [50]
    assert backup.updates_applied > 0
    # With no sequencing, heavy reordering leaves the backup stale/wrong
    # for at least some interleavings (the Fig 6a failure).
    # We assert the mechanism works end-to-end; divergence is workload-
    # dependent, so check the memory cost claim instead:
    usage = memory_overhead(app, flows=100_000)
    assert usage["chain_bits"] == 2 * usage["single_switch_bits"]


def test_switch_chain_backup_can_go_stale():
    """Deterministically demonstrate the Fig 6a anomaly: an older update
    arriving after a newer one corrupts the unsequenced backup."""
    sim = Simulator(seed=1)
    bed = make_bed(sim)
    backup = SwitchChainBackup(bed.aggs[1], SyncCounterApp())
    bed.aggs[1].add_block(backup)
    from repro.baselines.chain_switches import CHAIN_SWITCH_PORT

    key = Packet.udp(1, 2, 3, 4).flow_key()

    def update(value):
        pkt = Packet.udp(bed.aggs[0].ip, bed.aggs[1].ip, CHAIN_SWITCH_PORT,
                         CHAIN_SWITCH_PORT,
                         payload=key.pack() + value.to_bytes(4, "big"))
        bed.aggs[1].process(pkt)

    update(5)   # newer state arrives first (reordered network)
    update(4)   # older update arrives late and silently wins
    sim.run_until_idle()
    assert backup.state[key] == [4]  # WRONG: stale value overwrote newer


# ---------------------------------------------------------------------------
# Server NFs and FTMB
# ---------------------------------------------------------------------------


def test_server_nat_translates_via_tunnel(sim):
    bed = build_testbed(sim)
    nf = ServerNat(sim, "nf", ip_aton("10.0.1.50"))
    bed.topology.add_node(nf)
    bed.topology.connect(bed.tors[0], nf)
    bed.tors[0].table.add(nf.ip, 32, [bed.tors[0].ports[-1]])
    install_nf_routes(bed, nf)
    s11, e1 = bed.servers[0], bed.externals[0]
    seen_ext, seen_int = [], []
    e1.default_handler = seen_ext.append
    s11.default_handler = seen_int.append

    inner = Packet.tcp(s11.ip, e1.ip, 7000, 80, flags=TCP_SYN)
    s11.send(tunnel_to_nf(inner, s11.ip, nf.ip))
    sim.run_until_idle()
    assert len(seen_ext) == 1
    assert seen_ext[0].ip.src == NAT_PUBLIC_IP

    e1.send(Packet.tcp(e1.ip, NAT_PUBLIC_IP, 80, 7000))
    sim.run_until_idle()
    assert len(seen_int) == 1
    assert seen_int[0].ip.dst == s11.ip


def test_ft_server_nat_waits_for_replicas(sim):
    bed = build_testbed(sim)
    replicas = []
    for i, name in enumerate(["nfr1", "nfr2"]):
        rep = ServerNat(sim, name, ip_aton(f"10.0.2.{60 + i}"))
        bed.topology.add_node(rep)
        bed.topology.connect(bed.tors[1], rep)
        bed.tors[1].table.add(rep.ip, 32, [bed.tors[1].ports[-1]])
        replicas.append(rep)
    nf = ServerNat(sim, "nf", ip_aton("10.0.1.50"),
                   replica_ips=[r.ip for r in replicas])
    bed.topology.add_node(nf)
    bed.topology.connect(bed.tors[0], nf)
    bed.tors[0].table.add(nf.ip, 32, [bed.tors[0].ports[-1]])
    install_nf_routes(bed, nf)

    s11, e1 = bed.servers[0], bed.externals[0]
    times = []
    e1.default_handler = lambda pkt: times.append(sim.now)
    inner = Packet.tcp(s11.ip, e1.ip, 7000, 80, flags=TCP_SYN)
    t0 = sim.now
    s11.send(tunnel_to_nf(inner, s11.ip, nf.ip))
    sim.run_until_idle()
    ft_latency = times[0] - t0
    # Replication adds server round trips: well above a plain NF pass
    # (~25 us of processing plus a handful of network hops).
    assert ft_latency > 60.0
    assert nf.replications_sent == 2
    assert all(7000 in rep.translations for rep in replicas)


def test_ftmb_latency_distribution():
    lat = ftmb_sample_latencies(5000, seed=1)
    lat_sorted = sorted(lat)
    median = lat_sorted[len(lat) // 2]
    p999 = lat_sorted[int(len(lat) * 0.999)]
    assert 80.0 < median < 140.0       # software middlebox regime
    assert p999 > 400.0                # heavy commit tail
    assert ftmb_sample_latencies(10, seed=2) == ftmb_sample_latencies(10, seed=2)

"""Tests for runtime invariant monitors and pcap export."""

import io

import pytest

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.model.monitors import InvariantMonitor
from repro.net.packet import Packet
from repro.net.pcap import LinkCapture, PcapWriter, read_pcap
from repro.core.protocol import STORE_UDP_PORT


# ---------------------------------------------------------------------------
# invariant monitors
# ---------------------------------------------------------------------------


class TestInvariantMonitor:
    def run_workload(self, sim, dep, monitor, n=10, fail=False):
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        got = []
        s11.default_handler = got.append
        monitor.start()
        for i in range(n):
            sim.schedule(i * 500.0, e1.send,
                         Packet.udp(e1.ip, s11.ip, 5555, 7777))
        if fail:
            owner_probe = n * 500.0 + 5_000.0
            sim.schedule(owner_probe, dep.bed.topology.fail_node,
                         dep.bed.aggs[0])
        sim.run(until=n * 500.0 + 600_000.0)
        monitor.stop()
        sim.run_until_idle()
        return got

    def test_clean_run_has_no_violations(self, sim, counter_deployment):
        dep = counter_deployment
        monitor = InvariantMonitor(sim, dep.stores,
                                   engines=list(dep.engines.values()),
                                   interval_us=500.0,
                                   track_monotonic_values=True)
        self.run_workload(sim, dep, monitor)
        assert monitor.ok(), monitor.report()
        assert monitor.samples > 100
        assert "OK" in monitor.report()

    def test_failover_run_keeps_invariants(self, sim):
        dep = deploy(sim, SyncCounterApp,
                     config=RedPlaneConfig(lease_period_us=100_000.0))
        monitor = InvariantMonitor(sim, dep.stores,
                                   engines=list(dep.engines.values()),
                                   interval_us=1_000.0,
                                   track_monotonic_values=True)
        self.run_workload(sim, dep, monitor, fail=True)
        assert monitor.ok(), monitor.report()

    def test_detects_seeded_sequence_regression(self, sim, counter_deployment):
        """Sanity: the monitor actually fires on a broken store."""
        dep = counter_deployment
        monitor = InvariantMonitor(sim, dep.stores, interval_us=100.0)
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        e1.send(Packet.udp(e1.ip, s11.ip, 5555, 7777))
        monitor.start()
        sim.run(until=2_000.0)
        # Corrupt a record: roll its sequence number backwards.
        key = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()
        rec = dep.stores[0].records[key]
        rec.last_seq = max(0, rec.last_seq)  # sample it once
        sim.run(until=3_000.0)
        rec.last_seq = -1  # regression
        sim.run(until=5_000.0)
        monitor.stop()
        sim.run_until_idle()
        assert not monitor.ok()
        assert any(v.invariant == "SequenceMonotonicity"
                   for v in monitor.violations)
        assert "violation" in monitor.report()

    def test_invalid_interval_rejected(self, sim, counter_deployment):
        with pytest.raises(ValueError):
            InvariantMonitor(sim, counter_deployment.stores, interval_us=0)


# ---------------------------------------------------------------------------
# pcap
# ---------------------------------------------------------------------------


class TestPcap:
    def test_writer_roundtrip(self):
        buf = io.BytesIO()
        writer = PcapWriter(buf)
        pkt = Packet.udp(1, 2, 3, 4, payload=b"hello")
        writer.write(pkt, time_us=1_234_567.0)
        writer.close()
        buf.seek(0)
        records = read_pcap(buf)
        assert len(records) == 1
        t, back = records[0]
        assert t == 1_234_567
        assert back.payload == b"hello"
        assert back.l4.dport == 4

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            read_pcap(io.BytesIO(b"\x00" * 24))

    def test_link_capture_records_protocol_traffic(self, sim,
                                                   counter_deployment):
        dep = counter_deployment
        # Tap the rack-1 ToR -> store-server link: replication requests to
        # the chain head cross it.
        store_link = dep.stores[0].nic.link
        buf = io.BytesIO()
        capture = LinkCapture(store_link, buf)
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        e1.send(Packet.udp(e1.ip, s11.ip, 5555, 7777))
        sim.run_until_idle()
        capture.detach()
        buf.seek(0)
        records = read_pcap(buf)
        assert records, "no packets captured"
        dports = {pkt.l4.dport for _t, pkt in records if pkt.l4}
        assert STORE_UDP_PORT in dports
        # Timestamps are simulated-time microseconds, monotone.
        times = [t for t, _p in records]
        assert times == sorted(times)

    def test_directional_capture(self, sim, counter_deployment):
        dep = counter_deployment
        link = dep.stores[0].nic.link
        switch_side = link.other_end(dep.stores[0].nic)
        buf = io.BytesIO()
        capture = LinkCapture(link, buf, direction=switch_side)
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        e1.send(Packet.udp(e1.ip, s11.ip, 5555, 7777))
        sim.run_until_idle()
        capture.detach()
        buf.seek(0)
        for _t, pkt in read_pcap(buf):
            assert pkt.l4.dport in (STORE_UDP_PORT, 4802)  # toward the store

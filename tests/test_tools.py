"""Tests for the experiment-runner CLI."""

import pytest

from repro.tools import EXPERIMENTS, main
from repro.tools.runner import benchmarks_dir


def test_inventory_covers_every_figure_and_table():
    for key in ("fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
                "fig15", "table1", "table2", "appc"):
        assert key in EXPERIMENTS


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out and "table2" in out


def test_unknown_experiment_rejected():
    from repro.tools.runner import run_experiment

    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_benchmark_files_exist():
    import os

    bench = benchmarks_dir()
    for filename, _desc in EXPERIMENTS.values():
        assert os.path.exists(os.path.join(bench, filename)), filename

"""Unit tests for the discrete-event simulator."""

import pytest

from repro.net.simulator import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run_until_idle()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_ties_break_by_insertion_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(5, fired.append, label)
    sim.run_until_idle()
    assert fired == list("abcde")


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(100, lambda: seen.append(sim.now))
    sim.run_until_idle()
    assert seen == [100]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run_until_idle()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    sim.schedule(5, event.cancel)
    sim.run_until_idle()
    assert fired == []


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50
    sim.run_until_idle()
    assert fired == ["early", "late"]


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(5, inner)

    def inner():
        fired.append(("inner", sim.now))

    sim.schedule(10, outer)
    sim.run_until_idle()
    assert fired == [("outer", 10), ("inner", 15)]


def test_determinism_same_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        values = []
        for _ in range(50):
            sim.schedule(sim.rng.random() * 10, values.append, sim.rng.random())
        sim.run_until_idle()
        return values

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_counters():
    sim = Simulator()
    sim.count("drops")
    sim.count("drops", 2)
    assert sim.counters["drops"] == 3


def test_run_until_idle_guards_against_storms():
    sim = Simulator()

    def storm():
        sim.schedule(1, storm)

    sim.schedule(1, storm)
    with pytest.raises(RuntimeError):
        sim.run_until_idle(max_events=1000)


def test_max_events_limit():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(i, fired.append, i)
    sim.run(max_events=4)
    assert len(fired) == 4

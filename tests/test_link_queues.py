"""Tests for finite link transmit queues (tail drop) and queueing delay."""

import pytest

from repro.net.links import Link, SinkNode
from repro.net.packet import Packet
from repro.net.simulator import Simulator


def pair(sim, **kw):
    a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
    link = Link(sim, a.new_port(), b.new_port(), **kw)
    return a, b, link


def test_burst_queues_and_serializes():
    sim = Simulator()
    a, b, link = pair(sim, latency_us=1.0, bandwidth_gbps=1.0)
    pkt_bytes = 1000 + 42
    for _ in range(5):
        a.ports[0].send(Packet.udp(1, 2, 3, 4, payload=b"\x00" * 1000))
    sim.run_until_idle()
    assert len(b.received) == 5
    # Deliveries are spaced by one serialization time (~8.3 us at 1 Gbps).
    gaps = [t2 - t1 for t1, t2 in zip(b.receive_times, b.receive_times[1:])]
    expected = pkt_bytes * 8 / 1000.0
    for gap in gaps:
        assert gap == pytest.approx(expected, rel=0.01)


def test_tail_drop_when_queue_full():
    sim = Simulator()
    a, b, link = pair(sim, bandwidth_gbps=1.0, queue_limit_bytes=3000)
    for _ in range(10):
        a.ports[0].send(Packet.udp(1, 2, 3, 4, payload=b"\x00" * 1000))
    sim.run_until_idle()
    assert link.queue_drops > 0
    assert len(b.received) + link.queue_drops == 10
    assert len(b.received) < 10


def test_queue_drains_over_time():
    sim = Simulator()
    a, b, link = pair(sim, bandwidth_gbps=1.0, queue_limit_bytes=3000)
    # Send below the drain rate: no drops.
    for i in range(10):
        sim.schedule(i * 20.0, a.ports[0].send,
                     Packet.udp(1, 2, 3, 4, payload=b"\x00" * 1000))
    sim.run_until_idle()
    assert link.queue_drops == 0
    assert len(b.received) == 10


def test_infinite_queue_by_default():
    sim = Simulator()
    a, b, link = pair(sim, bandwidth_gbps=0.001)
    for _ in range(50):
        a.ports[0].send(Packet.udp(1, 2, 3, 4, payload=b"\x00" * 1000))
    sim.run_until_idle()
    assert link.queue_drops == 0
    assert len(b.received) == 50

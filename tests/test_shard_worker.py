"""Process mode: spawned workers, framed window sync, identical merge."""

from __future__ import annotations

import pytest

from repro.shard.runner import resolve, run_identity, run_sharded
from repro.shard.worker import ShardSpec


def test_process_mode_is_byte_identical_to_the_reference():
    out = run_identity("nat_quickstart", workers=2, mode="process")
    report = out["report"]
    failed = [axis for axis, same in report.items() if not same]
    assert out["identical"], f"diverging axes: {failed}"
    assert out["merged"]["mode"] == "process"


def test_process_mode_matches_inline_mode():
    """Same scenario, both execution modes: the merged result is the
    same object either way (frames must not perturb anything)."""
    config = resolve("nat_steady", 2)
    inline = run_sharded(config, mode="inline")
    config2 = resolve("nat_steady", 2)
    proc = run_sharded(config2, mode="process")
    assert inline["trace_digest"] == proc["trace_digest"]
    assert inline["events"] == proc["events"]
    assert inline["flows_per_shard"] == proc["flows_per_shard"]


def test_shard_spec_is_json_scalars_only():
    """The spawn bootstrap must stay picklable-by-value: names and
    numbers, never live objects."""
    spec = ShardSpec(
        scenario="nat_steady", shard_index=0, num_shards=2, seed=5,
        key_fields=["ip.src"], pinned=False, lookahead_us=0.35,
        window_us=50_000.0,
    )
    import json

    from dataclasses import asdict

    round_tripped = json.loads(json.dumps(asdict(spec)))
    assert ShardSpec(**round_tripped) == spec


def test_unknown_mode_is_rejected():
    config = resolve("nat_quickstart", 2)
    with pytest.raises(ValueError, match="mode"):
        run_sharded(config, mode="threads")

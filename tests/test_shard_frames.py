"""Length-prefixed frame protocol: round trips, ordering, error paths."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.shard.frames import (
    F_BYE,
    F_ERROR,
    F_HELLO,
    F_RESULT,
    F_WINDOW_GRANT,
    F_WINDOW_REQ,
    MAX_FRAME_BYTES,
    FrameConn,
    pack_frame,
    read_frames,
    unpack_frame,
)


def test_round_trip():
    body = {"shard": 3, "now": 12.5, "items": [1, 2, 3], "name": "x"}
    ftype, decoded, consumed = unpack_frame(pack_frame(F_WINDOW_REQ, body))
    assert ftype == F_WINDOW_REQ
    assert decoded == body
    assert consumed == len(pack_frame(F_WINDOW_REQ, body))


def test_key_order_survives_the_round_trip():
    """Trace-record field dicts carry semantic insertion order; a frame
    hop must not alphabetize them."""
    body = {"fields": {"zebra": 1, "alpha": 2, "mid": 3}}
    _ftype, decoded, _ = unpack_frame(pack_frame(F_RESULT, body))
    assert list(decoded["fields"]) == ["zebra", "alpha", "mid"]
    raw = pack_frame(F_RESULT, body)
    assert raw[5:].decode().index("zebra") < raw[5:].decode().index("alpha")


def test_read_frames_streams_back_to_back_frames_in_order():
    stream = (
        pack_frame(F_HELLO, {"shard": 0})
        + pack_frame(F_WINDOW_GRANT, {"upto": 50.0})
        + pack_frame(F_BYE, {})
    )
    frames = list(read_frames(stream))
    assert [f[0] for f in frames] == [F_HELLO, F_WINDOW_GRANT, F_BYE]
    assert frames[1][1] == {"upto": 50.0}


def test_truncated_and_malformed_frames_raise():
    good = pack_frame(F_HELLO, {"shard": 0})
    with pytest.raises(ValueError):
        unpack_frame(good[:3])  # missing length prefix
    with pytest.raises(ValueError):
        unpack_frame(good[:-2])  # body shorter than the prefix claims
    with pytest.raises(ValueError, match="JSON object"):
        unpack_frame(b"\x00\x00\x00\x03\x01[]")  # array, not an object
    with pytest.raises(ValueError, match="malformed"):
        unpack_frame(b"\x00\x00\x00\x03\x01{x")  # invalid JSON


def test_unknown_frame_type_rejected_both_ways():
    with pytest.raises(ValueError):
        pack_frame(99, {})
    raw = bytearray(pack_frame(F_HELLO, {}))
    raw[4] = 99
    with pytest.raises(ValueError):
        unpack_frame(bytes(raw))


def test_oversized_frame_rejected():
    # Forge the length prefix rather than building a 256MB payload.
    raw = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + bytes([F_HELLO])
    with pytest.raises(ValueError):
        unpack_frame(raw + b"{}")


def test_frame_conn_over_a_pipe():
    a, b = multiprocessing.Pipe()
    left, right = FrameConn(a), FrameConn(b)
    left.send(F_WINDOW_REQ, {"shard": 1, "now": 0.0, "target": 100.0})
    ftype, body = right.recv()
    assert (ftype, body["shard"]) == (F_WINDOW_REQ, 1)
    right.send(F_WINDOW_GRANT, {"upto": 50.0})
    _ftype, body = left.recv_expect(F_WINDOW_GRANT)
    assert body == {"upto": 50.0}
    left.close()
    right.close()


def test_recv_expect_surfaces_peer_errors():
    a, b = multiprocessing.Pipe()
    left, right = FrameConn(a), FrameConn(b)
    left.send(F_ERROR, {"error": "boom"})
    with pytest.raises(ValueError, match="boom"):
        right.recv_expect(F_WINDOW_GRANT)
    left.close()
    right.close()


def test_payload_is_compact_json():
    raw = pack_frame(F_HELLO, {"a": 1, "b": [2, 3]})
    assert json.loads(raw[5:]) == {"a": 1, "b": [2, 3]}
    assert b" " not in raw[5:]

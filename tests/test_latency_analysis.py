"""Tests for the latency decomposition helpers."""

import pytest

from repro.analysis import (
    overhead_vs_baseline,
    slow_path_fraction,
    split_fast_slow,
)


def test_split_fast_slow():
    rtts = [8.0] * 95 + [120.0] * 5
    bands = split_fast_slow(rtts)
    assert len(bands.fast_path) == 95
    assert len(bands.slow_path) == 5
    assert bands.threshold_us == pytest.approx(24.0)


def test_split_requires_samples():
    with pytest.raises(ValueError):
        split_fast_slow([])


def test_slow_path_fraction():
    rtts = [10.0] * 90 + [200.0] * 10
    assert slow_path_fraction(rtts) == pytest.approx(0.1)
    assert slow_path_fraction([5.0] * 10) == 0.0


def test_overhead_vs_baseline():
    base = [8.0, 8.0, 9.0, 9.0]
    redplane = [8.0, 8.0, 9.0, 30.0]
    assert overhead_vs_baseline(redplane, base, p=50) == pytest.approx(0.0)
    assert overhead_vs_baseline(redplane, base, p=100) == pytest.approx(21.0)

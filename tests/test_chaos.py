"""Tests for the chaos engine: campaigns, verdict reports, determinism,
and the CLI entry point."""

import json

import pytest

from repro.chaos import CAMPAIGNS, run_campaign, verdict_json
from repro.tools.runner import main as tools_main


def test_campaign_inventory_is_complete():
    assert len(CAMPAIGNS) >= 11
    assert {
        "single_failover", "flapping_link", "gray_link",
        "partitioned_store_head", "rolling_rack_failure", "lease_race",
        "duplicate_storm", "corruption_sweep", "store_crash_recover_wal",
        "corruption_storm", "corruption_storm_store",
    } <= set(CAMPAIGNS)
    for name, campaign in CAMPAIGNS.items():
        assert campaign.name == name
        assert campaign.description
        assert campaign.build is not None


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_every_campaign_passes_with_zero_violations(name):
    """The acceptance bar: all shipped campaigns end PASS — invariants
    held on every sample and the delivered history linearizable."""
    report = run_campaign(name, seed=42)
    assert report["verdict"] == "PASS"
    assert report["invariants"]["held"]
    assert report["invariants"]["violations"] == []
    assert report["invariants"]["samples"] > 0
    assert report["linearizable"]
    assert report["traffic"]["delivered"] > 0
    # The sync counter must never hand two packets the same state value.
    assert report["traffic"]["duplicate_values"] == 0
    assert report["faults"], "a chaos campaign with no faults is a no-op"


def test_same_seed_runs_are_byte_identical():
    first = verdict_json(run_campaign("gray_link", seed=42))
    second = verdict_json(run_campaign("gray_link", seed=42))
    assert first == second


def test_different_seed_changes_outcome_not_verdict():
    report = run_campaign("gray_link", seed=7)
    assert report["seed"] == 7
    assert report["verdict"] == "PASS"


def test_report_shape():
    report = run_campaign("single_failover", seed=42)
    assert report["schema"] == 1
    for key in ("campaign", "seed", "faults", "traffic", "invariants",
                "linearizable", "recovery_latency_us", "counters",
                "verdict"):
        assert key in report
    for fault in report["faults"]:
        assert set(fault) == {"time_us", "kind", "target", "detail"}
    recovery = report["recovery_latency_us"]
    assert recovery["events"] >= 1
    assert recovery["p50_us"] <= recovery["p99_us"] <= recovery["max_us"]
    # Round-trips through JSON without custom encoders.
    json.loads(verdict_json(report))


def test_faults_exercise_their_machinery():
    """Each campaign's signature counter actually moved."""
    storm = run_campaign("duplicate_storm", seed=42)
    assert storm["counters"]["link_frames_duplicated"] > 0
    assert (storm["counters"]["store_stale_rejections"]
            + storm["counters"]["stale_acks_ignored"]) > 0

    partition = run_campaign("partitioned_store_head", seed=42)
    assert partition["counters"]["link_drops_partition"] > 0
    assert partition["counters"]["retransmissions"] > 0

    rack = run_campaign("rolling_rack_failure", seed=42)
    assert rack["counters"]["chain_reconfigurations"] >= 1

    sweep = run_campaign("corruption_sweep", seed=42)
    assert sweep["counters"]["link_drops_corrupt"] > 0


def test_unknown_campaign_raises():
    with pytest.raises(KeyError, match="unknown campaign"):
        run_campaign("no-such-campaign")


def test_cli_list(capsys):
    assert tools_main(["chaos", "--list"]) == 0
    out = capsys.readouterr().out
    assert len(out.strip().splitlines()) >= 8
    assert "gray_link" in out


def test_cli_run_writes_report_and_checks_determinism(tmp_path, capsys):
    out_path = tmp_path / "verdict.json"
    code = tools_main(["chaos", "lease_race", "--json",
                       "--out", str(out_path), "--check-determinism"])
    assert code == 0
    report = json.loads(out_path.read_text())
    assert report["campaign"] == "lease_race"
    assert report["verdict"] == "PASS"
    assert json.loads(capsys.readouterr().out) == report


@pytest.mark.parametrize("name", ["single_failover", "gray_link",
                                  "lease_race", "duplicate_storm"])
def test_campaign_verdict_identical_with_fastpath(name):
    """The fast path must be invisible to chaos auditing: the same
    campaign with the flow/route caches and compiled lanes installed
    produces a byte-identical verdict report. Every fault injection
    publishes on the invalidation bus, so no replay can race a fault."""
    reference = verdict_json(run_campaign(name, seed=42))
    accelerated = verdict_json(run_campaign(name, seed=42, fastpath=True))
    assert accelerated == reference

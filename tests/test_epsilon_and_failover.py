"""Tests for the epsilon watchdog (§5.5) and store-failover coordination."""

import pytest

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps.counter import AsyncCounterApp, SyncCounterApp
from repro.core.api import attach_snapshot_replication
from repro.core.engine import RedPlaneMode
from repro.core.epsilon import EpsilonGuard, EpsilonPolicy
from repro.net.packet import Packet
from repro.statestore import (
    MutableShardMap,
    ShardAddress,
    StoreFailoverCoordinator,
)


def bounded_deployment(sim, period_us=1_000.0):
    dep = deploy(sim, lambda: AsyncCounterApp(slots=8),
                 config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY))
    reps = {}
    for agg in dep.bed.aggs:
        reps[agg.name] = attach_snapshot_replication(
            dep.engines[agg.name],
            {AsyncCounterApp.STORE_KEY: dep.apps[agg.name].counters},
            period_us=period_us,
        )
    return dep, reps


# ---------------------------------------------------------------------------
# EpsilonGuard
# ---------------------------------------------------------------------------


class TestEpsilonGuard:
    def test_transparent_while_replication_healthy(self, sim):
        dep, reps = bounded_deployment(sim)
        agg = dep.bed.aggs[0]
        guard = EpsilonGuard(reps[agg.name], epsilon_us=5_000.0)
        agg.pipeline.blocks.insert(0, guard)
        guard.start()
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        got = []
        s11.default_handler = got.append
        for i in range(10):
            sim.schedule(i * 500.0, e1.send,
                         Packet.udp(e1.ip, s11.ip, 5555, 7777))
        sim.run(until=20_000)
        guard.stop()
        for rep in reps.values():
            rep.stop()
        sim.run_until_idle()
        assert not guard.violated
        assert guard.packets_dropped == 0
        assert len(got) == 10

    def test_drop_policy_when_store_unreachable(self, sim):
        dep, reps = bounded_deployment(sim)
        agg = dep.bed.aggs[0]
        guard = EpsilonGuard(reps[agg.name], epsilon_us=4_000.0,
                             policy=EpsilonPolicy.DROP_PACKETS)
        agg.pipeline.blocks.insert(0, guard)
        guard.start()
        # Kill every store replica: snapshots can never be acknowledged.
        for store in dep.stores:
            store.fail()
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        got = []
        s11.default_handler = got.append
        # Give the guard time to trip, then send app traffic at agg1 only.
        sim.run(until=10_000)
        for i in range(5):
            sim.schedule(i * 100.0, agg.process,
                         Packet.udp(e1.ip, s11.ip, 5555, 7777))
        sim.run(until=30_000)
        guard.stop()
        for rep in reps.values():
            rep.stop()
        for agg_ in dep.bed.aggs:
            agg_.pktgen.stop()
        assert guard.violated
        assert guard.packets_dropped == 5
        assert got == []

    def test_fail_switch_policy(self, sim):
        dep, reps = bounded_deployment(sim)
        agg = dep.bed.aggs[0]
        fired = []
        guard = EpsilonGuard(reps[agg.name], epsilon_us=3_000.0,
                             policy=EpsilonPolicy.FAIL_SWITCH,
                             on_violation=lambda: fired.append(sim.now))
        guard.start()
        for store in dep.stores:
            store.fail()
        sim.run(until=20_000)
        for rep in reps.values():
            rep.stop()
        for agg_ in dep.bed.aggs:
            agg_.pktgen.stop()
        assert agg.failed
        assert len(fired) == 1

    def test_invalid_epsilon_rejected(self, sim):
        dep, reps = bounded_deployment(sim)
        with pytest.raises(ValueError):
            EpsilonGuard(reps["agg1"], epsilon_us=0.0)


# ---------------------------------------------------------------------------
# Store failover
# ---------------------------------------------------------------------------


class TestStoreFailover:
    def test_mid_chain_failure_is_healed(self, sim):
        dep = deploy(sim, SyncCounterApp)  # chain of 3
        coordinator = StoreFailoverCoordinator(
            sim, dep.shard_map, dep.chains, switches=dep.bed.aggs,
            heartbeat_interval_us=50_000.0, missed_threshold=2,
        )
        coordinator.start()
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        got = []
        s11.default_handler = got.append
        e1.send(Packet.udp(e1.ip, s11.ip, 5555, 7777))
        sim.run(until=sim.now + 50_000)
        assert len(got) == 1

        dep.stores[1].fail()  # middle of the chain
        sim.run(until=sim.now + 300_000)
        assert coordinator.reconfigurations == 1
        assert [n.name for n in coordinator.alive_chain(0)] == ["st1", "st3"]

        # Replication still works through the healed chain.
        e1.send(Packet.udp(e1.ip, s11.ip, 5555, 7777))
        coordinator.stop()
        sim.run_until_idle()
        assert len(got) == 2
        key = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()
        assert dep.stores[2].records[key].vals == [2]

    def test_head_failure_repoints_shard_map(self, sim):
        dep = deploy(sim, SyncCounterApp)
        coordinator = StoreFailoverCoordinator(
            sim, dep.shard_map, dep.chains, switches=dep.bed.aggs,
            heartbeat_interval_us=50_000.0, missed_threshold=2,
        )
        coordinator.start()
        e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
        got = []
        s11.default_handler = got.append
        e1.send(Packet.udp(e1.ip, s11.ip, 5555, 7777))
        sim.run(until=sim.now + 50_000)

        old_head = dep.stores[0]
        old_head.fail()
        sim.run(until=sim.now + 300_000)
        new_head = dep.shard_map.addresses()[0]
        assert new_head.ip == dep.stores[1].ip

        e1.send(Packet.udp(e1.ip, s11.ip, 5555, 7777))
        coordinator.stop()
        sim.run_until_idle()
        # The new head (and tail) applied the update; count continued at 2
        # because the surviving replicas held the state.
        key = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()
        assert dep.stores[1].records[key].vals == [2]
        assert dep.stores[2].records[key].vals == [2]
        assert len(got) == 2

    def test_total_shard_loss_raises(self, sim):
        dep = deploy(sim, SyncCounterApp)
        coordinator = StoreFailoverCoordinator(
            sim, dep.shard_map, dep.chains,
            heartbeat_interval_us=10_000.0, missed_threshold=1,
        )
        coordinator.start()
        for store in dep.stores:
            store.fail()
        with pytest.raises(RuntimeError):
            sim.run(until=sim.now + 100_000)

    def test_shard_chain_mismatch_rejected(self, sim):
        shard_map = MutableShardMap([ShardAddress(1, 4800)])
        with pytest.raises(ValueError):
            StoreFailoverCoordinator(sim, shard_map, chains=[])

    def test_detection_latency(self, sim):
        shard_map = MutableShardMap([ShardAddress(1, 4800)])
        from repro.statestore.server import StateStoreNode

        node = StateStoreNode(sim, "n", 1)
        coordinator = StoreFailoverCoordinator(
            sim, shard_map, [[node]],
            heartbeat_interval_us=100.0, missed_threshold=5,
        )
        assert coordinator.detection_latency_us() == 500.0

"""Tests for register arrays and the one-access-per-packet constraint."""

import pytest
from hypothesis import given, strategies as st

from repro.switch.pipeline import PipelineContext, RegisterAccessError
from repro.switch.registers import PairedRegisterArray, RegisterArray
from repro.net.packet import Packet


def ctx():
    return PipelineContext(pkt=Packet(), now=0.0)


def test_read_write_basic():
    reg = RegisterArray("r", 8)
    c = ctx()
    assert reg.read(c, 3) == 0
    c2 = ctx()
    assert reg.write(c2, 3, 42) == 42
    assert reg.cp_read(3) == 42


def test_rmw_returns_alu_result():
    reg = RegisterArray("r", 4)
    c = ctx()
    result = reg.access(c, 0, lambda old: (old + 5, old))
    assert result == 0
    assert reg.cp_read(0) == 5


def test_double_access_same_packet_rejected():
    reg = RegisterArray("r", 4)
    c = ctx()
    reg.read(c, 0)
    with pytest.raises(RegisterAccessError):
        reg.read(c, 1)


def test_two_arrays_one_packet_allowed():
    a = RegisterArray("a", 4)
    b = RegisterArray("b", 4)
    c = ctx()
    a.read(c, 0)
    b.read(c, 0)  # no error: different arrays


def test_new_packet_resets_budget():
    reg = RegisterArray("r", 4)
    reg.read(ctx(), 0)
    reg.read(ctx(), 0)


def test_width_masking():
    reg = RegisterArray("r", 2, width_bits=8)
    reg.cp_write(0, 0x1FF)
    assert reg.cp_read(0) == 0xFF


def test_invalid_width_rejected():
    with pytest.raises(ValueError):
        RegisterArray("r", 4, width_bits=12)


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        RegisterArray("r", 0)


def test_index_bounds():
    reg = RegisterArray("r", 4)
    with pytest.raises(IndexError):
        reg.cp_read(4)
    with pytest.raises(IndexError):
        reg.read(ctx(), -1)


def test_cp_dump():
    reg = RegisterArray("r", 3, initial=7)
    assert reg.cp_dump() == [7, 7, 7]


def test_sram_accounting():
    assert RegisterArray("r", 1024, width_bits=32).sram_bits() == 1024 * 32
    assert PairedRegisterArray("p", 64, width_bits=32).sram_bits() == 64 * 64


def test_paired_rmw():
    pair = PairedRegisterArray("p", 4)
    c = ctx()
    result = pair.access(c, 1, lambda lo, hi: (lo + 1, hi + 2, lo + hi))
    assert result == 0
    assert pair.cp_read(1) == (1, 2)


def test_paired_double_access_rejected():
    pair = PairedRegisterArray("p", 4)
    c = ctx()
    pair.access(c, 0, lambda lo, hi: (lo, hi, 0))
    with pytest.raises(RegisterAccessError):
        pair.access(c, 1, lambda lo, hi: (lo, hi, 0))


@given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1,
                max_size=50))
def test_register_stores_arbitrary_u32_sequence(values):
    reg = RegisterArray("r", len(values))
    for i, value in enumerate(values):
        reg.write(ctx(), i, value)
    assert reg.cp_dump() == values


@given(st.integers(min_value=0, max_value=2**40))
def test_width_mask_property(value):
    reg = RegisterArray("r", 1, width_bits=32)
    reg.write(ctx(), 0, value)
    assert reg.cp_read(0) == value & 0xFFFFFFFF

"""Replay every committed chaos-fuzz reproducer in tests/regressions/.

The corpus carries two kinds of files (see tests/regressions/README.md):
mutation-tagged reproducers that must still violate when their seeded
bug is re-enabled, and mutation-free reproducers of fixed real-protocol
bugs that must now replay clean. Both directions are regression tests:
the first pins the fuzzer's detection power, the second pins the fix.
"""

import glob
import json
import os

import pytest

from repro.chaos.fuzz import ScheduleSpec, replay_regression
from repro.mutation import MUTATIONS

_DIR = os.path.join(os.path.dirname(__file__), "regressions")
_FILES = sorted(glob.glob(os.path.join(_DIR, "*.json")))


def _load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_corpus_is_not_empty():
    assert _FILES, "tests/regressions/ holds no reproducers"


@pytest.mark.parametrize(
    "path", _FILES, ids=[os.path.basename(p) for p in _FILES])
def test_payload_is_well_formed(path):
    payload = _load(path)
    assert payload["kind"] == "chaos-fuzz-regression"
    assert payload["schema"] == 1
    mutation = payload["fuzzer"]["mutation"]
    assert mutation is None or mutation in MUTATIONS
    spec = ScheduleSpec.from_dict(payload["spec"])
    # Reproducers are committed post-shrink: small enough to read.
    assert len(spec.faults) <= 3
    assert payload["witness"]["kinds"]


@pytest.mark.parametrize(
    "path", _FILES, ids=[os.path.basename(p) for p in _FILES])
def test_replay_matches_expectation(path):
    payload = _load(path)
    outcome = replay_regression(payload)
    if payload["fuzzer"]["mutation"]:
        assert outcome["reproduces"], (
            f"{os.path.basename(path)}: the seeded bug no longer "
            f"reproduces its witness {payload['witness']['kinds']} — the "
            "fuzzer would not find this bug class anymore")
    else:
        assert not outcome["reproduces"], (
            f"{os.path.basename(path)}: a fixed real-protocol bug "
            f"reproduces again (witness {outcome['witness']['kinds']})")

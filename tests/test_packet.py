"""Unit and property tests for the packet model."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import (
    EthernetHeader,
    FlowKey,
    IPv4Header,
    MIN_FRAME_BYTES,
    Packet,
    PROTO_TCP,
    PROTO_UDP,
    TCPHeader,
    TCP_ACK,
    TCP_SYN,
    UDPHeader,
    ip_aton,
    ip_ntoa,
    ipv4_checksum,
)

ips = st.integers(min_value=0, max_value=0xFFFFFFFF)
ports = st.integers(min_value=0, max_value=0xFFFF)


def test_ip_aton_ntoa_roundtrip():
    assert ip_ntoa(ip_aton("10.0.1.2")) == "10.0.1.2"
    assert ip_aton("255.255.255.255") == 0xFFFFFFFF
    assert ip_aton("0.0.0.0") == 0


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"])
def test_ip_aton_rejects_malformed(bad):
    with pytest.raises(ValueError):
        ip_aton(bad)


@given(ips)
def test_ip_roundtrip_property(value):
    assert ip_aton(ip_ntoa(value)) == value


def test_ipv4_checksum_validates():
    header = IPv4Header(src=ip_aton("1.2.3.4"), dst=ip_aton("5.6.7.8")).pack()
    # Re-checksumming a valid header (checksum field included) yields zero.
    assert ipv4_checksum(header) == 0


def test_eth_roundtrip():
    eth = EthernetHeader(src=0x112233445566, dst=0xAABBCCDDEEFF, ethertype=0x0800)
    assert EthernetHeader.unpack(eth.pack()) == eth


def test_udp_packet_roundtrip():
    pkt = Packet.udp(ip_aton("10.0.1.11"), ip_aton("172.16.0.11"), 1234, 80,
                     payload=b"hello world")
    back = Packet.from_bytes(pkt.to_bytes())
    assert back.ip.src == pkt.ip.src
    assert back.ip.dst == pkt.ip.dst
    assert isinstance(back.l4, UDPHeader)
    assert (back.l4.sport, back.l4.dport) == (1234, 80)
    assert back.payload == b"hello world"


def test_tcp_packet_roundtrip_with_flags():
    pkt = Packet.tcp(1, 2, 10, 20, seq=7, ack=9, flags=TCP_SYN | TCP_ACK,
                     payload=b"x")
    back = Packet.from_bytes(pkt.to_bytes())
    assert isinstance(back.l4, TCPHeader)
    assert back.l4.seq == 7 and back.l4.ack == 9
    assert back.l4.has(TCP_SYN) and back.l4.has(TCP_ACK)
    assert back.payload == b"x"


def test_vlan_tag_roundtrip():
    pkt = Packet.udp(1, 2, 3, 4, payload=b"p", vlan=100)
    back = Packet.from_bytes(pkt.to_bytes())
    assert back.vlan == 100
    assert back.payload == b"p"
    # The VLAN tag adds 4 bytes on the wire.
    assert pkt.byte_size() == Packet.udp(1, 2, 3, 4, payload=b"p").byte_size() + 4 or (
        pkt.byte_size() == MIN_FRAME_BYTES
    )


def test_min_frame_size_enforced():
    tiny = Packet.udp(1, 2, 3, 4)
    assert tiny.byte_size() == MIN_FRAME_BYTES


def test_byte_size_counts_headers_and_payload():
    pkt = Packet.udp(1, 2, 3, 4, payload=b"\x00" * 1000)
    assert pkt.byte_size() == 14 + 20 + 8 + 1000


def test_flow_key_and_reverse():
    pkt = Packet.udp(ip_aton("1.1.1.1"), ip_aton("2.2.2.2"), 10, 20)
    key = pkt.flow_key()
    assert key.proto == PROTO_UDP
    assert key.reversed().reversed() == key
    assert key.canonical() == key.reversed().canonical()


def test_flow_key_pack_roundtrip():
    key = FlowKey(ip_aton("9.8.7.6"), ip_aton("1.2.3.4"), PROTO_TCP, 443, 55555)
    assert FlowKey.unpack(key.pack()) == key
    assert len(key.pack()) == FlowKey.PACKED_LEN


@given(ips, ips, st.sampled_from([PROTO_TCP, PROTO_UDP]), ports, ports)
def test_flow_key_roundtrip_property(src, dst, proto, sport, dport):
    key = FlowKey(src, dst, proto, sport, dport)
    assert FlowKey.unpack(key.pack()) == key


@given(
    ips, ips, ports, ports,
    st.binary(min_size=0, max_size=300),
    st.one_of(st.none(), st.integers(min_value=0, max_value=4094)),
)
def test_udp_serialization_roundtrip_property(src, dst, sport, dport, payload, vlan):
    pkt = Packet.udp(src, dst, sport, dport, payload=payload, vlan=vlan)
    back = Packet.from_bytes(pkt.to_bytes())
    assert back.ip.src == src and back.ip.dst == dst
    assert back.l4.sport == sport and back.l4.dport == dport
    assert back.payload == payload
    assert back.vlan == vlan


def test_copy_is_independent():
    pkt = Packet.udp(1, 2, 3, 4, payload=b"z")
    pkt.meta["k"] = "v"
    dup = pkt.copy()
    dup.ip.src = 99
    dup.meta["k"] = "other"
    assert pkt.ip.src == 1
    assert pkt.meta["k"] == "v"


def test_flow_key_without_ip_raises():
    with pytest.raises(ValueError):
        Packet().flow_key()


def test_flow_key_str_is_readable():
    key = FlowKey(ip_aton("10.0.0.1"), ip_aton("10.0.0.2"), PROTO_UDP, 1, 2)
    assert "10.0.0.1:1" in str(key)

"""Tests for state specs and access-tracking views."""

import pytest

from repro.core.flowstate import FlowStateView, StateSpec


def test_spec_defaults_and_lookup():
    spec = StateSpec.of(("a", 1), ("b", 2))
    assert spec.num_vals == 2
    assert spec.default_vals() == [1, 2]
    assert spec.index_of("b") == 1
    assert spec.names() == ["a", "b"]
    with pytest.raises(KeyError):
        spec.index_of("missing")


def test_duplicate_field_names_rejected():
    with pytest.raises(ValueError):
        StateSpec.of(("x", 0), ("x", 1))


def test_view_tracks_reads_and_writes():
    spec = StateSpec.of(("count", 0))
    view = FlowStateView(spec, [5])
    assert not view.read_occurred and not view.write_occurred
    assert view.get("count") == 5
    assert view.read_occurred and not view.write_occurred
    view.set("count", 6)
    assert view.write_occurred
    assert view.vals() == [6]


def test_increment_is_read_and_write():
    view = FlowStateView(StateSpec.of(("c", 0)), [9])
    assert view.increment("c") == 10
    assert view.read_occurred and view.write_occurred


def test_u32_wraparound():
    view = FlowStateView(StateSpec.of(("c", 0)), [0xFFFFFFFF])
    assert view.increment("c") == 0


def test_value_count_must_match_spec():
    with pytest.raises(ValueError):
        FlowStateView(StateSpec.of(("a", 0)), [1, 2])


def test_empty_spec():
    view = FlowStateView(StateSpec.of(), [])
    assert view.vals() == []
    assert not view.write_occurred

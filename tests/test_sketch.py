"""Tests for the reference sketch structures."""

import pytest
from hypothesis import given, strategies as st

from repro.sketch import BloomFilter, CountMinSketch, sketch_hash


def test_count_min_never_underestimates():
    sketch = CountMinSketch(depth=3, width=16)
    truth = {}
    for i in range(200):
        item = bytes([i % 40])
        sketch.add(item)
        truth[item] = truth.get(item, 0) + 1
    for item, count in truth.items():
        assert sketch.estimate(item) >= count


def test_count_min_exact_when_sparse():
    sketch = CountMinSketch(depth=3, width=64)
    sketch.add(b"a", 5)
    assert sketch.estimate(b"a") == 5
    assert sketch.total == 5


def test_count_min_merge():
    a = CountMinSketch(3, 32)
    b = CountMinSketch(3, 32)
    a.add(b"x", 2)
    b.add(b"x", 3)
    a.merge(b)
    assert a.estimate(b"x") == 5
    with pytest.raises(ValueError):
        a.merge(CountMinSketch(2, 32))


def test_count_min_clear():
    sketch = CountMinSketch(2, 8)
    sketch.add(b"x")
    sketch.clear()
    assert sketch.estimate(b"x") == 0
    assert sketch.total == 0


def test_invalid_shapes_rejected():
    with pytest.raises(ValueError):
        CountMinSketch(0, 8)
    with pytest.raises(ValueError):
        BloomFilter(bits=0)


@given(st.lists(st.binary(min_size=1, max_size=8), max_size=100))
def test_count_min_overestimate_property(items):
    sketch = CountMinSketch(depth=3, width=32)
    truth = {}
    for item in items:
        sketch.add(item)
        truth[item] = truth.get(item, 0) + 1
    for item, count in truth.items():
        assert sketch.estimate(item) >= count


def test_bloom_membership_no_false_negatives():
    bloom = BloomFilter(bits=256, hashes=3)
    members = [bytes([i]) for i in range(30)]
    for item in members:
        bloom.add(item)
    assert all(item in bloom for item in members)


def test_bloom_bits_roundtrip():
    bloom = BloomFilter(bits=64, hashes=2)
    bloom.add(b"k")
    bits = bloom.bit_values()
    other = BloomFilter(bits=64, hashes=2)
    other.load_bits(bits)
    assert b"k" in other
    assert other.fill_ratio() == bloom.fill_ratio()
    with pytest.raises(ValueError):
        other.load_bits([0])


def test_sketch_hash_row_independence():
    hits = sum(
        sketch_hash(bytes([i]), 0, 64) == sketch_hash(bytes([i]), 1, 64)
        for i in range(200)
    )
    assert hits < 20  # rows behave as distinct hash functions


def test_sketch_hash_range():
    for row in range(4):
        for i in range(50):
            assert 0 <= sketch_hash(bytes([i]), row, 13) < 13

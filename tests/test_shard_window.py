"""Conservative time-window protocol: schedules, grants, boundaries."""

from __future__ import annotations

import pytest

from repro.shard.window import (
    DEFAULT_CHUNK_US,
    BoundaryBuffer,
    BoundaryViolation,
    WindowController,
    WindowSchedule,
)


def test_strict_schedule_window_is_the_lookahead():
    sched = WindowSchedule(0.35)
    assert sched.window_us == 0.35
    # A chunk larger than the lookahead would be unsound; it is ignored.
    assert WindowSchedule(0.35, chunk_us=1000.0).window_us == 0.35


def test_boundary_free_schedule_uses_macro_chunks():
    sched = WindowSchedule(0.35, boundary_free=True)
    assert sched.window_us == DEFAULT_CHUNK_US
    assert WindowSchedule(0.35, chunk_us=500.0,
                          boundary_free=True).window_us == 500.0
    # Never below the lookahead, even with a silly chunk.
    assert WindowSchedule(10.0, chunk_us=1.0,
                          boundary_free=True).window_us == 10.0


def test_zero_lookahead_open_boundary_is_rejected():
    with pytest.raises(ValueError):
        WindowSchedule(0.0)
    with pytest.raises(ValueError):
        WindowSchedule(-1.0, boundary_free=True)
    # Boundary-free with zero lookahead is fine (plan-closed partition).
    assert WindowSchedule(0.0, boundary_free=True).window_us \
        == DEFAULT_CHUNK_US


def test_controller_grants_never_outrun_the_slowest_shard():
    ctrl = WindowController(2, WindowSchedule(10.0))
    # Shard 0 asks for the moon; it gets one window past t=0.
    assert ctrl.request(0, 0.0, 1000.0) == 10.0
    ctrl.done(0, 10.0)
    # Still capped: shard 1 has not moved.
    assert ctrl.request(0, 10.0, 1000.0) == 10.0
    ctrl.done(0, 10.0)
    # Shard 1 advances; shard 0's horizon moves with it.
    assert ctrl.request(1, 0.0, 1000.0) == 10.0
    ctrl.done(1, 10.0)
    assert ctrl.request(0, 10.0, 1000.0) == 20.0
    assert ctrl.committed == 10.0


def test_controller_rejects_overshoot_and_backwards_clocks():
    ctrl = WindowController(2, WindowSchedule(10.0))
    upto = ctrl.request(0, 0.0, 100.0)
    with pytest.raises(BoundaryViolation):
        ctrl.done(0, upto + 5.0)
    ctrl.done(0, upto)
    with pytest.raises(ValueError):
        ctrl.request(0, upto - 1.0, 100.0)


def test_boundary_buffer_enforces_lookahead_law():
    buf = BoundaryBuffer(0.35)
    at = buf.post(10.0, "pkt")
    assert at == pytest.approx(10.35)
    # Explicit arrival earlier than sent + lookahead: impossible wire.
    with pytest.raises(BoundaryViolation):
        buf.post(10.0, "pkt", arrive_at=10.1)
    # Arrival inside committed time would rewrite simulated history.
    buf.commit(20.0)
    with pytest.raises(BoundaryViolation):
        buf.post(19.0, "pkt")
    assert buf.due(30.0) == [(pytest.approx(10.35), "pkt")]
    assert len(buf) == 0


def test_boundary_buffer_drains_in_arrival_order():
    buf = BoundaryBuffer(1.0)
    buf.post(5.0, "b")
    buf.post(1.0, "a")
    buf.post(9.0, "c")
    assert [p for _t, p in buf.due(7.0)] == ["a", "b"]
    assert [p for _t, p in buf.due(100.0)] == ["c"]

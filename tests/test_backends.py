"""Backend conformance suite: every storage backend honors the contract.

The :class:`~repro.statestore.backend.StateStoreBackend` contract
(ordered records, get-or-create semantics, idempotent commits, honest
``wipe``/``recover`` durability) is what the transport layer builds its
write-ahead discipline on. The parametrized tests below hold all three
shipped backends to it; backend-specific behavior (WAL torn tails and
compaction, NetChain register mirroring) follows.
"""

import os

import pytest

from repro.net.packet import FlowKey
from repro.net.simulator import Simulator
from repro.statestore.backend import InMemoryBackend
from repro.statestore.netchain import NETCHAIN_VALUE_SLOTS, NetChainBackend
from repro.statestore.wal import WALBackend


class _Node:
    """Minimal stand-in for the owning StateStoreNode (bind target)."""

    def __init__(self, sim, name="n0"):
        self.sim = sim
        self.name = name


def _key(i):
    return FlowKey(0x0A000000 + i, 0x0B000000 + i, 17, 1000 + i, 2000 + i)


def _populate(backend, n=3):
    """Write ``n`` records the way the transport layer does."""
    for i in range(n):
        key = _key(i)
        rec = backend.record(key)
        rec.vals = [i, i * 7]
        rec.initialized = True
        rec.last_seq = i + 1
        rec.owner_ip = 0x0A000001
        rec.lease_expiry = 5_000.0 + i
        rec.snapshot_vals[3] = 100 + i
        rec.snapshot_seqs[3] = i
        backend.commit(key, rec)


@pytest.fixture(params=["memory", "wal", "netchain"])
def backend(request, tmp_path):
    if request.param == "memory":
        b = InMemoryBackend()
    elif request.param == "wal":
        b = WALBackend(str(tmp_path / "store"), snapshot_every=8)
    else:
        b = NetChainBackend(size=32)
    b.bind(_Node(Simulator()))
    yield b
    b.close()


# -- the contract every backend must satisfy ----------------------------------


def test_records_iterate_in_insertion_order(backend):
    _populate(backend, n=5)
    assert list(backend.records) == [_key(i) for i in range(5)]


def test_get_and_record_semantics(backend):
    assert backend.get(_key(0)) is None
    rec = backend.record(_key(0))
    assert backend.get(_key(0)) is rec          # get never creates
    assert backend.record(_key(0)) is rec       # record is get-or-create
    assert not rec.initialized and rec.vals == []


def test_commit_is_idempotent(backend):
    _populate(backend, n=1)
    rec = backend.get(_key(0))
    backend.commit(_key(0), rec)  # chain retransmissions re-commit
    backend.commit(_key(0), rec)
    assert len(backend.records) == 1
    if backend.durable:
        backend.wipe()
        assert backend.recover() == 1
        assert backend.get(_key(0)).vals == [0, 0]


def test_wipe_drops_all_volatile_state(backend):
    _populate(backend)
    backend.wipe()
    assert len(backend.records) == 0
    assert backend.get(_key(0)) is None


def test_recover_is_honest_about_durability(backend):
    """A backend either restores acknowledged state or reports zero."""
    _populate(backend)
    backend.wipe()
    restored = backend.recover()
    if backend.durable:
        assert restored == 3
        for i in range(3):
            rec = backend.get(_key(i))
            assert rec.vals == [i, i * 7]
            assert rec.initialized
            assert rec.last_seq == i + 1
            assert rec.owner_ip == 0x0A000001
            assert rec.lease_expiry == 5_000.0 + i
            assert rec.snapshot_vals == {3: 100 + i}
            assert rec.snapshot_seqs == {3: i}
    else:
        assert restored == 0
        assert len(backend.records) == 0


def test_recovered_pending_queue_is_empty(backend):
    """Buffered requests are transport state: never persisted (§4.2)."""
    _populate(backend, n=1)
    backend.get(_key(0)).pending.append(("msg", 1, 0))
    backend.commit(_key(0), backend.get(_key(0)))
    backend.wipe()
    backend.recover()
    if backend.durable:
        assert len(backend.get(_key(0)).pending) == 0


def test_describe_is_a_string(backend):
    assert isinstance(backend.describe(), str)
    assert backend.name in ("memory", "wal", "netchain")


# -- WAL specifics: torn tails, compaction, last-write-wins -------------------


@pytest.fixture
def wal(tmp_path):
    b = WALBackend(str(tmp_path / "store"), snapshot_every=4)
    b.bind(_Node(Simulator()))
    yield b
    b.close()


def test_wal_recovery_replays_latest_version(wal):
    key = _key(0)
    rec = wal.record(key)
    for seq in range(1, 4):
        rec.vals = [seq * 10]
        rec.last_seq = seq
        wal.commit(key, rec)
    wal.wipe()
    assert wal.recover() == 1
    assert wal.get(key).vals == [30]
    assert wal.get(key).last_seq == 3


def test_wal_tolerates_torn_tail(wal):
    _populate(wal, n=2)
    wal.close()
    with open(wal.log_path, "ab") as fh:
        fh.write(b"\x00\x00\x01\xff" + b"torn")  # frame cut mid-write
    wal.wipe()
    assert wal.recover() == 2
    assert wal.get(_key(1)).vals == [1, 7]


def test_wal_stops_at_corrupt_frame_keeping_earlier_records(wal):
    _populate(wal, n=2)
    wal.close()
    with open(wal.log_path, "ab") as fh:
        garbage = b"\xde\xad\xbe\xef" * 12
        fh.write(len(garbage).to_bytes(4, "big") + garbage)
    wal.wipe()
    assert wal.recover() == 2  # the corrupt tail frame is discarded


def test_wal_compaction_snapshots_and_truncates_log(wal):
    # snapshot_every=4: ten commits force at least two compactions.
    key = _key(0)
    rec = wal.record(key)
    for seq in range(1, 11):
        rec.vals = [seq]
        rec.last_seq = seq
        wal.commit(key, rec)
    assert os.path.exists(wal.snapshot_path)
    assert os.path.getsize(wal.log_path) < os.path.getsize(wal.snapshot_path) * 4
    wal.wipe()
    assert wal.recover() == 1
    assert wal.get(key).vals == [10]


def test_wal_recover_from_snapshot_plus_log(wal):
    # 5 commits with snapshot_every=4: a snapshot and a one-frame log.
    for i in range(5):
        key = _key(i)
        rec = wal.record(key)
        rec.vals = [i]
        rec.last_seq = 1
        wal.commit(key, rec)
    wal.wipe()
    assert wal.recover() == 5
    assert [wal.get(_key(i)).vals for i in range(5)] == [[i] for i in range(5)]


# -- NetChain specifics: register mirroring, capacity -------------------------


@pytest.fixture
def netchain():
    b = NetChainBackend(size=4)
    b.bind(_Node(Simulator()))
    return b


def test_netchain_commit_mirrors_into_registers(netchain):
    key = _key(0)
    rec = netchain.record(key)
    rec.vals = [11, 22]
    rec.initialized = True
    rec.last_seq = 9
    rec.owner_ip = 0x0A0B0C0D
    rec.lease_expiry = 777.0
    netchain.commit(key, rec)
    idx = netchain.slot(key)
    assert netchain.reg_vals[0].cp_read(idx) == 11
    assert netchain.reg_vals[1].cp_read(idx) == 22
    assert netchain.reg_nvals.cp_read(idx) == 2
    assert netchain.reg_seq.cp_read(idx) == 9
    assert netchain.reg_init.cp_read(idx) == 1
    assert netchain.reg_lease.cp_read(idx) == (0x0A0B0C0D, 777)


def test_netchain_wipe_clears_registers(netchain):
    key = _key(0)
    rec = netchain.record(key)
    rec.vals = [5]
    rec.last_seq = 2
    netchain.commit(key, rec)
    idx = netchain.slot(key)
    netchain.wipe()
    assert netchain.reg_vals[0].cp_read(idx) == 0
    assert netchain.reg_seq.cp_read(idx) == 0
    assert netchain.reg_lease.cp_read(idx) == (0, 0)
    assert netchain.recover() == 0  # SRAM is volatile: nothing to replay


def test_netchain_rejects_oversized_records(netchain):
    key = _key(0)
    rec = netchain.record(key)
    rec.vals = [1] * (NETCHAIN_VALUE_SLOTS + 1)
    with pytest.raises(ValueError):
        netchain.commit(key, rec)


def test_netchain_store_full(netchain):
    for i in range(4):
        netchain.slot(_key(i))
    with pytest.raises(RuntimeError):
        netchain.slot(_key(99))

"""End-to-end integration tests: failover, recovery, and linearizability
of histories produced by the actual simulator (not hand-written ones)."""

import struct

import pytest

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps import NatApp, install_nat_routes
from repro.apps.counter import SyncCounterApp
from repro.core.app import AppVerdict
from repro.model.linearizability import FlowHistory, check_counter_history
from repro.net.packet import Packet
from repro.workloads.tcp import TcpReceiver, TcpSender


class EchoCounterApp(SyncCounterApp):
    """Sync counter that writes the new count into the packet payload, so
    receivers observe the state value each packet saw (for linearizability
    checking over real simulated histories)."""

    name = "echo-counter"

    def process(self, state, pkt, ctx, switch):
        count = state.increment("count")
        pkt.payload = struct.pack("!I", count)
        return AppVerdict.FORWARD


def collect_history(dep, outputs):
    """Merge both switches' input events with receiver-side outputs."""
    history = FlowHistory()
    for engine in dep.engines.values():
        for event in engine.history:
            if event.kind == "input":
                history.add_input(event.trace_id, None, event.time)
    for trace_id, (value, time) in outputs.items():
        history.add_output(trace_id, value, time)
    return history


def run_echo_counter(sim, dep, n, loss=False, fail_at=None, gap_us=400.0):
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    outputs = {}

    def on_receive(pkt):
        (value,) = struct.unpack_from("!I", pkt.payload, 0)
        outputs[pkt.ip.identification] = (value, sim.now)

    s11.default_handler = on_receive
    for i in range(n):
        pkt = Packet.udp(e1.ip, s11.ip, 5555, 7777)
        pkt.ip.identification = i
        sim.schedule(i * gap_us, e1.send, pkt)
    if fail_at is not None:
        sim.schedule(fail_at, dep.bed.topology.fail_node, dep.bed.aggs[0])
        sim.schedule(fail_at, dep.bed.topology.fail_node, dep.bed.aggs[1])
    return outputs


def test_failure_free_history_linearizable(sim):
    dep = deploy(sim, EchoCounterApp)
    outputs = run_echo_counter(sim, dep, 8)
    sim.run_until_idle()
    assert len(outputs) == 8
    history = collect_history(dep, outputs)
    assert check_counter_history(history)
    # Failure-free with no loss: outputs are exactly 1..8 in order.
    values = [outputs[i][0] for i in range(8)]
    assert values == list(range(1, 9))


def test_lossy_history_still_linearizable():
    """§4.2: lost inputs/outputs are permitted anomalies; what does come
    out must still be consistent with SOME sequential order."""
    sim = Simulator(seed=17)
    dep = deploy(sim, EchoCounterApp, link_loss=0.08)
    outputs = run_echo_counter(sim, dep, 8, gap_us=2000.0)
    sim.run(until=10_000_000)
    history = collect_history(dep, outputs)
    assert check_counter_history(history)


def test_reordered_history_linearizable():
    sim = Simulator(seed=23)
    dep = deploy(sim, EchoCounterApp, link_reorder=0.4)
    outputs = run_echo_counter(sim, dep, 8, gap_us=30.0)
    sim.run_until_idle()
    history = collect_history(dep, outputs)
    assert check_counter_history(history)


def test_failover_history_linearizable():
    """The big one: a switch dies mid-flow; the surviving history (across
    BOTH switches plus the store migration) must remain linearizable, and
    the counter must never regress or duplicate."""
    sim = Simulator(seed=31)
    dep = deploy(sim, EchoCounterApp,
                 config=RedPlaneConfig(lease_period_us=200_000.0))
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    outputs = {}

    def on_receive(pkt):
        (value,) = struct.unpack_from("!I", pkt.payload, 0)
        outputs[pkt.ip.identification] = (value, sim.now)

    s11.default_handler = on_receive
    # 6 packets, then fail the owning switch, then 6 more.
    for i in range(6):
        pkt = Packet.udp(e1.ip, s11.ip, 5555, 7777)
        pkt.ip.identification = i
        sim.schedule(i * 400.0, e1.send, pkt)
    sim.run_until_idle()
    owner = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
    dep.bed.topology.fail_node(owner.switch)
    sim.run(until=sim.now + 400_000)
    for i in range(6, 12):
        pkt = Packet.udp(e1.ip, s11.ip, 5555, 7777)
        pkt.ip.identification = i
        sim.schedule((i - 6) * 400.0, e1.send, pkt)
    sim.run_until_idle()

    history = collect_history(dep, outputs)
    assert check_counter_history(history)
    values = sorted(v for v, _t in outputs.values())
    assert values == sorted(set(values))  # no duplicated state values
    assert max(values) == len(outputs)    # no gaps for delivered packets
    assert len(outputs) == 12             # nothing was lost across failover


def test_tcp_through_nat_recovers_from_switch_failure():
    """Scaled-down Fig 14: goodput collapses at the failure and recovers
    once routing reroutes and the NAT state migrates via its lease."""
    sim = Simulator(seed=5)
    dep = deploy(sim, NatApp,
                 config=RedPlaneConfig(lease_period_us=300_000.0))
    install_nat_routes(dep.bed)
    s11 = dep.bed.servers[0]
    e1 = dep.bed.externals[0]
    sender = TcpSender(sim, "iperf-c", s11.ip + 100, dst_ip=e1.ip,
                       segment_bytes=16 * 1024, goodput_bucket_us=50_000.0,
                       max_cwnd=32.0)
    # Attach the endpoints on 1 Gbps access links so the multi-second
    # timeline stays within a tractable event count; fabric timing and the
    # failover mechanics are unscaled.
    dep.bed.topology.add_node(sender)
    dep.bed.topology.connect(dep.bed.tors[0], sender, bandwidth_gbps=1.0)
    dep.bed.tors[0].table.add(sender.ip, 32, [dep.bed.tors[0].ports[-1]])
    receiver = TcpReceiver(sim, "iperf-s", e1.ip + 100)
    dep.bed.topology.add_node(receiver)
    dep.bed.topology.connect(dep.bed.cores[0], receiver, bandwidth_gbps=1.0)
    dep.bed.cores[0].table.add(receiver.ip, 32, [dep.bed.cores[0].ports[-1]])
    dep.bed.cores[1].table.add(
        receiver.ip, 32,
        [p for p in dep.bed.cores[1].ports
         if p.link and p.link.other_end(p).node is dep.bed.cores[0]],
    )
    sender.dst_ip = receiver.ip

    sender.start()
    sim.run(until=400_000)
    # Fail whichever aggregation switch carries the flow.
    owner = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
    dep.bed.topology.fail_node(owner.switch, detect_delay_us=150_000.0)
    sim.run(until=2_500_000)
    sender.stop()
    sim.run_until_idle()

    series = sender.goodput_series_gbps(2_500_000)
    healthy = max(g for t, g in series if t < 0.4)
    during = min(g for t, g in series if 0.45 < t < 0.55)
    recovered = max(g for t, g in series if t > 1.5)
    assert healthy > 0.5
    assert during < 0.1 * healthy          # outage visible
    assert recovered > 0.5 * healthy       # throughput came back
    assert receiver.bytes_received == receiver.expected_seq * 16 * 1024


def test_deploy_validates_shard_fit(sim):
    with pytest.raises(ValueError):
        deploy(sim, SyncCounterApp, num_shards=2, chain_length=3)


def test_deploy_shards_spread_keys(sim):
    dep = deploy(sim, SyncCounterApp, num_shards=3, chain_length=1)
    assert dep.shard_map.num_shards == 3
    from repro.net.packet import FlowKey

    shards = {dep.shard_map.shard_index(FlowKey(1, 2, 17, p, 80))
              for p in range(200)}
    assert shards == {0, 1, 2}

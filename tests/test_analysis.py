"""Tests for statistics, bandwidth accounting, and the fluid model."""

import pytest

from repro.analysis import (
    APP_PROFILES,
    cdf_points,
    fig11_series,
    fig12_rows,
    fig13_series,
    format_cdf_row,
    kv_throughput_mpps,
    percentile,
    snapshot_bandwidth_mbps,
    summarize,
    throughput_mpps,
)


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------


def test_percentile_interpolation():
    samples = [1, 2, 3, 4]
    assert percentile(samples, 0) == 1
    assert percentile(samples, 100) == 4
    assert percentile(samples, 50) == pytest.approx(2.5)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 120)


def test_summarize_keys():
    s = summarize([5.0] * 10)
    assert s["p50"] == 5.0 and s["p99"] == 5.0 and s["count"] == 10


def test_cdf_points_monotone():
    points = cdf_points([3, 1, 2])
    assert points == [(1, pytest.approx(1 / 3)), (2, pytest.approx(2 / 3)),
                      (3, pytest.approx(1.0))]
    assert cdf_points([]) == []


def test_format_cdf_row_contains_stats():
    row = format_cdf_row("x", [1.0, 2.0, 3.0])
    assert "p50" in row and "p99" in row and "n=3" in row


# ---------------------------------------------------------------------------
# bandwidth (Figs 10/11)
# ---------------------------------------------------------------------------


def test_snapshot_bandwidth_matches_paper_point():
    """3 sketches x 64 slots at 1 kHz: the paper reports 34.16 Mbps."""
    mbps = snapshot_bandwidth_mbps(3, 64, 1000.0)
    assert mbps == pytest.approx(34.16, rel=0.20)


def test_snapshot_bandwidth_linear_in_freq_and_sketches():
    assert snapshot_bandwidth_mbps(3, 64, 512) == pytest.approx(
        snapshot_bandwidth_mbps(3, 64, 256) * 2
    )
    assert snapshot_bandwidth_mbps(5, 64, 512) == pytest.approx(
        snapshot_bandwidth_mbps(1, 64, 512) * 5
    )


def test_fig11_series_shape():
    series = fig11_series([3, 4, 5], [32, 64, 128, 256, 512, 1024])
    assert set(series) == {3, 4, 5}
    for values in series.values():
        assert all(b > a for a, b in zip(values, values[1:]))
    assert max(series[5]) < 100.0  # well under Sync-Counter's overhead


# ---------------------------------------------------------------------------
# throughput (Figs 12/13)
# ---------------------------------------------------------------------------


def test_read_centric_apps_keep_line_rate():
    for name in ("nat", "firewall", "load-balancer", "hh-detector"):
        profile = APP_PROFILES[name]
        assert throughput_mpps(profile, redplane=True) == pytest.approx(
            throughput_mpps(profile, redplane=False)
        )


def test_sync_counter_roughly_halves():
    profile = APP_PROFILES["sync-counter"]
    without = throughput_mpps(profile, redplane=False)
    with_rp = throughput_mpps(profile, redplane=True, num_shards=3)
    assert with_rp == pytest.approx(without / 2, rel=0.05)


def test_epc_slightly_lower():
    profile = APP_PROFILES["epc-sgw"]
    without = throughput_mpps(profile, redplane=False)
    with_rp = throughput_mpps(profile, redplane=True)
    assert 0.9 * without < with_rp < without


def test_fig12_rows_complete():
    rows = fig12_rows()
    apps = {row["app"] for row in rows}
    assert {"nat", "firewall", "load-balancer", "epc-sgw", "hh-detector",
            "sync-counter"} == apps
    for row in rows:
        assert row["with_mpps"] <= row["without_mpps"] + 1e-9


def test_kv_throughput_scales_with_stores():
    # Write-heavy: each extra store adds capacity.
    t1 = kv_throughput_mpps(1.0, 1)
    t2 = kv_throughput_mpps(1.0, 2)
    t3 = kv_throughput_mpps(1.0, 3)
    assert t2 == pytest.approx(2 * t1)
    assert t3 == pytest.approx(3 * t1)
    # Read-only: the ceiling, regardless of stores.
    assert kv_throughput_mpps(0.0, 1) == kv_throughput_mpps(0.0, 3)


def test_kv_throughput_monotone_decreasing_in_update_ratio():
    ratios = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    series = fig13_series(ratios)
    for values in series.values():
        assert all(a >= b for a, b in zip(values, values[1:]))


def test_kv_crossover_moves_right_with_more_stores():
    """With more stores, the store bottleneck kicks in at higher ratios."""

    def crossover(stores):
        for u in [i / 100 for i in range(1, 101)]:
            if kv_throughput_mpps(u, stores) < kv_throughput_mpps(0.0, stores):
                return u
        return 1.0

    assert crossover(1) < crossover(2) < crossover(3)


def test_kv_update_ratio_validation():
    with pytest.raises(ValueError):
        kv_throughput_mpps(-0.1, 1)

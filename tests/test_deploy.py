"""Tests for the one-call deployment helper."""

import pytest

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.core.engine import RedPlaneEngine
from repro.statestore import MutableShardMap, StateStoreNode


def test_default_deployment_shape(sim):
    dep = deploy(sim, SyncCounterApp)
    assert len(dep.switches) == 2
    assert set(dep.engines) == {"agg1", "agg2"}
    assert all(isinstance(e, RedPlaneEngine) for e in dep.engines.values())
    assert len(dep.stores) == 3
    assert all(isinstance(st, StateStoreNode) for st in dep.stores)
    assert dep.shard_map.num_shards == 1
    assert isinstance(dep.shard_map, MutableShardMap)
    # One chain of three: st1 -> st2 -> st3.
    assert dep.stores[0].successor_ip == dep.stores[1].ip
    assert dep.stores[1].successor_ip == dep.stores[2].ip
    assert dep.stores[2].successor_ip is None
    assert dep.chains == [[dep.stores[0], dep.stores[1], dep.stores[2]]]


def test_three_single_node_shards(sim):
    dep = deploy(sim, SyncCounterApp, num_shards=3, chain_length=1)
    assert dep.shard_map.num_shards == 3
    assert all(st.successor_ip is None for st in dep.stores)
    heads = {a.ip for a in dep.shard_map.addresses()}
    assert heads == {st.ip for st in dep.stores}


def test_each_switch_gets_its_own_app(sim):
    dep = deploy(sim, SyncCounterApp)
    assert dep.apps["agg1"] is not dep.apps["agg2"]


def test_engine_of(sim):
    dep = deploy(sim, SyncCounterApp)
    for agg in dep.switches:
        assert dep.engine_of(agg) is dep.engines[agg.name]


def test_config_propagates(sim):
    cfg = RedPlaneConfig(lease_period_us=123_456.0, max_flows=17)
    dep = deploy(sim, SyncCounterApp, config=cfg)
    for engine in dep.engines.values():
        assert engine.config.lease_period_us == 123_456.0
        assert engine.config.max_flows == 17
    # The store grants leases of the same duration.
    assert all(st.lease_period_us == 123_456.0 for st in dep.stores)


def test_allocator_reaches_stores(sim):
    allocator = lambda key: [7]
    dep = deploy(sim, SyncCounterApp, allocator=allocator)
    assert all(st.allocator is allocator for st in dep.stores)


def test_oversized_chain_rejected(sim):
    with pytest.raises(ValueError):
        deploy(sim, SyncCounterApp, num_shards=3, chain_length=2)

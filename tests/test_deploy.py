"""Tests for the one-call deployment helper."""

import pytest

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.core.engine import RedPlaneEngine
from repro.statestore import MutableShardMap, StateStoreNode


def test_default_deployment_shape(sim):
    dep = deploy(sim, SyncCounterApp)
    assert len(dep.switches) == 2
    assert set(dep.engines) == {"agg1", "agg2"}
    assert all(isinstance(e, RedPlaneEngine) for e in dep.engines.values())
    assert len(dep.stores) == 3
    assert all(isinstance(st, StateStoreNode) for st in dep.stores)
    assert dep.shard_map.num_shards == 1
    assert isinstance(dep.shard_map, MutableShardMap)
    # One chain of three: st1 -> st2 -> st3.
    assert dep.stores[0].successor_ip == dep.stores[1].ip
    assert dep.stores[1].successor_ip == dep.stores[2].ip
    assert dep.stores[2].successor_ip is None
    assert dep.chains == [[dep.stores[0], dep.stores[1], dep.stores[2]]]


def test_three_single_node_shards(sim):
    dep = deploy(sim, SyncCounterApp, num_shards=3, chain_length=1)
    assert dep.shard_map.num_shards == 3
    assert all(st.successor_ip is None for st in dep.stores)
    heads = {a.ip for a in dep.shard_map.addresses()}
    assert heads == {st.ip for st in dep.stores}


def test_each_switch_gets_its_own_app(sim):
    dep = deploy(sim, SyncCounterApp)
    assert dep.apps["agg1"] is not dep.apps["agg2"]


def test_engine_of(sim):
    dep = deploy(sim, SyncCounterApp)
    for agg in dep.switches:
        assert dep.engine_of(agg) is dep.engines[agg.name]


def test_config_propagates(sim):
    cfg = RedPlaneConfig(lease_period_us=123_456.0, max_flows=17)
    dep = deploy(sim, SyncCounterApp, config=cfg)
    for engine in dep.engines.values():
        assert engine.config.lease_period_us == 123_456.0
        assert engine.config.max_flows == 17
    # The store grants leases of the same duration.
    assert all(st.lease_period_us == 123_456.0 for st in dep.stores)


def test_allocator_reaches_stores(sim):
    allocator = lambda key: [7]
    dep = deploy(sim, SyncCounterApp, allocator=allocator)
    assert all(st.allocator is allocator for st in dep.stores)


def test_oversized_chain_rejected(sim):
    with pytest.raises(ValueError):
        deploy(sim, SyncCounterApp, num_shards=3, chain_length=2)


# -- deploy_netchain: the in-switch store deployment --------------------------


def test_deploy_netchain_wiring(sim):
    from repro.deploy import deploy_netchain
    from repro.statestore.netchain import (
        NETCHAIN_UDP_PORT,
        NetChainBackend,
        NetChainStoreBlock,
    )
    from repro.switch.asic import SwitchASIC

    dep = deploy_netchain(sim, SyncCounterApp, store_size=64)
    assert isinstance(dep.netchain, NetChainStoreBlock)
    assert isinstance(dep.netchain.backend, NetChainBackend)
    assert dep.netchain.backend.size == 64
    # tor1 became the store switch; the other ToRs stayed plain routers.
    tor = dep.bed.tors[0]
    assert isinstance(tor, SwitchASIC)
    assert dep.netchain.switch is tor
    assert not isinstance(dep.bed.tors[1], SwitchASIC)
    # The shard map points every engine at the ToR's in-switch port.
    addr = dep.shard_map.addresses()[0]
    assert addr.ip == tor.ip and addr.udp_port == NETCHAIN_UDP_PORT
    # No server store participates.
    assert dep.stores == []


def test_deploy_netchain_end_to_end(sim):
    """Counter traffic commits through the in-switch store: every packet's
    synchronous write is acked by tor1's pipeline, and the record mirror
    tracks the register state."""
    from repro.deploy import deploy_netchain
    from repro.net.packet import Packet

    dep = deploy_netchain(sim, SyncCounterApp)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    for i in range(8):
        pkt = Packet.udp(e1.ip, s11.ip, 5555, 7777)
        pkt.ip.identification = i
        sim.schedule(i * 200.0, e1.send, pkt)
    sim.run_until_idle()

    flow = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()
    rec = dep.netchain.backend.get(flow)
    assert rec is not None and rec.initialized
    assert rec.last_seq == 8
    assert rec.vals == [8]
    # The registers agree with the control-plane mirror.
    idx = dep.netchain.backend.slot(flow)
    assert dep.netchain.backend.reg_seq.cp_read(idx) == 8
    assert dep.netchain.backend.reg_vals[0].cp_read(idx) == 8

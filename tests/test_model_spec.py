"""Tests for the TLA+ spec port and its model checker (Appendix C)."""

import pytest

from repro.model import ModelConfig, initial_state, liveness_probe, model_check
from repro.model.spec import (
    InvariantViolation,
    check_invariants,
    set_lease_period,
    successors,
)


def test_protocol_passes_at_paper_constants():
    result = model_check(ModelConfig(switches=("s1", "s2"), lease_period=2,
                                     total_pkts=2))
    assert result.ok, result.summary()
    assert result.states_explored > 1000
    assert result.deadlocks == []


def test_protocol_passes_without_failures():
    result = model_check(ModelConfig(total_pkts=3, allow_failures=False))
    assert result.ok
    assert result.deadlocks == []


def test_single_owner_invariant_catches_double_grant():
    """Sanity: the checker actually detects a broken state."""
    cfg = ModelConfig()
    set_lease_period(cfg.lease_period)
    state = initial_state(cfg)
    lease = state.d("lease_remaining")
    lease["s1"] = 2
    lease["s2"] = 2
    broken = state.with_(lease_remaining=lease, owner="s1")
    with pytest.raises(InvariantViolation) as exc:
        check_invariants(broken, cfg)
    assert exc.value.name == "SingleOwnerInvariant"


def test_write_sequence_assertion_catches_lost_update():
    """If the store could ack a different sequence number than the switch
    wrote (a lost/stale update being acknowledged), the in-step assertion
    fires — this is what sequencing (Fig 6b) protects."""
    cfg = ModelConfig(switches=("s1",), allow_failures=False)
    set_lease_period(cfg.lease_period)
    state = initial_state(cfg)
    # Craft: switch s1 waiting for a write response whose seq mismatches.
    pc = state.d("pc")
    pc["switch:s1"] = "WAIT_WRITE_RESPONSE"
    query = state.d("query")
    query["s1"] = ("response", 5)  # store claims last_seq 5
    seqnum = state.d("seqnum")
    seqnum["s1"] = 7               # but the switch wrote 7
    broken = state.with_(pc=pc, query=query, seqnum=seqnum)
    with pytest.raises(InvariantViolation) as exc:
        successors(broken, cfg)
    assert exc.value.name == "WriteSequenceAssertion"


def test_liveness_every_packet_eventually_processed():
    assert liveness_probe(ModelConfig(total_pkts=1, allow_failures=False))
    assert liveness_probe(ModelConfig(total_pkts=2, allow_failures=False))


def test_lease_expiry_transfers_ownership():
    """Reachability: a state where s2 owns the lease after s1 did."""
    cfg = ModelConfig(total_pkts=2, allow_failures=False)
    set_lease_period(cfg.lease_period)
    from collections import deque

    init = initial_state(cfg)
    seen = {init}
    frontier = deque([init])
    owners_seen = set()
    while frontier:
        state = frontier.popleft()
        if state.owner is not None:
            owners_seen.add(state.owner)
        if owners_seen == {"s1", "s2"}:
            break
        for nxt in successors(state, cfg):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    assert owners_seen == {"s1", "s2"}


def test_larger_model_still_ok():
    result = model_check(ModelConfig(switches=("s1", "s2"), lease_period=1,
                                     total_pkts=3))
    assert result.ok


def test_invalid_lease_period_rejected():
    with pytest.raises(ValueError):
        set_lease_period(0)
    set_lease_period(2)  # restore default for other tests

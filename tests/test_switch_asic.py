"""Tests for the switch ASIC: pipeline, mirroring, pktgen, control plane."""

import pytest

from repro.net import constants
from repro.net.links import Link, SinkNode
from repro.net.packet import Packet, ip_aton
from repro.net.simulator import Simulator
from repro.switch.asic import SwitchASIC
from repro.switch.pipeline import ControlBlock, PipelineContext, Verdict


class TagBlock(ControlBlock):
    """Test block: tags packets; can drop/punt/consume on request."""

    def __init__(self, action="forward"):
        self.action = action
        self.seen = 0

    def process(self, ctx, switch):
        self.seen += 1
        ctx.pkt.meta["tagged"] = True
        if self.action == "drop":
            ctx.drop()
            return False
        if self.action == "punt":
            ctx.punt()
            return False
        if self.action == "consume":
            ctx.consume()
            return False
        if self.action == "stop":
            return False
        return True


def make_switch(sim):
    sw = SwitchASIC(sim, "sw", ip=ip_aton("10.254.0.9"))
    sink = SinkNode(sim, "sink")
    Link(sim, sw.new_port(), sink.new_port())
    sw.table.add(0, 0, [sw.ports[0]])
    return sw, sink


def test_forward_through_pipeline():
    sim = Simulator()
    sw, sink = make_switch(sim)
    block = TagBlock()
    sw.add_block(block)
    sw.process(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert block.seen == 1
    assert len(sink.received) == 1
    assert sink.received[0].meta["tagged"]


def test_drop_verdict():
    sim = Simulator()
    sw, sink = make_switch(sim)
    sw.add_block(TagBlock("drop"))
    sw.process(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert sink.received == []


def test_block_ordering_and_early_stop():
    sim = Simulator()
    sw, _sink = make_switch(sim)
    first = TagBlock("stop")
    second = TagBlock()
    sw.add_block(first)
    sw.add_block(second)
    sw.process(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert first.seen == 1
    assert second.seen == 0


def test_packet_to_switch_ip_dropped_if_unconsumed():
    sim = Simulator()
    sw, sink = make_switch(sim)
    sw.process(Packet.udp(1, sw.ip, 3, 4))
    sim.run_until_idle()
    assert sink.received == []
    assert sim.counters.get("sw.drops.to_self") == 1


def test_emitted_packets_forwarded():
    sim = Simulator()
    sw, sink = make_switch(sim)

    class Emitter(ControlBlock):
        def process(self, ctx, switch):
            extra = Packet.udp(5, 6, 7, 8)
            ctx.emit(extra)
            ctx.consume()
            return False

    sw.add_block(Emitter())
    sw.process(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert len(sink.received) == 1
    assert sink.received[0].ip.src == 5


def test_protocol_byte_accounting():
    sim = Simulator()
    sw, _sink = make_switch(sim)
    plain = Packet.udp(1, 2, 3, 4)
    sw.process(plain)
    proto = Packet.udp(1, 2, 3, 4, payload=b"\x00" * 36)
    proto.meta["rp_kind"] = "request"
    sw.process(proto)
    sim.run_until_idle()
    assert sw.bytes_original_out == plain.byte_size()
    assert sw.bytes_protocol_out == proto.byte_size()
    assert 0.0 < sw.protocol_byte_fraction() < 1.0


def test_buffer_accounting_and_overflow():
    sim = Simulator()
    sw, _sink = make_switch(sim)
    sw.buffer_bytes = 100
    sw.buffer_acquire(60)
    sw.buffer_acquire(30)
    assert sw.peak_buffer_occupancy == 90
    sw.buffer_release(50)
    assert sw.buffer_occupancy == 40
    with pytest.raises(RuntimeError):
        sw.buffer_acquire(100)


def test_mirror_session_circulates_until_released():
    sim = Simulator()
    sw, _sink = make_switch(sim)
    session = sw.new_mirror_session(truncate_to_bytes=80)
    passes = []

    def handler(pkt, meta):
        passes.append(sim.now)
        return len(passes) < 3

    session.handler = handler
    big = Packet.udp(1, 2, 3, 4, payload=b"\x00" * 1000)
    session.mirror(big)
    assert sw.buffer_occupancy == 80  # truncated, not full size
    sim.run_until_idle()
    assert len(passes) == 3
    assert sw.buffer_occupancy == 0
    assert session.active_copies == 0


def test_mirror_requires_handler():
    sim = Simulator()
    sw, _sink = make_switch(sim)
    session = sw.new_mirror_session()
    with pytest.raises(RuntimeError):
        session.mirror(Packet.udp(1, 2, 3, 4))


def test_mirror_copy_dies_with_switch():
    sim = Simulator()
    sw, _sink = make_switch(sim)
    session = sw.new_mirror_session()
    session.handler = lambda pkt, meta: True  # circulate forever
    session.mirror(Packet.udp(1, 2, 3, 4))
    sim.schedule(5, sw.fail)
    sim.run(until=100)
    assert sw.buffer_occupancy == 0


def test_pktgen_periodic_batches():
    sim = Simulator()
    sw, sink = make_switch(sim)
    built = []

    def builder(i):
        built.append(i)
        return Packet.udp(1, 2, 3, 4)

    sw.pktgen.configure(period_us=100, batch_size=4, builder=builder)
    sw.pktgen.start()
    sim.run(until=350)
    sw.pktgen.stop()
    sim.run_until_idle()
    assert sw.pktgen.batches_generated == 3
    assert built == [0, 1, 2, 3] * 3
    assert len(sink.received) == 12


def test_pktgen_requires_configuration():
    sim = Simulator()
    sw, _sink = make_switch(sim)
    with pytest.raises(RuntimeError):
        sw.pktgen.start()


def test_pktgen_stops_on_switch_failure():
    sim = Simulator()
    sw, sink = make_switch(sim)
    sw.pktgen.configure(100, 1, lambda i: Packet.udp(1, 2, 3, 4))
    sw.pktgen.start()
    sim.schedule(250, sw.fail)
    sim.run(until=1000)
    assert sw.pktgen.batches_generated == 2


def test_control_plane_serializes_ops():
    sim = Simulator()
    sw, _sink = make_switch(sim)
    done = []
    sw.control_plane.submit(lambda: done.append(sim.now))
    sw.control_plane.submit(lambda: done.append(sim.now))
    sim.run_until_idle()
    assert len(done) == 2
    # Second op waits for the first: spaced by one op cost.
    assert done[1] - done[0] == pytest.approx(constants.CONTROL_PLANE_OP_US)


def test_punt_and_reinject_roundtrip():
    sim = Simulator()
    sw, sink = make_switch(sim)
    reinjected = []

    def handler(pkt):
        reinjected.append(sim.now)
        sw.control_plane.reinject(pkt)

    sw.control_plane.punt_handler = handler

    class Punter(ControlBlock):
        def process(self, ctx, switch):
            if not ctx.pkt.meta.get("seen_cpu"):
                ctx.pkt.meta["seen_cpu"] = True
                ctx.punt()
                return False
            return True

    sw.add_block(Punter())
    sw.process(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert len(sink.received) == 1
    # Slow path: at least one PCIe round trip plus a CP op.
    assert sink.receive_times[0] > constants.CONTROL_PLANE_OP_US


def test_punt_without_handler_counts():
    sim = Simulator()
    sw, _sink = make_switch(sim)

    class AlwaysPunt(ControlBlock):
        def process(self, ctx, switch):
            ctx.punt()
            return False

    sw.add_block(AlwaysPunt())
    sw.process(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert sim.counters.get("sw.cp.unhandled_punt") == 1


def test_cp_ops_dropped_when_switch_failed():
    sim = Simulator()
    sw, _sink = make_switch(sim)
    done = []
    sw.control_plane.submit(done.append, 1)
    sw.fail()
    sim.run_until_idle()
    assert done == []

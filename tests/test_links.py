"""Unit tests for links, ports, and nodes."""

import pytest

from repro.net import constants
from repro.net.links import Link, LinkImpairment, Node, SinkNode
from repro.net.packet import Packet
from repro.net.simulator import Simulator


def make_pair(sim, **link_kwargs):
    a = SinkNode(sim, "a")
    b = SinkNode(sim, "b")
    link = Link(sim, a.new_port(), b.new_port(), **link_kwargs)
    return a, b, link


def test_delivery_and_latency():
    sim = Simulator()
    a, b, link = make_pair(sim, latency_us=5.0, bandwidth_gbps=100.0)
    pkt = Packet.udp(1, 2, 3, 4, payload=b"\x00" * 58)  # 100-byte frame
    a.ports[0].send(pkt)
    sim.run_until_idle()
    assert b.received == [pkt]
    # 5 us propagation + 100 B * 8 / 100 Gbps = 0.008 us serialization.
    assert b.receive_times[0] == pytest.approx(5.008)


def test_serialization_scales_with_size_and_bandwidth():
    sim = Simulator()
    _a, _b, link = make_pair(sim, bandwidth_gbps=10.0)
    small = Packet.udp(1, 2, 3, 4)
    big = Packet.udp(1, 2, 3, 4, payload=b"\x00" * 1400)
    assert link.serialization_delay_us(big) > link.serialization_delay_us(small)
    assert link.serialization_delay_us(big) == pytest.approx(
        big.byte_size() * 8 / 10_000
    )


def test_loss_rate_drops_packets():
    sim = Simulator(seed=1)
    a, b, link = make_pair(sim, loss_rate=0.5)
    for _ in range(400):
        a.ports[0].send(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert 100 < len(b.received) < 300
    assert sim.counters["link.drops.loss"] == 400 - len(b.received)


def test_zero_loss_delivers_everything():
    sim = Simulator()
    a, b, _link = make_pair(sim)
    for _ in range(50):
        a.ports[0].send(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert len(b.received) == 50


def test_reordering_delays_some_packets():
    sim = Simulator(seed=3)
    a, b, _link = make_pair(sim, reorder_rate=0.3)
    for i in range(200):
        pkt = Packet.udp(1, 2, 3, 4)
        pkt.meta["i"] = i
        a.ports[0].send(pkt)
    sim.run_until_idle()
    order = [pkt.meta["i"] for pkt in b.received]
    assert order != sorted(order)
    assert sorted(order) == list(range(200))


def test_down_link_drops():
    sim = Simulator()
    a, b, link = make_pair(sim)
    link.fail()
    a.ports[0].send(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert b.received == []
    link.recover()
    a.ports[0].send(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert len(b.received) == 1


def test_in_flight_packets_lost_when_link_fails():
    sim = Simulator()
    a, b, link = make_pair(sim, latency_us=10.0)
    a.ports[0].send(Packet.udp(1, 2, 3, 4))
    sim.schedule(1.0, link.fail)
    sim.run_until_idle()
    assert b.received == []


def test_failed_node_drops_deliveries():
    sim = Simulator()
    a, b, _link = make_pair(sim)
    b.fail()
    a.ports[0].send(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert b.received == []
    assert sim.counters["link.drops.node_failed"] == 1


def test_tx_counters_and_taps():
    sim = Simulator()
    a, b, link = make_pair(sim)
    tapped = []
    link.taps.append(lambda pkt, port: tapped.append(pkt.byte_size()))
    pkt = Packet.udp(1, 2, 3, 4, payload=b"\x00" * 100)
    a.ports[0].send(pkt)
    sim.run_until_idle()
    assert link.total_tx_bytes() == pkt.byte_size()
    assert tapped == [pkt.byte_size()]


def test_blocked_direction_is_asymmetric():
    sim = Simulator()
    a, b, link = make_pair(sim)
    link.impair(LinkImpairment(blocked=True), direction=a.ports[0])
    a.ports[0].send(Packet.udp(1, 2, 3, 4))
    b.ports[0].send(Packet.udp(2, 1, 4, 3))
    sim.run_until_idle()
    assert b.received == []          # a -> b blackholed
    assert len(a.received) == 1      # b -> a untouched
    assert sim.counters["link.drops.partition"] == 1
    assert link.impairment_of(a.ports[0]).blocked
    assert link.impairment_of(b.ports[0]) is None


def test_corruption_drops_at_receiver_after_spending_bandwidth():
    sim = Simulator(seed=9)
    a, b, link = make_pair(sim)
    link.impair(LinkImpairment(corrupt_rate=0.5))
    for _ in range(400):
        a.ports[0].send(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert 100 < len(b.received) < 300
    assert sim.counters["link.drops.corrupt"] == 400 - len(b.received)
    # Corrupted frames were serialized before dying: tx counts all 400.
    assert sim.metrics.total("link.tx_packets", link=link.name) == 400


def test_duplication_delivers_extra_copies():
    sim = Simulator(seed=4)
    a, b, link = make_pair(sim)
    link.impair(LinkImpairment(duplicate_rate=0.5))
    for _ in range(200):
        a.ports[0].send(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    duplicated = len(b.received) - 200
    assert 50 < duplicated < 150
    assert sim.metrics.total("link.duplicated") == duplicated


def test_jitter_adds_bounded_delay():
    sim = Simulator(seed=2)
    a, b, link = make_pair(sim, latency_us=5.0)
    link.impair(LinkImpairment(jitter_us=50.0))
    delays = []
    for _ in range(20):
        sent_at = sim.now
        a.ports[0].send(Packet.udp(1, 2, 3, 4))
        sim.run_until_idle()
        delays.append(b.receive_times[-1] - sent_at)
    base = 5.0  # propagation; serialization is negligible here
    assert all(base <= d <= base + 50.1 for d in delays)
    assert max(delays) - min(delays) > 1.0  # jitter actually varied


def test_degraded_bandwidth_slows_serialization():
    sim = Simulator()
    a, b, link = make_pair(sim, bandwidth_gbps=10.0, latency_us=0.0)
    pkt = Packet.udp(1, 2, 3, 4, payload=b"\x00" * 1400)
    a.ports[0].send(pkt.copy())
    sim.run_until_idle()
    healthy_time = b.receive_times[0]
    link.impair(LinkImpairment(bandwidth_scale=0.1))
    t0 = sim.now
    a.ports[0].send(pkt.copy())
    sim.run_until_idle()
    degraded_time = b.receive_times[1] - t0
    assert degraded_time == pytest.approx(healthy_time * 10.0)


def test_clear_impairments_restores_health():
    sim = Simulator()
    a, b, link = make_pair(sim)
    link.impair(LinkImpairment(blocked=True))
    a.ports[0].send(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert b.received == []
    link.clear_impairments()
    assert not link.impaired
    a.ports[0].send(Packet.udp(1, 2, 3, 4))
    sim.run_until_idle()
    assert len(b.received) == 1


def test_impairment_validates_parameters():
    with pytest.raises(ValueError):
        LinkImpairment(drop_rate=1.5)
    with pytest.raises(ValueError):
        LinkImpairment(corrupt_rate=-0.1)
    with pytest.raises(ValueError):
        LinkImpairment(jitter_us=-1.0)
    with pytest.raises(ValueError):
        LinkImpairment(bandwidth_scale=0.0)
    assert LinkImpairment().describe() == "healthy"
    assert "blocked" in LinkImpairment(blocked=True).describe()


def test_port_cannot_have_two_links():
    sim = Simulator()
    a = SinkNode(sim, "a")
    b = SinkNode(sim, "b")
    c = SinkNode(sim, "c")
    port = a.new_port()
    Link(sim, port, b.new_port())
    with pytest.raises(RuntimeError):
        Link(sim, port, c.new_port())


def test_unattached_port_send_raises():
    sim = Simulator()
    a = SinkNode(sim, "a")
    port = a.new_port()
    with pytest.raises(RuntimeError):
        port.send(Packet.udp(1, 2, 3, 4))


def test_base_node_receive_not_implemented():
    sim = Simulator()
    node = Node(sim, "n")
    with pytest.raises(NotImplementedError):
        node.receive(Packet.udp(1, 2, 3, 4), None)

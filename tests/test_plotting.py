"""Tests for the ASCII plotting helpers."""

import pytest

from repro.analysis.plotting import ascii_cdf, ascii_series, ascii_timeline


def test_cdf_renders_markers_and_legend():
    plot = ascii_cdf({"fast": [1, 2, 3], "slow": [10, 20, 30]})
    assert "*=fast" in plot and "o=slow" in plot
    assert "1.00 |" in plot
    assert "*" in plot and "o" in plot


def test_cdf_log_scale():
    plot = ascii_cdf({"x": [1, 10, 100, 1000]}, log_x=True)
    assert "log10" in plot


def test_cdf_requires_series():
    with pytest.raises(ValueError):
        ascii_cdf({})


def test_series_plot_contains_extents():
    plot = ascii_series({"a": [(0, 0), (1, 10)], "b": [(0, 10), (1, 0)]},
                        x_label="ratio", y_label="Mpps")
    assert "ratio: 0 .. 1" in plot
    assert "*=a" in plot and "o=b" in plot


def test_series_requires_data():
    with pytest.raises(ValueError):
        ascii_series({})


def test_timeline_bars_scale_and_mark_events():
    points = [(0.0, 1.0), (0.1, 0.0), (0.2, 0.5)]
    out = ascii_timeline(points, events={0.1: "failure"})
    lines = out.splitlines()
    assert "failure" in out
    assert lines[0].count("#") > lines[2].count("#") > lines[1].count("#")


def test_timeline_requires_points():
    with pytest.raises(ValueError):
        ascii_timeline([])

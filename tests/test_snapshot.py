"""Tests for lazy snapshotting (Algorithm 1) and snapshot replication."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import Simulator, deploy, RedPlaneConfig
from repro.apps.counter import AsyncCounterApp
from repro.core.api import attach_snapshot_replication
from repro.core.snapshot import LazySnapshotArray
from repro.net.packet import FlowKey, Packet
from repro.switch.pipeline import PipelineContext


def ctx():
    return PipelineContext(pkt=Packet(), now=0.0)


def test_updates_accumulate():
    array = LazySnapshotArray("a", 8)
    for _ in range(5):
        array.update(ctx(), 3, 1)
    assert array.cp_live_values()[3] == 5


def test_snapshot_read_returns_frozen_values():
    array = LazySnapshotArray("a", 4)
    for i in range(4):
        array.update(ctx(), i, 10 + i)
    # Take a snapshot: slot 0 flips the buffer.
    frozen = [array.snapshot_read(ctx(), i) for i in range(4)]
    assert frozen == [10, 11, 12, 13]


def test_updates_during_snapshot_do_not_corrupt_it():
    """The crux of Algorithm 1: a consistent snapshot under concurrent
    updates, even though only one register entry is touched per packet."""
    array = LazySnapshotArray("a", 4)
    for i in range(4):
        array.update(ctx(), i, 100)
    # Begin a snapshot (flip), read slot 0 only.
    got0 = array.snapshot_read(ctx(), 0)
    # Traffic updates slots 1 and 2 *after* the flip but before they are
    # snapshot-read.
    array.update(ctx(), 1, 5)
    array.update(ctx(), 2, 7)
    got_rest = [array.snapshot_read(ctx(), i) for i in range(1, 4)]
    # The snapshot reflects the pre-flip state exactly.
    assert [got0] + got_rest == [100, 100, 100, 100]
    # The live values kept the concurrent updates.
    assert array.cp_live_values() == [100, 105, 107, 100]


def test_second_snapshot_sees_interim_updates():
    array = LazySnapshotArray("a", 2)
    array.update(ctx(), 0, 1)
    assert [array.snapshot_read(ctx(), i) for i in range(2)] == [1, 0]
    array.update(ctx(), 0, 2)
    array.update(ctx(), 1, 9)
    assert [array.snapshot_read(ctx(), i) for i in range(2)] == [3, 9]
    assert array.snapshots_taken == 2


def test_cp_install_restores_values():
    array = LazySnapshotArray("a", 3)
    array.cp_install([7, 8, 9])
    assert array.cp_live_values() == [7, 8, 9]
    array.update(ctx(), 1, 1)
    assert array.cp_live_values() == [7, 9, 9]
    with pytest.raises(ValueError):
        array.cp_install([1])


class NaiveTwoBuffer:
    """Reference model: an explicit frozen copy taken atomically."""

    def __init__(self, size):
        self.live = [0] * size
        self.frozen = [0] * size

    def update(self, index, delta):
        self.live[index] += delta

    def snapshot(self):
        self.frozen = list(self.live)

    def read_frozen(self, index):
        return self.frozen[index]


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["update", "snapshot"]),
              st.integers(min_value=0, max_value=7),
              st.integers(min_value=1, max_value=5)),
    max_size=60,
))
def test_lazy_snapshot_matches_reference_model(ops):
    """Property: interleaved updates + snapshots match an atomic-copy model.

    A 'snapshot' op flips the lazy array and reads ALL slots (as the packet
    generator burst does); reads must equal the reference's frozen copy.
    """
    size = 8
    lazy = LazySnapshotArray("a", size)
    ref = NaiveTwoBuffer(size)
    for op, index, delta in ops:
        if op == "update":
            assert lazy.update(ctx(), index, delta) == ref.live[index] + delta
            ref.update(index, delta)
        else:
            ref.snapshot()
            got = [lazy.snapshot_read(ctx(), i) for i in range(size)]
            assert got == ref.frozen


def test_periodic_replication_end_to_end():
    """Async-Counter: snapshots reach the store within one period."""
    sim = Simulator(seed=4)
    from repro.core.engine import RedPlaneMode

    dep = deploy(sim, lambda: AsyncCounterApp(slots=8),
                 config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY))
    # Wire a replicator on each switch for its app's counter array.
    reps = {}
    for agg in dep.bed.aggs:
        app = dep.apps[agg.name]
        eng = dep.engines[agg.name]
        reps[agg.name] = attach_snapshot_replication(
            eng, {AsyncCounterApp.STORE_KEY: app.counters}, period_us=1_000.0
        )
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    for i in range(20):
        pkt = Packet.udp(e1.ip, s11.ip, 5555, 7777)
        sim.schedule(i * 10.0, e1.send, pkt)
    sim.run(until=4_000)
    for agg in dep.bed.aggs:
        reps[agg.name].stop()
    sim.run_until_idle()

    active = max(dep.bed.aggs, key=lambda a: dep.apps[a.name].counters.cp_live_values().count(20))
    app = dep.apps[active.name]
    slot = app.slot_of(Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key())
    rec = dep.stores[0].records[AsyncCounterApp.STORE_KEY]
    # The store's snapshot of the hot slot reached the final count.
    assert rec.snapshot_vals[slot] == 20
    rep = reps[active.name]
    assert rep.slots_replicated >= 8
    assert rep.staleness_us() < float("inf")


def test_staleness_bound_tracked():
    sim = Simulator(seed=4)
    from repro.core.engine import RedPlaneMode

    dep = deploy(sim, lambda: AsyncCounterApp(slots=4),
                 config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY))
    agg = dep.bed.aggs[0]
    rep = attach_snapshot_replication(
        dep.engines[agg.name],
        {AsyncCounterApp.STORE_KEY: dep.apps[agg.name].counters},
        period_us=500.0,
    )
    assert rep.staleness_us() == float("inf")
    sim.run(until=2_000)
    rep.stop()
    sim.run_until_idle()
    # Epsilon: time since last complete snapshot stays near the period.
    assert rep.staleness_us() <= 2_000

"""Tests for the simplified TCP endpoints."""

import pytest

from repro.net import Simulator, build_testbed
from repro.net.topology import Topology
from repro.net.links import Link
from repro.workloads.tcp import TcpReceiver, TcpSender


def direct_pair(sim, loss=0.0, bandwidth_gbps=1.0):
    """Sender and receiver joined by a single link."""
    sender = TcpSender(sim, "snd", 0x0A000001, dst_ip=0x0A000002,
                       segment_bytes=16 * 1024)
    receiver = TcpReceiver(sim, "rcv", 0x0A000002)
    Link(sim, sender.nic, receiver.nic, latency_us=10.0,
         bandwidth_gbps=bandwidth_gbps, loss_rate=loss)
    return sender, receiver


def test_bulk_transfer_progresses():
    sim = Simulator(seed=1)
    sender, receiver = direct_pair(sim)
    sender.start()
    sim.run(until=200_000)
    sender.stop()
    sim.run_until_idle()
    assert receiver.bytes_received > 1_000_000
    assert receiver.bytes_received == receiver.expected_seq * 16 * 1024


def test_cwnd_grows_from_slow_start():
    sim = Simulator(seed=1)
    sender, _receiver = direct_pair(sim)
    sender.start()
    sim.run(until=50_000)
    assert sender.cwnd > 4
    sender.stop()
    sim.run_until_idle()


def test_loss_triggers_retransmissions_but_delivers_in_order():
    sim = Simulator(seed=7)
    sender, receiver = direct_pair(sim, loss=0.02)
    sender.start()
    sim.run(until=2_000_000)
    sender.stop()
    sim.run_until_idle()
    assert sender.retransmits + sender.timeouts > 0
    assert receiver.bytes_received > 0
    assert receiver.bytes_received == receiver.expected_seq * 16 * 1024


def test_blackout_stalls_then_recovers():
    sim = Simulator(seed=2)
    sender, receiver = direct_pair(sim)
    link = sender.nic.link
    sender.start()
    sim.run(until=100_000)
    link.fail()
    sim.run(until=600_000)
    stalled_bytes = receiver.bytes_received
    link.recover()
    sim.run(until=1_600_000)
    sender.stop()
    sim.run_until_idle()
    assert sender.timeouts >= 1
    assert receiver.bytes_received > stalled_bytes


def test_goodput_series_reflects_outage():
    sim = Simulator(seed=3)
    sender, receiver = direct_pair(sim)
    link = sender.nic.link
    sender.start()
    sim.schedule(300_000, link.fail)
    sim.schedule(900_000, link.recover)
    sim.run(until=2_000_000)
    sender.stop()
    sim.run_until_idle()
    series = sender.goodput_series_gbps(2_000_000)
    # Healthy before the failure, ~zero during the blackout, healthy after.
    before = max(g for t, g in series if t < 0.3)
    during = max(g for t, g in series if 0.45 < t < 0.85)
    after = max(g for t, g in series if t > 1.5)
    assert before > 0.3
    assert during < 0.05
    assert after > 0.3

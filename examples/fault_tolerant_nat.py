#!/usr/bin/env python
"""Scenario: an in-switch NAT that does not break connections on failure.

This is the paper's motivating example (Fig 1): a NAT on a programmable
switch holds per-connection translation state; when the switch fails and
traffic reroutes, a plain NAT drops every established connection, while
the RedPlane NAT restores its translation table from the state store.

We run a live TCP bulk transfer through the NAT, kill the switch carrying
it mid-transfer, and plot the goodput timeline (an ASCII Fig 14).

Run:  python examples/fault_tolerant_nat.py
"""

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps import NatApp, install_nat_routes
from repro.workloads.tcp import TcpReceiver, TcpSender


def main() -> None:
    sim = Simulator(seed=14)
    dep = deploy(sim, NatApp,
                 config=RedPlaneConfig(lease_period_us=1_000_000.0))
    install_nat_routes(dep.bed)
    bed = dep.bed

    # iperf-like endpoints on 1 Gbps access links (so the multi-second
    # timeline stays simulable; fabric timing is unscaled).
    sender = TcpSender(sim, "iperf-c", bed.servers[0].ip + 100, dst_ip=0,
                       segment_bytes=16 * 1024, goodput_bucket_us=100_000.0,
                       max_cwnd=64.0)
    bed.topology.add_node(sender)
    bed.topology.connect(bed.tors[0], sender, bandwidth_gbps=1.0)
    bed.tors[0].table.add(sender.ip, 32, [bed.tors[0].ports[-1]])

    receiver = TcpReceiver(sim, "iperf-s", bed.externals[0].ip + 100)
    bed.topology.add_node(receiver)
    bed.topology.connect(bed.cores[0], receiver, bandwidth_gbps=1.0)
    bed.cores[0].table.add(receiver.ip, 32, [bed.cores[0].ports[-1]])
    peer = [p for p in bed.cores[1].ports
            if p.link and p.link.other_end(p).node is bed.cores[0]]
    bed.cores[1].table.add(receiver.ip, 32, peer)
    sender.dst_ip = receiver.ip

    sender.start()
    sim.run(until=2_000_000)  # 2 s of healthy transfer

    owner = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
    print(f"t=2.0s: failing {owner.switch.name} "
          f"(the switch holding the NAT state for this connection)")
    dep.bed.topology.fail_node(owner.switch, detect_delay_us=350_000.0)

    sim.run(until=6_000_000)
    sender.stop()
    sim.run(until=6_500_000)

    print("\ngoodput timeline (each row = 100 ms):")
    healthy = None
    for t, gbps in sender.goodput_series_gbps(6_000_000):
        bar = "#" * int(gbps * 40)
        marker = "  <-- switch failed" if abs(t - 2.0) < 0.05 else ""
        print(f"  {t:5.1f}s  {gbps:5.2f} Gbps  {bar}{marker}")
        if healthy is None and gbps > 0.5:
            healthy = gbps

    series = sender.goodput_series_gbps(6_000_000)
    outage = [t for t, g in series if t > 2.0 and g < 0.1]
    recovered = [t for t, g in series if t > 2.0 and g > 0.5]
    if recovered:
        print(f"\nconnection survived: outage {outage[0]:.1f}s-"
              f"{recovered[0]:.1f}s, recovered in "
              f"{recovered[0] - 2.0:.1f}s after the failure")
        print("(detection/reroute + the remaining lease time, §7.3)")
    else:
        print("\nconnection did NOT recover — unexpected!")
    print(f"TCP timeouts during the outage: {sender.timeouts}, "
          f"bytes delivered: {receiver.bytes_received / 1e6:.1f} MB")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: make a stateful in-switch app fault tolerant with RedPlane.

Builds the paper's testbed (two programmable aggregation switches, a
chain-replicated state store), runs a per-flow packet counter on the
switches, then kills the switch that owns the flow and shows the state
surviving on the other one.

Run:  python examples/quickstart.py
"""

from repro import Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.net.packet import Packet


def main() -> None:
    # 1. One call wires the whole testbed: topology, switches, state store
    #    (3-server chain), shard map, and a RedPlane engine per switch.
    sim = Simulator(seed=7)
    dep = deploy(sim, SyncCounterApp)

    sender = dep.bed.externals[0]   # a host outside the datacenter
    receiver = dep.bed.servers[0]   # a server inside rack 1
    delivered = []
    receiver.default_handler = lambda pkt: delivered.append(sim.now)

    # 2. Send ten packets of one flow; every packet increments the flow's
    #    counter, and every increment is replicated to the state store
    #    *before* the packet is released (piggybacking, §5.1).
    def send_packet() -> None:
        sender.send(Packet.udp(sender.ip, receiver.ip, 5555, 7777))

    for i in range(10):
        sim.schedule(i * 200.0, send_packet)
    sim.run_until_idle()

    flow = Packet.udp(sender.ip, receiver.ip, 5555, 7777).flow_key()
    owner = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
    print(f"delivered {len(delivered)}/10 packets")
    print(f"flow owned by {owner.switch.name}, count = "
          f"{owner.flow_state(flow)[0]}")
    print(f"state store replicas hold: "
          f"{[st.records[flow].vals[0] for st in dep.stores]}")

    # 3. Fail the owning switch. ECMP reroutes the flow to the other
    #    switch, which fetches the latest state from the store (lease
    #    migration, §5.3) and continues the count — no reset to zero.
    print(f"\n--- failing {owner.switch.name} ---")
    dep.bed.topology.fail_node(owner.switch)
    sim.run(until=sim.now + 400_000)  # routing detects and reroutes

    for i in range(10):
        sim.schedule(i * 200.0, send_packet)
    sim.run_until_idle()

    survivor = next(e for e in dep.engines.values() if e is not owner)
    print(f"delivered {len(delivered)}/20 packets total")
    print(f"{survivor.switch.name} now owns the flow, count = "
          f"{survivor.flow_state(flow)[0]}  (continued from 10, not reset)")
    print(f"protocol stats: {dict(survivor.stats)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scenario: a million-flow Zipf workload through RedPlane-NAT, with one
mid-campaign switch failover — at fast-path speed.

A CDN-edge-shaped workload: packets are drawn from a Zipf popularity
distribution over a population of one million distinct connections. A
few head flows carry much of the traffic (they live in the flow cache
and the flow table the whole run); a long tail of one-packet flows
churns through lease acquisition, control-plane NAT installs, and —
because the flow table is a fixed-size SRAM resource — periodic
control-plane reclamation of expired entries.

Halfway through, the aggregation switch owning most leases fails. The
fast path hears about it on the invalidation bus (the same publish the
chaos engine uses), flushes its compiled state, and the survivors
migrate their leases to the peer switch via the state store.

This workload is the *adversarial* case for the flow cache: every cold
flow's control-plane NAT install publishes on the invalidation bus and
flushes compiled flow entries, so the hit rate hovers near 50% instead
of the >90% that stable-flow benchmarks reach (see BENCH_fastpath.json
for those). The point here is the other half of the contract: under
maximal invalidation churn plus a failover, the fast path stays
bit-identical to the reference pipeline and the campaign still
completes in under two minutes of wall clock.

Run:  python examples/million_flow_campaign.py [--packets N]
      [--population N] [--no-fastpath]
"""

import argparse
import random
import time
from bisect import bisect_right

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps import NatApp, install_nat_routes
from repro.fastpath import FastPath
from repro.net.packet import Packet

#: Zipf exponent: ~flat enough that the tail is enormous (the point of
#: the campaign) but the head still dominates per-packet traffic.
ZIPF_S = 1.05
#: Leases long enough that head flows renew instead of re-acquiring,
#: short enough that tail flows expire and their SRAM slots recycle.
LEASE_US = 400_000.0
#: Control-plane reclamation sweep period (simulated).
RECLAIM_EVERY_US = 800_000.0
SPACING_US = 32.0  # paced to the 88 us serial control-plane install cost


def zipf_sampler(population: int, seed: int):
    """O(log n) Zipf sampling via bisection over the cumulative mass."""
    cum = []
    total = 0.0
    for rank in range(1, population + 1):
        total += rank ** -ZIPF_S
        cum.append(total)
    rng = random.Random(seed)
    return lambda: bisect_right(cum, rng.random() * total)


def flow_ports(flow_id: int):
    """Distinct (sport, dport) per flow id — one million 5-tuples."""
    return 2000 + flow_id % 60000, 1000 + flow_id // 60000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=130_000,
                        help="total packets to draw (default 130000)")
    parser.add_argument("--population", type=int, default=1_000_000,
                        help="distinct-flow population (default 1e6)")
    parser.add_argument("--no-fastpath", action="store_true",
                        help="reference path only (for A/B comparison)")
    args = parser.parse_args()

    wall_start = time.perf_counter()
    sim = Simulator(seed=23)
    dep = deploy(sim, NatApp, config=RedPlaneConfig(
        lease_period_us=LEASE_US,
        renew_interval_us=LEASE_US / 2,
        max_flows=65_536,
        record_history=False,  # 2x packets of history is not the point here
    ))
    install_nat_routes(dep.bed)
    if not args.no_fastpath:
        FastPath.install(sim)

    sender = dep.bed.servers[0]
    dst_ip = dep.bed.externals[0].ip
    sample = zipf_sampler(args.population, seed=24)
    draws = [sample() for _ in range(args.packets)]
    print(f"population {args.population:,} flows, {args.packets:,} packets, "
          f"{len(set(draws)):,} distinct flows drawn "
          f"(Zipf s={ZIPF_S}, head flow carries "
          f"{100.0 * draws.count(min(draws)) / len(draws):.1f}%)")

    def send(flow_id: int) -> None:
        sport, dport = flow_ports(flow_id)
        sender.send(Packet.udp(sender.ip, dst_ip, sport, dport))

    t = 0.0
    for flow_id in draws:
        sim.schedule_at(t, send, flow_id)
        t += SPACING_US

    # Traffic ends at t; give in-flight protocol exchanges three lease
    # periods to settle. A failed switch keeps its peers retransmitting
    # (that is the protocol working as designed), so the run is bounded
    # by time, not by quiescence.
    t_end = t + 3 * LEASE_US

    def reclaim() -> None:
        freed = sum(e.reclaim_idle_flows() for e in dep.engines.values())
        if freed:
            sim.count("example.reclaimed", freed)
        if sim.now < t_end:
            sim.schedule(RECLAIM_EVERY_US, reclaim)

    sim.schedule(RECLAIM_EVERY_US, reclaim)

    # One failover at the campaign's midpoint: kill the lease owner.
    fail_at = t / 2

    def fail_owner() -> None:
        owner = max(dep.engines.values(),
                    key=lambda e: e.stats["app_packets"])
        print(f"t={sim.now / 1e6:.3f}s sim: failing {owner.switch.name} "
              f"({owner.stats['app_packets']:,} packets owned)")
        dep.bed.topology.fail_node(owner.switch, detect_delay_us=25_000.0)

    sim.schedule_at(fail_at, fail_owner)
    sim.run(until=t_end)
    wall_s = time.perf_counter() - wall_start

    apps = {id(e.app): e.app for e in dep.engines.values()}
    translated = sum(a.translated_out for a in apps.values())
    surviving = max(dep.engines.values(),
                    key=lambda e: e.stats["app_packets"])
    print(f"\ntranslated {translated:,}/{args.packets:,} packets "
          f"({int(sim.counters.get('example.reclaimed', 0)):,} flow slots "
          f"reclaimed, flow table peak <= 65,536)")
    print(f"survivor {surviving.switch.name}: "
          f"{surviving.stats['app_packets']:,} packets, "
          f"{surviving.stats['lease_requests']:,} lease requests")
    if not args.no_fastpath:
        stats = sim.fastpath.stats()
        flow = stats["flow_cache"]
        total = flow["hits"] + flow["misses"]
        print(f"flow cache: {flow['hits']:,} hits / {flow['misses']:,} "
              f"misses ({100.0 * flow['hits'] / max(total, 1):.1f}%), "
              f"invalidations: " + ", ".join(
                  f"{k}={v}" for k, v in
                  sorted(stats["invalidations"].items()) if v))
    print(f"wall clock: {wall_s:.1f}s "
          f"({'fast path' if not args.no_fastpath else 'reference path'})"
          + ("  [target: < 120s]" if not args.no_fastpath else ""))


if __name__ == "__main__":
    main()

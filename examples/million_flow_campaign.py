#!/usr/bin/env python
"""Scenario: a ten-million-flow Zipf workload through RedPlane-NAT, with
one mid-campaign switch failover — sharded across N workers.

A CDN-edge-shaped workload: packets are drawn from a Zipf popularity
distribution over a population of ten million distinct connections. A
few head flows carry much of the traffic (they live in the flow cache
and the flow table the whole run); a long tail of one-packet flows
churns through lease acquisition, control-plane NAT installs, and —
because the flow table is a fixed-size SRAM resource — periodic
control-plane reclamation of expired entries. Halfway through, one
aggregation switch fails; survivors migrate their leases to the peer
via the state store.

The flow population is *streamed*: each packet draws its flow rank
through an analytic inverse-CDF Zipf sampler (O(1) per draw, no
cumulative-mass table), so a 10M population costs no more memory than a
thousand. The driver lives in :mod:`repro.shard.bench` — the same code
the committed scaling curve (BENCH_shard.json) and the perf-trajectory
shard figure measure.

``--workers N`` partitions the flow population across N shards using
the committed shard plan (``shard_plans/nat.json``); the merged counts
are ghost-subtracted back to the single-process totals. With
``--heartbeat-dir`` each shard streams NDJSON health snapshots you can
watch live from another terminal:

    python -m repro.tools watch hb/heartbeat.*.ndjson -f

Run:  python examples/million_flow_campaign.py [--workers N] [--seed N]
      [--packets N] [--population N] [--no-fastpath]
      [--heartbeat-dir DIR] [--mode inline|process]
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.shard.bench import (  # noqa: E402
    DEFAULT_PACKETS,
    SPACING_US,
    ZIPF_S,
)
from repro.shard.runner import resolve, run_sharded  # noqa: E402


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2,
                        help="shard workers (default 2; 1 = no split)")
    parser.add_argument("--seed", type=int, default=None,
                        help="simulator seed (default: the scenario's)")
    parser.add_argument("--packets", type=int, default=DEFAULT_PACKETS,
                        help=f"packets to draw (default {DEFAULT_PACKETS})")
    parser.add_argument("--population", type=int, default=10_000_000,
                        help="distinct-flow population (default 1e7)")
    parser.add_argument("--no-fastpath", action="store_true",
                        help="reference pipeline only (for A/B timing)")
    parser.add_argument("--heartbeat-dir", dest="heartbeat_dir",
                        help="write per-shard heartbeat NDJSON here "
                             "(watch with 'repro.tools watch DIR/*.ndjson -f')")
    parser.add_argument("--mode", choices=("inline", "process"),
                        default="inline",
                        help="inline (sequential shards, one process) or "
                             "process (spawned workers)")
    args = parser.parse_args()

    print(f"population {args.population:,} flows, {args.packets:,} packets "
          f"(Zipf s={ZIPF_S}, spacing {SPACING_US}us), "
          f"{args.workers} worker(s), {args.mode} mode")

    config = resolve(
        "million_flow", args.workers, seed=args.seed,
        fastpath=not args.no_fastpath, capture=False,
        heartbeat_dir=args.heartbeat_dir,
        params={"packets": args.packets, "population": args.population},
    )
    wall_start = time.perf_counter()
    merged = run_sharded(config, mode=args.mode)
    wall_s = time.perf_counter() - wall_start

    extra = merged.get("extra") or {}
    print(f"\ntranslated {extra.get('translated', 0):,}/{args.packets:,} "
          f"packets ({extra.get('reclaimed', 0):,} flow slots reclaimed, "
          f"flow table peak <= 65,536)")
    print(f"events      : {merged['events']:,} "
          f"(ghost-subtracted across {merged['num_shards']} shard(s))")
    print(f"flows/shard : {merged['flows_per_shard']}")
    walls = ", ".join(f"{w:.1f}s" for w in merged["wall_s_per_shard"])
    print(f"wall/shard  : {walls} (ghost {merged['wall_s_ghost']:.1f}s)")
    crit = max(merged["wall_s_per_shard"])
    print(f"wall clock  : {wall_s:.1f}s total; critical path {crit:.1f}s "
          f"-> {args.packets / crit:,.0f} pkt/s "
          f"({'fast path' if not args.no_fastpath else 'reference path'})")
    if args.heartbeat_dir:
        print(f"heartbeats  : {args.heartbeat_dir}/heartbeat.*.ndjson "
              f"(python -m repro.tools watch ... -f)")


if __name__ == "__main__":
    main()

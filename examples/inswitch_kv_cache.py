#!/usr/bin/env python
"""Scenario: a fault-tolerant in-switch key-value store.

NetCache-style systems serve hot objects from switch registers at line
rate; Table 1 lists "losing key-value pairs" as their failure mode. With
RedPlane, reads stay on the line-rate fast path while each update is
synchronously replicated, so a switch failure loses nothing — and the
update ratio of the workload directly controls the replication load
(what Fig 13 sweeps).

Run:  python examples/inswitch_kv_cache.py
"""

from repro import Simulator, deploy
from repro.apps import (
    KvStoreApp,
    OP_READ,
    OP_UPDATE,
    install_kv_routes,
    make_request,
    parse_reply,
)
from repro.workloads.traces import kv_trace


def main() -> None:
    sim = Simulator(seed=5)
    dep = deploy(sim, KvStoreApp, num_shards=3, chain_length=1)
    install_kv_routes(dep.bed)
    client = dep.bed.externals[0]
    replies = []
    client.default_handler = lambda pkt: replies.append(parse_reply(pkt))

    # Populate a few objects, then run a mixed read/update workload.
    for key, value in [(1, 100), (2, 200), (3, 300)]:
        client.send(make_request(client.ip, OP_UPDATE, key, value))
    sim.run_until_idle()
    base = sim.now
    for event in kv_trace(500, num_keys=3, src_ip=client.ip,
                          update_ratio=0.1, seed=5):
        sim.schedule_at(base + event.time_us, client.send, event.pkt)
    sim.run_until_idle()

    reads = [r for r in replies if r[0] == OP_READ]
    updates = [r for r in replies if r[0] == OP_UPDATE]
    print(f"served {len(reads)} reads and {len(updates)} updates "
          f"({len(replies)} replies total)")
    owner = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
    print(f"fast-path reads (no store interaction): "
          f"{owner.stats['fast_path_forwards']}")
    print(f"synchronously replicated updates: "
          f"{owner.stats['writes_replicated']}")

    # Kill the switch serving the objects; read everything back.
    print(f"\n--- failing {owner.switch.name} ---")
    last_values = {}
    for r in replies:
        last_values[r[1]] = r[2]
    dep.bed.topology.fail_node(owner.switch)
    sim.run(until=sim.now + 400_000)

    check = []
    client.default_handler = lambda pkt: check.append(parse_reply(pkt))
    for key in (1, 2, 3):
        client.send(make_request(client.ip, OP_READ, key))
        sim.run_until_idle()

    print("values after failover (vs last written):")
    ok = True
    for op, key, value in check:
        expected = last_values.get(key)
        status = "✔" if value == expected else "LOST"
        ok &= value == expected
        print(f"  key {key}: {value} (expected {expected}) {status}")
    assert ok, "no key-value pair may be lost"
    print("no key-value pairs lost across the switch failure ✔")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scenario: operating RedPlane — store failures and the epsilon watchdog.

Two operational hazards the paper's design anticipates but does not
evaluate, both implemented in this reproduction:

1. a *state-store server* dies: the chain-replication group is healed by
   the failover coordinator and switches are repointed to the new head,
   while replication keeps flowing;
2. the store becomes unreachable in bounded-inconsistency mode: the
   epsilon watchdog (§5.5) notices that snapshots stopped completing and
   applies the configured policy before the inconsistency bound is blown.

Run:  python examples/operations_playbook.py
"""

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps.counter import AsyncCounterApp, SyncCounterApp
from repro.core.api import attach_snapshot_replication
from repro.core.engine import RedPlaneMode
from repro.core.epsilon import EpsilonGuard, EpsilonPolicy
from repro.net.packet import Packet
from repro.statestore import StoreFailoverCoordinator


def store_failover_demo() -> None:
    print("=== 1. chain-replica failure is healed transparently ===")
    sim = Simulator(seed=8)
    dep = deploy(sim, SyncCounterApp)  # one shard, chain of three
    coordinator = StoreFailoverCoordinator(
        sim, dep.shard_map, dep.chains, switches=dep.bed.aggs,
        heartbeat_interval_us=50_000.0, missed_threshold=2,
    )
    coordinator.start()
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    got = []
    s11.default_handler = got.append

    e1.send(Packet.udp(e1.ip, s11.ip, 5555, 7777))
    sim.run(until=50_000)
    head = dep.shard_map.addresses()[0]
    print(f"chain: {[n.name for n in coordinator.alive_chain(0)]}, "
          f"head at {head.ip:#010x}")

    print("-- killing the chain head (st1) --")
    dep.stores[0].fail()
    sim.run(until=sim.now + 300_000)
    head = dep.shard_map.addresses()[0]
    print(f"healed chain: {[n.name for n in coordinator.alive_chain(0)]}, "
          f"new head at {head.ip:#010x} "
          f"(detection {coordinator.detection_latency_us() / 1000:.0f} ms)")

    e1.send(Packet.udp(e1.ip, s11.ip, 5555, 7777))
    coordinator.stop()
    sim.run_until_idle()
    key = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()
    print(f"replication continued: survivors hold count = "
          f"{[st.records[key].vals[0] for st in dep.stores if not st.failed]}"
          f", packets delivered = {len(got)}\n")


def epsilon_watchdog_demo() -> None:
    print("=== 2. epsilon watchdog under store outage (bounded mode) ===")
    sim = Simulator(seed=9)
    dep = deploy(sim, lambda: AsyncCounterApp(slots=8),
                 config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY))
    agg = dep.bed.aggs[0]
    replicator = attach_snapshot_replication(
        dep.engines[agg.name],
        {AsyncCounterApp.STORE_KEY: dep.apps[agg.name].counters},
        period_us=1_000.0,
    )
    guard = EpsilonGuard(replicator, epsilon_us=5_000.0,
                         policy=EpsilonPolicy.DROP_PACKETS,
                         on_violation=lambda: print(
                             f"t={sim.now / 1000:.1f} ms: epsilon EXCEEDED — "
                             f"dropping app traffic until snapshots resume"))
    agg.pipeline.blocks.insert(0, guard)
    guard.start()

    sim.run(until=4_000)
    print(f"t=4 ms: snapshots healthy, staleness = "
          f"{replicator.staleness_us():.0f} us (epsilon = 5000 us)")

    print("-- store servers become unreachable --")
    for store in dep.stores:
        store.fail()
    sim.run(until=20_000)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    for i in range(5):
        sim.schedule(i * 100.0, agg.process,
                     Packet.udp(e1.ip, s11.ip, 5555, 7777))
    sim.run(until=30_000)
    print(f"t=30 ms: guard dropped {guard.packets_dropped} packets; the "
          f"un-replicated state window stayed bounded instead of growing")
    guard.stop()
    replicator.stop()
    for a in dep.bed.aggs:
        a.pktgen.stop()
    for engine in dep.engines.values():
        engine.shutdown()  # release copies still retransmitting to the dead store
    sim.run_until_idle()


if __name__ == "__main__":
    store_failover_demo()
    epsilon_watchdog_demo()

#!/usr/bin/env python
"""Scenario: per-tenant heavy-hitter detection with bounded inconsistency.

A cloud operator enforces per-tenant QoS with count-min sketches in the
switch (one sketch set per VLAN, §6). Sketches are updated on *every*
packet, so synchronous replication is unaffordable; RedPlane instead takes
consistent snapshots with the lazy two-copy structure (Algorithm 1) and
replicates them every millisecond. After a switch failure, the detector
recovers to a sketch at most one snapshot period old — estimates are
slightly stale, never garbage.

Run:  python examples/tenant_heavy_hitters.py
"""

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps import HeavyHitterApp
from repro.apps.heavy_hitter import vlan_store_key
from repro.core.api import attach_snapshot_replication
from repro.core.engine import RedPlaneMode
from repro.net.packet import Packet
from repro.workloads.traces import vlan_trace

TENANTS = [10, 20]
SNAPSHOT_PERIOD_US = 1_000.0


def main() -> None:
    sim = Simulator(seed=3)
    dep = deploy(
        sim,
        lambda: HeavyHitterApp(vlans=TENANTS, threshold=50),
        config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY),
    )
    replicators = {}
    for agg in dep.bed.aggs:
        replicators[agg.name] = attach_snapshot_replication(
            dep.engines[agg.name],
            dep.apps[agg.name].snapshot_structures(),
            period_us=SNAPSHOT_PERIOD_US,
        )

    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    # Tenant 10 sends a heavy flow plus background noise; tenant 20 only
    # background traffic.
    for i in range(300):
        sim.schedule(i * 20.0, e1.send,
                     Packet.udp(e1.ip, s11.ip, 5555, 7777, vlan=10))
    for event in vlan_trace(400, TENANTS, 50, e1.ip, s11.ip, seed=9):
        sim.schedule_at(event.time_us, e1.send, event.pkt)
    sim.run(until=12_000)

    app = max(dep.apps.values(), key=lambda a: a.packets_sketched)
    active = next(a for a in dep.bed.aggs
                  if dep.apps[a.name] is app)
    heavy_key = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()
    print(f"live sketch on {active.name}: tenant 10 heavy-flow estimate = "
          f"{app.estimate(10, heavy_key)} (threshold 50)")
    print(f"heavy-hitter flags raised: {app.heavy_hits}")
    rep = replicators[active.name]
    print(f"snapshots completed: {rep.epoch}, inconsistency bound "
          f"epsilon ~= {rep.staleness_us():.0f} us")

    # --- the switch dies; restore the detector on the other switch -------
    print(f"\n--- {active.name} fails; restoring sketch from the store ---")
    for agg in dep.bed.aggs:
        agg.pktgen.stop()
    sim.run_until_idle()
    dep.bed.topology.fail_node(active)
    standby = next(a for a in dep.bed.aggs if a is not active)
    standby_app = dep.apps[standby.name]
    store = dep.stores[0]
    for vlan in TENANTS:
        for row in range(standby_app.depth):
            rec = store.records.get(vlan_store_key(vlan, row))
            if rec is None:
                continue
            values = [rec.snapshot_vals.get(i, 0)
                      for i in range(standby_app.width)]
            standby_app.sketches[vlan][row].cp_install(values)

    restored = standby_app.estimate(10, heavy_key)
    truth = app.estimate(10, heavy_key)
    print(f"restored estimate on {standby.name}: {restored} "
          f"(truth at failure: {truth})")
    lost = truth - restored
    max_loss_window = SNAPSHOT_PERIOD_US
    print(f"counts lost to the failure: {lost} "
          f"(bounded by ~one snapshot period of traffic, epsilon = "
          f"{max_loss_window:.0f} us)")
    assert restored >= 50, "detector must still flag the heavy flow"
    print("the heavy flow is still detected after recovery ✔")


if __name__ == "__main__":
    main()

"""Streaming data structures used by write-centric applications."""

from repro.sketch.bloom import BloomFilter
from repro.sketch.countmin import CountMinSketch, sketch_hash

__all__ = ["BloomFilter", "CountMinSketch", "sketch_hash"]

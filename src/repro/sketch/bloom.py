"""Bloom filter — the other approximate structure the paper cites (§4.4).

Bounded-inconsistency replication can lose the most recent inserts, which
for a Bloom filter can introduce false negatives after recovery; RedPlane
bounds that window by the snapshot period epsilon. The filter here is the
reference structure used by tests of that property.
"""

from __future__ import annotations

from typing import List

from repro.sketch.countmin import sketch_hash


class BloomFilter:
    """A standard k-hash Bloom filter over byte-string items."""

    def __init__(self, bits: int = 512, hashes: int = 3) -> None:
        if bits <= 0 or hashes <= 0:
            raise ValueError("bits and hashes must be positive")
        self.bits = bits
        self.hashes = hashes
        self._array: List[bool] = [False] * bits
        self.inserted = 0

    def _positions(self, item: bytes) -> List[int]:
        return [sketch_hash(item, k, self.bits) for k in range(self.hashes)]

    def add(self, item: bytes) -> None:
        for pos in self._positions(item):
            self._array[pos] = True
        self.inserted += 1

    def __contains__(self, item: bytes) -> bool:
        return all(self._array[pos] for pos in self._positions(item))

    def bit_values(self) -> List[int]:
        """The raw bit array as ints (what snapshot replication ships)."""
        return [int(bit) for bit in self._array]

    def load_bits(self, values: List[int]) -> None:
        if len(values) != self.bits:
            raise ValueError("bit count mismatch")
        self._array = [bool(v) for v in values]

    def fill_ratio(self) -> float:
        return sum(self._array) / self.bits

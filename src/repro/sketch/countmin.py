"""Count-min sketch (Cormode & Muthukrishnan) — reference implementation.

The heavy-hitter detector keeps its sketches in switch register arrays
(:class:`~repro.core.snapshot.LazySnapshotArray`); this pure-Python sketch
is the behavioural reference the switch version is tested against, and is
used by analysis code that replays traces offline.
"""

from __future__ import annotations

import zlib
from typing import Hashable, List


def sketch_hash(item: bytes, row: int, width: int) -> int:
    """The row-``row`` hash of ``item`` into ``[0, width)``.

    CRC32 with a per-row salt — the same family the switch pipeline uses,
    so reference and in-switch sketches agree exactly.
    """
    return zlib.crc32(bytes([row]) * 4 + item) % width


class CountMinSketch:
    """A ``depth x width`` count-min sketch over byte-string items."""

    def __init__(self, depth: int = 3, width: int = 64) -> None:
        if depth <= 0 or width <= 0:
            raise ValueError("depth and width must be positive")
        self.depth = depth
        self.width = width
        self.rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self.total = 0

    def indices(self, item: bytes) -> List[int]:
        return [sketch_hash(item, row, self.width) for row in range(self.depth)]

    def add(self, item: bytes, count: int = 1) -> int:
        """Add ``count`` occurrences; returns the new estimate."""
        estimate = None
        for row, index in enumerate(self.indices(item)):
            self.rows[row][index] += count
            value = self.rows[row][index]
            estimate = value if estimate is None else min(estimate, value)
        self.total += count
        return estimate or 0

    def estimate(self, item: bytes) -> int:
        """Point-query estimate (an overestimate, never an underestimate)."""
        return min(
            self.rows[row][index] for row, index in enumerate(self.indices(item))
        )

    def merge(self, other: "CountMinSketch") -> None:
        if (self.depth, self.width) != (other.depth, other.width):
            raise ValueError("cannot merge sketches of different shapes")
        for row in range(self.depth):
            for i in range(self.width):
                self.rows[row][i] += other.rows[row][i]
        self.total += other.total

    def clear(self) -> None:
        for row in self.rows:
            for i in range(len(row)):
                row[i] = 0
        self.total = 0

"""``repro.fastpath`` — the opt-in simulation acceleration subsystem.

Layers (see docs/PERFORMANCE.md for the full design):

* :mod:`repro.fastpath.flowcache` — per-switch flow fast-path cache with
  explicit dependency sets;
* :mod:`repro.fastpath.invalidation` — the scoped invalidation bus;
* :mod:`repro.fastpath.lanes` — compiled link lanes with batched
  same-edge delivery;
* :mod:`repro.fastpath.wheel` — the calendar-bucket timer wheel behind
  ``Simulator(scheduler="wheel")``;
* :mod:`repro.fastpath.runtime` — installation and dispatch.

The contract everywhere is *bit-identical or bust*: with a
:class:`FastPath` installed, trace records, metric values, figure
outputs, and chaos verdicts match the reference path byte for byte.
Enable with::

    from repro.fastpath import FastPath
    fp = FastPath.install(sim)
    ...
    print(fp.stats())
"""

from repro.fastpath.invalidation import FLOW_SCOPES, SCOPES, InvalidationBus
from repro.fastpath.runtime import FastPath
from repro.fastpath.wheel import TimerWheel

__all__ = [
    "FLOW_SCOPES",
    "FastPath",
    "InvalidationBus",
    "SCOPES",
    "TimerWheel",
]

"""The invalidation bus: how mutations reach the fast-path caches.

Compiled fast-path state (flow-cache entries, and any future compiled
artifact) is only sound while the inputs it was compiled from hold. The
bus is the single channel those inputs announce changes on: every
mutating site that could invalidate a compiled entry publishes a *scope*
here, and every cache entry carries the generation stamp of the scopes
it depends on. Validity is then one integer comparison per packet —
there is no per-entry subscription bookkeeping to maintain on the hot
path.

Scopes (the rows of the invalidation matrix in docs/PERFORMANCE.md):

``table``
    Control-plane table mutations. Published conservatively by
    :meth:`repro.switch.control_plane.SwitchControlPlane.submit` — a CP
    operation is an opaque callable that may install or remove entries.
``register``
    Register writes from outside the packet path (``cp_write`` during
    state migration/initialization). Flow-cache replay reads every
    register *live* — an entry caches classification, partition key,
    and flow index, never register contents — so this scope is
    observability-only and deliberately NOT in :data:`FLOW_SCOPES`:
    each new-flow state install would otherwise flush every entry.
``lease``
    Flow-table lifecycle: index reclamation
    (:meth:`RedPlaneEngine.reclaim_idle_flows`), forced lease expiry,
    and shard-ownership migration during store failover. Cached flow
    indices die here. Store crash recovery
    (:meth:`~repro.statestore.server.StateStoreNode.restart`) publishes
    it too: a cached lease decision may predate the crash, and a
    non-durable backend no longer holds the lease's record.
``snapshot``
    Snapshot rotation in bounded-inconsistency deployments; also
    published by store crash recovery, which invalidates any snapshot
    state the restarted backend did not replay.
``routing``
    Route/belief churn. The per-switch route caches are validated by
    local version counters instead (cheaper), so this scope is
    observability-only.
``chaos``
    Every fault injected or cleared by a failure schedule. Chaos
    campaigns flush all compiled state, so an injected gray failure can
    never race a stale cache entry.

Publishing any of the scopes in :data:`FLOW_SCOPES` bumps the combined
``flow_gen`` that flow-cache entries stamp; per-scope counts are kept
for ``repro.tools fastpath`` stats and the declared
``fastpath.invalidations{scope}`` metric.
"""

from __future__ import annotations

from typing import Dict

#: Every legal scope, in display order.
SCOPES = ("table", "register", "lease", "snapshot", "routing", "chaos")

#: Scopes whose publication invalidates flow-cache entries. ``register``
#: and ``routing`` are absent by design: replay reads registers live, and
#: route caches validate against local version counters.
FLOW_SCOPES = frozenset({"table", "lease", "snapshot", "chaos"})


class InvalidationBus:
    """Scoped generation counters linking mutators to compiled caches."""

    __slots__ = ("flow_gen", "counts")

    def __init__(self) -> None:
        #: Combined generation over :data:`FLOW_SCOPES`; flow-cache
        #: entries are valid iff their stamp equals the current value.
        self.flow_gen = 0
        self.counts: Dict[str, int] = {scope: 0 for scope in SCOPES}

    def publish(self, scope: str) -> None:
        """Announce a mutation in ``scope``; stale entries die lazily."""
        counts = self.counts
        if scope not in counts:
            raise ValueError(f"unknown invalidation scope {scope!r}")
        counts[scope] += 1
        if scope in FLOW_SCOPES:
            self.flow_gen += 1

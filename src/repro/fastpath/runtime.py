"""The fast-path runtime: installation, dispatch, caches, and stats.

:class:`FastPath` is the single object the rest of the tree knows about.
Installing it sets ``sim.fastpath``; the hot paths of
:class:`~repro.net.links.Link`, :class:`~repro.net.routing.L3Switch`,
and :class:`~repro.switch.asic.SwitchASIC` consult that attribute and
hand the packet over when a compiled path exists. Uninstalling (or never
installing) leaves every component on the reference path — that is the
A/B lever the identity tests and ``repro.tools fastpath --diff`` pull.

Three compiled structures live here:

* **link lanes** (:mod:`repro.fastpath.lanes`) — per-direction transmit
  paths with frozen counter handles and batched same-edge delivery;
* **route caches** — per-switch ``(dst, proto, sport, dport) -> port``
  maps validated by the routing table and belief version counters;
* **flow caches** (:mod:`repro.fastpath.flowcache`) — per-ASIC compiled
  classification/partition decisions, invalidated through the
  :class:`~repro.fastpath.invalidation.InvalidationBus`.

Everything is constructed lazily on first contact with a packet, so
installation is O(1) and topology-agnostic.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import (
    RedPlaneEngine,
    RedPlaneMode,
    SWITCH_UDP_PORT,
    _PROTOCOL_PORTS,
)
from repro.fastpath.flowcache import Entry, replay_app, replay_bypass, replay_transit
from repro.fastpath.invalidation import InvalidationBus
from repro.fastpath.lanes import Lane
from repro.net.packet import TCPHeader, UDPHeader
from repro.net.routing import ecmp_hash

#: Entry-count bound per compiled structure; exceeding it clears the
#: structure (counted as a ``capacity`` flush in stats). Keeps memory
#: proportional to the active working set in million-flow campaigns.
CACHE_CAP = 262_144


class _AsicCache:
    """Per-SwitchASIC compiled state: eligibility + flow entries."""

    __slots__ = ("engine", "pipeline_version", "payload_sensitive", "entries",
                 "hits", "misses")

    def __init__(self, engine, pipeline_version, payload_sensitive):
        self.engine = engine
        self.pipeline_version = pipeline_version
        self.payload_sensitive = payload_sensitive
        self.entries = {}
        self.hits = 0
        self.misses = 0


class FastPath:
    """Compiled fast paths over one :class:`~repro.net.simulator.Simulator`."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.bus = InvalidationBus()
        self._lanes = {}  # id(src_port) -> Lane
        self._routes = {}  # id(switch) -> [cache dict, table ver, belief ver]
        self._asics = {}  # id(switch) -> _AsicCache or None (ineligible)
        self._flow_strs = {}  # 5-tuple -> str(FlowKey) memo
        self.route_hits = 0
        self.route_misses = 0
        self.route_flushes = 0
        self.capacity_flushes = 0
        self.batched_deliveries = 0

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def install(cls, sim) -> "FastPath":
        """Create and activate a fast path on ``sim`` (idempotent)."""
        fp = sim.fastpath
        if fp is None:
            fp = sim.fastpath = cls(sim)
        return fp

    def uninstall(self) -> None:
        """Deactivate: every subsequent packet takes the reference path."""
        if self.sim.fastpath is self:
            self.sim.fastpath = None

    # -- link lanes ---------------------------------------------------------

    def make_lane(self, link, src_port):
        """Compile (and register) the lane for one link direction."""
        lane = self._lanes[id(src_port)] = Lane(self, link, src_port)
        return lane

    def link_transmit(self, link, pkt, src_port) -> bool:
        lane = self._lanes.get(id(src_port))
        if lane is None:
            lane = self.make_lane(link, src_port)
        return lane.transmit(pkt)

    def flow_str_of(self, pkt) -> str:
        """Memoized ``str(pkt.flow_key())`` keyed by the raw 5-tuple."""
        ip = pkt.ip
        l4 = pkt.l4
        if type(l4) is UDPHeader or type(l4) is TCPHeader:
            key = (ip.src, ip.dst, ip.proto, l4.sport, l4.dport)
        else:
            key = (ip.src, ip.dst, ip.proto, 0, 0)
        strs = self._flow_strs
        s = strs.get(key)
        if s is None:
            if len(strs) >= CACHE_CAP:
                strs.clear()
                self.capacity_flushes += 1
            s = strs[key] = str(pkt.flow_key())
        return s

    # -- route caches -------------------------------------------------------

    def select_port(self, switch, pkt):
        """Versioned ECMP result cache for one L3 switch.

        Only successful selections are cached; drop outcomes re-walk the
        reference path so their counters fire per packet.
        """
        rc = self._routes.get(id(switch))
        table_ver = switch.table.version
        belief_ver = switch.belief_version
        if rc is None or rc[1] != table_ver or rc[2] != belief_ver:
            if rc is not None:
                self.route_flushes += 1
                self.bus.counts["routing"] += 1
            rc = self._routes[id(switch)] = [{}, table_ver, belief_ver]
        ip = pkt.ip
        l4 = pkt.l4
        if type(l4) is UDPHeader or type(l4) is TCPHeader:
            key = (ip.dst, ip.proto, l4.sport, l4.dport)
        else:
            key = (ip.dst, ip.proto, 0, 0)
        cache = rc[0]
        port = cache.get(key)
        if port is not None:
            self.route_hits += 1
            return port
        self.route_misses += 1
        port = switch._select_port_uncached(pkt)
        if port is not None:
            if len(cache) >= CACHE_CAP:
                cache.clear()
                self.capacity_flushes += 1
            cache[key] = port
        return port

    # -- flow caches --------------------------------------------------------

    def _compile_asic(self, switch) -> Optional[_AsicCache]:
        """Decide whether an ASIC's pipeline is fast-path eligible.

        Eligible means: exactly one control block, and it is a
        :class:`RedPlaneEngine` whose application declares its partition
        inputs (``partition_inputs`` of ``"flow"`` or ``"packet"``).
        Anything else — custom blocks, multi-block pipelines, apps that
        opted out — keeps the reference path forever.
        """
        blocks = switch.pipeline.blocks
        if len(blocks) != 1 or not isinstance(blocks[0], RedPlaneEngine):
            return None
        engine = blocks[0]
        inputs = getattr(engine.app, "partition_inputs", None)
        if inputs not in ("flow", "packet"):
            return None
        return _AsicCache(engine, switch.pipeline.version, inputs == "packet")

    def asic_process(self, switch, pkt) -> bool:
        """Try to replay a compiled decision for one ASIC packet.

        Returns ``True`` when the packet was fully handled (side effects
        bit-identical to the reference pipeline); ``False`` defers to the
        reference path, which also records the entry for next time.
        """
        sid = id(switch)
        ac = self._asics.get(sid, 0)
        if ac == 0:
            ac = self._asics[sid] = self._compile_asic(switch)
        if ac is None:
            return False
        if ac.pipeline_version != switch.pipeline.version:
            ac = self._asics[sid] = self._compile_asic(switch)
            self.bus.counts["table"] += 1
            if ac is None:
                return False
        ip = pkt.ip
        if ip is None:
            return False
        meta = pkt.meta
        l4 = pkt.l4
        is_udp = type(l4) is UDPHeader
        if is_udp and (l4.dport in _PROTOCOL_PORTS or l4.sport in _PROTOCOL_PORTS):
            if ip.dst == switch.ip and l4.dport == SWITCH_UDP_PORT:
                return False  # response to this engine: reference path
            kind = "transit"
            sig = (ip.src, ip.dst, ip.proto, l4.sport, l4.dport, pkt.vlan)
        else:
            if meta.get("rp_kind") is not None:
                return False  # protocol-tagged but oddly addressed: be safe
            if ac.engine.config.mode is not RedPlaneMode.LINEARIZABLE:
                return False  # bounded mode: snapshot paths stay reference
            kind = "app"
            if is_udp or type(l4) is TCPHeader:
                sig = (ip.src, ip.dst, ip.proto, l4.sport, l4.dport, pkt.vlan)
            else:
                sig = (ip.src, ip.dst, ip.proto, 0, 0, pkt.vlan)
            if ac.payload_sensitive:
                sig = sig + (pkt.payload,)
        entry = ac.entries.get(sig)
        if entry is None or entry.stamp != self.bus.flow_gen:
            # First packet (or invalidated): the reference pipeline runs
            # and we record the compiled decision for the next packet.
            ac.misses += 1
            if len(ac.entries) >= CACHE_CAP:
                ac.entries.clear()
                self.capacity_flushes += 1
            if kind == "app":
                key = ac.engine.app.partition_key(pkt)
                if key is None:
                    kind = "bypass"
                entry = Entry(kind, key, self.bus.flow_gen)
            else:
                entry = Entry("transit", None, self.bus.flow_gen)
            ac.entries[sig] = entry
            return False
        ac.hits += 1
        if entry.kind == "transit":
            replay_transit(switch, pkt, ip)
        elif entry.kind == "bypass":
            replay_bypass(switch, pkt, ip)
        else:
            replay_app(entry, ac.engine, switch, pkt, ip)
        return True

    # -- stats --------------------------------------------------------------

    def stats(self) -> dict:
        """Aggregated cache statistics (also published as metrics)."""
        per_switch = {}
        hits = misses = entries = 0
        for ac in self._asics.values():
            if ac is None:
                continue
            name = ac.engine.switch.name
            per_switch[name] = {
                "hits": ac.hits,
                "misses": ac.misses,
                "entries": len(ac.entries),
            }
            hits += ac.hits
            misses += ac.misses
            entries += len(ac.entries)
        return {
            "flow_cache": {
                "hits": hits,
                "misses": misses,
                "entries": entries,
                "per_switch": per_switch,
            },
            "route_cache": {
                "hits": self.route_hits,
                "misses": self.route_misses,
                "flushes": self.route_flushes,
            },
            "lanes": {
                "count": len(self._lanes),
                "batched_deliveries": self.batched_deliveries,
            },
            "invalidations": dict(self.bus.counts),
            "capacity_flushes": self.capacity_flushes,
        }

    def publish_metrics(self) -> None:
        """Export stats through the run's metric registry.

        Called explicitly by harnesses *after* verdict reports are built:
        chaos verdicts must not depend on whether a fast path was
        installed, so these metrics never feed them.
        """
        m = self.sim.metrics
        for ac in self._asics.values():
            if ac is None:
                continue
            name = ac.engine.switch.name
            m.counter("fastpath.cache_hits", switch=name).inc(ac.hits)
            m.counter("fastpath.cache_misses", switch=name).inc(ac.misses)
            m.gauge("fastpath.cache_entries", switch=name).set(len(ac.entries))
        for scope, count in self.bus.counts.items():
            if count:
                m.counter("fastpath.invalidations", scope=scope).inc(count)

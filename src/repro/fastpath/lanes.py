"""Compiled per-direction link lanes.

A lane is the fast path for one direction of one :class:`~repro.net.links.Link`.
The reference ``Link.transmit`` re-derives everything per packet: direction
name, counter handles, the destination port, and re-checks impairment,
loss, tap, reorder, and queue state that is almost always quiescent. A
lane freezes the direction-invariant half of that work at construction
(direction label, tx counter handles, destination port/node — all fixed
for the lifetime of the topology) and keeps the mutable half as a single
guard: if the link is in *any* non-trivial condition (down, lossy,
tapped, reordering, queue-limited, or carrying an active impairment),
the lane refuses the packet and the reference path runs untouched.

Because the guard is checked before any side effect, and the healthy
path below replays the reference path's side effects exactly (same trace
records, same counters, same serialization arithmetic, same event
count), a run with lanes enabled is bit-identical to one without —
including RNG state, since a healthy link draws no randomness in either
path.

Batched same-edge delivery: when consecutive transmits on one lane land
at the *same* absolute time with no other event scheduled in between
(checked via ``sim.last_seq``), the packets join one delivery event
instead of one event each. The deliveries were already destined to fire
back to back in ``(time, seq)`` order, so coalescing them preserves
execution order exactly; only ``Simulator.events_executed`` shrinks.
"""

from __future__ import annotations

from repro.telemetry import trace as tt


class Lane:
    """The compiled fast path for one (link, source-port) direction."""

    __slots__ = (
        "fp",
        "sim",
        "link",
        "src_port",
        "dst_port",
        "dst_node",
        "dir_name",
        "key",
        "emit",
        "inc_tx_bytes",
        "inc_tx_pkts",
        "batch",
        "batch_time",
        "batch_seq",
    )

    def __init__(self, fp, link, src_port):
        self.fp = fp
        self.sim = link.sim
        self.link = link
        self.src_port = src_port
        self.dst_port = link.other_end(src_port)
        self.dst_node = self.dst_port.node
        key = id(src_port)
        self.key = key
        self.dir_name = link._dir_names[key]
        self.emit = link.sim.tracer.emit
        self.inc_tx_bytes = link._ctr_tx_bytes[key].inc
        self.inc_tx_pkts = link._ctr_tx_packets[key].inc
        self.batch = None
        self.batch_time = -1.0
        self.batch_seq = -1

    def transmit(self, pkt) -> bool:
        """Try the fast path; ``False`` defers to the reference path."""
        link = self.link
        if (
            not link.up
            or link.loss_rate
            or link.reorder_rate
            or link.taps
            or link.queue_limit_bytes is not None
            or link._impairments.get(self.key) is not None
        ):
            return False
        sim = self.sim
        meta = pkt.meta
        uid = meta.get("uid")
        if uid is None:
            uid = meta["uid"] = sim.new_uid()
        flow = meta.get("flow_s")
        if flow is None and pkt.ip is not None:
            flow = meta["flow_s"] = self.fp.flow_str_of(pkt)
        nbytes = pkt.byte_size()
        kind = meta.get("rp_kind", "app")
        parent = meta.get("parent_uid")
        # Direct keyword calls (in the reference path's field order) so
        # the hot path builds one kwargs dict, not a dict plus a copy.
        if parent is None:
            if flow is not None:
                self.emit(tt.PACKET_SEND, link=link.name, dir=self.dir_name,
                          bytes=nbytes, uid=uid, kind=kind, flow=flow)
            else:
                self.emit(tt.PACKET_SEND, link=link.name, dir=self.dir_name,
                          bytes=nbytes, uid=uid, kind=kind)
        elif flow is not None:
            self.emit(tt.PACKET_SEND, link=link.name, dir=self.dir_name,
                      bytes=nbytes, uid=uid, kind=kind, flow=flow,
                      parent=parent)
        else:
            self.emit(tt.PACKET_SEND, link=link.name, dir=self.dir_name,
                      bytes=nbytes, uid=uid, kind=kind, parent=parent)
        self.inc_tx_bytes(nbytes)
        self.inc_tx_pkts()
        now = sim.now
        ser_us = (nbytes * 8) / (link.bandwidth_gbps * 1000.0)
        busy = link._busy_until
        start = busy[self.key]
        if start < now:
            start = now
        busy[self.key] = start + ser_us
        when = now + ((start + ser_us - now) + link.latency_us)
        batch = self.batch
        if (
            batch is not None
            and when == self.batch_time
            and sim.last_seq == self.batch_seq
        ):
            # Coalesce: this delivery would have been the very next event
            # at the same instant anyway (no interloper since the batch
            # event was scheduled), so order is preserved exactly.
            batch.append(pkt)
            self.fp.batched_deliveries += 1
            return True
        batch = [pkt]
        event = sim.schedule_at(when, self._deliver_batch, batch)
        self.batch = batch
        self.batch_time = when
        self.batch_seq = event.seq
        return True

    def _deliver_batch(self, pkts) -> None:
        self.batch = None
        link = self.link
        node = self.dst_node
        emit = self.emit
        dst_port = self.dst_port
        for pkt in pkts:
            if not link.up:
                link._drop(pkt, self.src_port, "down")
                continue
            if node.failed:
                link._drop(pkt, self.src_port, "node_failed")
                continue
            emit(
                tt.PACKET_DELIVER,
                link=link.name,
                dir=self.dir_name,
                node=node.name,
                uid=pkt.meta.get("uid", 0),
            )
            node.receive(pkt, dst_port)

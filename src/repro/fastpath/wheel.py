"""Calendar-bucket timer wheel: the fast-path event scheduler.

The reference scheduler is a binary heap of ``(time, seq, Event)``
tuples; every push and pop pays ``O(log n)`` tuple comparisons. The
simulated workloads are strongly *calendar shaped*: almost every delay
is a small constant (link latency 0.35 us, pipeline 0.6 us, store
processing 0.8 us, lease/retransmit timers in the millisecond range), so
events cluster into a handful of near-future instants while a long tail
of timers sits far out. A calendar queue exploits that: events hash into
1-microsecond buckets by ``int(time)``, pushes append in ``O(1)``, and
only the bucket currently being drained is kept sorted.

Correctness contract: the wheel yields *exactly* the heap's
``(time, seq)`` order — sub-microsecond ordering inside a bucket is
restored by sorting the bucket's ``(time, seq, event)`` tuples before it
drains, and an insert that lands in the bucket currently draining (a
sub-microsecond relative delay) is placed by bisection so it still fires
in position. ``tests/test_fastpath.py`` cross-checks a mixed workload
event for event against the heap scheduler.

Cancellation is tombstone-based, same as the heap: cancelled events are
skipped at pop time, and ``len()`` counts tombstones until they drain.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import List, Optional, Tuple

#: One queue entry: ``(time, seq, event)``. ``seq`` is unique per run, so
#: tuple comparison never reaches the event object.
Entry = Tuple[float, int, object]


class TimerWheel:
    """A calendar queue over 1-microsecond buckets, exact-order.

    API mirrors what :meth:`Simulator._drain` needs: :meth:`push`,
    :meth:`head` (peek next live entry), :meth:`pop` (consume the peeked
    entry), and ``len()``.
    """

    __slots__ = ("_buckets", "_keys", "_cur", "_cur_i", "_cur_key", "_len")

    def __init__(self) -> None:
        self._buckets = {}  # bucket key -> unsorted List[Entry]
        self._keys: List[int] = []  # min-heap of bucket keys present
        self._cur: List[Entry] = []  # the bucket currently draining, sorted
        self._cur_i = 0  # drain position within _cur
        self._cur_key: Optional[int] = None
        self._len = 0

    def push(self, time: float, seq: int, event: object) -> None:
        key = int(time)
        if key == self._cur_key:
            # Lands in the bucket being drained (sub-microsecond relative
            # delay): bisect into the undrained suffix so order holds.
            insort(self._cur, (time, seq, event), self._cur_i)
        else:
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [(time, seq, event)]
                heappush(self._keys, key)
            else:
                bucket.append((time, seq, event))
        self._len += 1

    def head(self) -> Optional[Entry]:
        """The next live entry in ``(time, seq)`` order, without consuming."""
        while True:
            have_cur = self._cur_i < len(self._cur)
            if self._keys and (not have_cur or self._keys[0] < self._cur_key):
                # A bucket earlier than the one draining exists (possible
                # when a pushed time falls between ``now`` and the current
                # bucket): park the undrained suffix and switch to it.
                if have_cur:
                    self._buckets[self._cur_key] = self._cur[self._cur_i:]
                    heappush(self._keys, self._cur_key)
                key = heappop(self._keys)
                bucket = self._buckets.pop(key)
                bucket.sort()
                self._cur = bucket
                self._cur_i = 0
                self._cur_key = key
                continue
            if not have_cur:
                self._cur_key = None
                return None
            entry = self._cur[self._cur_i]
            if entry[2].cancelled:
                self._cur_i += 1
                self._len -= 1
                continue
            return entry

    def pop(self) -> None:
        """Consume the entry :meth:`head` returned."""
        self._cur_i += 1
        self._len -= 1

    def pop_due(self, until: Optional[float]) -> Optional[Entry]:
        """Consume and return the next live entry with ``time <= until``.

        Returns None — leaving the entry queued — when the wheel is empty
        or the next live entry lies beyond ``until``. This is
        :meth:`head` + :meth:`pop` fused into one call so the drain loop
        pays one method dispatch per event instead of two.
        """
        while True:
            cur = self._cur
            i = self._cur_i
            keys = self._keys
            have = i < len(cur)
            if keys and (not have or keys[0] < self._cur_key):
                if have:
                    self._buckets[self._cur_key] = cur[i:]
                    heappush(keys, self._cur_key)
                key = heappop(keys)
                bucket = self._buckets.pop(key)
                bucket.sort()
                self._cur = bucket
                self._cur_i = 0
                self._cur_key = key
                continue
            if not have:
                self._cur_key = None
                return None
            entry = cur[i]
            if entry[2].cancelled:
                self._cur_i = i + 1
                self._len -= 1
                continue
            if until is not None and entry[0] > until:
                return None
            self._cur_i = i + 1
            self._len -= 1
            return entry

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

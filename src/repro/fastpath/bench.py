"""The fast-path steady-state benchmark scenario, shared by every harness.

One scenario definition feeds four consumers — the perf benchmark
(``benchmarks/test_perf_fastpath.py``), the ``repro.tools fastpath`` CLI,
the CI ``perf-smoke`` job, and ad-hoc A/B investigation — so they all
measure and identity-check exactly the same workload.

The workload is the honest fast-path case from the paper's evaluation:
RedPlane-NAT in steady state (Fig 8/12). Each flow's connection-opening
packet takes the full slow path (lease acquisition, control-plane
translation install, replication); every later packet is read-only and
rides the lease fast path. That is the regime the flow cache accelerates;
write-per-packet workloads (Sync-Counter) replay the full replication
protocol and gain little by construction — see docs/PERFORMANCE.md.

Identity is checked on three axes after every run: executed event count,
the trace ring (timestamps, types, and field order of the retained
records), and the metrics snapshot minus the ``fastpath.*`` keys the fast
path itself publishes. A fast-path run must match the reference run on
all three before its throughput number means anything.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from repro import Simulator, deploy
from repro.apps.nat import NatApp, install_nat_routes
from repro.fastpath.runtime import FastPath
from repro.net.packet import Packet
from repro.telemetry import ScopedTimer

#: Scenario defaults: 50 flows x 400 packets is long enough that ramp
#: misses (one per flow plus the control-plane install flushes) are noise
#: against steady-state hits, and short enough for a CI-friendly wall time.
FLOWS = 50
PACKETS_PER_FLOW = 400
SEED = 5
#: Inter-packet spacing within the round-robin generator (simulated us).
SPACING_US = 2.0

#: The committed reference throughput every speedup is measured against:
#: the ``redplane_pipeline`` packets/s recorded in BENCH_eventloop.json
#: (the pre-fast-path event-loop baseline). Fallback if the file is gone.
BASELINE_FALLBACK_PPS = 1284.2


def committed_baseline_pps(repo_root: Optional[str] = None) -> float:
    """The committed ``redplane_pipeline`` packets/s from BENCH_eventloop.json."""
    if repo_root is None:
        repo_root = os.path.normpath(
            os.path.join(os.path.dirname(__file__), "..", "..", "..")
        )
    path = os.path.join(repo_root, "BENCH_eventloop.json")
    try:
        with open(path) as fh:
            return float(json.load(fh)["redplane_pipeline"]["packets_per_s"])
    except (OSError, KeyError, ValueError):
        return BASELINE_FALLBACK_PPS


def _trace_digest(sim: Simulator) -> str:
    """SHA-256 over the retained trace ring: ts, type, and fields in
    emission order (field *order* matters — it is what ``to_json`` writes)."""
    h = hashlib.sha256()
    for record in sim.tracer.tail(len(sim.tracer)):
        h.update(repr((record.ts, record.type,
                       tuple(record.fields.items()))).encode())
    return h.hexdigest()


def _metrics_without_fastpath(sim: Simulator) -> dict:
    """Snapshot minus the ``fastpath.*`` families the fast path publishes;
    everything else must be bit-identical between on and off runs."""
    return {k: v for k, v in sim.metrics.snapshot().items()
            if not k.startswith("fastpath.")}


def run_scenario(
    flows: int = FLOWS,
    packets_per_flow: int = PACKETS_PER_FLOW,
    seed: int = SEED,
    fastpath: bool = False,
    scheduler: str = "heap",
) -> dict:
    """Run the NAT steady-state scenario once; return measurements.

    The result carries both the throughput numbers and the three identity
    fingerprints (events, trace digest, filtered metrics), so callers can
    compare a fast-path run against a reference run directly.
    """
    sim = Simulator(seed=seed, scheduler=scheduler)
    dep = deploy(sim, NatApp)
    install_nat_routes(dep.bed)
    if fastpath:
        FastPath.install(sim)
    sender = dep.bed.servers[0]
    external = dep.bed.externals[0]
    dst_ip = external.ip

    def send(sport: int) -> None:
        sender.send(Packet.udp(sender.ip, dst_ip, sport, 7777))

    # Round-robin over flows (distinct source ports): each flow's packets
    # are packets_per_flow apart in sequence, so by its second packet the
    # lease is granted and the NAT entry installed — read-only after.
    t = 0.0
    for _p in range(packets_per_flow):
        for f in range(flows):
            sim.schedule_at(t, send, 5000 + f)
            t += SPACING_US
    with ScopedTimer("fastpath_scenario") as timer:
        sim.run_until_idle()

    # ECMP spreads flows across both aggregation switches; sum the
    # distinct app instances (deploy may share one across engines).
    apps = {id(e.app): e.app for e in dep.engines.values()}
    packets = sum(app.translated_out for app in apps.values())
    result = {
        "flows": flows,
        "packets_per_flow": packets_per_flow,
        "seed": seed,
        "scheduler": scheduler,
        "fastpath": fastpath,
        "packets": packets,
        "events": sim.events_executed,
        "wall_s": timer.elapsed_s,
        "packets_per_s": timer.rate(packets),
        "records_emitted": sim.tracer.records_emitted,
        "trace_digest": _trace_digest(sim),
        "metrics": _metrics_without_fastpath(sim),
    }
    if fastpath:
        fp = sim.fastpath
        fp.publish_metrics()
        result["fastpath_stats"] = fp.stats()
    return result


def identity_report(reference: dict, candidate: dict) -> dict:
    """Compare two ``run_scenario`` results on the three identity axes."""
    return {
        "events": reference["events"] == candidate["events"],
        "records_emitted":
            reference["records_emitted"] == candidate["records_emitted"],
        "trace": reference["trace_digest"] == candidate["trace_digest"],
        "metrics": reference["metrics"] == candidate["metrics"],
    }


def run_ab(
    flows: int = FLOWS,
    packets_per_flow: int = PACKETS_PER_FLOW,
    seed: int = SEED,
    scheduler: str = "heap",
) -> dict:
    """Reference run vs fast-path run of the same scenario, plus verdicts.

    ``identical`` is True only when every identity axis matches;
    ``speedup_vs_committed`` is the fast-path throughput over the
    committed event-loop baseline (the number the >=10x / >=3x gates
    read); ``speedup_same_scenario`` is the direct on/off ratio, bounded
    by the irreducible link/event layer (~1.5x) — both are reported so
    neither can masquerade as the other.
    """
    off = run_scenario(flows, packets_per_flow, seed, False, scheduler)
    on = run_scenario(flows, packets_per_flow, seed, True, scheduler)
    identity = identity_report(off, on)
    baseline = committed_baseline_pps()
    return {
        "off": off,
        "on": on,
        "identity": identity,
        "identical": all(identity.values()),
        "baseline_pps": baseline,
        "speedup_vs_committed": on["packets_per_s"] / baseline,
        "speedup_same_scenario":
            on["packets_per_s"] / off["packets_per_s"],
    }

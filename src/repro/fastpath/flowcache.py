"""The per-switch flow fast-path cache.

This is the simulation analogue of match-action flow caching in real
switch software stacks: the first packet of a flow walks the full
:class:`~repro.switch.asic.SwitchASIC` pipeline (the reference
interpreter) and the dispatcher records what the walk *decided* — the
packet's classification and, for application flows, the resolved
partition key and flow-table index. Subsequent packets of the same flow
replay that decision without re-deriving it.

What is cached is deliberately narrow. A cache entry never captures
register values, lease state, sequence numbers, or routing state —
every replay reads those live and runs the application's state
transition through the exact reference helpers
(:meth:`RedPlaneEngine._leased_path` / ``_no_lease_path``). The entry
caches only facts that are *pure functions of the packet's cache
signature* (classification, partition key) or that are pinned by the
entry's declared dependency scopes (the flow-table index, pinned by the
``lease`` scope). That is what makes bit-identical replay provable: the
``repro.verify`` RP140 rule statically checks that the ``replay_*``
functions below touch nothing outside :data:`REPLAY_EFFECTS`, and RP141
checks that every application declares whether its partition decision
reads the payload (so the cache signature includes it).

Dependency sets and invalidation
--------------------------------

Every entry kind declares the :class:`~repro.fastpath.invalidation`
scopes it depends on in :data:`ENTRY_DEPS`. Entries are stamped with the
bus's combined flow generation at record time and die the moment any
flow-relevant scope publishes (one integer compare per packet). The
per-switch cache as a whole is additionally keyed to the pipeline's
composition version, so inserting a block flushes everything.
"""

from __future__ import annotations

from typing import FrozenSet, NamedTuple

from repro.switch.pipeline import PipelineContext, Verdict


class EntryDep(NamedTuple):
    """The static contract of one cache-entry kind.

    ``scopes`` is the invalidation dependency set (which bus scopes kill
    the entry); ``partition_class`` is the cohort-safety class consumed by
    the partition analyzer (verify pass 5, RS406) and by fastpath v2's
    cohort replay: ``"flow_local"`` entries depend only on their own
    flow's inputs and may replay inside any per-flow shard cohort, while
    ``"app_keyed"`` entries inherit the deployed application's class from
    its shard plan (``shard_plans/<app>.json``).
    """

    scopes: FrozenSet[str]
    partition_class: str


#: Scopes each entry kind depends on — the "dependency set" column of the
#: invalidation matrix in docs/PERFORMANCE.md — plus its partition class.
#: RP142 checks that every entry kind constructed below is declared here;
#: RS406 checks every row carries a valid partition class.
ENTRY_DEPS = {
    # Classification only: depends on the protocol port set (static) and
    # the pipeline composition; flushed conservatively on table/chaos
    # churn because transit accounting mirrors the engine's position in
    # the pipeline.
    "transit": EntryDep(frozenset({"table", "chaos"}), "flow_local"),
    # partition_key(pkt) is None: pure per signature, but flushed with
    # the rest of the cache so a reconfigured app re-decides.
    "bypass": EntryDep(frozenset({"table", "chaos"}), "flow_local"),
    # Application flow: partition key (pure per signature) + flow-table
    # index (pinned until lease reclamation / migration / snapshot churn
    # publishes). NOT ``register``: replay reads register values live,
    # so control-plane state installs for one flow must not flush the
    # entries of every other flow.
    "app": EntryDep(
        frozenset({"table", "lease", "snapshot", "chaos"}), "app_keyed"
    ),
}

#: Attributes/methods the ``replay_*`` functions may touch — the
#: statically-enforced side-effect surface (verify rule RP140). Everything
#: here is either a reference-path helper (so effects are the reference
#: implementation's own) or read-only.
REPLAY_EFFECTS = {
    # reference-path helpers (side effects happen in reference code)
    "_leased_path", "_no_lease_path", "_record", "_flow_index",
    "_egress", "punt", "count", "read",
    # counters/metrics handles
    "inc", "_c", "_c_pkts_processed", "_c_bytes_protocol_in",
    # read-only accessors
    "get", "meta", "ip", "l4", "byte_size", "pkt", "verdict", "emitted",
    "block_obj", "sim", "now", "name", "control_plane", "reg_lease_expiry",
    "key", "idx",
}


class Entry:
    """One compiled flow-cache entry (see module docstring)."""

    __slots__ = ("kind", "key", "idx", "stamp")

    def __init__(self, kind, key, stamp):
        self.kind = kind
        self.key = key
        self.idx = None
        self.stamp = stamp

    @property
    def deps(self):
        """The entry's declared dependency scopes."""
        return ENTRY_DEPS[self.kind].scopes

    @property
    def partition_class(self):
        """The entry's cohort-safety partition class (see EntryDep)."""
        return ENTRY_DEPS[self.kind].partition_class


def replay_transit(switch, pkt, ip):
    """Replay the reference pipeline for a protocol packet in transit.

    Mirrors :meth:`SwitchASIC.process` for the path where the engine
    classifies the packet as protocol traffic not addressed to this
    switch: accounting, verdict FORWARD, egress byte counting, forward.
    """
    switch._c_pkts_processed.inc()
    meta = pkt.meta
    if meta.get("rp_kind") == "response":
        switch._c_bytes_protocol_in.inc(
            pkt.byte_size() - int(meta.get("rp_piggyback_len", 0))
        )
    if ip.dst == switch.ip:
        # Addressed to the switch itself but no block consumed it.
        switch.sim.count(f"{switch.name}.drops.to_self")
    else:
        switch._egress(pkt)


def replay_bypass(switch, pkt, ip):
    """Replay for traffic the application ignores (partition key None)."""
    switch._c_pkts_processed.inc()
    if ip.dst == switch.ip:
        switch.sim.count(f"{switch.name}.drops.to_self")
    else:
        switch._egress(pkt)


def replay_app(entry, eng, switch, pkt, ip):
    """Replay for an application-owned flow.

    Skips re-deriving classification and partition key, then hands the
    packet to the *reference* per-packet paths — the application's state
    transition, lease checks, and replication all execute live against
    the real registers, so state evolution is the reference path's own.
    """
    switch._c_pkts_processed.inc()
    ctx = PipelineContext(pkt=pkt, now=switch.sim.now)
    ctx.block_obj = eng
    key = entry.key
    eng._c["app_packets"].inc()
    if not pkt.meta.get("rp_reinjected"):
        eng._record("input", key, pkt)
    idx = entry.idx
    if idx is None:
        idx = entry.idx = eng._flow_index(key)
    now = switch.sim.now
    lease_expiry = eng.reg_lease_expiry.read(ctx, idx)
    if lease_expiry <= now:
        eng._no_lease_path(ctx, key, idx, now, lease_expiry)
    else:
        eng._leased_path(ctx, key, idx, now)
    ctx.block_obj = None
    verdict = ctx.verdict
    if verdict is Verdict.FORWARD:
        if ip.dst == switch.ip:
            switch.sim.count(f"{switch.name}.drops.to_self")
        else:
            switch._egress(pkt)
    elif verdict is Verdict.PUNT:
        switch.control_plane.punt(pkt)
    for out in ctx.emitted:
        switch._egress(out)

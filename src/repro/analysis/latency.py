"""Latency decomposition helpers for the evaluation benchmarks.

Breaks an end-to-end RTT distribution into the paper's narrative
components: the line-rate fast path, the control-plane slow path of
new-flow packets, and the synchronous-replication detour of writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.stats import percentile
from repro.telemetry import Histogram


@dataclass
class LatencyBands:
    """An RTT population split at detected knee points."""

    fast_path: List[float]
    slow_path: List[float]
    threshold_us: float


def split_fast_slow(rtts: Sequence[float], factor: float = 3.0) -> LatencyBands:
    """Split a distribution at ``factor x`` its median.

    For read-centric apps the fast band is the line-rate forwarding path
    and the slow band is new-flow slow-path packets; the split makes the
    paper's "99th percentile dominated by the control plane" narrative
    quantitative.
    """
    if not rtts:
        raise ValueError("no samples")
    median = percentile(rtts, 50)
    threshold = median * factor
    fast = [r for r in rtts if r <= threshold]
    slow = [r for r in rtts if r > threshold]
    return LatencyBands(fast_path=fast, slow_path=slow, threshold_us=threshold)


def slow_path_fraction(rtts: Sequence[float], factor: float = 3.0) -> float:
    bands = split_fast_slow(rtts, factor)
    return len(bands.slow_path) / len(rtts)


def overhead_vs_baseline(rtts: Sequence[float], baseline: Sequence[float],
                         p: float = 50.0) -> float:
    """Added latency at percentile ``p`` relative to a baseline run (us)."""
    return percentile(rtts, p) - percentile(baseline, p)


# -- telemetry-histogram front-ends -------------------------------------------
#
# The probes publish RTTs into ``probe.rtt_us{host=...}`` histograms; these
# helpers run the same decompositions straight off a registry instrument so
# benchmark code does not need to keep its own sample lists around.

def summarize_histogram(hist: Histogram) -> Dict[str, float]:
    """Paper-style p50/p90/p99 summary of a telemetry histogram."""
    return hist.summary()


def split_histogram(hist: Histogram, factor: float = 3.0) -> LatencyBands:
    """Fast/slow split over a histogram's retained sample reservoir."""
    return split_fast_slow(hist.samples, factor)


def histogram_overhead_vs_baseline(
    hist: Histogram, baseline: Histogram, p: float = 50.0
) -> float:
    """Added latency at percentile ``p`` between two telemetry histograms."""
    return hist.percentile(p) - baseline.percentile(p)

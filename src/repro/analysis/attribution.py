"""Latency attribution: split each acknowledged RTT into its causes.

The protocol engine measures ``redplane.ack_rtt_us`` as one opaque
number per released request copy. The span stream knows *where* that
time went: every ``rp.ack`` names the acknowledgment packet (``uid``),
the request copy whose arrival produced it (``cause``, the *winning*
copy), and the copy the RTT window was anchored to (``req_uid``, the
latest resend). Pairing those with the winning copy's and the reply's
wire events decomposes the RTT exactly:

``pipeline_us``
    Switch-local processing at the originating switch: request creation
    (the ``rp.request`` record) to first wire contact, plus reply
    delivery to ack release (the latter is zero in the current model,
    which processes a delivered packet synchronously).
``wire_us``
    Network transit of the winning request copy and of the reply:
    serialization + propagation + transmit queueing over every hop,
    including forwarding latency at transit switches.
``store_us``
    Store-side dwell: processing delay plus lease buffering between the
    request's arrival at the (head) store and the first causal output —
    the reply, or the first chain update when the store replicates.
``chain_us``
    Chain replication: first chain update leaving the head until the
    tail emits the reply.
``retransmit_wait_us``
    The residual ``rtt − (pipeline + wire + store + chain)``. By
    construction the five components ALWAYS sum to the measured RTT.
    For an ack won by the anchored copy (``cause == req_uid``) the
    residual is ~0; when an *earlier* copy's late ack wins the race the
    residual absorbs the anchoring skew (and can be negative), flagged
    ``exact=False``.

All inputs are deterministic trace records, so the breakdown — and the
rendered table — is byte-identical across same-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.telemetry import trace as tt
from repro.telemetry.trace import TraceRecord

#: |pipeline + wire + store + chain + retransmit_wait − rtt| must stay
#: under this (it is exact up to float add ordering).
SUM_TOLERANCE_US = 1.0


@dataclass
class AckBreakdown:
    """One acknowledged request copy's RTT, attributed."""

    switch: str
    kind: str            # "lease_new" | "write"
    flow: str
    seq: int
    ack_uid: int         # span of the acknowledgment packet
    req_uid: int         # copy the RTT window was anchored to
    cause_uid: int       # winning copy (0 if unresolvable)
    rtt_us: float
    pipeline_us: float = 0.0
    wire_us: float = 0.0
    store_us: float = 0.0
    chain_us: float = 0.0
    retransmit_wait_us: float = 0.0
    #: True when the full causal path resolved and the winning copy is
    #: the anchored copy — the residual is then pure float noise.
    exact: bool = False

    @property
    def components_sum_us(self) -> float:
        return (self.pipeline_us + self.wire_us + self.store_us
                + self.chain_us + self.retransmit_wait_us)


def attribute_acks(records: Iterable[TraceRecord]) -> List[AckBreakdown]:
    """Decompose every ``rp.ack`` in a trace stream. Order preserved."""
    first_send: Dict[int, float] = {}
    last_deliver: Dict[int, float] = {}
    #: Creation time of each request copy (its ``rp.request`` record).
    created: Dict[int, float] = {}
    #: First chain-update send caused by each winning copy.
    chain_first: Dict[int, float] = {}
    acks: List[TraceRecord] = []
    for record in records:
        fields = record.fields
        if record.type == tt.RP_REQUEST:
            uid = int(fields.get("uid", 0))
            if uid and uid not in created:
                created[uid] = record.ts
        elif record.type == tt.PACKET_SEND:
            uid = int(fields.get("uid", 0))
            if uid and uid not in first_send:
                first_send[uid] = record.ts
            if fields.get("kind") == "chain":
                parent = int(fields.get("parent", 0))
                if parent and parent not in chain_first:
                    chain_first[parent] = record.ts
        elif record.type == tt.PACKET_DELIVER:
            uid = int(fields.get("uid", 0))
            if uid:
                last_deliver[uid] = record.ts
        elif record.type == tt.RP_ACK:
            acks.append(record)

    out: List[AckBreakdown] = []
    for record in acks:
        fields = record.fields
        req_uid = int(fields.get("req_uid", 0))
        cause = int(fields.get("cause", req_uid) or req_uid)
        ack_uid = int(fields.get("uid", 0))
        breakdown = AckBreakdown(
            switch=str(fields.get("switch", "")),
            kind=str(fields.get("kind", "")),
            flow=str(fields.get("flow", "")),
            seq=int(fields.get("seq", 0)),
            ack_uid=ack_uid,
            req_uid=req_uid,
            cause_uid=cause,
            rtt_us=float(fields.get("rtt_us", 0.0)),
        )
        resolved = _resolve(
            breakdown, record.ts, first_send, last_deliver, created,
            chain_first,
        )
        if resolved:
            breakdown.exact = cause == req_uid
        else:
            # Causal path unresolvable (ring truncation): the whole RTT
            # stays in the residual bucket rather than being guessed at.
            breakdown.retransmit_wait_us = breakdown.rtt_us
        out.append(breakdown)
    return out


def _resolve(
    b: AckBreakdown,
    ack_ts: float,
    first_send: Dict[int, float],
    last_deliver: Dict[int, float],
    created: Dict[int, float],
    chain_first: Dict[int, float],
) -> bool:
    """Fill ``b``'s components from the event indexes; False if gappy."""
    w_created = created.get(b.cause_uid)
    w_send = first_send.get(b.cause_uid)
    w_deliver = last_deliver.get(b.cause_uid)
    r_send = first_send.get(b.ack_uid)
    r_deliver = last_deliver.get(b.ack_uid)
    if None in (w_created, w_send, w_deliver, r_send, r_deliver):
        return False
    b.pipeline_us = (w_send - w_created) + (ack_ts - r_deliver)
    b.wire_us = (w_deliver - w_send) + (r_deliver - r_send)
    c_send = chain_first.get(b.cause_uid)
    if c_send is not None:
        b.store_us = c_send - w_deliver
        b.chain_us = r_send - c_send
    else:
        b.store_us = r_send - w_deliver
    b.retransmit_wait_us = b.rtt_us - (
        b.pipeline_us + b.wire_us + b.store_us + b.chain_us
    )
    return True


#: Component columns, in table order.
_COMPONENTS: Tuple[str, ...] = (
    "pipeline_us", "wire_us", "store_us", "chain_us", "retransmit_wait_us"
)


def flow_table(
    breakdowns: Iterable[AckBreakdown],
) -> List[Dict[str, object]]:
    """Per-flow aggregate rows (ack count, mean RTT, summed components).

    Rows are keyed and ordered by ``(flow, kind)``, so the table is
    deterministic for a deterministic trace stream.
    """
    groups: Dict[Tuple[str, str], List[AckBreakdown]] = {}
    for b in breakdowns:
        groups.setdefault((b.flow, b.kind), []).append(b)
    rows: List[Dict[str, object]] = []
    for (flow, kind) in sorted(groups):
        items = groups[(flow, kind)]
        row: Dict[str, object] = {
            "flow": flow,
            "kind": kind,
            "acks": len(items),
            "rtt_total_us": sum(b.rtt_us for b in items),
        }
        for comp in _COMPONENTS:
            row[comp] = sum(getattr(b, comp) for b in items)
        row["exact"] = all(b.exact for b in items)
        rows.append(row)
    return rows


def render_table(rows: List[Dict[str, object]]) -> str:
    """Fixed-format attribution table (byte-stable across runs)."""
    header = (
        f"{'flow':<42} {'kind':<10} {'acks':>5} {'rtt_us':>12} "
        f"{'pipeline':>10} {'wire':>10} {'store':>12} {'chain':>10} "
        f"{'rtx_wait':>10}  exact"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['flow']:<42} {row['kind']:<10} {row['acks']:>5} "
            f"{row['rtt_total_us']:>12.3f} {row['pipeline_us']:>10.3f} "
            f"{row['wire_us']:>10.3f} {row['store_us']:>12.3f} "
            f"{row['chain_us']:>10.3f} {row['retransmit_wait_us']:>10.3f}  "
            f"{'yes' if row['exact'] else 'no'}"
        )
    if not rows:
        lines.append("(no acknowledged requests in trace)")
    return "\n".join(lines)


def verify_sums(
    breakdowns: Iterable[AckBreakdown],
    tolerance_us: float = SUM_TOLERANCE_US,
) -> Optional[str]:
    """None if every breakdown's components sum to its RTT; else a
    description of the first violation."""
    for b in breakdowns:
        delta = abs(b.components_sum_us - b.rtt_us)
        if delta > tolerance_us:
            return (
                f"ack uid={b.ack_uid} flow={b.flow} seq={b.seq}: components "
                f"sum {b.components_sum_us:.3f}us != rtt {b.rtt_us:.3f}us "
                f"(delta {delta:.3f}us)"
            )
    return None

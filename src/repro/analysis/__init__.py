"""Measurement helpers: statistics, bandwidth accounting, fluid throughput."""

from repro.analysis.attribution import (
    AckBreakdown,
    attribute_acks,
    flow_table,
    render_table,
    verify_sums,
)
from repro.analysis.bandwidth import (
    SNAPSHOT_HEADER_BYTES,
    fig10_row,
    fig11_series,
    protocol_share,
    snapshot_bandwidth_mbps,
)
from repro.analysis.latency import (
    LatencyBands,
    histogram_overhead_vs_baseline,
    overhead_vs_baseline,
    slow_path_fraction,
    split_fast_slow,
    split_histogram,
    summarize_histogram,
)
from repro.analysis.plotting import ascii_cdf, ascii_series, ascii_timeline
from repro.analysis.scale import (
    TrafficProfile,
    overhead_at_scale,
    paper_profiles,
    per_switch_bandwidth,
    scale_sweep,
)
from repro.analysis.stats import cdf_points, format_cdf_row, percentile, summarize
from repro.analysis.throughput import (
    APP_PROFILES,
    AppProfile,
    fig12_rows,
    fig13_series,
    kv_throughput_mpps,
    measured_mpps,
    throughput_mpps,
)

__all__ = [
    "AckBreakdown",
    "attribute_acks",
    "flow_table",
    "render_table",
    "verify_sums",
    "SNAPSHOT_HEADER_BYTES",
    "fig10_row",
    "fig11_series",
    "protocol_share",
    "snapshot_bandwidth_mbps",
    "ascii_cdf",
    "ascii_series",
    "ascii_timeline",
    "TrafficProfile",
    "overhead_at_scale",
    "paper_profiles",
    "per_switch_bandwidth",
    "scale_sweep",
    "LatencyBands",
    "histogram_overhead_vs_baseline",
    "overhead_vs_baseline",
    "slow_path_fraction",
    "split_fast_slow",
    "split_histogram",
    "summarize_histogram",
    "cdf_points",
    "format_cdf_row",
    "percentile",
    "summarize",
    "APP_PROFILES",
    "AppProfile",
    "fig12_rows",
    "fig13_series",
    "kv_throughput_mpps",
    "measured_mpps",
    "throughput_mpps",
]

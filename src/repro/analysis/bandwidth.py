"""Replication-bandwidth accounting (Figs 10 and 11).

Fig 10 reports, per application, the share of a switch's traffic that is
RedPlane protocol bytes (requests sent plus responses received, full
packets including piggybacked payloads) — read here from the run's
:class:`~repro.telemetry.MetricRegistry` (``switch.bytes_*`` counters
labeled by switch name), so the analysis layer never reaches into switch
internals.

Fig 11 reports the absolute bandwidth of periodic snapshot replication as
a function of snapshot frequency and sketch count. The paper counts
RedPlane *header* bytes (~22 B per slot message: seq + type + flow key +
one 32-bit value), giving 34.16 Mbps for 3x64 slots at 1 kHz; the model
here reproduces that accounting and is cross-checked against packet-level
simulation in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

#: RedPlane header bytes for a one-value snapshot message:
#: seq(4) + type(1) + flags(1) + aux(2) + flow key(13) + nvals(1) + val(4).
SNAPSHOT_HEADER_BYTES = 26


def _byte_totals(switches: Iterable) -> Dict[str, float]:
    """Registry-side byte totals for a set of switches (one shared sim)."""
    sws = list(switches)
    if not sws:
        return {"requests": 0.0, "responses": 0.0, "original": 0.0}
    registry = sws[0].sim.metrics
    names = {sw.name for sw in sws}
    return {
        "requests": registry.total("switch.bytes_protocol_out", switch=names),
        "responses": registry.total("switch.bytes_protocol_in", switch=names),
        "original": registry.total("switch.bytes_original_out", switch=names),
    }


def protocol_share(switches: Iterable) -> float:
    """Fraction of total traffic that is protocol bytes (Fig 10's metric)."""
    t = _byte_totals(switches)
    protocol = t["requests"] + t["responses"]
    total = protocol + t["original"]
    return protocol / total if total else 0.0


def fig10_row(switches: Iterable) -> Dict[str, float]:
    """The three Fig 10 bar components, as fractions of total bytes."""
    t = _byte_totals(switches)
    req, resp, orig = t["requests"], t["responses"], t["original"]
    total = req + resp + orig
    if total == 0:
        return {"original": 0.0, "requests": 0.0, "responses": 0.0}
    return {
        "original": orig / total,
        "requests": req / total,
        "responses": resp / total,
    }


def snapshot_bandwidth_mbps(
    num_sketches: int,
    slots_per_sketch: int,
    snapshot_hz: float,
    per_slot_bytes: int = SNAPSHOT_HEADER_BYTES,
) -> float:
    """Analytic snapshot-replication bandwidth (Fig 11's model).

    One message per slot per snapshot; bandwidth grows linearly in both
    the snapshot frequency and the number of sketches.
    """
    bytes_per_snapshot = num_sketches * slots_per_sketch * per_slot_bytes
    return bytes_per_snapshot * 8 * snapshot_hz / 1e6


def fig11_series(
    sketch_counts: List[int],
    frequencies_hz: List[float],
    slots_per_sketch: int = 64,
) -> Dict[int, List[float]]:
    """Fig 11's line series: sketches -> bandwidth (Mbps) per frequency."""
    return {
        n: [snapshot_bandwidth_mbps(n, slots_per_sketch, f) for f in frequencies_hz]
        for n in sketch_counts
    }

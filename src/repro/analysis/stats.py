"""Latency statistics helpers: percentiles and CDFs for the Fig 8/9 plots."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def percentile(samples: Sequence[float], p: float) -> float:
    """The p-th percentile (0-100) with linear interpolation."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """The percentiles the paper quotes: p50, p90, p99, plus extremes."""
    return {
        "p50": percentile(samples, 50),
        "p90": percentile(samples, 90),
        "p99": percentile(samples, 99),
        "min": min(samples),
        "max": max(samples),
        "mean": sum(samples) / len(samples),
        "count": float(len(samples)),
    }


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def format_cdf_row(name: str, samples: Sequence[float], unit: str = "us") -> str:
    """One printable row of a latency comparison table."""
    s = summarize(samples)
    return (
        f"{name:<28s} p50={s['p50']:8.1f}{unit}  p90={s['p90']:8.1f}{unit}  "
        f"p99={s['p99']:8.1f}{unit}  n={int(s['count'])}"
    )

"""Latency statistics helpers: percentiles and CDFs for the Fig 8/9 plots.

The percentile math itself lives in :mod:`repro.telemetry.metrics` (the
histograms use it too); this module re-exports it so analysis code and
telemetry snapshots agree bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.telemetry.metrics import percentile

__all__ = ["percentile", "summarize", "cdf_points", "format_cdf_row"]


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """The percentiles the paper quotes: p50, p90, p99, plus extremes."""
    return {
        "p50": percentile(samples, 50),
        "p90": percentile(samples, 90),
        "p99": percentile(samples, 99),
        "min": min(samples),
        "max": max(samples),
        "mean": sum(samples) / len(samples),
        "count": float(len(samples)),
    }


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def format_cdf_row(name: str, samples: Sequence[float], unit: str = "us") -> str:
    """One printable row of a latency comparison table."""
    s = summarize(samples)
    return (
        f"{name:<28s} p50={s['p50']:8.1f}{unit}  p90={s['p90']:8.1f}{unit}  "
        f"p99={s['p99']:8.1f}{unit}  n={int(s['count'])}"
    )

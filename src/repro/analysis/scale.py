"""At-scale bandwidth analysis (§7.2's "analytical model-based simulation").

The paper validates its measured bandwidth overheads against an analytical
model of a larger deployment ("a topology with more RedPlane switches ...
the result is consistent with Fig 10 in terms of the percentage
overhead"). This module is that model: protocol byte rates as a function
of deployment size, per-application traffic mix, and flow dynamics.

Per-application inputs (all rates are per switch):

* packet rate and mean packet size — the original traffic volume;
* flow birth rate — each new flow costs one lease request/ack exchange;
* write fraction — each write costs a replication request/ack, carrying
  the packet as piggyback (which counts as original bytes, per Fig 10's
  accounting) plus protocol encapsulation both ways;
* renewal rate — active read-centric flows renew twice per lease period;
* snapshot streams — fixed protocol byte rate independent of traffic.

Because every quantity is per switch and flows are partitioned across
switches by ECMP, the *share* of protocol bytes is scale-invariant: adding
RedPlane switches adds original and protocol traffic proportionally. That
is exactly the paper's observation, and :func:`overhead_at_scale` lets the
benchmark demonstrate it rather than assert it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.net import constants

#: Protocol encapsulation bytes for one request or ack, beyond any
#: piggybacked packet: Ethernet + IPv4 + UDP + RedPlane header.
PROTOCOL_ENCAP_BYTES = 14 + 20 + 8 + 26


@dataclass(frozen=True)
class TrafficProfile:
    """Per-switch traffic and state-access characteristics of one app."""

    name: str
    packet_rate_pps: float
    mean_packet_bytes: float
    #: New flows per second (each costs a lease exchange).
    flow_birth_rate: float = 0.0
    #: Fraction of packets that synchronously update state.
    write_fraction: float = 0.0
    #: Values replicated per write (4 bytes each).
    vals_per_write: int = 1
    #: Concurrently active read-centric flows (each renews 2x per lease).
    active_flows: float = 0.0
    #: Fixed asynchronous snapshot stream (bytes/second of protocol).
    snapshot_bytes_per_s: float = 0.0


@dataclass
class BandwidthBreakdown:
    original_bps: float
    request_bps: float
    response_bps: float

    @property
    def protocol_share(self) -> float:
        total = self.original_bps + self.request_bps + self.response_bps
        return (self.request_bps + self.response_bps) / total if total else 0.0


def per_switch_bandwidth(profile: TrafficProfile,
                         lease_period_s: float = 1.0) -> BandwidthBreakdown:
    """Protocol vs. original byte rates for one switch running ``profile``."""
    original_bps = profile.packet_rate_pps * profile.mean_packet_bytes * 8

    write_rate = profile.packet_rate_pps * profile.write_fraction
    write_req_bytes = PROTOCOL_ENCAP_BYTES + 4 * profile.vals_per_write
    # Piggybacked original bytes ride along but count as original traffic
    # (Fig 10's accounting): each written packet's bytes transit again in
    # the request and once more in the ack.
    original_bps += write_rate * profile.mean_packet_bytes * 8 * 2
    request_bps = write_rate * write_req_bytes * 8
    response_bps = write_rate * write_req_bytes * 8

    lease_exchanges = profile.flow_birth_rate
    renewals = (2.0 / lease_period_s) * profile.active_flows
    request_bps += (lease_exchanges + renewals) * PROTOCOL_ENCAP_BYTES * 8
    response_bps += (lease_exchanges + renewals) * PROTOCOL_ENCAP_BYTES * 8

    request_bps += profile.snapshot_bytes_per_s * 8
    response_bps += profile.snapshot_bytes_per_s * 8 * 0.5  # acks are bare

    return BandwidthBreakdown(original_bps, request_bps, response_bps)


def overhead_at_scale(profile: TrafficProfile, num_switches: int,
                      lease_period_s: float = 1.0) -> BandwidthBreakdown:
    """Aggregate bandwidth across a cluster of ``num_switches``.

    ECMP partitions flows, so each switch carries an equal share of the
    same mix; the aggregate is a linear scale-up and the protocol *share*
    is unchanged — the §7.2 consistency result.
    """
    if num_switches <= 0:
        raise ValueError("need at least one switch")
    one = per_switch_bandwidth(profile, lease_period_s)
    return BandwidthBreakdown(
        original_bps=one.original_bps * num_switches,
        request_bps=one.request_bps * num_switches,
        response_bps=one.response_bps * num_switches,
    )


#: The six applications of Fig 10 at the paper's offered load (~207.6 Mpps
#: of 64 B packets across the cluster), expressed per switch.
def paper_profiles(per_switch_pps: float = 69.2e6) -> Dict[str, TrafficProfile]:
    return {
        "nat": TrafficProfile(
            "nat", per_switch_pps, 64,
            flow_birth_rate=per_switch_pps / 2000.0,   # ~2000 pkts per flow
            active_flows=per_switch_pps / 2000.0,
        ),
        "firewall": TrafficProfile(
            "firewall", per_switch_pps, 64,
            flow_birth_rate=per_switch_pps / 2000.0,
            active_flows=per_switch_pps / 2000.0,
        ),
        "load-balancer": TrafficProfile(
            "load-balancer", per_switch_pps, 64,
            flow_birth_rate=per_switch_pps / 2000.0,
            active_flows=per_switch_pps / 2000.0,
        ),
        "epc-sgw": TrafficProfile(
            "epc-sgw", per_switch_pps, 64,
            write_fraction=1.0 / 18.0, vals_per_write=2,
        ),
        "hh-detector": TrafficProfile(
            "hh-detector", per_switch_pps, 64,
            snapshot_bytes_per_s=3 * 64 * 26 * 1000.0,  # 3 sketches @ 1 kHz
        ),
        "sync-counter": TrafficProfile(
            "sync-counter", per_switch_pps, 64, write_fraction=1.0
        ),
    }


def scale_sweep(profile: TrafficProfile,
                switch_counts: List[int]) -> Dict[int, float]:
    """Protocol share per cluster size — flat, which is the point."""
    return {
        n: overhead_at_scale(profile, n).protocol_share
        for n in switch_counts
    }

"""Terminal plotting: CDFs, line series, and timelines without matplotlib.

The benchmarks print the paper's tables; these helpers render the *shapes*
(Fig 8/9 CDFs, Fig 14's goodput timeline) as ASCII so a reproduction run
is visually comparable to the paper's figures straight from the terminal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.stats import cdf_points


def ascii_cdf(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    x_label: str = "us",
) -> str:
    """Render one or more latency distributions as an ASCII CDF plot.

    Each series gets a distinct marker; x is the value axis (optionally
    log-scaled, as Fig 8 plots it), y is the cumulative fraction.
    """
    import math

    if not series:
        raise ValueError("no series to plot")
    markers = "*o+x#@%&"
    all_values = [v for samples in series.values() for v in samples]
    lo, hi = min(all_values), max(all_values)
    if log_x:
        lo = max(lo, 1e-9)
        to_x = lambda v: math.log10(max(v, lo))
        lo_t, hi_t = to_x(lo), to_x(hi)
    else:
        to_x = lambda v: v
        lo_t, hi_t = lo, hi
    span = max(hi_t - lo_t, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    for (name, samples), marker in zip(series.items(), markers):
        for value, frac in cdf_points(samples):
            col = int((to_x(value) - lo_t) / span * (width - 1))
            row = height - 1 - int(frac * (height - 1))
            grid[row][col] = marker
    lines = []
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        lines.append(f"{frac:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    scale = "log10 " if log_x else ""
    lines.append(f"      {scale}{x_label}: {lo:.3g} .. {hi:.3g}")
    legend = "  ".join(
        f"{marker}={name}" for (name, _s), marker in zip(series.items(), markers)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def ascii_series(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render (x, y) line series — e.g. Fig 13's throughput curves."""
    if not series:
        raise ValueError("no series to plot")
    markers = "*o+x#@%&"
    xs = [x for pts in series.values() for x, _y in pts]
    ys = [y for pts in series.values() for _x, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    lines = [f"{y_hi:10.3g} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_lo:10.3g} |" + "".join(grid[-1]))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{x_label}: {x_lo:.3g} .. {x_hi:.3g}   ({y_label})")
    legend = "  ".join(
        f"{marker}={name}" for (name, _p), marker in zip(series.items(), markers)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def ascii_timeline(
    points: Sequence[Tuple[float, float]],
    width_per_point: int = 1,
    bar_width: int = 48,
    events: Dict[float, str] = None,
    unit: str = "Gbps",
) -> str:
    """Render a goodput-over-time bar timeline (the Fig 14 shape)."""
    if not points:
        raise ValueError("no points")
    peak = max(y for _t, y in points) or 1.0
    events = events or {}
    lines = []
    for t, y in points:
        bar = "#" * int(y / peak * bar_width)
        note = ""
        for et, label in events.items():
            if abs(t - et) < 1e-9:
                note = f"  <-- {label}"
        lines.append(f"{t:7.2f}s {y:7.2f} {unit} |{bar}{note}")
    return "\n".join(lines)

"""Fluid (analytic) throughput model for Figs 12 and 13.

Python cannot push 122.5 Mpps through a packet-level simulator, and the
paper itself resorts to "analytical model-based simulation" for its
at-scale bandwidth numbers (§7.2). This model captures the two bottlenecks
that shape Figs 12/13:

* the fabric bottleneck — the aggregation-to-core link caps forwarding at
  ``SWITCH_MAX_FORWARD_MPPS`` (122.5 Mpps measured in the testbed);
* the state-store bottleneck — every synchronously replicated update costs
  one request/response at a store server of capacity
  ``STORE_CAPACITY_MPPS``, so an app whose packets update state with
  probability ``w`` is capped at ``shards * capacity / w``.

Mixed read/write apps additionally lose a little goodput to packets
buffered through the network while updates are in flight (EPC-SGW's small
dip in Fig 12): each in-flight update holds concurrent same-partition
reads for about one replication RTT.

The packet-level simulator validates the model's *shape* at scaled-down
rates in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.net import constants
from repro.telemetry import MetricRegistry


def measured_mpps(
    registry: MetricRegistry, switch_name: str, duration_us: float
) -> float:
    """Packet-level forwarding rate observed by one switch (Mpps).

    Reads the ``switch.pkts_processed`` counter from the run's metric
    registry — the packet-level cross-check of the fluid model below.
    """
    if duration_us <= 0:
        raise ValueError("duration must be positive")
    return registry.total("switch.pkts_processed", switch=switch_name) / duration_us


@dataclass(frozen=True)
class AppProfile:
    """What the fluid model needs to know about an application."""

    name: str
    #: Probability that a packet synchronously updates state.
    write_fraction: float
    #: Probability that a packet reads state of a partition that may have
    #: an in-flight update (drives read-buffering; only meaningful > 0 for
    #: mixed read/write apps with hot partitions).
    gated_read_fraction: float = 0.0
    #: True if state replicates asynchronously (snapshots): no store bound.
    asynchronous: bool = False


#: Profiles of the §6 applications. Read-centric apps write only on flow
#: setup, a vanishing fraction at steady state. EPC-SGW signals once per
#: 18 packets and its per-user partitions are hot enough that reads racing
#: an in-flight update are common.
APP_PROFILES: Dict[str, AppProfile] = {
    "nat": AppProfile("nat", write_fraction=0.0),
    "firewall": AppProfile("firewall", write_fraction=0.0),
    "load-balancer": AppProfile("load-balancer", write_fraction=0.0),
    "epc-sgw": AppProfile(
        "epc-sgw", write_fraction=1.0 / 18.0, gated_read_fraction=1.0
    ),
    "hh-detector": AppProfile("hh-detector", write_fraction=1.0, asynchronous=True),
    "sync-counter": AppProfile("sync-counter", write_fraction=1.0),
}

#: Replication round-trip time (us) used for the read-gating penalty.
REPLICATION_RTT_US = 24.0


def throughput_mpps(
    profile: AppProfile,
    redplane: bool,
    num_shards: int = 3,
    link_mpps: float = constants.SWITCH_MAX_FORWARD_MPPS,
    store_mpps: float = constants.STORE_CAPACITY_MPPS,
) -> float:
    """Sustained forwarding rate of one application (Fig 12's metric)."""
    if not redplane or profile.asynchronous or profile.write_fraction == 0.0:
        base = link_mpps
    else:
        store_bound = num_shards * store_mpps / profile.write_fraction
        base = min(link_mpps, store_bound)
    if redplane and 0.0 < profile.write_fraction < 1.0:
        # Packets buffered through the network while updates are in flight
        # effectively traverse the switch twice; the goodput dip scales
        # with how often reads race an in-flight write.
        penalty = profile.write_fraction * profile.gated_read_fraction
        base *= 1.0 - penalty
    return base


def fig12_rows(num_shards: int = 3) -> List[Dict[str, float]]:
    """(app, without-RedPlane, with-RedPlane) rows of Fig 12."""
    rows = []
    for name, profile in APP_PROFILES.items():
        rows.append(
            {
                "app": name,
                "without_mpps": throughput_mpps(profile, redplane=False),
                "with_mpps": throughput_mpps(profile, redplane=True,
                                             num_shards=num_shards),
            }
        )
    return rows


#: Offered load of the Fig 13 KV experiment: three senders at ~69.2 Mpps
#: minus response turnaround overhead; the paper's read-only ceiling.
KV_MAX_MPPS = 150.0


def kv_throughput_mpps(
    update_ratio: float,
    num_stores: int,
    store_mpps: float = constants.STORE_CAPACITY_MPPS,
    max_mpps: float = KV_MAX_MPPS,
) -> float:
    """KV-store throughput vs. update ratio (Fig 13).

    Reads are served entirely on-switch; only updates touch the store, so
    throughput follows ``min(ceiling, stores * capacity / u)`` — adding
    store servers raises the write-heavy floor, which is Fig 13's point.
    """
    if not 0.0 <= update_ratio <= 1.0:
        raise ValueError("update ratio must be in [0, 1]")
    if update_ratio == 0.0:
        return max_mpps
    return min(max_mpps, num_stores * store_mpps / update_ratio)


def fig13_series(
    update_ratios: List[float], store_counts: List[int] = (1, 2, 3)
) -> Dict[int, List[float]]:
    """Fig 13's line series: store count -> throughput per update ratio."""
    return {
        n: [kv_throughput_mpps(u, n) for u in update_ratios]
        for n in store_counts
    }

"""RedPlane reproduction: fault-tolerant stateful in-switch applications.

A from-scratch Python reproduction of *RedPlane: Enabling Fault-Tolerant
Stateful In-Switch Applications* (SIGCOMM 2021) on a discrete-event
switch/network simulator. See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured results.

Quick start::

    from repro import Simulator, deploy
    from repro.apps import SyncCounterApp

    sim = Simulator(seed=7)
    dep = deploy(sim, SyncCounterApp)
    ...

The public surface is re-exported here; subpackages:

* :mod:`repro.net` — discrete-event simulator, packets, links, topology
* :mod:`repro.switch` — programmable switch ASIC model
* :mod:`repro.statestore` — chain-replicated external state store
* :mod:`repro.core` — the RedPlane protocol (the paper's contribution)
* :mod:`repro.apps` — the paper's in-switch applications
* :mod:`repro.baselines` — fault-tolerance baselines of §2.2 and Fig 8
* :mod:`repro.model` — protocol model checking and linearizability checks
* :mod:`repro.workloads` — traffic and TCP workload generation
* :mod:`repro.analysis` — statistics and the fluid throughput model
"""

from repro.net.simulator import Simulator
from repro.net.packet import FlowKey, Packet, ip_aton, ip_ntoa
from repro.net.topology import Testbed, build_testbed
from repro.switch.asic import SwitchASIC
from repro.core import (
    AppVerdict,
    InSwitchApp,
    RedPlaneConfig,
    RedPlaneEngine,
    RedPlaneMode,
    StateSpec,
    attach_redplane,
    attach_snapshot_replication,
)
from repro.statestore import ShardAddress, ShardMap, StateStoreNode, build_chain
from repro.deploy import Deployment, deploy

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "FlowKey",
    "Packet",
    "ip_aton",
    "ip_ntoa",
    "Testbed",
    "build_testbed",
    "SwitchASIC",
    "AppVerdict",
    "InSwitchApp",
    "RedPlaneConfig",
    "RedPlaneEngine",
    "RedPlaneMode",
    "StateSpec",
    "attach_redplane",
    "attach_snapshot_replication",
    "ShardAddress",
    "ShardMap",
    "StateStoreNode",
    "build_chain",
    "Deployment",
    "deploy",
    "__version__",
]

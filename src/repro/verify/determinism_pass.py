"""Pass 2: the determinism linter.

The reproduction's headline claim is bit-identical figures: every run of
an experiment config must produce the same packets, the same counters,
the same JSON. That only holds if simulation code never consults sources
the simulator does not control. This pass walks the AST of every file
under ``src/repro/`` and flags the four ways nondeterminism has actually
crept into discrete-event simulators:

* **RD201** — wall-clock reads (``time.time()``, ``datetime.now()``,
  ``time.perf_counter()``): simulated time is :attr:`Simulator.now`;
  host time differs per run. (The telemetry stopwatch is the one
  sanctioned exception, suppressed with a justification on site.)
* **RD202** — unseeded randomness: module-level ``random.*`` calls use
  the shared global RNG (seeded by the OS), and ``random.Random()``
  without a seed argument is the same thing in a trenchcoat. Every RNG
  must derive from the experiment seed.
* **RD203** — iteration over sets: since hash randomization
  (PYTHONHASHSEED), set order varies between *processes*, so any set
  iteration whose order reaches output is a heisenbug. Iterate
  ``sorted(...)`` instead.
* **RD204** — ``id()`` used as a sort key or tie-break: CPython ids are
  addresses; they vary per run and per allocation order.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple, Union

from repro.verify import astutil
from repro.verify.diagnostics import Diagnostic, Report, SuppressionIndex
from repro.verify.rules import RULES

#: (module suffix, attribute) pairs that read the host clock.
_WALL_CLOCKS: Tuple[Tuple[str, str], ...] = (
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
)

#: Module-level :mod:`random` functions driven by the global (OS-seeded) RNG.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "expovariate", "getrandbits", "betavariate",
    "triangular", "vonmisesvariate", "paretovariate", "normalvariate",
})

_SORTERS = frozenset({"sorted", "min", "max"})

#: Builtins whose result does not depend on iteration order: a set (or a
#: comprehension over one) consumed *directly* by these is deterministic.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "min", "max", "any", "all", "sum", "len", "set", "frozenset",
})


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, sf: astutil.SourceFile, rel: str, report: Report,
                 supp: SuppressionIndex) -> None:
        self.sf = sf
        self.rel = rel
        self.report = report
        self.supp = supp
        self.imports = astutil.ImportTable(sf.tree)
        #: Node ids of expressions consumed by order-insensitive builtins
        #: (``sorted(x - y)``, ``any(t in s for ...)``): exempt from RD203.
        self._sanctioned: set = set()

    def _diag(self, rule_id: str, message: str, node: ast.AST) -> None:
        r = RULES[rule_id]
        self.report.add(
            Diagnostic(r.id, r.severity, message, self.rel, node.lineno),
            self.supp,
        )

    # -- RD201 ----------------------------------------------------------------

    def _is_wall_clock(self, func: ast.AST) -> Optional[str]:
        for module, name in _WALL_CLOCKS:
            if self.imports.resolves_to(func, module, name):
                return f"{module}.{name}"
        return None

    # -- RD202 ----------------------------------------------------------------

    def _is_unseeded_random(self, node: ast.Call) -> Optional[str]:
        func = node.func
        # random.Random() / random.SystemRandom() with no seed argument.
        for ctor in ("Random", "SystemRandom"):
            if self.imports.resolves_to(func, "random", ctor):
                if ctor == "SystemRandom":
                    return "random.SystemRandom (OS entropy)"
                if not node.args and not node.keywords:
                    return "random.Random() without a seed"
                return None
        chain = astutil.attr_chain(func)
        if chain is None:
            return None
        # Module-level random.* — the global RNG.
        if len(chain) == 2 and self.imports.modules.get(chain[0]) == "random":
            if chain[1] in _GLOBAL_RANDOM_FNS:
                return f"random.{chain[1]} (global RNG)"
        if len(chain) == 1:
            origin = self.imports.names.get(chain[0])
            if origin == ("random", chain[0]) and chain[0] in _GLOBAL_RANDOM_FNS:
                return f"random.{chain[0]} (global RNG)"
        return None

    # -- RD203 ----------------------------------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            # set algebra: a & b, a | b, a - b on sets — only flagged when
            # an operand is itself syntactically a set.
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _check_set_iteration(self, iter_node: ast.AST) -> None:
        if id(iter_node) in self._sanctioned:
            return
        if self._is_set_expr(iter_node):
            self._diag(
                "RD203",
                "iteration over a set: element order depends on "
                "PYTHONHASHSEED and varies between runs; wrap in sorted()",
                iter_node,
            )

    # -- RD204 ----------------------------------------------------------------

    def _key_uses_id(self, key_expr: ast.AST) -> bool:
        for sub in ast.walk(key_expr):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
                and "id" not in self.imports.names
                and "id" not in self.imports.modules
            ):
                return True
        return False

    # -- visitors -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        clock = self._is_wall_clock(node.func)
        if clock is not None:
            self._diag(
                "RD201",
                f"wall-clock read {clock}(): simulation code must use the "
                "simulator's virtual clock (Simulator.now) so runs are "
                "reproducible",
                node,
            )
        unseeded = self._is_unseeded_random(node)
        if unseeded is not None:
            self._diag(
                "RD202",
                f"unseeded randomness via {unseeded}: derive every RNG "
                "from the experiment seed (random.Random(seed))",
                node,
            )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_INSENSITIVE
        ):
            for a in node.args:
                self._sanctioned.add(id(a))
                if isinstance(
                    a, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
                ):
                    for gen in a.generators:
                        self._sanctioned.add(id(gen.iter))
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _SORTERS
        ):
            for kw in node.keywords:
                if kw.arg == "key" and self._key_uses_id(kw.value):
                    self._diag(
                        "RD204",
                        f"id() used as a {node.func.id}() key: CPython ids "
                        "are memory addresses and differ between runs; "
                        "key on a stable attribute instead",
                        kw.value,
                    )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "sort"
        ):
            for kw in node.keywords:
                if kw.arg == "key" and self._key_uses_id(kw.value):
                    self._diag(
                        "RD204",
                        "id() used as a .sort() key: CPython ids are memory "
                        "addresses and differ between runs; key on a stable "
                        "attribute instead",
                        kw.value,
                    )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comp(
        self, node: Union[ast.ListComp, ast.SetComp, ast.DictComp,
                          ast.GeneratorExp]
    ) -> None:
        for gen in node.generators:
            self._check_set_iteration(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Iterating a set to build another set is order-insensitive.
        self.generic_visit(node)


def verify_determinism(
    paths: Iterable[str],
    report: Optional[Report] = None,
    suppressions: Optional[SuppressionIndex] = None,
    root: Optional[str] = None,
) -> Report:
    """Lint every ``.py`` file under ``paths`` for nondeterminism."""
    report = report if report is not None else Report()
    suppressions = (
        suppressions if suppressions is not None else SuppressionIndex()
    )
    files: List[str] = []
    for path in paths:
        files.extend(astutil.iter_py_files(path))
    for path in files:
        sf = astutil.load(path)
        if sf is None:
            continue
        rel = astutil.relpath(sf.path, root)
        suppressions.scan(rel, source=sf.text)
        _DeterminismVisitor(sf, rel, report, suppressions).visit(sf.tree)
    report.analyzed["determinism"] = f"{len(files)} file(s) linted"
    return report

"""Pass 4: the fast-path replay lint.

The fast path's bit-identity contract (docs/PERFORMANCE.md) rests on two
statically-checkable properties, enforced here:

* **RP140** — the ``replay_*`` functions in
  :mod:`repro.fastpath.flowcache` may only produce side effects through
  the allowlisted surface :data:`~repro.fastpath.flowcache.REPLAY_EFFECTS`:
  every method they call and every attribute they assign must be in that
  set. Anything else is an effect the dependency-set/invalidation story
  does not cover, so a replayed packet could diverge from the reference
  pipeline without any cache entry being invalidated.

* **RP141** — an application whose ``partition_key`` reads the packet
  payload must declare ``partition_inputs = "packet"``, so the flow-cache
  signature includes the payload. Without the declaration, two packets of
  one 5-tuple with different payloads would replay one cached partition
  decision — silently wrong for payload-keyed apps (KV store, sequencer).

* **RP142** — every ``Entry(kind, ...)`` constructed in the fast path
  must use a kind declared in
  :data:`~repro.fastpath.flowcache.ENTRY_DEPS`: an entry kind without a
  declared dependency set is an entry the invalidation bus can never
  correctly flush.

Like the other tree lints this pass is purely syntactic; the allowlist
and dependency sets themselves are imported from the running fast-path
package so the lint can never drift from the implementation.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Set

from repro.fastpath.flowcache import ENTRY_DEPS, REPLAY_EFFECTS
from repro.verify import astutil
from repro.verify.diagnostics import Diagnostic, Report, SuppressionIndex
from repro.verify.rules import RULES


def _diag(report: Report, supp: SuppressionIndex, rule_id: str,
          message: str, rel: str, line: int) -> None:
    r = RULES[rule_id]
    report.add(Diagnostic(r.id, r.severity, message, rel, line), supp)


def _string_values(tree: ast.Module) -> Dict[str, Set[str]]:
    """Name -> every string constant ever assigned to it in this module."""
    values: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            if (isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        values.setdefault(target.id, set()).add(
                            node.value.value)
    return values


def _check_replay(fn: ast.FunctionDef, rel: str, report: Report,
                  supp: SuppressionIndex) -> None:
    """RP140: method calls and attribute writes stay in REPLAY_EFFECTS."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            name = node.func.attr
            if name not in REPLAY_EFFECTS:
                _diag(report, supp, "RP140",
                      f"replay function {fn.name!r} calls {name!r}, which "
                      f"is not in the REPLAY_EFFECTS allowlist — an effect "
                      f"the dependency sets do not cover",
                      rel, node.lineno)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
            if node.attr not in REPLAY_EFFECTS:
                _diag(report, supp, "RP140",
                      f"replay function {fn.name!r} assigns attribute "
                      f"{node.attr!r} outside the REPLAY_EFFECTS allowlist",
                      rel, node.lineno)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Del):
            _diag(report, supp, "RP140",
                  f"replay function {fn.name!r} deletes attribute "
                  f"{node.attr!r}", rel, node.lineno)


def _reads_payload(fn: ast.FunctionDef) -> Optional[int]:
    """Line of the first ``.payload`` read inside ``fn``, if any."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr == "payload":
            return node.lineno
    return None


def _declares_packet_inputs(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (isinstance(target, ast.Name)
                    and target.id == "partition_inputs"
                    and isinstance(value, ast.Constant)
                    and value.value == "packet"):
                return True
    return False


def _check_app_class(cls: ast.ClassDef, rel: str, report: Report,
                     supp: SuppressionIndex) -> bool:
    """RP141 for one class; returns True when it defines partition_key."""
    fn = next((stmt for stmt in cls.body
               if isinstance(stmt, ast.FunctionDef)
               and stmt.name == "partition_key"), None)
    if fn is None:
        return False
    line = _reads_payload(fn)
    if line is not None and not _declares_packet_inputs(cls):
        _diag(report, supp, "RP141",
              f"{cls.name}.partition_key reads the packet payload but the "
              f"class does not declare partition_inputs = \"packet\"; the "
              f"flow-cache signature would omit the payload and replay a "
              f"wrong partition decision", rel, line)
    return True


def _check_entry_kinds(sf: astutil.SourceFile, rel: str, report: Report,
                       supp: SuppressionIndex) -> int:
    """RP142 over one file; returns the number of Entry(...) sites."""
    imports = astutil.ImportTable(sf.tree)
    names = _string_values(sf.tree)
    sites = 0
    for node in ast.walk(sf.tree):
        if not (isinstance(node, ast.Call) and node.args):
            continue
        func = node.func
        is_entry = (isinstance(func, ast.Name) and func.id == "Entry"
                    and imports.resolves_to(func, "fastpath.flowcache",
                                            "Entry"))
        if not is_entry:
            continue
        sites += 1
        kind_arg = node.args[0]
        if (isinstance(kind_arg, ast.Constant)
                and isinstance(kind_arg.value, str)):
            kinds = {kind_arg.value}
        elif isinstance(kind_arg, ast.Name):
            kinds = names.get(kind_arg.id, set())
        else:
            kinds = set()
        for kind in sorted(kinds):
            if kind not in ENTRY_DEPS:
                _diag(report, supp, "RP142",
                      f"Entry kind {kind!r} has no dependency set in "
                      f"ENTRY_DEPS; the invalidation bus cannot flush it",
                      rel, node.lineno)
    return sites


def verify_fastpath(
    paths: List[str],
    report: Optional[Report] = None,
    suppressions: Optional[SuppressionIndex] = None,
    root: Optional[str] = None,
) -> Report:
    """Run the fast-path lint over ``paths`` (files or directories)."""
    report = report if report is not None else Report()
    supp = suppressions if suppressions is not None else SuppressionIndex()
    files = replays = app_classes = entry_sites = 0
    for path in paths:
        for filename in astutil.iter_py_files(path):
            sf = astutil.load(filename)
            if sf is None:
                continue
            files += 1
            rel = astutil.relpath(sf.path, root)
            supp.scan(rel, source=sf.text)
            in_fastpath = (
                os.sep + "fastpath" + os.sep in sf.path
            )
            for node in ast.walk(sf.tree):
                if (isinstance(node, ast.FunctionDef)
                        and node.name.startswith("replay_")
                        and in_fastpath):
                    replays += 1
                    _check_replay(node, rel, report, supp)
                elif isinstance(node, ast.ClassDef):
                    if _check_app_class(node, rel, report, supp):
                        app_classes += 1
            if in_fastpath:
                entry_sites += _check_entry_kinds(sf, rel, report, supp)
    report.analyzed["fastpath"] = (
        f"{files} file(s), {replays} replay function(s), "
        f"{app_classes} partitioned app class(es), "
        f"{entry_sites} Entry site(s)"
    )
    return report

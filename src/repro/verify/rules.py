"""The rule registry: every diagnostic the analyzer can produce.

Rule ids are stable API (tests, suppressions, and CI grep for them).
Numbering mirrors the pass structure: ``RP1xx`` pipeline verifier,
``RD2xx`` determinism linter, ``RT3xx`` telemetry-schema lint, ``RS4xx``
partition analyzer, ``QA0xx`` the suppression mechanism itself.
docs/VERIFY.md documents each rule, the hardware constraint or invariant
it models, and how to suppress it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.verify.diagnostics import Severity


@dataclass(frozen=True)
class Rule:
    """One verifiable constraint."""

    id: str
    title: str
    severity: Severity
    #: Which pass produces it: "pipeline" | "determinism" | "telemetry" |
    #: "fastpath" | "partition" | "meta".
    owner: str
    #: The paper section / hardware constraint / invariant it models.
    models: str


_RULES = [
    # -- Pass 1: pipeline verifier -------------------------------------------
    Rule("RP101", "register array accessed more than once on a packet path",
         Severity.ERROR, "pipeline",
         "PAPER §5.4: one access per register array per packet"),
    Rule("RP102", "register array accessed inside a per-packet loop",
         Severity.ERROR, "pipeline",
         "P4 has no per-packet loops; a loop over a fixed array implies "
         "multiple stateful-ALU accesses for one packet"),
    Rule("RP103", "register access not statically resolvable",
         Severity.WARNING, "pipeline",
         "the verifier must be able to name the array to prove the "
         "single-access constraint"),
    Rule("RP105", "duplicate control block instance in the pipeline",
         Severity.ERROR, "pipeline",
         "block ordering must be acyclic; the same instance twice is a "
         "cycle in the stage DAG"),
    Rule("RP110", "pipeline exceeds the stage budget",
         Severity.ERROR, "pipeline",
         "Table 2: 12 match-action stages x 4 stateful ALUs per stage"),
    Rule("RP120", "mirror session has no pass handler",
         Severity.ERROR, "pipeline",
         "§5.2: a circulating copy with no handler raises at the first "
         "mirrored packet"),
    Rule("RP121", "mirror session circulates untruncated copies",
         Severity.WARNING, "pipeline",
         "§5.2: copies should be truncated to the RedPlane header, not "
         "hold full payloads in packet buffer (Fig 15)"),
    Rule("RP122", "mirror session unreachable from any pipeline path",
         Severity.WARNING, "pipeline",
         "a configured session no code path can reach is dead resource"),
    Rule("RP123", "mirror pass handler can never release its copies",
         Severity.ERROR, "pipeline",
         "a handler with no releasing path circulates copies forever and "
         "exhausts the packet buffer"),
    Rule("RP130", "declared resource usage exceeds chip capacity",
         Severity.ERROR, "pipeline",
         "Table 2 / resources.CAPACITY: the Tofino compiler rejects "
         "over-budget programs at compile time"),
    Rule("RP131", "resource declaration names an unknown resource",
         Severity.ERROR, "pipeline",
         "resource keys must be CAPACITY rows or Table 2 cannot account "
         "them"),
    Rule("RP132", "declared SRAM under-counts instantiated stateful objects",
         Severity.ERROR, "pipeline",
         "Table 2: the declared budget must cover every register array "
         "the block actually instantiates"),
    Rule("RP133", "switch resource ledger out of sync with block inventory",
         Severity.WARNING, "pipeline",
         "resources registered on the ASIC must equal the sum of what "
         "its blocks and apps declare"),
    Rule("RP150", "in-switch store serves packets via control-plane ops",
         Severity.ERROR, "pipeline",
         "a store backend's registers touched on a per-packet path must "
         "go through pipelined access() — cp_read/cp_write model the "
         "slow control-plane channel, which cannot run per packet and "
         "dodges the single-access and stage-budget accounting"),
    # -- Pass 4: fast-path replay lint ---------------------------------------
    Rule("RP140", "fast-path replay effect outside the declared surface",
         Severity.ERROR, "fastpath",
         "a replay_* function may only call/assign through the "
         "REPLAY_EFFECTS allowlist; anything else is a side effect the "
         "entry's dependency set does not cover, breaking bit-identity"),
    Rule("RP141", "payload-reading partition_key without a declaration",
         Severity.ERROR, "fastpath",
         "an app whose partition_key reads the payload must declare "
         "partition_inputs = 'packet' so the flow-cache signature "
         "includes the payload"),
    Rule("RP142", "cache entry kind has no declared dependency set",
         Severity.ERROR, "fastpath",
         "every Entry kind must appear in ENTRY_DEPS or the invalidation "
         "bus can never flush it"),
    # -- Pass 2: determinism linter ------------------------------------------
    Rule("RD201", "wall-clock time source in simulation code",
         Severity.ERROR, "determinism",
         "trace/metric timestamps are simulated microseconds; wall clock "
         "breaks same-seed byte-identical runs"),
    Rule("RD202", "unseeded or process-global randomness",
         Severity.ERROR, "determinism",
         "all stochastic choices must come from a seeded random.Random "
         "(the simulator owns one)"),
    Rule("RD203", "set iteration order leaks into event ordering",
         Severity.ERROR, "determinism",
         "set iteration order depends on PYTHONHASHSEED; iterating a set "
         "into any ordered effect is nondeterministic"),
    Rule("RD204", "identity- or hash-based ordering",
         Severity.ERROR, "determinism",
         "id() and hash() vary across processes; using them as sort keys "
         "reorders events run to run"),
    # -- Pass 3: telemetry-schema lint ---------------------------------------
    Rule("RT301", "unknown trace event type",
         Severity.ERROR, "telemetry",
         "every trace type must be declared in repro.telemetry.schema so "
         "span reconstruction knows its role"),
    Rule("RT302", "trace emit site violates the declared field schema",
         Severity.ERROR, "telemetry",
         "missing required fields (or undeclared ones) break span "
         "reconstruction and attribution"),
    Rule("RT303", "metric label key has no declared cardinality bound",
         Severity.ERROR, "telemetry",
         "per-uid/per-packet labels explode the registry; every label "
         "key needs a declared bounded domain"),
    Rule("RT304", "metric name not declared in the schema",
         Severity.ERROR, "telemetry",
         "undeclared metrics dodge the analysis layer and the docs"),
    Rule("RT305", "metric emit site label set mismatches the schema",
         Severity.ERROR, "telemetry",
         "aggregation (MetricRegistry.total) silently misses instruments "
         "with unexpected label sets"),
    Rule("RT306", "metric emit site kind mismatches the schema",
         Severity.ERROR, "telemetry",
         "a name registered as two kinds raises at runtime"),
    Rule("RT310", "span-opening trace type has no closing emit site",
         Severity.ERROR, "telemetry",
         "every packet.send/dup needs a deliver/drop site, every "
         "rp.request an rp.ack site — else spans can never terminate"),
    # -- Pass 5: partition analyzer ------------------------------------------
    Rule("RS400", "state access whose partition key cannot be classified",
         Severity.ERROR, "partition",
         "sharded simulation needs every register/table access provably "
         "keyed; an unclassifiable index could touch any shard's state"),
    Rule("RS401", "structure keyed differently from the app partition key",
         Severity.ERROR, "partition",
         "state indexed by fields outside the app's partition key is "
         "touched by flows of different partitions — splitting those "
         "partitions across shards would split one structure's writers"),
    Rule("RS402", "declared shard class tighter than the inferred one",
         Severity.ERROR, "partition",
         "an app may relax its class (declare 'global' for safety) but "
         "never tighten it: a flow_local declaration over hash-indexed "
         "state would let the sharded runner split co-written state"),
    Rule("RS403", "global shard class declared without a shard_reason",
         Severity.ERROR, "partition",
         "global state serializes the sharded runner; the declaration "
         "must say why the state is genuinely cross-flow"),
    Rule("RS404", "shard_class declaration is not a known partition class",
         Severity.ERROR, "partition",
         "the lattice is flow_local < flow_hash < global; anything else "
         "is a typo the planner would misread"),
    Rule("RS405", "state inferred global but the app does not declare it",
         Severity.WARNING, "partition",
         "inference can prove state is cross-flow but not that this is "
         "intended; annotate shard_class = 'global' with a reason"),
    Rule("RS406", "cache entry kind lacks a valid partition class",
         Severity.ERROR, "partition",
         "fastpath v2 cohort replay groups entries by partition class; "
         "every ENTRY_DEPS row must declare one"),
    Rule("RS407", "partition_key not statically analyzable",
         Severity.WARNING, "partition",
         "the analyzer could not derive the key's packet-field inputs; "
         "the plan conservatively treats the app's state as global"),
    Rule("RS408", "committed shard plan is stale",
         Severity.ERROR, "partition",
         "shard_plans/<app>.json disagrees with the analyzer's output; "
         "regenerate with 'verify --all --emit-plans shard_plans'"),
    Rule("RS410", "mutable module-global simulation state",
         Severity.WARNING, "partition",
         "module-level mutable accumulators (and 'global' rebinding) are "
         "per-process: worker shards would silently diverge"),
    Rule("RS411", "unpicklable callable stored on an instance or module",
         Severity.WARNING, "partition",
         "lambdas and nested functions cannot cross a process boundary; "
         "shard handoff of the owning object would fail to pickle"),
    Rule("RS412", "order-sensitive first-element pick over a dict/set",
         Severity.WARNING, "partition",
         "next(iter(...)) over an unordered container picks a different "
         "element per process once shards fill containers independently"),
    # -- meta: the suppression mechanism itself ------------------------------
    Rule("QA001", "suppression without a justifying comment",
         Severity.ERROR, "meta",
         "a '# repro: noqa[RULE]' must say why (text after '--')"),
    Rule("QA002", "suppression matched no diagnostic",
         Severity.WARNING, "meta",
         "stale suppressions hide future regressions"),
]


def register(rules: Iterable[Rule]) -> Dict[str, Rule]:
    """Index rules by id, refusing duplicates at registration time.

    Rule ids are stable API; a collision (two passes claiming one id)
    must fail at import, not surface later as one rule's diagnostics
    silently wearing another rule's severity and docs.
    """
    table: Dict[str, Rule] = {}
    for r in rules:
        if r.id in table:
            raise ValueError(
                f"duplicate rule id {r.id!r}: "
                f"{table[r.id].title!r} vs {r.title!r}"
            )
        table[r.id] = r
    return table


RULES: Dict[str, Rule] = register(_RULES)


def rule(rule_id: str) -> Rule:
    return RULES[rule_id]

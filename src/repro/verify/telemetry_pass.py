"""Pass 3: the telemetry-schema lint.

Every ``tracer.emit(...)`` and every metric-instrument creation in the
tree is checked against the declared contract in
:mod:`repro.telemetry.schema`:

* trace types must be declared (RT301) and emit the declared fields
  (RT302) — a site spreading a prebuilt dict (``emit(T, **fields)``)
  escapes the field check, since which keys it carries is a runtime
  fact;
* metric names must be declared (RT304) with the declared label-key set
  (RT305) and instrument kind (RT306), and every label key needs a
  bounded domain in :data:`~repro.telemetry.schema.LABEL_DOMAINS`
  (RT303);
* a file set that emits a span-opening type but none of its closing
  types produces spans that can never terminate (RT310).

Trace-type arguments are resolved through each file's import table: the
constants in :mod:`repro.telemetry.trace` (``tt.PACKET_SEND``), string
literals, and one level of local aliasing (``event_type = tt.A if cond
else tt.B``) are all understood.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.telemetry import schema
from repro.telemetry import trace as _trace_mod
from repro.verify import astutil
from repro.verify.diagnostics import Diagnostic, Report, SuppressionIndex
from repro.verify.rules import RULES

_INSTRUMENT_METHODS = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
}

#: Placeholder for f-string interpolations in metric names: matched by a
#: ``*`` in a declared pattern, never by a literal segment.
_DYN = "\x00dyn\x00"

#: Known trace-type constant values (for string-literal emit sites).
_KNOWN_TYPES = set(schema.TRACE_EVENTS)


def _is_trace_module(dotted: Optional[str]) -> bool:
    return dotted is not None and (
        dotted == "trace" or dotted.endswith("telemetry.trace")
    )


class _FileLint:
    def __init__(self, sf: astutil.SourceFile, rel: str, report: Report,
                 supp: SuppressionIndex) -> None:
        self.sf = sf
        self.rel = rel
        self.report = report
        self.supp = supp
        self.imports = astutil.ImportTable(sf.tree)
        #: Local name -> possible trace-type strings (one assignment level).
        self.aliases: Dict[str, Set[str]] = {}
        #: (type, lineno) per resolved trace emit in this file.
        self.emits: List[Tuple[str, int]] = []

    # -- shared ----------------------------------------------------------------

    def _diag(self, rule_id: str, message: str, line: int) -> None:
        r = RULES[rule_id]
        self.report.add(
            Diagnostic(r.id, r.severity, message, self.rel, line), self.supp
        )

    # -- trace-type resolution -------------------------------------------------

    def _const_of(self, node: ast.AST) -> Optional[str]:
        """The trace-type string an expression denotes, if resolvable."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        chain = astutil.attr_chain(node)
        if chain is None:
            return None
        if len(chain) == 2 and _is_trace_module(
            self.imports.modules.get(chain[0])
        ):
            value = getattr(_trace_mod, chain[1], None)
            return value if isinstance(value, str) else None
        if len(chain) == 1:
            origin = self.imports.names.get(chain[0])
            if origin is not None and _is_trace_module(origin[0]):
                value = getattr(_trace_mod, origin[1], None)
                return value if isinstance(value, str) else None
        return None

    def _types_of(self, node: ast.AST) -> Set[str]:
        one = self._const_of(node)
        if one is not None:
            return {one}
        if isinstance(node, ast.IfExp):
            return self._types_of(node.body) | self._types_of(node.orelse)
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id, set())
        return set()

    def _collect_aliases(self) -> None:
        for node in ast.walk(self.sf.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    types = self._types_of(node.value)
                    if types:
                        self.aliases[target.id] = types

    # -- trace emits -----------------------------------------------------------

    def _check_emit(self, node: ast.Call) -> None:
        if not node.args:
            return
        types = self._types_of(node.args[0])
        if not types:
            return
        has_spread = any(kw.arg is None for kw in node.keywords)
        present = {kw.arg for kw in node.keywords if kw.arg is not None}
        for type_ in sorted(types):
            spec = schema.TRACE_EVENTS.get(type_)
            if spec is None:
                self._diag(
                    "RT301",
                    f"trace type {type_!r} is not declared in "
                    "repro.telemetry.schema.TRACE_EVENTS; span "
                    "reconstruction will not know its role",
                    node.lineno,
                )
                continue
            self.emits.append((type_, node.lineno))
            if has_spread:
                continue  # field set is a runtime fact at **-sites
            missing = sorted(spec.required - present)
            if missing:
                self._diag(
                    "RT302",
                    f"emit of {type_!r} is missing required field(s) "
                    f"{', '.join(missing)}",
                    node.lineno,
                )
            undeclared = sorted(present - spec.allowed)
            if undeclared:
                self._diag(
                    "RT302",
                    f"emit of {type_!r} carries undeclared field(s) "
                    f"{', '.join(undeclared)}; declare them in "
                    "TRACE_EVENTS or drop them",
                    node.lineno,
                )

    # -- metric sites ----------------------------------------------------------

    def _name_pattern(self, node: ast.AST) -> Optional[str]:
        """Metric name at an instrument-creation site; f-string holes
        become a placeholder only declared wildcards can match."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.JoinedStr):
            parts: List[str] = []
            for value in node.values:
                if isinstance(value, ast.Constant):
                    parts.append(str(value.value))
                else:
                    parts.append(_DYN)
            return "".join(parts)
        return None

    def _check_instrument(self, node: ast.Call, kind: str) -> None:
        name = self._name_pattern(node.args[0] if node.args else None)
        if name is None:
            return
        labels = {
            kw.arg for kw in node.keywords
            if kw.arg is not None and kw.arg != "max_samples"
        }
        unbounded = sorted(labels - set(schema.LABEL_DOMAINS))
        if unbounded:
            self._diag(
                "RT303",
                f"label key(s) {', '.join(unbounded)} on metric {name!r} "
                "have no declared cardinality bound in LABEL_DOMAINS; "
                "per-packet label values make the registry unbounded",
                node.lineno,
            )
        for spec in schema.METRICS:
            if fnmatchcase(name, spec.name):
                if spec.kind != kind:
                    self._diag(
                        "RT306",
                        f"metric {name!r} created as a {kind} but declared "
                        f"as a {spec.kind} (registering a name as two kinds "
                        "raises at runtime)",
                        node.lineno,
                    )
                if labels != spec.labels:
                    self._diag(
                        "RT305",
                        f"metric {name!r} created with labels "
                        f"{{{', '.join(sorted(labels)) or ''}}} but the "
                        f"schema declares "
                        f"{{{', '.join(sorted(spec.labels)) or ''}}}; "
                        "aggregations keyed on the declared set will miss "
                        "this instrument",
                        node.lineno,
                    )
                return
        self._diag(
            "RT304",
            f"metric {name!r} is not declared in "
            "repro.telemetry.schema.METRICS",
            node.lineno,
        )

    def _check_legacy_count(self, node: ast.Call) -> None:
        name = self._name_pattern(node.args[0] if node.args else None)
        if name is None:
            return
        if any(fnmatchcase(name, p) for p in schema.LEGACY_COUNT_PATTERNS):
            return
        self._diag(
            "RT304",
            f"legacy counter name {name!r} matches no "
            "LEGACY_COUNT_PATTERNS entry; use a declared labeled "
            "instrument instead of sim.count()",
            node.lineno,
        )

    # -- drive -----------------------------------------------------------------

    def run(self) -> None:
        self._collect_aliases()
        for node in ast.walk(self.sf.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            attr = node.func.attr
            if attr == "emit":
                self._check_emit(node)
            elif attr in _INSTRUMENT_METHODS:
                base = astutil.attr_chain(node.func.value)
                # Only registry receivers: ``...metrics.counter`` / ``m.*``
                # / ``sim.metrics.*`` — not e.g. itertools.count.
                if base is not None and base[-1] in (
                    "metrics", "m", "registry"
                ):
                    self._check_instrument(node, _INSTRUMENT_METHODS[attr])
            elif attr == "count":
                base = astutil.attr_chain(node.func.value)
                if base is not None and base[-1] == "sim" or (
                    base is not None and len(base) == 1
                    and base[0] == "self"
                    and node.args
                    and isinstance(node.args[0], (ast.Constant, ast.JoinedStr))
                ):
                    self._check_legacy_count(node)


def verify_telemetry(
    paths: Iterable[str],
    report: Optional[Report] = None,
    suppressions: Optional[SuppressionIndex] = None,
    root: Optional[str] = None,
) -> Report:
    """Lint every emit site under ``paths`` against the telemetry schema.

    The telemetry subsystem itself (``repro/telemetry/``) is excluded:
    it defines the machinery, its method bodies are not emit *sites*.
    """
    report = report if report is not None else Report()
    suppressions = (
        suppressions if suppressions is not None else SuppressionIndex()
    )
    files: List[str] = []
    for path in paths:
        for f in astutil.iter_py_files(path):
            norm = f.replace("\\", "/")
            if "/telemetry/" in norm and "/verify/" not in norm:
                continue
            files.append(f)
    lints: List[_FileLint] = []
    for path in files:
        sf = astutil.load(path)
        if sf is None:
            continue
        rel = astutil.relpath(sf.path, root)
        suppressions.scan(rel, source=sf.text)
        lint = _FileLint(sf, rel, report, suppressions)
        lint.run()
        lints.append(lint)
    # RT310: pairing across the whole file set.
    emitted: Set[str] = set()
    for lint in lints:
        emitted.update(t for t, _ in lint.emits)
    for opener, closers in sorted(schema.PAIRS.items()):
        if opener in emitted and not (closers & emitted):
            for lint in lints:
                for type_, line in lint.emits:
                    if type_ == opener:
                        lint._diag(
                            "RT310",
                            f"span-opening type {opener!r} is emitted but "
                            f"no closing type "
                            f"({', '.join(sorted(closers))}) is emitted "
                            "anywhere in the analyzed files: these spans "
                            "can never terminate",
                            line,
                        )
    report.analyzed["telemetry"] = f"{len(files)} file(s) linted"
    return report

"""``repro.verify`` — P4-compiler-style static analysis for the reproduction.

Five coordinated passes over the code and the configured artifacts,
sharing one diagnostic engine (rule ids, severities, source locations,
JSON + human rendering, ``# repro: noqa[RULE]`` suppressions):

* **pipeline** (:mod:`repro.verify.pipeline_pass`) — walks a configured
  :class:`~repro.switch.asic.SwitchASIC` program symbolically and proves
  or refutes the Tofino hardware constraints the runtime model only
  discovers mid-simulation: at most one access per register array per
  packet across all verdict paths (PAPER §5.4), stage/ALU budgets,
  mirror-session wiring, and resource fit against
  :data:`repro.switch.resources.CAPACITY` (Table 2).
* **determinism** (:mod:`repro.verify.determinism_pass`) — an AST lint
  over the source tree forbidding simulation-breaking constructs (wall
  clock, unseeded randomness, set-iteration-order leaks, identity-based
  ordering): the invariant every same-seed byte-identical guarantee in
  CHANGES.md silently relies on.
* **telemetry** (:mod:`repro.verify.telemetry_pass`) — validates metric
  and trace emit sites against the declared schema in
  :mod:`repro.telemetry.schema` (names, label sets, cardinality bounds,
  span open/close pairing) so the spans-completeness guarantee is checked
  statically, not only empirically.
* **fastpath** (:mod:`repro.verify.fastpath_pass`) — proves the flow
  cache's bit-identical-replay contract: replay functions stay inside
  :data:`repro.fastpath.flowcache.REPLAY_EFFECTS`, partition inputs are
  declared, entry kinds carry dependency scopes (RP14x).
* **partition** (:mod:`repro.verify.partition_pass`) — classifies every
  piece of per-app switch state as flow-local, flow-hash-partitionable,
  or global on the partition-class lattice; emits a machine-checked
  shard plan per app (``shard_plans/``) plus Python-level shard-hazard
  lints (RS4xx).

``python -m repro.tools verify --all`` runs everything; the CI ``verify``
job gates on it with ``--baseline`` and archives the shard plans.
"""

from repro.verify.diagnostics import (
    Diagnostic,
    Report,
    Severity,
    SuppressionIndex,
)
from repro.verify.rules import RULES, Rule, rule
from repro.verify.pipeline_pass import verify_asic, verify_app
from repro.verify.determinism_pass import verify_determinism
from repro.verify.telemetry_pass import verify_telemetry
from repro.verify.partition_pass import (
    plan_json,
    render_plan,
    verify_partition_app,
    verify_shard_hazards,
)

__all__ = [
    "Diagnostic",
    "Report",
    "Severity",
    "SuppressionIndex",
    "RULES",
    "Rule",
    "rule",
    "verify_asic",
    "verify_app",
    "verify_determinism",
    "verify_telemetry",
    "verify_partition_app",
    "verify_shard_hazards",
    "plan_json",
    "render_plan",
]

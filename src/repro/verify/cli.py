"""The ``repro.tools verify`` entry point.

Runs the five passes with one shared suppression index and one report,
so a single ``# repro: noqa[...]`` grammar covers all rule families and
unused suppressions are judged once, after every pass has spoken.

Tree lints (determinism, telemetry, fastpath, shard hazards) take
file/directory paths; the pipeline and partition verifiers need
*deployed programs*, so they run over the builtin application registry
(``--all`` / ``--app NAME``), deploying each app on a fresh simulated
testbed exactly as the experiments do and analyzing the resulting
switch.

The partition pass additionally produces one shard plan per analyzed
app. ``--plan`` renders the plans, ``--emit-plans DIR`` writes their
canonical JSON, and RS408 reports drift between freshly computed plans
and the committed ``shard_plans/`` artifacts.

``--baseline`` compares per-rule active-diagnostic counts against a
committed ``verify_baseline.json`` and fails only on *regressions*
(counts above the baseline), so CI can gate on "no new findings"
while a cleanup burns existing ones down.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Optional

from repro.verify.determinism_pass import verify_determinism
from repro.verify.diagnostics import (
    Diagnostic, Report, Severity, SuppressionIndex,
)
from repro.verify.fastpath_pass import verify_fastpath
from repro.verify.partition_pass import (
    plan_json, render_plan, verify_partition_app, verify_shard_hazards,
)
from repro.verify.pipeline_pass import verify_app, verify_netchain
from repro.verify.rules import RULES
from repro.verify.telemetry_pass import verify_telemetry


def source_root() -> str:
    """The ``src/`` directory this installation runs from."""
    here = os.path.dirname(os.path.abspath(__file__))  # src/repro/verify
    return os.path.normpath(os.path.join(here, "..", ".."))


def repo_root() -> str:
    """Diagnostics are reported relative to this directory."""
    return os.path.normpath(os.path.join(source_root(), ".."))


def default_baseline_path() -> str:
    return os.path.join(repo_root(), "verify_baseline.json")


def shard_plan_dir() -> str:
    """Where the committed per-app shard plans live."""
    return os.path.join(repo_root(), "shard_plans")


def rule_counts(report: Report) -> Dict[str, int]:
    """Active (unsuppressed) diagnostics per rule id, for baselines."""
    counts: Dict[str, int] = {}
    for diag in report.active():
        counts[diag.rule] = counts.get(diag.rule, 0) + 1
    return counts


def baseline_regressions(
    counts: Dict[str, int], baseline: Dict[str, int]
) -> Dict[str, Dict[str, int]]:
    """Rules whose active count exceeds the baselined count.

    Rules absent from the baseline count as baselined at zero, so a
    brand-new finding is always a regression; counts at or below the
    baseline (including rules fixed since) never fail.
    """
    out: Dict[str, Dict[str, int]] = {}
    for rule, count in sorted(counts.items()):
        allowed = int(baseline.get(rule, 0))
        if count > allowed:
            out[rule] = {"count": count, "baseline": allowed}
    return out


def _check_plan_drift(
    plans: Dict[str, dict],
    report: Report,
    supp: SuppressionIndex,
    root: str,
) -> None:
    """RS408: freshly computed plans must match the committed artifacts.

    Only runs when the committed ``shard_plans/`` directory exists, so a
    fresh checkout that has never emitted plans is not spammed; once the
    directory is committed, every analyzed app must have an up-to-date
    plan in it.
    """
    plan_dir = shard_plan_dir()
    if not os.path.isdir(plan_dir):
        return
    for name in sorted(plans):
        path = os.path.join(plan_dir, f"{name}.json")
        rel = os.path.relpath(path, root)
        fresh = plan_json(plans[name])
        try:
            with open(path, encoding="utf-8") as fh:
                committed = fh.read()
        except OSError:
            committed = None
        if committed == fresh:
            continue
        what = "missing" if committed is None else "stale"
        report.add(Diagnostic(
            "RS408", Severity.ERROR,
            f"committed shard plan for app {name!r} is {what}; "
            "regenerate with 'verify --all --emit-plans shard_plans'",
            rel, 1, site=f"app={name}",
        ), suppressions=supp)


def run_verify(
    paths: Optional[List[str]] = None,
    all_targets: bool = False,
    app: Optional[str] = None,
    as_json: bool = False,
    out: Optional[str] = None,
    strict: bool = False,
    rules: Optional[str] = None,
    baseline: Optional[str] = None,
    write_baseline: Optional[str] = None,
    show_plans: bool = False,
    emit_plans: Optional[str] = None,
) -> int:
    from repro.apps import BUILTIN_APPS

    root = repo_root()
    report = Report()
    supp = SuppressionIndex()

    wanted: Optional[List[str]] = None
    if rules:
        wanted = sorted({r.strip() for r in rules.split(",") if r.strip()})
        unknown = [r for r in wanted if r not in RULES]
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(unknown)}; see "
                "docs/VERIFY.md for the rule tables",
                file=sys.stderr,
            )
            return 2

    if app == "netchain":
        apps = {}
    elif app is not None:
        spec = BUILTIN_APPS.get(app)
        if spec is None:
            print(
                f"unknown app {app!r}; builtin apps: "
                f"{', '.join(sorted(BUILTIN_APPS))}, netchain",
                file=sys.stderr,
            )
            return 2
        apps = {app: spec}
    elif all_targets or not paths:
        apps = dict(BUILTIN_APPS)
    else:
        apps = {}

    lint_paths = list(paths or [])
    if all_targets or not paths:
        lint_paths.append(os.path.join(source_root(), "repro"))

    plans: Dict[str, dict] = {}
    for name in sorted(apps):
        spec = apps[name]
        verify_app(
            spec["factory"],
            label=name,
            structures=spec.get("structures"),
            report=report,
            suppressions=supp,
            root=root,
        )
        _, plan = verify_partition_app(
            spec["factory"],
            label=name,
            structures=spec.get("structures"),
            report=report,
            suppressions=supp,
            root=root,
        )
        plans[name] = plan
    # The NetChain in-switch store is a deployable switch program too:
    # verify its ToR pipeline whenever the full app registry is verified.
    if app == "netchain" or (app is None and (all_targets or not paths)):
        verify_netchain(report=report, suppressions=supp, root=root)
    if lint_paths:
        verify_determinism(
            lint_paths, report=report, suppressions=supp, root=root
        )
        verify_telemetry(
            lint_paths, report=report, suppressions=supp, root=root
        )
        verify_fastpath(
            lint_paths, report=report, suppressions=supp, root=root
        )
        verify_shard_hazards(
            lint_paths, report=report, suppressions=supp, root=root
        )

    if emit_plans:
        os.makedirs(emit_plans, exist_ok=True)
        for name in sorted(plans):
            path = os.path.join(emit_plans, f"{name}.json")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(plan_json(plans[name]))
        print(
            f"wrote {len(plans)} shard plan(s) to {emit_plans}",
            file=sys.stderr,
        )
    else:
        _check_plan_drift(plans, report, supp, root)

    if wanted is not None:
        report.finalize_suppressions(supp, rules=tuple(wanted))
        keep = set(wanted) | {"QA001", "QA002"}
        report.diagnostics = [
            d for d in report.diagnostics if d.rule in keep
        ]
    else:
        report.finalize_suppressions(supp)

    if write_baseline:
        doc = {"format": 1, "rule_counts": rule_counts(report)}
        with open(write_baseline, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote verify baseline to {write_baseline}", file=sys.stderr)

    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"wrote verify report to {out}", file=sys.stderr)
    if show_plans and plans:
        for name in sorted(plans):
            print(render_plan(plans[name]))
            print()
    print(report.to_json() if as_json else report.render())

    if baseline:
        try:
            with open(baseline, encoding="utf-8") as fh:
                base_counts = json.load(fh).get("rule_counts", {})
        except OSError as exc:
            print(f"cannot read baseline {baseline}: {exc}", file=sys.stderr)
            return 2
        regressions = baseline_regressions(rule_counts(report), base_counts)
        if regressions:
            for rule, info in regressions.items():
                print(
                    f"baseline regression: {rule} has {info['count']} "
                    f"active finding(s), baseline allows {info['baseline']}",
                    file=sys.stderr,
                )
            return 1
        print(
            "baseline check passed: no rule above its baselined count",
            file=sys.stderr,
        )
        return 0
    return report.exit_code(strict=strict)

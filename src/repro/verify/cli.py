"""The ``repro.tools verify`` entry point.

Runs the three passes with one shared suppression index and one report,
so a single ``# repro: noqa[...]`` grammar covers all rule families and
unused suppressions are judged once, after every pass has spoken.

Tree lints (determinism, telemetry) take file/directory paths; the
pipeline verifier needs *deployed programs*, so it runs over the builtin
application registry (``--all`` / ``--app NAME``), deploying each app on
a fresh simulated testbed exactly as the experiments do and analyzing
the resulting switch.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

from repro.verify.determinism_pass import verify_determinism
from repro.verify.diagnostics import Report, SuppressionIndex
from repro.verify.fastpath_pass import verify_fastpath
from repro.verify.pipeline_pass import verify_app, verify_netchain
from repro.verify.telemetry_pass import verify_telemetry


def source_root() -> str:
    """The ``src/`` directory this installation runs from."""
    here = os.path.dirname(os.path.abspath(__file__))  # src/repro/verify
    return os.path.normpath(os.path.join(here, "..", ".."))


def repo_root() -> str:
    """Diagnostics are reported relative to this directory."""
    return os.path.normpath(os.path.join(source_root(), ".."))


def run_verify(
    paths: Optional[List[str]] = None,
    all_targets: bool = False,
    app: Optional[str] = None,
    as_json: bool = False,
    out: Optional[str] = None,
    strict: bool = False,
) -> int:
    from repro.apps import BUILTIN_APPS

    root = repo_root()
    report = Report()
    supp = SuppressionIndex()

    if app == "netchain":
        apps = {}
    elif app is not None:
        spec = BUILTIN_APPS.get(app)
        if spec is None:
            print(
                f"unknown app {app!r}; builtin apps: "
                f"{', '.join(sorted(BUILTIN_APPS))}, netchain",
                file=sys.stderr,
            )
            return 2
        apps = {app: spec}
    elif all_targets or not paths:
        apps = dict(BUILTIN_APPS)
    else:
        apps = {}

    lint_paths = list(paths or [])
    if all_targets or not paths:
        lint_paths.append(os.path.join(source_root(), "repro"))

    for name in sorted(apps):
        spec = apps[name]
        verify_app(
            spec["factory"],
            label=name,
            structures=spec.get("structures"),
            report=report,
            suppressions=supp,
            root=root,
        )
    # The NetChain in-switch store is a deployable switch program too:
    # verify its ToR pipeline whenever the full app registry is verified.
    if app == "netchain" or (app is None and (all_targets or not paths)):
        verify_netchain(report=report, suppressions=supp, root=root)
    if lint_paths:
        verify_determinism(
            lint_paths, report=report, suppressions=supp, root=root
        )
        verify_telemetry(
            lint_paths, report=report, suppressions=supp, root=root
        )
        verify_fastpath(
            lint_paths, report=report, suppressions=supp, root=root
        )
    report.finalize_suppressions(supp)

    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"wrote verify report to {out}", file=sys.stderr)
    print(report.to_json() if as_json else report.render())
    return report.exit_code(strict=strict)

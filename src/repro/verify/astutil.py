"""Shared AST plumbing for the verifier passes."""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Optional, Tuple


class SourceFile:
    """One parsed source file: path, text, AST."""

    def __init__(self, path: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.text = text
        self.tree = tree


_CACHE: Dict[str, Optional[SourceFile]] = {}


def load(path: str) -> Optional[SourceFile]:
    """Parse ``path`` (cached); None when unreadable or syntactically bad."""
    path = os.path.abspath(path)
    if path in _CACHE:
        return _CACHE[path]
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        tree = ast.parse(text, filename=path)
        sf: Optional[SourceFile] = SourceFile(path, text, tree)
    except (OSError, SyntaxError):
        sf = None
    _CACHE[path] = sf
    return sf


def relpath(path: str, root: Optional[str] = None) -> str:
    """Repo-relative path for diagnostics (falls back to the input)."""
    base = root or os.getcwd()
    try:
        rel = os.path.relpath(path, base)
    except ValueError:  # pragma: no cover - windows drive mismatch
        return path
    return path if rel.startswith("..") else rel


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ['a', 'b', 'c']; None for anything fancier."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def iter_py_files(root: str) -> Iterator[str]:
    """All ``.py`` files under ``root`` (or ``root`` itself), sorted."""
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__" and not d.startswith(".")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


class ImportTable:
    """What top-level module names mean inside one file.

    Tracks ``import x``/``import x as y``/``from x import y`` so a lint
    can tell that ``perf_counter()`` is ``time.perf_counter`` or that
    ``tt.PACKET_SEND`` refers to :mod:`repro.telemetry.trace`.
    """

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> dotted module path ("tt" -> "repro.telemetry.trace")
        self.modules: Dict[str, str] = {}
        #: local name -> (module path, original name) for from-imports
        self.names: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        node.module, alias.name
                    )

    def resolves_to(self, node: ast.AST, module: str, name: str) -> bool:
        """Does this expression denote ``module.name``?"""
        chain = attr_chain(node)
        if chain is None:
            return False
        if len(chain) >= 2:
            mod = self.modules.get(chain[0])
            # Match both "time" and dotted tails ("datetime.datetime.now").
            if mod is not None:
                dotted = ".".join([mod] + chain[1:-1])
                if dotted.endswith(module) and chain[-1] == name:
                    return True
            from_mod = self.names.get(chain[0])
            if from_mod is not None and len(chain) == 2:
                full = f"{from_mod[0]}.{from_mod[1]}"
                if full.endswith(module) and chain[-1] == name:
                    return True
        elif len(chain) == 1:
            from_mod = self.names.get(chain[0])
            if (
                from_mod is not None
                and from_mod[0].endswith(module)
                and from_mod[1] == name
            ):
                return True
        return False

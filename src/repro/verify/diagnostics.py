"""The diagnostic engine shared by all three verifier passes.

Diagnostics carry a stable rule id, a severity, a source location
(``file:line``), and a logical site (``block=... app=...`` — the same
format the runtime :class:`~repro.switch.pipeline.RegisterAccessError`
cites, so a static RP101 and its runtime twin point at the same place).

Suppressions are source comments::

    something_flagged()  # repro: noqa[RD201] -- why this is safe

The rule list in brackets names what is being waived; the text after
``--`` is the mandatory justification (a bare noqa is itself a QA001
diagnostic). Suppressed diagnostics stay in the report, marked, so the
JSON artifact shows what was waived and why.
"""

from __future__ import annotations

import enum
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: Matches a ``repro: noqa[RP101,RD201] -- justification`` comment
#: (justification optional in the grammar; its absence is a QA001
#: diagnostic, not a parse error).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Z0-9,\s]+)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


def _comments(source: str) -> List[Tuple[int, str]]:
    """(line, text) of every real comment token — docstrings that merely
    *mention* the noqa syntax are not suppressions. Falls back to a
    per-line scan when the file does not tokenize."""
    try:
        return [
            (tok.start[0], tok.string)
            for tok in tokenize.generate_tokens(io.StringIO(source).readline)
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return list(enumerate(source.splitlines(), start=1))


@dataclass
class Suppression:
    """One ``# repro: noqa[...]`` comment found in a source file."""

    file: str
    line: int
    rules: Tuple[str, ...]
    justification: Optional[str]
    used: bool = False


class SuppressionIndex:
    """All noqa comments of a file set, queried per (file, line, rule)."""

    def __init__(self) -> None:
        self._by_file: Dict[str, List[Suppression]] = {}
        self._scanned: Set[str] = set()

    def scan(self, path: str, source: Optional[str] = None) -> None:
        if path in self._scanned:
            return
        self._scanned.add(path)
        if source is None:
            try:
                with open(path, encoding="utf-8") as fh:
                    source = fh.read()
            except OSError:
                return
        entries = self._by_file.setdefault(path, [])
        for lineno, text in _comments(source):
            m = _NOQA_RE.search(text)
            if m is None:
                continue
            rules = tuple(
                r.strip() for r in m.group("rules").split(",") if r.strip()
            )
            entries.append(
                Suppression(path, lineno, rules, m.group("why"))
            )

    def match(self, path: str, line: int, rule_id: str) -> Optional[Suppression]:
        for supp in self._by_file.get(path, ()):
            if supp.line == line and rule_id in supp.rules:
                supp.used = True
                return supp
        return None

    def all(self) -> List[Suppression]:
        out: List[Suppression] = []
        for entries in self._by_file.values():
            out.extend(entries)
        return out


@dataclass
class Diagnostic:
    """One finding: a rule violation at a source location."""

    rule: str
    severity: Severity
    message: str
    file: str
    line: int
    #: Logical site in the runtime-error format, e.g.
    #: ``block=redplane(nat)`` — empty for tree lints.
    site: str = ""
    suppressed: bool = False
    justification: Optional[str] = None

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def render(self) -> str:
        sev = self.severity.value.upper()
        tag = " (suppressed)" if self.suppressed else ""
        site = f" [{self.site}]" if self.site else ""
        return f"{self.location}: {sev} {self.rule}{tag}: {self.message}{site}"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "suppressed": self.suppressed,
        }
        if self.site:
            out["site"] = self.site
        if self.justification is not None:
            out["justification"] = self.justification
        return out


@dataclass
class Report:
    """The outcome of one or more verifier passes."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Pass name -> summary string (what was analyzed).
    analyzed: Dict[str, str] = field(default_factory=dict)

    def add(self, diag: Diagnostic,
            suppressions: Optional[SuppressionIndex] = None) -> Diagnostic:
        """File a diagnostic, applying any matching suppression."""
        if suppressions is not None:
            supp = suppressions.match(diag.file, diag.line, diag.rule)
            if supp is not None:
                diag.suppressed = True
                diag.justification = supp.justification
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "Report") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.analyzed.update(other.analyzed)

    def finalize_suppressions(
        self,
        suppressions: SuppressionIndex,
        rules: Optional[Tuple[str, ...]] = None,
    ) -> None:
        """File QA001/QA002 for bad or unused noqa comments.

        Call once, after every pass that shares ``suppressions`` has
        produced every diagnostic its file set can yield. ``rules``
        restricts the unused-suppression check (QA002) to suppressions
        of rule ids with one of the given prefixes (e.g. ``("RT",)``
        when only the telemetry pass ran): a pass that merely *scanned*
        a file cannot know whether another pass's suppression in it is
        earning its keep, so standalone pass runs must not flag
        suppressions outside their own rule family. QA001 (used but
        unjustified) needs no such filter — a used suppression matched
        a diagnostic some running pass produced.
        """
        for supp in suppressions.all():
            if supp.used and not supp.justification:
                self.diagnostics.append(Diagnostic(
                    "QA001", Severity.ERROR,
                    f"suppression of {','.join(supp.rules)} has no "
                    "justification (add '-- why' after the bracket)",
                    supp.file, supp.line,
                ))
            elif not supp.used:
                if rules is not None and not any(
                    r.startswith(rules) for r in supp.rules
                ):
                    continue
                self.diagnostics.append(Diagnostic(
                    "QA002", Severity.WARNING,
                    f"suppression of {','.join(supp.rules)} matched no "
                    "diagnostic; remove it",
                    supp.file, supp.line,
                ))

    # -- querying -------------------------------------------------------------

    def active(self, severity: Optional[Severity] = None) -> List[Diagnostic]:
        """Unsuppressed diagnostics, optionally filtered by severity."""
        return [
            d for d in self.diagnostics
            if not d.suppressed
            and (severity is None or d.severity is severity)
        ]

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def exit_code(self, strict: bool = False) -> int:
        """0 iff no unsuppressed error (with ``strict``: nor warning)."""
        if self.active(Severity.ERROR):
            return 1
        if strict and self.active(Severity.WARNING):
            return 1
        return 0

    # -- rendering ------------------------------------------------------------

    def sorted_diagnostics(self) -> List[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.file, d.line, d.rule, d.message),
        )

    def render(self) -> str:
        lines: List[str] = []
        for name in sorted(self.analyzed):
            lines.append(f"-- {name}: {self.analyzed[name]}")
        for diag in self.sorted_diagnostics():
            lines.append(diag.render())
        errors = len(self.active(Severity.ERROR))
        warnings = len(self.active(Severity.WARNING))
        suppressed = sum(1 for d in self.diagnostics if d.suppressed)
        lines.append(
            f"{errors} error(s), {warnings} warning(s), "
            f"{suppressed} suppressed"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        doc = {
            "analyzed": dict(sorted(self.analyzed.items())),
            "diagnostics": [d.to_dict() for d in self.sorted_diagnostics()],
            "summary": {
                "errors": len(self.active(Severity.ERROR)),
                "warnings": len(self.active(Severity.WARNING)),
                "suppressed": sum(
                    1 for d in self.diagnostics if d.suppressed
                ),
            },
        }
        return json.dumps(doc, indent=2, sort_keys=True)

"""Pass 1: the pipeline verifier.

Walks a *configured* :class:`~repro.switch.asic.SwitchASIC` program the
way the Tofino compiler walks a P4 program: every control block's
``process`` method (and every mirror-session pass handler) is summarized
symbolically from its AST, with attribute chains resolved against the
live block instances, producing the set of per-packet *paths* — each a
multiset of register-array accesses plus a verdict (stop the pipeline /
keep going). Paths compose across blocks exactly like
:meth:`~repro.switch.pipeline.Pipeline.run` composes them (a block
returning ``False`` ends the packet's traversal), so a double access
split across two blocks is found just like one inside a single method.

What makes this tractable is the codebase's own discipline, which the
pass both exploits and enforces:

* data-plane state is only touched through
  ``RegisterArray.access/read/write(ctx, ...)`` — the ``ctx`` argument
  *is* the packet, so only calls that receive the caller's ``ctx`` as a
  bare name can touch registers, and only those calls are inlined;
* loops over *collections of arrays* (``zip(self.state_regs, ...)``,
  ``enumerate(rows)``) touch each member once — modeled with
  member-scoped access keys — while a loop re-touching one fixed array
  is exactly the per-packet loop P4 cannot express (RP102).

On top of the path summaries the pass checks stage/ALU budgets (RP110),
mirror-session wiring (RP120–RP123) and the resource declarations
against both :data:`repro.switch.resources.CAPACITY` and the register
arrays the blocks actually instantiate (RP130–RP133).
"""

from __future__ import annotations

import ast
import math
import sys
from types import FunctionType
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.snapshot import LazySnapshotArray
from repro.switch.asic import SwitchASIC
from repro.switch.mirror import MirrorSession
from repro.switch.pipeline import describe_block
from repro.switch.registers import PairedRegisterArray, RegisterArray
from repro.switch.resources import CAPACITY
from repro.switch.tables import MatchTable
from repro.verify import astutil
from repro.verify.diagnostics import Diagnostic, Report, SuppressionIndex
from repro.verify.rules import RULES

#: Tofino-1 geometry (Table 2): 12 match-action stages, 4 stateful ALUs each.
STAGES = 12
ALUS_PER_STAGE = int(CAPACITY["meter_alus"] // STAGES)

_ACCESS_METHODS = ("access", "read", "write")
#: Control-plane register operations: legal from timers/CP handlers, an
#: RP150 error when reachable on a per-packet path.
_CP_METHODS = ("cp_read", "cp_write")
_REGISTER_TYPES = (RegisterArray, PairedRegisterArray)
#: Paths kept per function summary / per composition step. Beyond this the
#: analysis stays sound for RP101 (paths are only merged, never dropped
#: silently — see _dedupe) but could in principle lose precision; the cap
#: is far above anything the codebase produces.
_PATH_CAP = 256


class _Ref:
    """A resolved expression: a concrete live object, or one *member* of a
    collection of such objects (``self.state_regs[i]`` for unknown i).

    ``key`` is the access-key prefix for register arrays reached through
    this reference; ``width`` is how many physical arrays the reference
    stands for (1 for concrete objects and single-element selections,
    ``len(collection)`` per iterated collection level).
    """

    __slots__ = ("exemplar", "key", "width", "member")

    def __init__(self, exemplar: object, key: Tuple, width: int = 1,
                 member: bool = False) -> None:
        self.exemplar = exemplar
        self.key = key
        self.width = width
        self.member = member


def _concrete(obj: object) -> _Ref:
    return _Ref(obj, ("obj", id(obj)), 1, False)


class _Frame:
    """Per-function analysis state."""

    __slots__ = ("env", "ctx", "file", "block", "loops")

    def __init__(self, file: str, env: Dict[str, Optional[_Ref]],
                 ctx: Optional[str], block: str) -> None:
        self.env = env
        self.ctx = ctx
        self.file = file
        self.block = block
        #: Stack of active loops; each entry is the tuple of member-key
        #: prefixes bound by that loop (empty tuple: loop binds no
        #: collection of stateful objects).
        self.loops: List[Tuple[Tuple, ...]] = []


# -- path / effect plumbing ---------------------------------------------------
#
# A *path* is one way through a function: {"c": {access_key: count},
# "ret": "T"|"F"|"N"|"U"|"R", "term": bool}.  An *effect* is the same for an
# expression: {"c": counts, "v": value}.


def _new_path() -> Dict:
    return {"c": {}, "ret": None, "term": False}


def _fork(p: Dict) -> Dict:
    return {"c": dict(p["c"]), "ret": p["ret"], "term": p["term"]}


def _merge(into: Dict, counts: Dict) -> None:
    for k, v in counts.items():
        into[k] = into.get(k, 0) + v


def _freeze(counts: Dict) -> Tuple:
    return tuple(sorted(counts.items(), key=repr))


def _dedupe(paths: List[Dict]) -> List[Dict]:
    seen: Set[Tuple] = set()
    out: List[Dict] = []
    for p in paths:
        sig = (_freeze(p["c"]), p["ret"], p["term"])
        if sig not in seen:
            seen.add(sig)
            out.append(p)
        if len(out) >= _PATH_CAP:
            break
    return out


def _dedupe_counts(counts_list: List[Dict]) -> List[Dict]:
    seen: Set[Tuple] = set()
    out: List[Dict] = []
    for c in counts_list:
        sig = _freeze(c)
        if sig not in seen:
            seen.add(sig)
            out.append(c)
        if len(out) >= _PATH_CAP:
            break
    return out


def _combine(pre: List[Dict], post: List[Dict]) -> List[Dict]:
    """Cartesian sequencing of two effect lists; value taken from ``post``."""
    out: List[Dict] = []
    seen: Set[Tuple] = set()
    for a in pre:
        for b in post:
            c = dict(a["c"])
            _merge(c, b["c"])
            sig = (_freeze(c), b["v"])
            if sig not in seen:
                seen.add(sig)
                out.append({"c": c, "v": b["v"]})
            if len(out) >= _PATH_CAP:
                return out
    return out


def _const_value(node: Optional[ast.AST]) -> str:
    if isinstance(node, ast.Constant):
        if node.value is True:
            return "T"
        if node.value is False:
            return "F"
        if node.value is None:
            return "N"
    return "U"


def _is_pipelinecontext_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    return (isinstance(fn, ast.Name) and fn.id == "PipelineContext") or (
        isinstance(fn, ast.Attribute) and fn.attr == "PipelineContext"
    )


class _PipelineAnalyzer:
    """Analyzes one configured SwitchASIC."""

    def __init__(self, asic: SwitchASIC, report: Report,
                 suppressions: SuppressionIndex,
                 root: Optional[str] = None) -> None:
        self.asic = asic
        self.report = report
        self.supp = suppressions
        self.root = root
        # Access-key registry: display name, physical width, first site.
        self.key_names: Dict[Tuple, str] = {}
        self.key_widths: Dict[Tuple, int] = {}
        self.key_sites: Dict[Tuple, Tuple[str, int, str]] = {}
        self._summaries: Dict[Tuple, List[Dict]] = {}
        self._active: Set[Tuple] = set()
        self._defs: Dict[str, Dict[Tuple[str, int], ast.AST]] = {}
        self._once: Set[Tuple] = set()
        self._class_sites: Dict[type, Tuple[str, int]] = {}
        # Registers owned by in-switch store backends (RP150): serving a
        # packet from these via cp_read/cp_write would dodge the pipeline
        # accounting. The engine's OWN registers legitimately mix access()
        # with documented cp_* modeling shortcuts, so the rule is scoped
        # to store-backend state only.
        self._store_reg_ids: Set[int] = set()
        from repro.statestore.backend import StateStoreBackend

        for block in asic.pipeline.blocks:
            for value in vars(block).values():
                if isinstance(value, StateStoreBackend):
                    for attr in vars(value).values():
                        if isinstance(attr, _REGISTER_TYPES):
                            self._store_reg_ids.add(id(attr))
                        elif isinstance(attr, (list, tuple)):
                            self._store_reg_ids.update(
                                id(item) for item in attr
                                if isinstance(item, _REGISTER_TYPES)
                            )

    # -- diagnostics ----------------------------------------------------------

    def _rel(self, file: str) -> str:
        return astutil.relpath(file, self.root)

    def _diag(self, rule_id: str, message: str, file: str, line: int,
              site: str = "") -> None:
        r = RULES[rule_id]
        rel = self._rel(file)
        sf = astutil.load(file)
        self.supp.scan(rel, source=sf.text if sf else "")
        self.report.add(
            Diagnostic(r.id, r.severity, message, rel, line, site), self.supp
        )

    def _diag_once(self, rule_id: str, message: str, file: str, line: int,
                   site: str = "", dedupe: Optional[Tuple] = None) -> None:
        key = dedupe if dedupe is not None else (rule_id, file, line)
        if key in self._once:
            return
        self._once.add(key)
        self._diag(rule_id, message, file, line, site)

    # -- source lookup --------------------------------------------------------

    def _find_def(self, code, name: str):
        """The def node of a live function, in its original file (native
        line numbers, so diagnostics and noqa comments line up)."""
        file = code.co_filename
        index = self._defs.get(file)
        if index is None:
            index = {}
            sf = astutil.load(file)
            if sf is not None:
                # Scan suppressions for every file whose code we walk, so
                # unused noqa comments surface as QA002 at finalize time.
                self.supp.scan(self._rel(file), source=sf.text)
                for n in ast.walk(sf.tree):
                    if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        index[(n.name, n.lineno)] = n
                        if n.decorator_list:
                            index[(n.name, n.decorator_list[0].lineno)] = n
            self._defs[file] = index
        node = index.get((name, code.co_firstlineno))
        sf = astutil.load(file)
        return node, sf

    def _class_site(self, obj: object) -> Tuple[str, int]:
        cls = type(obj)
        hit = self._class_sites.get(cls)
        if hit is not None:
            return hit
        site = ("<unknown>", 1)
        mod = sys.modules.get(cls.__module__)
        file = getattr(mod, "__file__", None)
        if file:
            sf = astutil.load(file)
            if sf is not None:
                site = (sf.path, 1)
                for n in ast.walk(sf.tree):
                    if isinstance(n, ast.ClassDef) and n.name == cls.__name__:
                        site = (sf.path, n.lineno)
                        break
        self._class_sites[cls] = site
        return site

    # -- reference resolution -------------------------------------------------

    def _resolve(self, node: ast.AST, frame: _Frame) -> Optional[_Ref]:
        if isinstance(node, ast.Name):
            return frame.env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value, frame)
            if base is None:
                return None
            try:
                obj = getattr(base.exemplar, node.attr)
            except Exception:
                return None
            if base.member:
                return _Ref(obj, base.key + ("." + node.attr,),
                            base.width, True)
            return _concrete(obj)
        if isinstance(node, ast.Subscript):
            base = self._resolve(node.value, frame)
            if base is None:
                return None
            container = base.exemplar
            sl = node.slice
            if isinstance(sl, ast.Constant) and not base.member:
                try:
                    return _concrete(container[sl.value])  # type: ignore[index]
                except Exception:
                    return None
            member = _first_member(container)
            if member is None:
                return None
            # Subscripting *selects* one member per packet: width unchanged.
            if base.member:
                return _Ref(member, base.key + ("[]",), base.width, True)
            return _Ref(member, ("sub", id(container)), base.width, True)
        return None

    def _iter_members(self, ref: Optional[_Ref]):
        """(member ref, statically-empty?) for iterating a resolved
        collection; (None, False) when the collection is opaque."""
        if ref is None:
            return None, False
        container = ref.exemplar
        if isinstance(container, (list, tuple)):
            if not container:
                return None, True
            if ref.member:
                return _Ref(container[0], ref.key + ("[*]",),
                            ref.width * len(container), True), False
            return _Ref(container[0], ("iter", id(container)),
                        len(container), True), False
        return None, False

    # -- access events --------------------------------------------------------

    def _access_event(self, ref: _Ref, node: ast.AST, frame: _Frame) -> Tuple:
        key = ref.key
        if key not in self.key_names:
            name = getattr(ref.exemplar, "name", type(ref.exemplar).__name__)
            if ref.member and ref.width > 1:
                name = f"{name}[*]"
            self.key_names[key] = name
            self.key_widths[key] = ref.width
            self.key_sites[key] = (frame.file, node.lineno, frame.block)
        if frame.loops:
            prefixes = frame.loops[-1]
            scoped = any(key[: len(p)] == p for p in prefixes)
            if not scoped:
                self._diag_once(
                    "RP102",
                    f"register array {self.key_names[key]!r} accessed inside "
                    "a per-packet loop: every iteration is another "
                    "stateful-ALU access to the same array (P4 has no "
                    "per-packet loops)",
                    frame.file, node.lineno,
                    site=f"block={frame.block}",
                    dedupe=("RP102", key),
                )
        return key

    def _check_loop_worst(self, worst: Dict, prefixes: Tuple,
                          frame: _Frame, node: ast.AST) -> None:
        """RP102 for fixed-array accesses that reached the loop body only
        through an inlined callee (the per-access check can't see them)."""
        for key in worst:
            if not any(key[: len(p)] == p for p in prefixes):
                self._diag_once(
                    "RP102",
                    f"register array {self.key_names[key]!r} accessed on "
                    "every iteration of a per-packet loop (via a call made "
                    "inside the loop body)",
                    frame.file, node.lineno,
                    site=f"block={frame.block}",
                    dedupe=("RP102", key),
                )

    # -- expression evaluation ------------------------------------------------

    def _eval(self, node: Optional[ast.AST], frame: _Frame) -> List[Dict]:
        if node is None or isinstance(
            node, (ast.Constant, ast.Name, ast.Lambda)
        ):
            return [{"c": {}, "v": _const_value(node)}]
        if isinstance(node, ast.Call):
            return self._eval_call(node, frame)
        if isinstance(node, ast.IfExp):
            pre = self._eval(node.test, frame)
            branches = self._eval(node.body, frame) + self._eval(
                node.orelse, frame
            )
            return _combine(pre, branches)
        if isinstance(node, ast.BoolOp):
            effs = self._eval(node.values[0], frame)
            for operand in node.values[1:]:
                nxt = self._eval(operand, frame)
                effs = _dedupe_effects(effs + _combine(effs, nxt))
            return effs
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comp(node, frame)
        effs: List[Dict] = [{"c": {}, "v": "U"}]
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                effs = _combine(effs, self._eval(child, frame))
            elif isinstance(child, ast.keyword):
                effs = _combine(effs, self._eval(child.value, frame))
        return effs

    def _call_passes_ctx(self, node: ast.Call, frame: _Frame) -> bool:
        if frame.ctx is None:
            return False
        for a in node.args:
            if isinstance(a, ast.Name) and a.id == frame.ctx:
                return True
        for kw in node.keywords:
            if isinstance(kw.value, ast.Name) and kw.value.id == frame.ctx:
                return True
        return False

    def _map_ctx_param(self, node: ast.Call, fn: FunctionType,
                       frame: _Frame) -> Optional[str]:
        code = fn.__code__
        params = code.co_varnames[: code.co_argcount]
        for i, a in enumerate(node.args):
            if isinstance(a, ast.Name) and a.id == frame.ctx:
                if i + 1 < len(params):
                    return params[i + 1]  # +1: self
                return None
        for kw in node.keywords:
            if isinstance(kw.value, ast.Name) and kw.value.id == frame.ctx:
                return kw.arg
        return None

    def _eval_call(self, node: ast.Call, frame: _Frame) -> List[Dict]:
        effs: List[Dict] = [{"c": {}, "v": "U"}]
        if isinstance(node.func, ast.Attribute) and astutil.attr_chain(
            node.func
        ) is None:
            effs = _combine(effs, self._eval(node.func.value, frame))
        for a in node.args:
            if isinstance(a, ast.Starred):
                a = a.value
            effs = _combine(effs, self._eval(a, frame))
        for kw in node.keywords:
            effs = _combine(effs, self._eval(kw.value, frame))

        if isinstance(node.func, ast.Attribute):
            base_node = node.func.value
            method = node.func.attr
            # ctx.emit / ctx.consume / ... — context bookkeeping, stateless.
            if (
                frame.ctx is not None
                and isinstance(base_node, ast.Name)
                and base_node.id == frame.ctx
            ):
                return effs
            base_ref = self._resolve(base_node, frame)
            if (
                base_ref is not None
                and isinstance(base_ref.exemplar, _REGISTER_TYPES)
                and method in _ACCESS_METHODS
                and self._call_passes_ctx(node, frame)
            ):
                key = self._access_event(base_ref, node, frame)
                out = []
                for e in effs:
                    c = dict(e["c"])
                    c[key] = c.get(key, 0) + 1
                    out.append({"c": c, "v": "U"})
                return out
            if (
                base_ref is not None
                and isinstance(base_ref.exemplar, _REGISTER_TYPES)
                and method in _CP_METHODS
                and id(base_ref.exemplar) in self._store_reg_ids
            ):
                self._diag_once(
                    "RP150",
                    f"store-backend register operation "
                    f"'{ast.unparse(node.func)}' is reachable on a "
                    "per-packet path; serve packets through access(ctx, "
                    "...) so the pipeline accounts the stateful-ALU use",
                    frame.file, node.lineno, site=f"block={frame.block}",
                )
                return effs
            if base_ref is not None and isinstance(
                base_ref.exemplar, MirrorSession
            ):
                return effs
            if self._call_passes_ctx(node, frame):
                if base_ref is None:
                    self._diag_once(
                        "RP103",
                        "cannot statically resolve the receiver of "
                        f"'{ast.unparse(node.func)}', which is passed the "
                        "packet context: register accesses inside it are "
                        "unverifiable",
                        frame.file, node.lineno, site=f"block={frame.block}",
                    )
                    return effs
                fn = getattr(type(base_ref.exemplar), method, None)
                fn = getattr(fn, "__func__", fn)
                if not isinstance(fn, FunctionType):
                    self._diag_once(
                        "RP103",
                        f"no analyzable source for ctx-carrying call "
                        f"'{ast.unparse(node.func)}'",
                        frame.file, node.lineno, site=f"block={frame.block}",
                    )
                    return effs
                ctx_param = self._map_ctx_param(node, fn, frame)
                self_ref = base_ref
                paths = self._summarize(
                    self_ref, fn, ctx_param, frame.block,
                    caller_site=(frame.file, node.lineno),
                )
                call_effs = [{"c": p["c"], "v": p["ret"]} for p in paths]
                return _combine(effs, call_effs)
            return effs
        if isinstance(node.func, ast.Name) and self._call_passes_ctx(
            node, frame
        ):
            self._diag_once(
                "RP103",
                f"packet context passed to free function "
                f"'{node.func.id}'; its register accesses are unverifiable",
                frame.file, node.lineno, site=f"block={frame.block}",
            )
        return effs

    def _eval_comp(self, node, frame: _Frame) -> List[Dict]:
        gen = node.generators[0]
        pre = self._eval(gen.iter, frame)
        prefixes, empty = self._bind_loop(gen.target, gen.iter, frame)
        if empty:
            return pre
        frame.loops.append(prefixes)
        inner: List[Dict] = [{"c": {}, "v": "U"}]
        for g in node.generators[1:]:
            inner = _combine(inner, self._eval(g.iter, frame))
        for g in node.generators:
            for cond in g.ifs:
                inner = _combine(inner, self._eval(cond, frame))
        if isinstance(node, ast.DictComp):
            inner = _combine(inner, self._eval(node.key, frame))
            inner = _combine(inner, self._eval(node.value, frame))
        else:
            inner = _combine(inner, self._eval(node.elt, frame))
        frame.loops.pop()
        worst: Dict = {}
        for e in inner:
            for k, v in e["c"].items():
                worst[k] = max(worst.get(k, 0), v)
        self._check_loop_worst(worst, prefixes, frame, node)
        return _combine(pre, [{"c": worst, "v": "U"}])

    # -- loop binding ---------------------------------------------------------

    def _bind_loop(self, target: ast.AST, iter_node: ast.AST,
                   frame: _Frame) -> Tuple[Tuple, bool]:
        empty = [False]

        def member_of(container_ref: Optional[_Ref]) -> Optional[_Ref]:
            m, e = self._iter_members(container_ref)
            if e:
                empty[0] = True
            return m

        tnodes: List[ast.AST] = (
            list(target.elts) if isinstance(target, ast.Tuple) else [target]
        )
        pairs: List[Tuple[ast.AST, Optional[_Ref]]] = []
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "zip"
        ):
            srcs = [self._resolve(a, frame) for a in iter_node.args]
            for t, s in zip(tnodes, srcs):
                pairs.append((t, member_of(s)))
        elif (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "enumerate"
            and iter_node.args
        ):
            src = self._resolve(iter_node.args[0], frame)
            if len(tnodes) == 2:
                pairs.append((tnodes[0], None))
                pairs.append((tnodes[1], member_of(src)))
            else:
                pairs.append((tnodes[0], None))
        elif (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr in ("values", "items")
            and not iter_node.args
        ):
            base = self._resolve(iter_node.func.value, frame)
            vals_ref: Optional[_Ref] = None
            if base is not None and isinstance(base.exemplar, dict):
                vals = list(base.exemplar.values())
                if not vals:
                    empty[0] = True
                elif base.member:
                    vals_ref = _Ref(vals[0], base.key + ("[*]",),
                                    base.width * len(vals), True)
                else:
                    vals_ref = _Ref(vals[0], ("iter", id(base.exemplar)),
                                    len(vals), True)
            if iter_node.func.attr == "items" and len(tnodes) == 2:
                pairs.append((tnodes[0], None))
                pairs.append((tnodes[1], vals_ref))
            else:
                pairs.append((tnodes[0], vals_ref))
        elif len(tnodes) == 1:
            pairs.append((tnodes[0], member_of(self._resolve(iter_node, frame))))
        else:
            pairs = [(t, None) for t in tnodes]

        for t, mref in pairs:
            if isinstance(t, ast.Name):
                frame.env[t.id] = mref
        prefixes = tuple(m.key for _, m in pairs if m is not None)
        return prefixes, empty[0]

    # -- statement walking ----------------------------------------------------

    def _apply(self, paths: List[Dict], effects: List[Dict]) -> List[Dict]:
        out = []
        for p in paths:
            for e in effects:
                q = _fork(p)
                _merge(q["c"], e["c"])
                out.append(q)
        return _dedupe(out)

    def _walk_body(self, stmts: Sequence[ast.stmt], paths: List[Dict],
                   frame: _Frame) -> List[Dict]:
        for stmt in stmts:
            live = [p for p in paths if not p["term"]]
            done = [p for p in paths if p["term"]]
            if not live:
                return paths
            paths = _dedupe(done + self._walk_stmt(stmt, live, frame))
        return paths

    def _walk_stmt(self, stmt: ast.stmt, live: List[Dict],
                   frame: _Frame) -> List[Dict]:
        if isinstance(stmt, ast.If):
            live = self._apply(live, self._eval(stmt.test, frame))
            body = self._walk_body(stmt.body, [_fork(p) for p in live], frame)
            orelse = self._walk_body(
                stmt.orelse, [_fork(p) for p in live], frame
            )
            return body + orelse
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                out = []
                for p in live:
                    q = _fork(p)
                    q["term"], q["ret"] = True, "N"
                    out.append(q)
                return out
            effs = self._eval(stmt.value, frame)
            const = _const_value(stmt.value)
            out = []
            for p in live:
                for e in effs:
                    q = _fork(p)
                    _merge(q["c"], e["c"])
                    q["term"] = True
                    q["ret"] = const if const != "U" else e["v"]
                    out.append(q)
            return out
        if isinstance(stmt, ast.Raise):
            live = self._apply(live, self._eval(stmt.exc, frame))
            for p in live:
                p["term"], p["ret"] = True, "R"
            return live
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return self._walk_assign(stmt, live, frame)
        if isinstance(stmt, ast.Expr):
            return self._apply(live, self._eval(stmt.value, frame))
        if isinstance(stmt, ast.For):
            return self._walk_for(stmt, live, frame)
        if isinstance(stmt, ast.While):
            return self._walk_while(stmt, live, frame)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                live = self._apply(live, self._eval(item.context_expr, frame))
            return self._walk_body(stmt.body, live, frame)
        if isinstance(stmt, ast.Try):
            body = self._walk_body(stmt.body, [_fork(p) for p in live], frame)
            out = list(body)
            for h in stmt.handlers:
                out += self._walk_body(
                    h.body, [_fork(p) for p in live], frame
                )
            if stmt.orelse:
                survivors = [p for p in body if not p["term"]]
                out = [p for p in out if p["term"] or p not in survivors]
                out += self._walk_body(
                    stmt.orelse, [_fork(p) for p in survivors], frame
                )
            if stmt.finalbody:
                out = self._walk_body(stmt.finalbody, out, frame)
            return out
        if isinstance(stmt, ast.Assert):
            return self._apply(live, self._eval(stmt.test, frame))
        # Nested defs, classes, imports, pass, break/continue, del, global:
        # no data-plane effect at packet time.
        return live

    def _walk_assign(self, stmt, live: List[Dict],
                     frame: _Frame) -> List[Dict]:
        value = stmt.value
        if value is not None:
            live = self._apply(live, self._eval(value, frame))
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        if isinstance(stmt, ast.AugAssign) or value is None:
            return live
        for t in targets:
            if isinstance(t, ast.Name):
                if _is_pipelinecontext_call(value):
                    if frame.ctx is None:
                        frame.ctx = t.id
                    elif frame.ctx != t.id:
                        self._diag_once(
                            "RP103",
                            "a second packet context is created in this "
                            "function; the analysis tracks only the first",
                            frame.file, stmt.lineno,
                            site=f"block={frame.block}",
                        )
                else:
                    frame.env[t.id] = self._resolve(value, frame)
            elif isinstance(t, ast.Tuple) and isinstance(value, ast.Tuple):
                for tn, vn in zip(t.elts, value.elts):
                    if isinstance(tn, ast.Name):
                        frame.env[tn.id] = self._resolve(vn, frame)
            elif isinstance(t, ast.Tuple):
                for tn in t.elts:
                    if isinstance(tn, ast.Name):
                        frame.env[tn.id] = None
        return live

    def _loop_out(self, live: List[Dict], body: List[Dict], worst: Dict,
                  orelse: Sequence[ast.stmt], frame: _Frame) -> List[Dict]:
        out: List[Dict] = []
        for p in live:
            cont = _fork(p)
            _merge(cont["c"], worst)
            out.append(cont)
            for bp in body:
                if bp["term"]:
                    t = _fork(p)
                    _merge(t["c"], worst)
                    t["term"], t["ret"] = True, bp["ret"]
                    out.append(t)
        out = _dedupe(out)
        if orelse:
            survivors = [p for p in out if not p["term"]]
            finished = [p for p in out if p["term"]]
            return finished + self._walk_body(list(orelse), survivors, frame)
        return out

    def _walk_for(self, stmt: ast.For, live: List[Dict],
                  frame: _Frame) -> List[Dict]:
        live = self._apply(live, self._eval(stmt.iter, frame))
        prefixes, empty = self._bind_loop(stmt.target, stmt.iter, frame)
        if empty:
            if stmt.orelse:
                return self._walk_body(list(stmt.orelse), live, frame)
            return live
        frame.loops.append(prefixes)
        body = self._walk_body(list(stmt.body), [_new_path()], frame)
        frame.loops.pop()
        worst: Dict = {}
        for bp in body:
            for k, v in bp["c"].items():
                worst[k] = max(worst.get(k, 0), v)
        self._check_loop_worst(worst, prefixes, frame, stmt)
        return self._loop_out(live, body, worst, stmt.orelse, frame)

    def _walk_while(self, stmt: ast.While, live: List[Dict],
                    frame: _Frame) -> List[Dict]:
        live = self._apply(live, self._eval(stmt.test, frame))
        frame.loops.append(())
        body = self._walk_body(list(stmt.body), [_new_path()], frame)
        frame.loops.pop()
        worst: Dict = {}
        for bp in body:
            for k, v in bp["c"].items():
                worst[k] = max(worst.get(k, 0), v)
        self._check_loop_worst(worst, (), frame, stmt)
        return self._loop_out(live, body, worst, stmt.orelse, frame)

    # -- function summaries ---------------------------------------------------

    def _summarize(self, self_ref: Optional[_Ref], fn: FunctionType,
                   ctx_param: Optional[str], block_desc: str,
                   caller_site: Optional[Tuple[str, int]] = None
                   ) -> List[Dict]:
        code = fn.__code__
        key = (id(code), self_ref.key if self_ref else None, ctx_param)
        hit = self._summaries.get(key)
        if hit is not None:
            return hit
        if key in self._active:  # recursion: unknown effect, stop unrolling
            return [{"c": {}, "ret": "U", "term": True}]
        self._active.add(key)
        try:
            node, sf = self._find_def(code, fn.__name__)
            if node is None or sf is None:
                where = caller_site or (code.co_filename, code.co_firstlineno)
                self._diag_once(
                    "RP103",
                    f"no analyzable source for '{fn.__qualname__}'",
                    where[0], where[1], site=f"block={block_desc}",
                )
                result = [{"c": {}, "ret": "U", "term": True}]
                self._summaries[key] = result
                return result
            params = [a.arg for a in node.args.args]
            env: Dict[str, Optional[_Ref]] = {}
            if self_ref is not None and params:
                env[params[0]] = self_ref
            frame = _Frame(sf.path, env, ctx_param, block_desc)
            paths = self._walk_body(list(node.body), [_new_path()], frame)
            for p in paths:
                if not p["term"]:
                    p["term"], p["ret"] = True, "N"
            paths = _dedupe(paths)
            self._summaries[key] = paths
            return paths
        finally:
            self._active.discard(key)

    def _entry_paths(self, block: object) -> List[Dict]:
        fn = getattr(type(block), "process", None)
        fn = getattr(fn, "__func__", fn)
        if not isinstance(fn, FunctionType):
            file, line = self._class_site(block)
            self._diag_once(
                "RP103",
                f"control block {describe_block(block)!r} has no analyzable "
                "process() method",
                file, line,
            )
            return [{"c": {}, "ret": "U", "term": True}]
        code = fn.__code__
        ctx_param = (
            code.co_varnames[1] if code.co_argcount >= 2 else None
        )
        return self._summarize(
            _concrete(block), fn, ctx_param, describe_block(block)
        )

    def _handler_paths(self, handler) -> Tuple[List[Dict], Optional[Tuple[str, int]]]:
        """Path summary of a mirror pass handler + its def site."""
        self_obj = getattr(handler, "__self__", None)
        fn = getattr(handler, "__func__", handler)
        if not isinstance(fn, FunctionType):
            return [{"c": {}, "ret": "U", "term": True}], None
        desc = (
            f"handler:{describe_block(self_obj)}"
            if self_obj is not None
            else f"handler:{fn.__qualname__}"
        )
        self_ref = _concrete(self_obj) if self_obj is not None else None
        paths = self._summarize(self_ref, fn, None, desc)
        return paths, (fn.__code__.co_filename, fn.__code__.co_firstlineno)

    # -- mirror reachability --------------------------------------------------

    def _mirror_reach(self, self_obj: Optional[object], fn,
                      seen: Set[Tuple], use: Set[int],
                      release: Set[int]) -> None:
        fn = getattr(fn, "__func__", fn)
        if not isinstance(fn, FunctionType):
            return
        node, sf = self._find_def(fn.__code__, fn.__name__)
        if node is None or sf is None:
            return
        params = [a.arg for a in node.args.args]
        env: Dict[str, Optional[_Ref]] = {}
        if self_obj is not None and params:
            env[params[0]] = _concrete(self_obj)
        frame = _Frame(sf.path, env, None, "")
        for call in ast.walk(node):
            if not isinstance(call, ast.Call) or not isinstance(
                call.func, ast.Attribute
            ):
                continue
            ref = self._resolve(call.func.value, frame)
            if ref is None:
                continue
            ex = ref.exemplar
            if isinstance(ex, MirrorSession):
                if call.func.attr == "mirror":
                    use.add(ex.session_id)
                elif call.func.attr == "release":
                    release.add(ex.session_id)
                continue
            m = getattr(type(ex), call.func.attr, None)
            m = getattr(m, "__func__", m)
            if isinstance(m, FunctionType):
                k = (id(m.__code__), id(ex))
                if k not in seen:
                    seen.add(k)
                    self._mirror_reach(ex, m, seen, use, release)

    # -- resource checks ------------------------------------------------------

    def _components(self, blocks: Sequence[object]) -> List[object]:
        """Apps first (they own their structures), then blocks in order."""
        comps: List[object] = []
        seen: Set[int] = set()
        for b in blocks:
            app = getattr(b, "app", None)
            if app is not None and callable(
                getattr(app, "resource_usage", None)
            ) and id(app) not in seen:
                seen.add(id(app))
                comps.append(app)
        for b in blocks:
            if id(b) not in seen:
                seen.add(id(b))
                comps.append(b)
        return comps

    def _introspect(self, obj: object, claimed: Set[int]) -> Dict[str, float]:
        found = {"sram_bits": 0.0, "tcam_bits": 0.0}

        def visit(value: object, depth: int) -> None:
            if depth > 4:
                return
            if isinstance(value, _REGISTER_TYPES):
                if id(value) not in claimed:
                    claimed.add(id(value))
                    found["sram_bits"] += value.sram_bits()
            elif isinstance(value, LazySnapshotArray):
                for part in (value.data, value.active_flag,
                             value.last_updated):
                    visit(part, depth)
            elif isinstance(value, MatchTable):
                if id(value) not in claimed:
                    claimed.add(id(value))
                    found["sram_bits"] += value.sram_bits()
                    found["tcam_bits"] += value.tcam_bits()
            elif isinstance(value, (list, tuple)):
                for v in value:
                    visit(v, depth + 1)
            elif isinstance(value, dict):
                for v in value.values():
                    visit(v, depth + 1)

        for v in vars(obj).values():
            visit(v, 1)
        return found

    def _check_resources(self, blocks: Sequence[object]) -> None:
        asic = self.asic
        comps = self._components(blocks)
        expected: Dict[str, float] = {}
        claimed: Set[int] = set()
        for comp in comps:
            usage_fn = getattr(comp, "resource_usage", None)
            usage = usage_fn() if callable(usage_fn) else {}
            file, line = self._class_site(comp)
            unknown = sorted(set(usage) - set(CAPACITY))
            if unknown:
                self._diag(
                    "RP131",
                    f"{type(comp).__name__} declares unknown resource(s) "
                    f"{', '.join(repr(u) for u in unknown)}; valid keys are "
                    f"the CAPACITY rows ({', '.join(sorted(CAPACITY))})",
                    file, line,
                )
            for k, v in usage.items():
                if k in CAPACITY:
                    expected[k] = expected.get(k, 0.0) + float(v)
            found = self._introspect(comp, claimed)
            for res in ("sram_bits", "tcam_bits"):
                declared = float(usage.get(res, 0.0))
                actual = found[res]
                if actual > declared + 1e-6:
                    self._diag(
                        "RP132",
                        f"{type(comp).__name__} declares "
                        f"{int(declared)} {res} but instantiates stateful "
                        f"objects totalling {int(actual)} "
                        f"(under-declared by {int(actual - declared)})",
                        file, line,
                    )
        ledger = asic.resources.usage
        drift = sorted(
            k for k in set(ledger) | set(expected)
            if abs(ledger.get(k, 0.0) - expected.get(k, 0.0)) > 1e-6
        )
        anchor_file, anchor_line = (
            self._class_site(blocks[0]) if blocks else ("<unknown>", 1)
        )
        if drift:
            detail = ", ".join(
                f"{k}: ledger={ledger.get(k, 0.0):g} "
                f"declared={expected.get(k, 0.0):g}"
                for k in drift
            )
            self._diag(
                "RP133",
                f"switch resource ledger disagrees with the block/app "
                f"declarations ({detail}); register components via "
                "add_block() or resources.register()",
                anchor_file, anchor_line, site=f"switch={asic.name}",
            )
        for key in asic.resources.over_capacity():
            self._diag(
                "RP130",
                f"declared {key} usage {asic.resources.usage[key]:g} exceeds "
                f"chip capacity {CAPACITY[key]:g} "
                f"({asic.resources.percentage(key):.1f}%); the Tofino "
                "compiler would reject this program",
                anchor_file, anchor_line, site=f"switch={asic.name}",
            )

    # -- top level ------------------------------------------------------------

    def run(self) -> None:
        asic = self.asic
        blocks = list(asic.pipeline.blocks)

        # RP105: the same block instance twice is a cycle in the stage DAG.
        counted: Set[int] = set()
        for b in blocks:
            if id(b) in counted:
                file, line = self._class_site(b)
                self._diag(
                    "RP105",
                    f"control block {describe_block(b)!r} appears more than "
                    "once in the pipeline; block ordering must be an acyclic "
                    "stage assignment",
                    file, line, site=f"switch={asic.name}",
                )
            counted.add(id(b))

        block_paths: List[Tuple[object, List[Dict]]] = []
        analyzed_ids: Set[int] = set()
        for b in blocks:
            if id(b) in analyzed_ids:
                continue
            analyzed_ids.add(id(b))
            block_paths.append((b, self._entry_paths(b)))

        # Compose block paths the way Pipeline.run composes blocks.
        composed: List[Dict] = [{}]
        finals: List[Dict] = []
        for _b, paths in block_paths:
            nxt: List[Dict] = []
            for pre in composed:
                for p in paths:
                    merged = dict(pre)
                    _merge(merged, p["c"])
                    if p["ret"] in ("F", "R"):
                        finals.append(merged)
                    else:
                        nxt.append(merged)
            composed = _dedupe_counts(nxt)
            finals = _dedupe_counts(finals)
        finals = _dedupe_counts(finals + composed)

        # Mirror sessions: handlers are independent entry points (each
        # recirculation pass is its own packet context).
        sessions = sorted(asic._mirror_sessions.items())
        handler_sites: Dict[int, Optional[Tuple[str, int]]] = {}
        handler_rets: Dict[int, List[Dict]] = {}
        for sid, session in sessions:
            owner = self._session_owner(session, blocks)
            file, line = self._class_site(owner) if owner else (
                blocks and self._class_site(blocks[0]) or ("<unknown>", 1)
            )
            if session.handler is None:
                self._diag(
                    "RP120",
                    f"mirror session {sid} has no pass handler: the first "
                    "mirrored copy would raise at runtime (§5.2 requires "
                    "the egress pipeline to process circulating copies)",
                    file, line, site=f"switch={asic.name}",
                )
            else:
                hpaths, hsite = self._handler_paths(session.handler)
                handler_sites[sid] = hsite
                handler_rets[sid] = hpaths
                for p in hpaths:
                    finals.append(dict(p["c"]))
            if session.truncate_to_bytes is None:
                self._diag(
                    "RP121",
                    f"mirror session {sid} circulates untruncated copies; "
                    "§5.2 truncates to the RedPlane header so full payloads "
                    "do not sit in packet buffer (Fig 15)",
                    file, line, site=f"switch={asic.name}",
                )
        finals = _dedupe_counts(finals)

        # RP101 over every composed path.
        flagged: Set[Tuple] = set()
        for counts in finals:
            for key, cnt in counts.items():
                if cnt >= 2 and key not in flagged:
                    flagged.add(key)
                    file, line, bdesc = self.key_sites[key]
                    self._diag(
                        "RP101",
                        f"register array {self.key_names[key]!r} can be "
                        f"accessed {cnt}x while processing one packet; "
                        "Tofino allows a single access per array per packet "
                        "(PAPER §5.4)",
                        file, line, site=f"block={bdesc} pkt=*",
                    )

        # RP110: stage budget. Each block needs ceil(worst-path stateful
        # ops / ALUs-per-stage) stages; blocks execute sequentially.
        total_stages = 0
        detail: List[str] = []
        for b, paths in block_paths:
            ops = 0
            for p in paths:
                p_ops = sum(
                    cnt * self.key_widths.get(key, 1)
                    for key, cnt in p["c"].items()
                )
                ops = max(ops, p_ops)
            st = math.ceil(ops / ALUS_PER_STAGE) if ops else 0
            total_stages += st
            if st:
                detail.append(f"{describe_block(b)}={st}")
        if total_stages > STAGES:
            anchor_file, anchor_line = self._class_site(blocks[0])
            self._diag(
                "RP110",
                f"pipeline needs {total_stages} stages "
                f"({', '.join(detail)}) but the chip has {STAGES} "
                f"(Table 2: {STAGES} stages x {ALUS_PER_STAGE} stateful "
                "ALUs)",
                anchor_file, anchor_line, site=f"switch={asic.name}",
            )

        # RP122/RP123: reachability of mirror()/release() call sites.
        use: Set[int] = set()
        release: Set[int] = set()
        seen: Set[Tuple] = set()
        for b in blocks:
            fn = getattr(type(b), "process", None)
            self._mirror_reach(b, fn, seen, use, release)
        for sid, session in sessions:
            if session.handler is not None:
                self._mirror_reach(
                    getattr(session.handler, "__self__", None),
                    session.handler, seen, use, release,
                )
        for sid, session in sessions:
            owner = self._session_owner(session, blocks)
            file, line = self._class_site(owner) if owner else ("<unknown>", 1)
            if sid not in use:
                self._diag(
                    "RP122",
                    f"mirror session {sid} is configured but no pipeline "
                    "path can reach a mirror() call on it; it is dead "
                    "resource",
                    file, line, site=f"switch={asic.name}",
                )
            if session.handler is not None:
                releasing = any(
                    p["ret"] == "F" for p in handler_rets.get(sid, [])
                ) or sid in release
                if not releasing:
                    hsite = handler_sites.get(sid)
                    hfile, hline = hsite if hsite else (file, line)
                    self._diag(
                        "RP123",
                        f"the pass handler of mirror session {sid} never "
                        "returns False and never calls release(): copies "
                        "circulate forever and exhaust the packet buffer",
                        hfile, hline, site=f"switch={asic.name}",
                    )

        self._check_resources(blocks)

    def _session_owner(self, session: MirrorSession,
                       blocks: Sequence[object]) -> Optional[object]:
        for b in blocks:
            for v in vars(b).values():
                if v is session:
                    return b
        if blocks:
            return blocks[0]
        return None


def _dedupe_effects(effs: List[Dict]) -> List[Dict]:
    seen: Set[Tuple] = set()
    out = []
    for e in effs:
        sig = (_freeze(e["c"]), e["v"])
        if sig not in seen:
            seen.add(sig)
            out.append(e)
        if len(out) >= _PATH_CAP:
            break
    return out


def _first_member(container: object) -> Optional[object]:
    if isinstance(container, (list, tuple)) and container:
        return container[0]
    if isinstance(container, dict) and container:
        return next(iter(container.values()))
    return None


# -- public entry points ------------------------------------------------------


def verify_asic(
    asic: SwitchASIC,
    report: Optional[Report] = None,
    suppressions: Optional[SuppressionIndex] = None,
    root: Optional[str] = None,
) -> Report:
    """Statically verify one configured switch program (read-only)."""
    report = report if report is not None else Report()
    suppressions = (
        suppressions if suppressions is not None else SuppressionIndex()
    )
    analyzer = _PipelineAnalyzer(asic, report, suppressions, root)
    analyzer.run()
    report.analyzed.setdefault(
        f"pipeline:{asic.name}",
        f"{len(asic.pipeline.blocks)} block(s), "
        f"{len(asic._mirror_sessions)} mirror session(s)",
    )
    return report


def verify_app(
    factory,
    label: Optional[str] = None,
    structures=None,
    report: Optional[Report] = None,
    suppressions: Optional[SuppressionIndex] = None,
    root: Optional[str] = None,
) -> Report:
    """Deploy ``factory()`` on a fresh simulated testbed and verify the
    resulting switch program.

    ``structures`` — optional callable ``app -> {store_key: LazySnapshotArray}``
    enabling snapshot replication, so bounded-inconsistency apps are
    verified with the replicator block in the pipeline exactly as the
    experiments run them.
    """
    from repro.core.api import attach_snapshot_replication
    from repro.core.engine import RedPlaneConfig, RedPlaneMode
    from repro.deploy import deploy
    from repro.net.simulator import Simulator

    sim = Simulator(seed=0)
    config = None
    if structures is not None:
        config = RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY)
    dep = deploy(sim, factory, config=config)
    switch = dep.switches[0]
    app = dep.apps[switch.name]
    if structures is not None:
        attach_snapshot_replication(
            dep.engines[switch.name], structures(app),
            period_us=1_000.0, start=False,
        )
    report = report if report is not None else Report()
    verify_asic(switch, report=report, suppressions=suppressions, root=root)
    name = label or getattr(app, "name", type(app).__name__)
    report.analyzed[f"app:{name}"] = (
        f"{type(app).__name__} on {switch.name} "
        f"({len(switch.pipeline.blocks)} blocks)"
    )
    return report


def verify_netchain(
    report: Optional[Report] = None,
    suppressions: Optional[SuppressionIndex] = None,
    root: Optional[str] = None,
) -> Report:
    """Deploy the NetChain-style in-switch store and verify its ToR program.

    The store block serves every request from register arrays inside a
    single pipeline pass, so it is subject to the same static discipline
    as the apps: one access per array per packet (RP101), no per-packet
    loops over one array (RP102), stage budget (RP110), and — specific
    to in-switch stores — no control-plane register ops on the packet
    path (RP150).
    """
    from repro.apps.counter import SyncCounterApp
    from repro.deploy import deploy_netchain
    from repro.net.simulator import Simulator

    sim = Simulator(seed=0)
    dep = deploy_netchain(sim, SyncCounterApp)
    tor = dep.netchain.switch
    report = report if report is not None else Report()
    verify_asic(tor, report=report, suppressions=suppressions, root=root)
    report.analyzed["store:netchain"] = (
        f"NetChainStoreBlock on {tor.name} "
        f"({dep.netchain.backend.describe()})"
    )
    return report

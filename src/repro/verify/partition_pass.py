"""Pass 5: the state-partition & shard-safety analyzer (``RS4xx``).

RedPlane's correctness story rests on per-flow state partitioning: the
protocol is per-flow linearizable because every piece of protected state
is keyed by the 5-tuple ``FlowKey`` and ECMP pins a partition to one
switch. The ROADMAP's sharded parallel simulation needs that property
*proven statically* per app before the flow population can be split
across worker processes, and fastpath v2's cohort replay needs it per
cache-entry kind. This pass is that gatekeeper.

For every deployed application it classifies each register array, match
table, and counter into the partition-class lattice::

    flow_local  <  flow_hash  <  global

* **flow_local** — every access is indexed by a pure function of packet
  header fields (the 5-tuple / VLAN): state splits cleanly along any
  flow partition.
* **flow_hash** — indexed through a compressing hash or a key parsed
  out of the payload (KV object ids, GTP user ids, crc slots): state
  splits along the *derived* key, which the plan reports, so a sharded
  runner must partition flows by that key's hash.
* **global** — anything two different flows can touch (sketch rows,
  Bloom bits, sequencer counters): cannot be split; the sharded runner
  must serialize or replicate it.

The classifier works symbolically, like the pipeline verifier: it walks
the ``partition_key``/``process`` method ASTs of the live deployed app
(``repro.verify.astutil`` supplies the parsing, live objects supply name
resolution), propagating the set of packet-field inputs through local
assignments, one level of helper-call inlining, struct unpacks, and
hash calls. Inference assigns the *tightest provable* class; an app may
declare a weaker one (``shard_class = "global"`` with a mandatory
``shard_reason``) but never a tighter one (RS402).

The result is a deterministic shard plan per app — partitionable state,
inferred keys, global residue, and the cross-shard link set whose
minimum latency defines the conservative-sync lookahead — committed
under ``shard_plans/<app>.json`` (drift is RS408) and rendered by
``repro.tools verify --plan``.

RS410-412 are companion tree lints over the shard-boundary packages
(``repro.core``, ``repro.statestore``, ``repro.fastpath``, ``repro.net``)
for Python-level hazards that would break a multi-process split even
with perfectly partitioned switch state.
"""

from __future__ import annotations

import ast
import inspect
import os
from dataclasses import dataclass
from typing import (
    Dict, FrozenSet, List, Optional, Sequence, Set, Tuple,
)

from repro.core.snapshot import LazySnapshotArray
from repro.net.packet import FlowKey
from repro.switch.registers import PairedRegisterArray, RegisterArray
from repro.switch.tables import MatchTable
from repro.verify import astutil
from repro.verify.diagnostics import Diagnostic, Report, SuppressionIndex
from repro.verify.rules import RULES

# -- the partition-class lattice ----------------------------------------------

#: Weakest-to-strongest is right to left: ``global`` makes no promise,
#: ``flow_local`` the strongest one.
CLASSES = ("flow_local", "flow_hash", "global")

#: Valid ``EntryDep.partition_class`` values (RS406): the lattice plus
#: "app_keyed", which defers to the deployed app's shard plan.
ENTRY_CLASSES = frozenset(CLASSES) | {"app_keyed"}


def class_rank(name: str) -> int:
    return CLASSES.index(name)


def widest(*names: str) -> str:
    """The loosest (most conservative) of the given classes."""
    return max(names, key=class_rank)


# -- symbolic field tokens -----------------------------------------------------

#: Marker for "the packet object itself" flowing through a local name.
_T_PKT = "@pkt"
_T_CONST = "const"      # configuration / literal: same for every packet
_T_PAYLOAD = "payload"  # parsed out of packet bytes
_T_HASH = "hash"        # passed through a compressing hash
_T_UNKNOWN = "?"

_HEADER_FIELDS = frozenset(
    {"ip.src", "ip.dst", "ip.proto", "l4.sport", "l4.dport", "vlan"}
)
_FLOW_TUPLE = frozenset(
    {"ip.src", "ip.dst", "ip.proto", "l4.sport", "l4.dport"}
)
#: Everything a classifiable index may derive from.
_KEY_INPUTS = _HEADER_FIELDS | {_T_PAYLOAD, _T_HASH}

#: Compressing hash functions: their output indexes a bounded slot
#: domain, so distinct keys can collide (flow_hash at best).
_HASH_FUNCS = frozenset({"sketch_hash", "crc32", "adler32", "hash"})

#: FlowKey methods that pass their receiver's derivation through.
_PASS_THROUGH = frozenset({"canonical", "reversed", "pack", "to_bytes"})

#: Stateful-structure access methods; the index is always argument 1
#: (after the pipeline ctx).
_ACCESS_METHODS = frozenset(
    {"update", "test_and_set", "access", "read", "write"}
)

_STRUCT_TYPES = (RegisterArray, PairedRegisterArray, LazySnapshotArray,
                 MatchTable)

#: Packages whose Python-level state crosses shard-process boundaries.
_SHARD_SCOPES = frozenset({"core", "statestore", "fastpath", "net", "shard"})


def _find_def(func) -> Optional[Tuple[ast.FunctionDef, str]]:
    """The AST def (and file) of a live function, via its code object."""
    func = getattr(func, "__func__", func)
    code = getattr(func, "__code__", None)
    if code is None:
        return None
    sf = astutil.load(code.co_filename)
    if sf is None:
        return None
    best: Optional[Tuple[int, ast.FunctionDef]] = None
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.FunctionDef) and node.name == code.co_name:
            delta = abs(node.lineno - code.co_firstlineno)
            if best is None or delta < best[0]:
                best = (delta, node)
    if best is None or best[0] > 16:
        return None
    return best[1], sf.path


def _class_site(obj: object) -> Tuple[str, int]:
    try:
        cls = obj if isinstance(obj, type) else type(obj)
        file = inspect.getsourcefile(cls) or "<unknown>"
        _, line = inspect.getsourcelines(cls)
        return file, line
    except (OSError, TypeError):  # pragma: no cover - builtins only
        return "<unknown>", 1


# -- structure inventory -------------------------------------------------------


@dataclass
class _Struct:
    """One stateful object owned by the app, grouped by instance attr."""

    attr: str            # the app attribute holding it
    name: str            # the structure's own register/table name
    kind: str            # snapshot_array | register_array | match_table
    obj: object


def _kind_of(obj: object) -> str:
    if isinstance(obj, LazySnapshotArray):
        return "snapshot_array"
    if isinstance(obj, MatchTable):
        return "match_table"
    return "register_array"


def _inventory(app: object) -> List[_Struct]:
    """Stateful structures reachable from the app's instance attributes."""
    out: List[_Struct] = []
    seen: Set[int] = set()

    def visit(attr: str, value: object, depth: int) -> None:
        if depth > 4 or id(value) in seen:
            return
        if isinstance(value, _STRUCT_TYPES):
            seen.add(id(value))
            name = getattr(value, "name", None) or f"{attr}[{len(out)}]"
            out.append(_Struct(attr, str(name), _kind_of(value), value))
        elif isinstance(value, (list, tuple)):
            for v in value:
                visit(attr, v, depth + 1)
        elif isinstance(value, dict):
            for k in sorted(value, key=repr):
                visit(attr, value[k], depth + 1)

    for attr in sorted(vars(app)):
        visit(attr, vars(app)[attr], 1)
    return out


# -- the symbolic method scanner -----------------------------------------------


@dataclass
class _Access:
    """One packet-path access to an app-owned structure."""

    struct: Optional[str]       # owning attr, None when unresolvable
    method: str
    index: FrozenSet[str]       # field tokens of the index expression
    file: str
    line: int


class _MethodScan:
    """Symbolically scan one packet-path method of a live app.

    Propagates field-token sets through assignments and one level of
    helper inlining; records every structure access with the derivation
    of its index expression, and every return value's derivation.
    """

    def __init__(self, app: object, func, struct_attrs: Set[str],
                 bound_env: Optional[Dict[str, FrozenSet[str]]] = None,
                 depth: int = 0) -> None:
        self.app = app
        self.struct_attrs = struct_attrs
        self.depth = depth
        self.returns: List[Tuple[FrozenSet[str], int]] = []
        self.accesses: List[_Access] = []
        self.analyzable = False
        self.file = "<unknown>"
        self.def_line = 1

        found = _find_def(func)
        if found is None:
            return
        fn_def, self.file = found
        self.def_line = fn_def.lineno
        func = getattr(func, "__func__", func)
        self.ns = getattr(func, "__globals__", {})

        params = [a.arg for a in fn_def.args.args]
        self.self_name = None
        if params and params[0] == "self":
            self.self_name = params[0]
            params = params[1:]
        self.env: Dict[str, FrozenSet[str]] = {}
        self.env_structs: Dict[str, str] = {}
        if bound_env is None:
            # Top-level packet-path method: the packet rides in the
            # first non-state parameter named pkt (or the first one).
            for p in params:
                self.env[p] = frozenset(
                    {_T_PKT} if p == "pkt" else {_T_CONST}
                )
            if "pkt" not in params and params:
                self.env[params[0]] = frozenset({_T_PKT})
        else:
            for p in params:
                self.env[p] = bound_env.get(p, frozenset({_T_CONST}))
        self.analyzable = True
        self._walk_body(fn_def.body)

    # -- statements -----------------------------------------------------------

    def _walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                self._assign(stmt.targets, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._assign([stmt.target], stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                fields = self._fields(stmt.value)
                if isinstance(stmt.target, ast.Name):
                    prev = self.env.get(stmt.target.id, frozenset())
                    self.env[stmt.target.id] = prev | fields
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None and not (
                    isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is None
                ):
                    self.returns.append(
                        (frozenset(self._fields(stmt.value)), stmt.lineno)
                    )
            elif isinstance(stmt, ast.If):
                self._fields(stmt.test)
                self._walk_body(stmt.body)
                self._walk_body(stmt.orelse)
            elif isinstance(stmt, ast.For):
                self._for(stmt)
            elif isinstance(stmt, ast.While):
                self._fields(stmt.test)
                self._walk_body(stmt.body)
                self._walk_body(stmt.orelse)
            elif isinstance(stmt, ast.With):
                self._walk_body(stmt.body)
            elif isinstance(stmt, ast.Expr):
                self._fields(stmt.value)
            elif isinstance(stmt, (ast.Try,)):
                self._walk_body(stmt.body)
                for handler in stmt.handlers:
                    self._walk_body(handler.body)
                self._walk_body(stmt.orelse)
                self._walk_body(stmt.finalbody)

    def _assign(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        sref = self._struct_ref(value)
        vfields = (
            None if sref is not None else frozenset(self._fields(value))
        )
        for target in targets:
            if isinstance(target, ast.Name):
                if sref is not None:
                    self.env_structs[target.id] = sref
                else:
                    self.env[target.id] = vfields or frozenset()
            elif isinstance(target, ast.Tuple):
                each = (
                    vfields if vfields is not None
                    else frozenset({_T_UNKNOWN})
                )
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        self.env[elt.id] = each

    def _for(self, stmt: ast.For) -> None:
        it = stmt.iter
        is_enum = (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "enumerate"
        )
        src = it.args[0] if (is_enum and it.args) else it
        sref = self._struct_ref(src)
        target = stmt.target
        if is_enum and isinstance(target, ast.Tuple) and len(target.elts) == 2:
            counter, element = target.elts
            if isinstance(counter, ast.Name):
                # A row/slot counter over a fixed collection is the same
                # for every packet: structure geometry, not a flow key.
                self.env[counter.id] = frozenset({_T_CONST})
            if isinstance(element, ast.Name):
                if sref is not None:
                    self.env_structs[element.id] = sref
                else:
                    self.env[element.id] = frozenset(self._fields(src))
        elif isinstance(target, ast.Name):
            if sref is not None:
                self.env_structs[target.id] = sref
            else:
                self.env[target.id] = frozenset(self._fields(src))
        self._walk_body(stmt.body)
        self._walk_body(stmt.orelse)

    # -- structure references --------------------------------------------------

    def _struct_ref(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Subscript):
            return self._struct_ref(node.value)
        chain = astutil.attr_chain(node)
        if (
            chain is not None
            and len(chain) >= 2
            and chain[0] == self.self_name
            and chain[1] in self.struct_attrs
        ):
            return chain[1]
        if isinstance(node, ast.Name):
            return self.env_structs.get(node.id)
        return None

    # -- expressions -----------------------------------------------------------

    def _fields(self, node: ast.expr) -> Set[str]:
        if isinstance(node, ast.Constant):
            return {_T_CONST}
        if isinstance(node, ast.Name):
            return set(self._lookup(node.id))
        if isinstance(node, ast.Attribute):
            return self._attr(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            return self._fields(node.value) | self._slice(node.slice)
        if isinstance(node, ast.BinOp):
            out = self._fields(node.left) | self._fields(node.right)
            return out
        if isinstance(node, ast.BoolOp):
            out: Set[str] = set()
            for v in node.values:
                out |= self._fields(v)
            return out
        if isinstance(node, ast.Compare):
            out = self._fields(node.left)
            for comp in node.comparators:
                out |= self._fields(comp)
            return out
        if isinstance(node, ast.UnaryOp):
            return self._fields(node.operand)
        if isinstance(node, ast.IfExp):
            self._fields(node.test)
            return self._fields(node.body) | self._fields(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for elt in node.elts:
                out |= self._fields(elt)
            return out or {_T_CONST}
        if isinstance(node, ast.JoinedStr):
            return {_T_CONST}
        return {_T_UNKNOWN}

    def _slice(self, node: ast.expr) -> Set[str]:
        if isinstance(node, ast.Slice):
            out: Set[str] = set()
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    out |= self._fields(part)
            return out or {_T_CONST}
        return self._fields(node)

    def _lookup(self, name: str) -> FrozenSet[str]:
        if name in self.env:
            return self.env[name]
        if name in self.env_structs:
            # The structure object itself (e.g. ``array.size``): its
            # geometry is configuration, not a key input.
            return frozenset({_T_CONST})
        if name in self.ns:
            value = self.ns[name]
            if isinstance(value, (int, float, str, bytes, bool, FlowKey)):
                return frozenset({_T_CONST})
            if inspect.ismodule(value) or isinstance(value, type):
                return frozenset({_T_CONST})
            if hasattr(value, "unpack_from"):  # struct.Struct instances
                return frozenset({_T_CONST})
            return frozenset({_T_UNKNOWN})
        if name in ("True", "False", "None"):
            return frozenset({_T_CONST})
        return frozenset({_T_UNKNOWN})

    def _attr(self, node: ast.Attribute) -> Set[str]:
        chain = astutil.attr_chain(node)
        if chain is not None:
            base = self._lookup(chain[0]) if chain[0] != self.self_name \
                else frozenset()
            if chain[0] == self.self_name:
                return self._self_attr(chain[1:])
            if _T_PKT in base:
                return self._pkt_attr(chain[1:])
            if base == frozenset({_T_CONST}):
                return {_T_CONST}
            return {_T_UNKNOWN}
        # Chain rooted in a call/subscript: derive from the base value
        # (e.g. ``pkt.flow_key().pack`` handled by the Call visitor; a
        # bare ``(a + b).attr`` inherits the base derivation).
        return self._fields(node.value)

    def _pkt_attr(self, rest: Sequence[str]) -> Set[str]:
        if not rest:
            return {_T_PKT}
        if rest[0] == "payload":
            return {_T_PAYLOAD}
        if rest[0] == "vlan":
            return {"vlan"}
        dotted = ".".join(rest[:2])
        if dotted in _HEADER_FIELDS:
            return {dotted}
        if rest[0] in ("ip", "l4") and len(rest) == 1:
            # The header object itself (None checks); not a key input.
            return {_T_PKT}
        return {_T_UNKNOWN}

    def _self_attr(self, rest: Sequence[str]) -> Set[str]:
        value: object = self.app
        for part in rest:
            try:
                value = getattr(value, part)
            except AttributeError:
                return {_T_UNKNOWN}
        if isinstance(value, (int, float, str, bytes, bool, FlowKey)):
            return {_T_CONST}
        return {_T_UNKNOWN}

    def _call(self, node: ast.Call) -> Set[str]:
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            recv = func.value
            sref = self._struct_ref(recv)
            if sref is not None and attr in _ACCESS_METHODS:
                if len(node.args) >= 2:
                    idx = frozenset(self._fields(node.args[1]))
                else:
                    idx = frozenset({_T_UNKNOWN})
                for extra in node.args[2:]:
                    self._fields(extra)
                self.accesses.append(
                    _Access(sref, attr, idx, self.file, node.lineno)
                )
                # The stored value is mutable state, not a key input.
                return {_T_UNKNOWN}
            if attr == "flow_key":
                return set(_FLOW_TUPLE)
            if attr in _PASS_THROUGH:
                return self._fields(recv)
            if attr in ("unpack", "unpack_from", "from_bytes"):
                return (
                    self._fields(node.args[0]) if node.args
                    else {_T_UNKNOWN}
                )
            if attr in _HASH_FUNCS:
                out: Set[str] = {_T_HASH}
                for a in node.args:
                    out |= self._fields(a)
                return out
            if (
                isinstance(recv, ast.Name)
                and recv.id == self.self_name
                and self.depth < 2
            ):
                target = getattr(self.app, attr, None)
                if callable(target):
                    return self._inline(target, node)
            for a in node.args:
                self._fields(a)
            return {_T_UNKNOWN}

        if isinstance(func, ast.Name):
            name = func.id
            if name in _HASH_FUNCS:
                out = {_T_HASH}
                for a in node.args:
                    out |= self._fields(a)
                return out
            if name in ("len", "isinstance", "range"):
                for a in node.args:
                    self._fields(a)
                return {_T_CONST}
            if name in ("min", "max", "abs", "int", "sum"):
                out = set()
                for a in node.args:
                    out |= self._fields(a)
                return out or {_T_CONST}
            resolved = self.ns.get(name)
            if resolved is FlowKey:
                out = set()
                for a in node.args:
                    out |= self._fields(a)
                return out or {_T_CONST}
            if callable(resolved) and self.depth < 2 and (
                hasattr(resolved, "__code__")
            ):
                return self._inline(resolved, node)
            for a in node.args:
                self._fields(a)
            return {_T_UNKNOWN}
        return {_T_UNKNOWN}

    def _inline(self, target, node: ast.Call) -> Set[str]:
        """One level of helper inlining: bind arg derivations to params,
        return the union of the helper's return derivations."""
        found = _find_def(target)
        if found is None:
            return {_T_UNKNOWN}
        fn_def, _path = found
        params = [a.arg for a in fn_def.args.args]
        if params and params[0] == "self" and (
            inspect.ismethod(target) or getattr(target, "__self__", None)
            is not None
        ):
            params = params[1:]
        bound: Dict[str, FrozenSet[str]] = {}
        for p, a in zip(params, node.args):
            bound[p] = frozenset(self._fields(a))
        for p in params[len(node.args):]:
            bound[p] = frozenset({_T_CONST})
        sub = _MethodScan(
            self.app, target, self.struct_attrs,
            bound_env=bound, depth=self.depth + 1,
        )
        if not sub.analyzable:
            return {_T_UNKNOWN}
        self.accesses.extend(sub.accesses)
        out: Set[str] = set()
        for fields, _line in sub.returns:
            out |= fields
        return out or {_T_UNKNOWN}


# -- classification ------------------------------------------------------------


def _classify(tokens: FrozenSet[str]) -> Tuple[str, FrozenSet[str]]:
    """(class, key fields) of an index/key derivation token set.

    ``"unknown"`` (not in the lattice) means the derivation escaped the
    analyzer; callers degrade it to ``global`` after diagnosing.
    """
    t = frozenset(tokens) - {_T_CONST}
    if not t:
        return "global", frozenset()      # constant: one slot, all flows
    if not t <= _KEY_INPUTS:
        return "unknown", t - _KEY_INPUTS
    fields = t - {_T_HASH}
    if _T_HASH in t or _T_PAYLOAD in t:
        return "flow_hash", fields
    return "flow_local", fields


# -- the per-app analyzer ------------------------------------------------------


@dataclass
class _AppAnalysis:
    plan: Dict[str, object]
    effective: str
    structures: int
    links: int


class _PartitionAnalyzer:
    """Runs the RS400-405/407 checks over one deployed app and builds
    its shard plan."""

    def __init__(self, dep, label: str, structures,
                 report: Report, supp: SuppressionIndex,
                 root: Optional[str]) -> None:
        self.dep = dep
        self.label = label
        self.structures_fn = structures
        self.report = report
        self.supp = supp
        self.root = root
        switch = dep.switches[0]
        self.switch = switch
        self.app = dep.apps[switch.name]
        self.engine = dep.engines[switch.name]

    # -- diagnostics -----------------------------------------------------------

    def _rel(self, path: str, line_source: bool = True) -> str:
        rel = astutil.relpath(path, self.root)
        if line_source:
            sf = astutil.load(path)
            self.supp.scan(rel, source=sf.text if sf else "")
        return rel

    def _diag(self, rule_id: str, message: str, file: str, line: int) -> None:
        rule = RULES[rule_id]
        rel = self._rel(file)
        self.report.add(
            Diagnostic(rule.id, rule.severity, message, rel, line,
                       site=f"app={self.label}"),
            self.supp,
        )

    # -- analysis --------------------------------------------------------------

    def run(self) -> _AppAnalysis:
        app = self.app
        cls_file, cls_line = _class_site(app)

        declared = getattr(app, "shard_class", None)
        reason = getattr(app, "shard_reason", None)
        if declared is not None and declared not in CLASSES:
            self._diag(
                "RS404",
                f"{type(app).__name__}.shard_class is {declared!r}; the "
                f"partition-class lattice is {', '.join(CLASSES)}",
                cls_file, cls_line,
            )
            declared = None
        if declared == "global" and not reason:
            self._diag(
                "RS403",
                f"{type(app).__name__} declares shard_class = 'global' "
                "without a shard_reason; say why the state is cross-flow",
                cls_file, cls_line,
            )

        structs = _inventory(app)
        struct_attrs = {s.attr for s in structs}

        # Partition key inference.
        key_scan = _MethodScan(app, app.partition_key, struct_attrs)
        key_tokens: FrozenSet[str] = frozenset()
        for fields, _line in key_scan.returns:
            key_tokens |= fields
        if key_scan.analyzable and key_scan.returns:
            key_class, key_fields = _classify(key_tokens)
        else:
            key_class, key_fields = "unknown", frozenset()
        key_file, key_line = key_scan.file, key_scan.def_line
        if key_class == "unknown":
            self._diag(
                "RS407",
                f"{type(app).__name__}.partition_key could not be "
                "statically analyzed"
                + (
                    f" (unresolved inputs: "
                    f"{', '.join(sorted(key_fields))})"
                    if key_fields else ""
                )
                + "; the plan conservatively treats its state as global",
                key_file, key_line,
            )
        key_class_eff = "global" if key_class == "unknown" else key_class

        # Packet-path structure accesses.
        proc_scan = _MethodScan(app, app.process, struct_attrs)
        accesses = key_scan.accesses + proc_scan.accesses
        by_attr: Dict[str, List[_Access]] = {}
        for acc in accesses:
            if acc.struct is not None:
                by_attr.setdefault(acc.struct, []).append(acc)

        waived = declared == "global"
        struct_classes: Dict[str, Tuple[str, FrozenSet[str], str]] = {}
        for attr in sorted(struct_attrs):
            accs = by_attr.get(attr, [])
            if not accs:
                struct_classes[attr] = (
                    key_class_eff, key_fields, "no packet-path access"
                )
                continue
            tokens: FrozenSet[str] = frozenset()
            for acc in accs:
                tokens |= acc.index
            klass, fields = _classify(tokens)
            note = ""
            if klass == "unknown":
                if not waived:
                    self._diag(
                        "RS400",
                        f"access to {type(app).__name__}.{attr} has an "
                        f"index the analyzer cannot classify (unresolved "
                        f"inputs: {', '.join(sorted(fields)) or 'none'}); "
                        "a sharded run could not prove which shard owns "
                        "this state",
                        accs[0].file, accs[0].line,
                    )
                klass, note = "global", "unclassifiable index"
            elif not waived and klass != "global" and not (
                fields <= key_fields
            ):
                self._diag(
                    "RS401",
                    f"{type(app).__name__}.{attr} is indexed by "
                    f"{{{', '.join(sorted(fields))}}} but the app "
                    f"partition key derives from "
                    f"{{{', '.join(sorted(key_fields)) or 'nothing'}}}: "
                    "flows of different partitions share this structure; "
                    "declare shard_class = 'global' if that is intended",
                    accs[0].file, accs[0].line,
                )
                klass, note = "global", "keyed outside the partition key"
            struct_classes[attr] = (klass, fields, note)

        inferred = widest(
            key_class_eff,
            *(klass for klass, _f, _n in struct_classes.values()),
        ) if struct_classes else key_class_eff

        if declared is not None and class_rank(declared) < class_rank(
            inferred
        ):
            self._diag(
                "RS402",
                f"{type(app).__name__} declares shard_class = "
                f"{declared!r} but inference proves only {inferred!r}; "
                "a declaration may relax the inferred class, never "
                "tighten it",
                cls_file, cls_line,
            )
            # The invalid (too-tight) declaration does not bind: the
            # plan records the honest inferred class.
            declared = None
        if declared is None and inferred == "global" and (
            key_class != "unknown"
        ):
            self._diag(
                "RS405",
                f"{type(app).__name__} is inferred 'global' (its state "
                "is cross-flow) but declares no shard_class; annotate "
                "shard_class = 'global' with a shard_reason",
                cls_file, cls_line,
            )

        effective = declared if declared is not None else inferred
        plan = self._build_plan(
            declared, reason, effective,
            key_class, key_class_eff, key_fields, key_tokens,
            (key_file, key_line),
            structs, struct_classes,
        )
        return _AppAnalysis(
            plan=plan, effective=effective,
            structures=len(plan["structures"]),  # type: ignore[arg-type]
            links=len(plan["cross_shard"]["links"]),  # type: ignore[index]
        )

    # -- plan construction -----------------------------------------------------

    def _build_plan(self, declared, reason, effective,
                    key_class, key_class_eff, key_fields, key_tokens,
                    key_site, structs, struct_classes) -> Dict[str, object]:
        app = self.app
        engine = self.engine

        def site(file: str, line: int) -> str:
            return f"{astutil.relpath(file, self.root)}:{line}"

        entries: List[Dict[str, object]] = []
        engine_class = "global" if effective == "global" else key_class_eff
        eng_file, eng_line = _class_site(engine)
        engine_regs = [
            engine.reg_lease_expiry, engine.reg_cur_seq,
            engine.reg_last_acked, engine.reg_lease_pending,
            engine.reg_last_renew, *engine.state_regs,
        ]
        for reg in engine_regs:
            entries.append({
                "name": reg.name,
                "kind": "engine_register",
                "partition_class": engine_class,
                "key_fields": sorted(key_fields),
                "site": site(eng_file, eng_line),
            })

        store_keys: Dict[int, List[str]] = {}
        if self.structures_fn is not None:
            keyed = self.structures_fn(app)
            for fkey in sorted(
                keyed,
                key=lambda k: (k.src_ip, k.dst_ip, k.proto, k.sport,
                               k.dport),
            ):
                store_keys.setdefault(id(keyed[fkey]), []).append(
                    f"{fkey.src_ip}.{fkey.dst_ip}.{fkey.proto}."
                    f"{fkey.sport}.{fkey.dport}"
                )

        cls_file, cls_line = _class_site(app)
        for s in structs:
            klass, fields, note = struct_classes[s.attr]
            final = "global" if effective == "global" else klass
            entry: Dict[str, object] = {
                "name": s.name,
                "kind": s.kind,
                "attr": s.attr,
                "partition_class": final,
                "key_fields": sorted(
                    f for f in fields if f in _HEADER_FIELDS
                    or f == _T_PAYLOAD
                ),
                "site": site(cls_file, cls_line),
            }
            if note:
                entry["note"] = note
            if id(s.obj) in store_keys:
                entry["store_keys"] = store_keys[id(s.obj)]
            entries.append(entry)
        entries.sort(key=lambda e: (e["name"], e["kind"]))

        residue = sorted(
            e["name"] for e in entries
            if e["partition_class"] == "global"
        )

        # Cross-shard links: each programmable agg switch is one shard
        # group, everything else (cores, tors, hosts, stores) is shared
        # infrastructure every shard talks to. The minimum latency of a
        # crossing link bounds the conservative-sync window.
        agg_ids = {id(a) for a in self.dep.bed.aggs}

        def group(node) -> str:
            return node.name if id(node) in agg_ids else "shared"

        links: List[Dict[str, object]] = []
        for link in self.dep.bed.topology.links:
            ga, gb = group(link.a.node), group(link.b.node)
            if ga == gb or (ga == "shared" and gb == "shared"):
                continue
            links.append({
                "link": link.name,
                "between": sorted((ga, gb)),
                "latency_us": link.latency_us,
            })
        links.sort(key=lambda d: d["link"])  # type: ignore[arg-type]
        lookahead = min(
            (float(d["latency_us"]) for d in links), default=None
        )

        return {
            "format": 1,
            "app": self.label,
            "app_class": type(app).__name__,
            "partition_class": effective,
            "declared": {
                "shard_class": declared,
                "shard_reason": reason,
            },
            "partition_key": {
                "class": key_class,
                "fields": sorted(
                    f for f in key_fields
                    if f in _HEADER_FIELDS or f == _T_PAYLOAD
                ),
                "hashed": _T_HASH in key_tokens,
                "site": site(*key_site),
            },
            "structures": entries,
            "global_residue": residue,
            "cross_shard": {
                "shards": sorted(a.name for a in self.dep.bed.aggs),
                "links": links,
                "sync_lookahead_us": lookahead,
            },
        }


# -- public entry points -------------------------------------------------------


def verify_partition_app(
    factory,
    label: Optional[str] = None,
    structures=None,
    report: Optional[Report] = None,
    suppressions: Optional[SuppressionIndex] = None,
    root: Optional[str] = None,
) -> Tuple[Report, Dict[str, object]]:
    """Deploy ``factory()`` exactly as the experiments do, run the
    partition analysis, and return (report, shard plan)."""
    from repro.core.engine import RedPlaneConfig, RedPlaneMode
    from repro.deploy import deploy
    from repro.net.simulator import Simulator

    sim = Simulator(seed=0)
    config = None
    if structures is not None:
        config = RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY)
    dep = deploy(sim, factory, config=config)
    report = report if report is not None else Report()
    supp = suppressions if suppressions is not None else SuppressionIndex()
    name = label or getattr(
        dep.apps[dep.switches[0].name], "name", "app"
    )
    analyzer = _PartitionAnalyzer(dep, name, structures, report, supp, root)
    analysis = analyzer.run()
    report.analyzed[f"partition:{name}"] = (
        f"{analysis.effective}; {analysis.structures} structure(s), "
        f"{analysis.links} cross-shard link(s)"
    )
    return report, analysis.plan


def plan_json(plan: Dict[str, object]) -> str:
    """The canonical byte-deterministic serialization of a shard plan."""
    import json

    return json.dumps(plan, indent=2, sort_keys=True) + "\n"


def render_plan(plan: Dict[str, object]) -> str:
    """Human rendering of one shard plan for ``verify --plan``."""
    lines: List[str] = []
    pk = plan["partition_key"]
    decl = plan["declared"]
    lines.append(
        f"{plan['app']} ({plan['app_class']}): "
        f"partition_class={plan['partition_class']}"
    )
    lines.append(
        f"  key: class={pk['class']} "
        f"fields=[{', '.join(pk['fields']) or '-'}]"
        f"{' hashed' if pk['hashed'] else ''}  ({pk['site']})"
    )
    if decl["shard_class"]:
        lines.append(
            f"  declared: {decl['shard_class']} -- "
            f"{decl['shard_reason'] or 'no reason'}"
        )
    for entry in plan["structures"]:
        fields = ", ".join(entry["key_fields"]) or "-"
        note = f" ({entry['note']})" if entry.get("note") else ""
        lines.append(
            f"  {entry['partition_class']:>10}  {entry['kind']:<16} "
            f"{entry['name']}  key=[{fields}]{note}"
        )
    residue = plan["global_residue"]
    lines.append(
        f"  global residue: {len(residue)} structure(s)"
        + (f" ({', '.join(residue[:4])}"
           + (", ..." if len(residue) > 4 else "") + ")"
           if residue else "")
    )
    cs = plan["cross_shard"]
    lines.append(
        f"  shards: {', '.join(cs['shards'])}; "
        f"{len(cs['links'])} cross-shard link(s), "
        f"sync lookahead {cs['sync_lookahead_us']} us"
    )
    return "\n".join(lines)


# -- RS410-412: shard-hazard tree lints ---------------------------------------


def _in_shard_scope(path: str) -> bool:
    """True for files in the shard-boundary packages — and for files
    outside any ``repro`` package (fixtures, scratch trees), which are
    linted as-is."""
    parts = os.path.abspath(path).split(os.sep)
    if "repro" in parts:
        i = parts.index("repro")
        return len(parts) > i + 1 and parts[i + 1] in _SHARD_SCOPES
    return True


def _is_empty_mutable(node: ast.expr) -> bool:
    if isinstance(node, ast.List) and not node.elts:
        return True
    if isinstance(node, ast.Dict) and not node.keys:
        return True
    if isinstance(node, ast.Set) and not node.elts:
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "dict", "set")
        and not node.args and not node.keywords
    ):
        return True
    return False


def _check_module_globals(sf: astutil.SourceFile, rel: str,
                          report: Report, supp: SuppressionIndex) -> None:
    """RS410: mutable module-level accumulators and ``global`` rebinding."""
    rule = RULES["RS410"]
    for stmt in sf.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_empty_mutable(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                report.add(Diagnostic(
                    rule.id, rule.severity,
                    f"module-level mutable accumulator {target.id!r}: "
                    "per-process state that sharded workers would "
                    "populate divergently; move it onto a simulator- or "
                    "engine-owned object",
                    rel, stmt.lineno,
                ), supp)
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Global):
            report.add(Diagnostic(
                rule.id, rule.severity,
                f"function rebinds module global(s) "
                f"{', '.join(node.names)}: per-process simulation state "
                "that sharded workers would not share",
                rel, node.lineno,
            ), supp)


def _check_unpicklable(sf: astutil.SourceFile, rel: str,
                       report: Report, supp: SuppressionIndex) -> None:
    """RS411: lambdas stored where shard handoff would pickle them."""
    rule = RULES["RS411"]

    def flag(target_desc: str, line: int) -> None:
        report.add(Diagnostic(
            rule.id, rule.severity,
            f"lambda stored on {target_desc}: the owning object cannot "
            "cross a shard-process boundary (pickle rejects lambdas); "
            "use a named function or a bound method",
            rel, line,
        ), supp)

    for node in ast.walk(sf.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not isinstance(value, ast.Lambda):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign)
            else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Attribute):
                chain = astutil.attr_chain(target)
                flag(
                    f"instance attribute "
                    f"{'.'.join(chain) if chain else target.attr}",
                    node.lineno,
                )
    for stmt in sf.tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.value, ast.Lambda
        ):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    flag(f"module name {target.id!r}", stmt.lineno)


def _check_first_element_pick(sf: astutil.SourceFile, rel: str,
                              report: Report,
                              supp: SuppressionIndex) -> None:
    """RS412: ``next(iter(...))`` over an unordered container."""
    rule = RULES["RS412"]
    for node in ast.walk(sf.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "next"
            and node.args
        ):
            continue
        inner = node.args[0]
        if not (
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Name)
            and inner.func.id == "iter"
            and inner.args
        ):
            continue
        picked = inner.args[0]
        unordered = (
            isinstance(picked, (ast.Set, ast.SetComp, ast.DictComp))
            or (
                isinstance(picked, ast.Call)
                and isinstance(picked.func, ast.Attribute)
                and picked.func.attr in ("values", "keys", "items")
            )
            or (
                isinstance(picked, ast.Call)
                and isinstance(picked.func, ast.Name)
                and picked.func.id in ("set", "dict")
            )
        )
        if unordered:
            report.add(Diagnostic(
                rule.id, rule.severity,
                "next(iter(...)) picks the first element of an "
                "unordered container: shards filling it independently "
                "pick different elements; use sorted(...) or an "
                "explicit ordering",
                rel, node.lineno,
            ), supp)


def _check_entry_classes(report: Report, supp: SuppressionIndex,
                         root: Optional[str]) -> int:
    """RS406: every ENTRY_DEPS row declares a valid partition class."""
    from repro.fastpath import flowcache

    rule = RULES["RS406"]
    sf = astutil.load(flowcache.__file__)
    rel = astutil.relpath(
        sf.path if sf else flowcache.__file__, root
    )
    line = 1
    if sf is not None:
        supp.scan(rel, source=sf.text)
        for stmt in sf.tree.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "ENTRY_DEPS"
                for t in stmt.targets
            ):
                line = stmt.lineno
                break
    entry_deps = flowcache.ENTRY_DEPS
    for kind in sorted(entry_deps):
        pc = getattr(entry_deps[kind], "partition_class", None)
        if pc not in ENTRY_CLASSES:
            report.add(Diagnostic(
                rule.id, rule.severity,
                f"ENTRY_DEPS[{kind!r}] declares partition class "
                f"{pc!r}; cohort replay needs one of "
                f"{', '.join(sorted(ENTRY_CLASSES))}",
                rel, line,
            ), supp)
    return len(entry_deps)


def verify_shard_hazards(
    paths: List[str],
    report: Optional[Report] = None,
    suppressions: Optional[SuppressionIndex] = None,
    root: Optional[str] = None,
) -> Report:
    """Run the RS410-412 shard-hazard lints over ``paths`` plus the
    RS406 entry-kind contract check."""
    report = report if report is not None else Report()
    supp = suppressions if suppressions is not None else SuppressionIndex()
    files = 0
    for path in paths:
        for filename in astutil.iter_py_files(path):
            if not _in_shard_scope(filename):
                continue
            sf = astutil.load(filename)
            if sf is None:
                continue
            files += 1
            rel = astutil.relpath(sf.path, root)
            supp.scan(rel, source=sf.text)
            _check_module_globals(sf, rel, report, supp)
            _check_unpicklable(sf, rel, report, supp)
            _check_first_element_pick(sf, rel, report, supp)
    kinds = _check_entry_classes(report, supp, root)
    report.analyzed["partition-hazards"] = (
        f"{files} file(s) in shard scope, {kinds} entry kind(s)"
    )
    return report

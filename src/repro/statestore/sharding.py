"""Partitioning flow state across state-store shards.

The external state store is partitioned by flow key (§5.1.1); a switch
identifies the responsible server by hashing the flow key and looking up a
preconfigured table. Each shard is served by a chain-replication group
whose head receives requests and whose tail sends replies.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.net.packet import FlowKey


@dataclass(frozen=True)
class ShardAddress:
    """Where a switch sends requests for one shard: the chain head."""

    ip: int
    udp_port: int


class ShardMap:
    """Deterministic flow-key -> shard mapping, identical on every switch."""

    def __init__(self, shard_addresses: Sequence[ShardAddress]) -> None:
        if not shard_addresses:
            raise ValueError("need at least one shard")
        self._shards: List[ShardAddress] = list(shard_addresses)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def shard_index(self, key: FlowKey) -> int:
        return zlib.crc32(b"shard:" + key.pack()) % len(self._shards)

    def shard_for(self, key: FlowKey) -> ShardAddress:
        return self._shards[self.shard_index(key)]

    def addresses(self) -> List[ShardAddress]:
        return list(self._shards)

"""Persistent log-structured backend: append-only WAL + snapshots.

:class:`WALBackend` keeps the live records in memory (serving reads at
DRAM speed, like the reference backend) and makes every commit durable
by appending a length-prefixed record frame to a write-ahead log before
the transport layer replies or propagates. Every ``snapshot_every``
appends it writes a full snapshot of the record set and truncates the
log (compaction), bounding both recovery time and disk growth.

Crash model: :meth:`~WALBackend.wipe` drops the in-memory dict and the
open log handle — everything a process crash loses — while the files
stay on disk. :meth:`~WALBackend.recover` rebuilds the record set by
loading the snapshot and replaying the log on top, tolerating a torn
tail (a frame cut mid-write by the crash is discarded, which is safe:
a torn frame was never followed by a reply, so no switch saw that state
acknowledged).

Frames are self-delimiting (``u32`` length + body) and the body format
is :func:`repro.statestore.codec.pack_record` — shared with the
snapshot file, so both replay paths are one loop.
"""

from __future__ import annotations

import os
import struct
from typing import Dict, Optional

from repro.net.packet import FlowKey
from repro.statestore.backend import FlowRecord, StateStoreBackend
from repro.statestore.codec import pack_record, unpack_record

_FRAME_LEN = struct.Struct("!I")


def _read_frames(path: str):
    """Yield record bodies from a frame file, stopping at a torn tail."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        return
    offset = 0
    while offset + _FRAME_LEN.size <= len(data):
        (length,) = _FRAME_LEN.unpack_from(data, offset)
        offset += _FRAME_LEN.size
        body = data[offset : offset + length]
        if len(body) != length:
            return  # torn tail: the crash interrupted this append
        offset += length
        yield body


class WALBackend(StateStoreBackend):
    """Append-only write-ahead log with periodic snapshot + compaction."""

    name = "wal"
    durable = True

    def __init__(self, directory: str, snapshot_every: int = 64) -> None:
        super().__init__()
        self.directory = directory
        self.snapshot_every = snapshot_every
        self._records: Dict[FlowKey, FlowRecord] = {}
        self._log_fh = None
        self._appends_since_snapshot = 0
        self._c_appends = None
        self._c_snapshots = None
        self._c_replayed = None
        self._g_bytes = None

    # -- paths / plumbing ---------------------------------------------------

    @property
    def log_path(self) -> str:
        return os.path.join(self.directory, "records.wal")

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.directory, "records.snap")

    def bind(self, node) -> None:
        super().bind(node)
        os.makedirs(self.directory, exist_ok=True)
        m = node.sim.metrics
        self._c_appends = m.counter("store.backend.wal_appends", node=node.name)
        self._c_snapshots = m.counter(
            "store.backend.wal_snapshots", node=node.name)
        self._c_replayed = m.counter(
            "store.backend.wal_replayed", node=node.name)
        self._g_bytes = m.gauge("store.backend.wal_bytes", node=node.name)

    def _log_handle(self):
        if self._log_fh is None:
            os.makedirs(self.directory, exist_ok=True)
            self._log_fh = open(self.log_path, "ab")
        return self._log_fh

    def _update_size_gauge(self) -> None:
        if self._g_bytes is None:
            return
        total = 0
        for path in (self.log_path, self.snapshot_path):
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        self._g_bytes.set(total)

    # -- backend contract ---------------------------------------------------

    @property
    def records(self) -> Dict[FlowKey, FlowRecord]:
        return self._records

    def commit(self, key: FlowKey, rec: FlowRecord) -> None:
        body = pack_record(key, rec)
        fh = self._log_handle()
        fh.write(_FRAME_LEN.pack(len(body)) + body)
        fh.flush()
        if self._c_appends is not None:
            self._c_appends.inc()
        self._appends_since_snapshot += 1
        if self._appends_since_snapshot >= self.snapshot_every:
            self._write_snapshot()
        self._update_size_gauge()

    def _write_snapshot(self) -> None:
        """Dump every record, then truncate the log (compaction)."""
        tmp = self.snapshot_path + ".tmp"
        with open(tmp, "wb") as fh:
            for key, rec in self._records.items():
                body = pack_record(key, rec)
                fh.write(_FRAME_LEN.pack(len(body)) + body)
        os.replace(tmp, self.snapshot_path)
        # The snapshot supersedes every logged frame: start the log over.
        if self._log_fh is not None:
            self._log_fh.close()
        self._log_fh = open(self.log_path, "wb")
        self._appends_since_snapshot = 0
        if self._c_snapshots is not None:
            self._c_snapshots.inc()

    def wipe(self) -> None:
        self._records.clear()
        if self._log_fh is not None:
            self._log_fh.close()
            self._log_fh = None
        self._appends_since_snapshot = 0

    def recover(self) -> int:
        """Rebuild the record set: snapshot first, then log replay."""
        self._records.clear()
        replayed = 0
        for path in (self.snapshot_path, self.log_path):
            for body in _read_frames(path):
                try:
                    key, rec = unpack_record(body)
                except ValueError:
                    break  # corrupt frame: treat like a torn tail
                self._records[key] = rec
                replayed += 1
        if self._c_replayed is not None:
            self._c_replayed.inc(replayed)
        self._update_size_gauge()
        return len(self._records)

    def describe(self) -> str:
        return f"wal({self.directory})"

    def close(self) -> None:
        if self._log_fh is not None:
            self._log_fh.close()
            self._log_fh = None

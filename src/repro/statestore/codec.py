"""Wire and durability codecs for the state store.

Three record-shaped byte formats live here, out of the transport layer:

* **chain updates** — internal store-to-store messages carrying the full
  per-flow record plus the eventual requester reply (head-to-tail);
* **chain acks** — the per-update confirmation travelling tail-to-head;
* **durable records** — the self-delimiting frame a persistent backend
  (:mod:`repro.statestore.wal`) appends to its log and writes into its
  snapshots, carrying everything needed to rebuild a
  :class:`~repro.statestore.backend.FlowRecord` after a crash.

All ``unpack_*`` functions raise :class:`ValueError` on malformed input
(truncated buffers, inconsistent length fields) rather than leaking
:class:`struct.error`, so a corrupted chain packet or a torn log tail is
a recoverable condition for the caller.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.core.protocol import RedPlaneMessage
from repro.net.packet import FlowKey

#: First byte of a chain packet: a state update travelling head-to-tail,
#: or the per-update acknowledgment travelling tail-to-head.
CHAIN_UPDATE = 0
CHAIN_ACK = 1

#: A chain update's record state: (vals, initialized, last_seq, owner_ip,
#: lease_expiry) — the version-carrying subset of a FlowRecord.
ChainState = Tuple[List[int], bool, int, Optional[int], float]

_CHAIN_HEAD = struct.Struct("!13sB?IIdH")
_CHAIN_ACK_BODY = struct.Struct("!13sId")
_RECORD_HEAD = struct.Struct("!13sB?IIdH")
_SNAPSHOT_ENTRY = struct.Struct("!HII")
_U32 = struct.Struct("!I")


# -- chain update (head -> tail) ----------------------------------------------


def pack_chain_update(
    key: FlowKey,
    rec,
    reply: RedPlaneMessage,
    requester_ip: int,
) -> bytes:
    """Serialize one chain update: record state + reply + requester."""
    reply_bytes = reply.pack()
    head = _CHAIN_HEAD.pack(
        key.pack(),
        len(rec.vals),
        rec.initialized,
        rec.last_seq & 0xFFFFFFFF,
        (rec.owner_ip or 0) & 0xFFFFFFFF,
        rec.lease_expiry,
        len(reply_bytes),
    )
    vals = b"".join(_U32.pack(v & 0xFFFFFFFF) for v in rec.vals)
    return head + vals + reply_bytes + _U32.pack(requester_ip & 0xFFFFFFFF)


def unpack_chain_update(
    data: bytes,
) -> Tuple[FlowKey, ChainState, RedPlaneMessage, int]:
    """Inverse of :func:`pack_chain_update`; ValueError on malformed input."""
    try:
        key_bytes, nvals, initialized, last_seq, owner_ip, expiry, reply_len = (
            _CHAIN_HEAD.unpack_from(data, 0)
        )
        offset = _CHAIN_HEAD.size
        vals = list(
            struct.unpack_from(f"!{nvals}I", data, offset) if nvals else ()
        )
        offset += 4 * nvals
        reply_raw = data[offset : offset + reply_len]
        if len(reply_raw) != reply_len:
            raise ValueError("truncated chain-update reply")
        reply = RedPlaneMessage.unpack(reply_raw)
        offset += reply_len
        (requester_ip,) = _U32.unpack_from(data, offset)
    except struct.error as exc:
        raise ValueError(f"malformed chain update: {exc}") from exc
    key = FlowKey.unpack(key_bytes)
    state: ChainState = (vals, initialized, last_seq, owner_ip or None, expiry)
    return key, state, reply, requester_ip


# -- chain ack (tail -> head) -------------------------------------------------


def pack_chain_ack(key: FlowKey, seq: int, expiry: float) -> bytes:
    """Serialize one hop-by-hop chain acknowledgment."""
    return _CHAIN_ACK_BODY.pack(key.pack(), seq & 0xFFFFFFFF, expiry)


def unpack_chain_ack(data: bytes) -> Tuple[FlowKey, int, float]:
    """Inverse of :func:`pack_chain_ack`; ValueError on malformed input."""
    try:
        key_bytes, seq, expiry = _CHAIN_ACK_BODY.unpack(data)
    except struct.error as exc:
        raise ValueError(f"malformed chain ack: {exc}") from exc
    return FlowKey.unpack(key_bytes), seq, expiry


# -- durable record frames (WAL / snapshot) -----------------------------------


def pack_record(key: FlowKey, rec) -> bytes:
    """Serialize one full flow record for durable storage.

    Carries everything a restarted replica needs to serve the flow again:
    values, sequence number, lease ownership, and the bounded-inconsistency
    snapshot slots. The volatile parts of a record (buffered ``pending``
    requests) are deliberately not persisted: a crash may lose buffered
    inputs (§4.2 permits lost inputs), never acknowledged state.
    """
    head = _RECORD_HEAD.pack(
        key.pack(),
        len(rec.vals),
        rec.initialized,
        rec.last_seq & 0xFFFFFFFF,
        (rec.owner_ip or 0) & 0xFFFFFFFF,
        rec.lease_expiry,
        len(rec.snapshot_vals),
    )
    vals = b"".join(_U32.pack(v & 0xFFFFFFFF) for v in rec.vals)
    snaps = b"".join(
        _SNAPSHOT_ENTRY.pack(
            slot & 0xFFFF,
            rec.snapshot_vals[slot] & 0xFFFFFFFF,
            rec.snapshot_seqs.get(slot, 0) & 0xFFFFFFFF,
        )
        for slot in sorted(rec.snapshot_vals)
    )
    return head + vals + snaps


def unpack_record(data: bytes):
    """Inverse of :func:`pack_record`; ValueError on malformed input.

    Returns ``(key, record)``. Imported lazily to keep the codec free of
    backend imports at module load time is unnecessary — the dependency is
    one-way (backend never imports the codec's unpackers at class-def time).
    """
    from repro.statestore.backend import FlowRecord

    try:
        key_bytes, nvals, initialized, last_seq, owner_ip, expiry, nsnaps = (
            _RECORD_HEAD.unpack_from(data, 0)
        )
        offset = _RECORD_HEAD.size
        vals = list(
            struct.unpack_from(f"!{nvals}I", data, offset) if nvals else ()
        )
        offset += 4 * nvals
        snapshot_vals = {}
        snapshot_seqs = {}
        for _ in range(nsnaps):
            slot, value, seq = _SNAPSHOT_ENTRY.unpack_from(data, offset)
            offset += _SNAPSHOT_ENTRY.size
            snapshot_vals[slot] = value
            snapshot_seqs[slot] = seq
    except struct.error as exc:
        raise ValueError(f"malformed record frame: {exc}") from exc
    rec = FlowRecord(
        vals=vals,
        initialized=initialized,
        last_seq=last_seq,
        owner_ip=owner_ip or None,
        lease_expiry=expiry,
        snapshot_vals=snapshot_vals,
        snapshot_seqs=snapshot_seqs,
    )
    return FlowKey.unpack(key_bytes), rec

"""NetChain-style in-switch state store backend (Jin et al., NSDI'18).

NetChain keeps the key-value store *inside* the switches: values live in
register arrays and a query is answered at line rate, so the store RTT
is sub-RTT of the server path — the latency end of the tradeoff RedPlane
argues against for fault tolerance (switch SRAM is volatile; a crashed
switch loses every record, where RedPlane's server store loses none).

Two pieces implement the comparison point:

* :class:`NetChainBackend` — a :class:`~repro.statestore.backend.
  StateStoreBackend` whose authoritative value/sequence/lease storage is
  switch register arrays. Behind a ``StateStoreNode`` it behaves like
  the in-memory backend (commits mirror into the registers over the
  control plane) but honestly reports ``recover() == 0``: SRAM does not
  survive a crash.
* :class:`NetChainStoreBlock` — a pipeline control block for a
  :class:`~repro.switch.asic.SwitchASIC` (deployed on a ToR) that serves
  RedPlane protocol requests *from the registers on the data plane*,
  obeying the one-access-per-array-per-packet discipline the verifier
  enforces (RP101/RP150). Lease arbitration is a single atomic RMW over
  a paired register (owner, expiry); a request that loses the
  arbitration is dropped — an in-switch store has no DRAM to buffer it
  in, so the requesting switch's retransmission carries the wait.

Model fidelity notes: real NetChain has no leases (RedPlane's engine
requires them, so the block implements them in registers), and the
bounded-inconsistency snapshot path is served from the control-plane
shadow table rather than registers (snapshots are asynchronous and not
latency-critical).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.protocol import (
    MessageType,
    RedPlaneMessage,
    SWITCH_UDP_PORT,
    make_protocol_packet,
    parse_protocol_packet,
)
from repro.net import constants
from repro.net.packet import FlowKey, UDPHeader
from repro.statestore.backend import FlowRecord, StateStoreBackend
from repro.switch.pipeline import ControlBlock, PipelineContext
from repro.switch.registers import PairedRegisterArray, RegisterArray

#: UDP port an in-switch NetChain store listens on (distinct from the
#: server store's port so the protocol engine can address either).
NETCHAIN_UDP_PORT = 4808

#: Register arrays provisioned per value slot: how many 32-bit state
#: values one flow record can hold in-switch.
NETCHAIN_VALUE_SLOTS = 4


def _keep(old: int):
    """Read-only register access: ``fn(old) -> (old, old)``."""
    return old, old


def _set_one(old: int):
    """Set-to-one access returning the prior value (test-and-set)."""
    return 1, old


class NetChainBackend(StateStoreBackend):
    """Registers-as-storage backend: volatile, sub-RTT, lossy on crash."""

    name = "netchain"
    in_switch = True

    def __init__(self, label: str = "netchain", size: int = 1024) -> None:
        super().__init__()
        self.size = size
        self.reg_vals = [
            RegisterArray(f"{label}.val{i}", size, 32)
            for i in range(NETCHAIN_VALUE_SLOTS)
        ]
        self.reg_nvals = RegisterArray(f"{label}.nvals", size, 8)
        self.reg_seq = RegisterArray(f"{label}.seq", size, 32)
        self.reg_init = RegisterArray(f"{label}.init", size, 1)
        #: (owner_ip, lease_expiry_us) as one atomic pair: lease
        #: arbitration is a single stateful-ALU operation.
        self.reg_lease = PairedRegisterArray(f"{label}.lease", size, 64)
        #: Control-plane shadow of the register contents (the match-table
        #: view): key -> record mirror, plus the key -> index allocation.
        self._records: Dict[FlowKey, FlowRecord] = {}
        self._slots: Dict[FlowKey, int] = {}

    # -- slot allocation (models the key match table) -----------------------

    def slot(self, key: FlowKey) -> int:
        idx = self._slots.get(key)
        if idx is None:
            idx = len(self._slots)
            if idx >= self.size:
                raise RuntimeError(
                    f"netchain store full: {self.size} register slots"
                )
            self._slots[key] = idx
        return idx

    def sram_bits(self) -> int:
        regs = [self.reg_nvals, self.reg_seq, self.reg_init, self.reg_lease]
        return sum(r.sram_bits() for r in self.reg_vals) + sum(
            r.sram_bits() for r in regs
        )

    # -- backend contract ---------------------------------------------------

    @property
    def records(self) -> Dict[FlowKey, FlowRecord]:
        return self._records

    def commit(self, key: FlowKey, rec: FlowRecord) -> None:
        """Install the record into the registers (control-plane write)."""
        if len(rec.vals) > NETCHAIN_VALUE_SLOTS:
            raise ValueError(
                f"record holds {len(rec.vals)} values; netchain provisions "
                f"{NETCHAIN_VALUE_SLOTS} register slots"
            )
        idx = self.slot(key)
        for i, reg in enumerate(self.reg_vals):
            reg.cp_write(idx, rec.vals[i] if i < len(rec.vals) else 0)
        self.reg_nvals.cp_write(idx, len(rec.vals))
        self.reg_seq.cp_write(idx, rec.last_seq)
        self.reg_init.cp_write(idx, 1 if rec.initialized else 0)
        self.reg_lease.cp_write(
            idx, rec.owner_ip or 0, int(rec.lease_expiry)
        )

    def wipe(self) -> None:
        """Switch crash: SRAM and the installed match entries are gone."""
        self._records.clear()
        self._slots.clear()
        for reg in self.reg_vals:
            for idx in range(self.size):
                reg.cp_write(idx, 0)
        for idx in range(self.size):
            self.reg_nvals.cp_write(idx, 0)
            self.reg_seq.cp_write(idx, 0)
            self.reg_init.cp_write(idx, 0)
            self.reg_lease.cp_write(idx, 0, 0)

    def recover(self) -> int:
        return 0  # nothing survives: the fault-tolerance tradeoff

    def describe(self) -> str:
        return f"netchain({len(self._slots)}/{self.size} slots)"


class NetChainStoreBlock(ControlBlock):
    """Serves RedPlane store requests from register arrays at line rate.

    Installed on a :class:`~repro.switch.asic.SwitchASIC` acting as a
    NetChain node: protocol packets addressed to the switch on
    :data:`NETCHAIN_UDP_PORT` are consumed and answered from the
    backend's registers within the pipeline pass; everything else is
    forwarded untouched.
    """

    name = "netchain-store"

    def __init__(
        self,
        switch,
        backend: Optional[NetChainBackend] = None,
        lease_period_us: float = constants.LEASE_PERIOD_US,
        allocator=None,
    ) -> None:
        self.switch = switch
        self.backend = backend if backend is not None else NetChainBackend(
            label=f"{switch.name}.netchain"
        )
        self.lease_period_us = lease_period_us
        self.allocator = allocator
        m = switch.sim.metrics
        self._c_requests = m.counter(
            "store.requests_processed", node=switch.name)
        self._c_applied = m.counter("store.updates_applied", node=switch.name)
        self._c_stale = m.counter(
            "store.updates_rejected_stale", node=switch.name)
        self._c_leases = m.counter("store.leases_granted", node=switch.name)
        g = m.gauge("store.backend.netchain_register_bits", node=switch.name)
        g.set(self.backend.sram_bits())

    def resource_usage(self) -> Dict[str, float]:
        return {"sram_bits": float(self.backend.sram_bits())}

    # -- pipeline entry point ------------------------------------------------

    def process(self, ctx: PipelineContext, switch) -> bool:
        pkt = ctx.pkt
        if (
            pkt.ip is None
            or pkt.ip.dst != switch.ip
            or not isinstance(pkt.l4, UDPHeader)
            or pkt.l4.dport != NETCHAIN_UDP_PORT
        ):
            return True
        msg = parse_protocol_packet(pkt)
        self._c_requests.inc()
        self._serve(ctx, switch, msg, pkt.ip.src, int(pkt.meta.get("uid", 0)))
        ctx.consume()
        return False

    def _serve(self, ctx: PipelineContext, switch, msg: RedPlaneMessage,
               requester_ip: int, origin_uid: int) -> None:
        now = switch.sim.now
        key = msg.flow_key
        rec = self.backend.record(key)
        idx = self.backend.slot(key)
        mt = msg.msg_type

        if mt is MessageType.READ_BUFFER_REQ:
            last_seq = self.backend.reg_seq.access(ctx, idx, _keep)
            self._emit_reply(ctx, switch, RedPlaneMessage(
                seq=last_seq,
                msg_type=MessageType.READ_BUFFER_ACK,
                flow_key=key,
                piggyback=msg.piggyback,
            ), requester_ip, origin_uid)
            return

        if mt is MessageType.SNAPSHOT_REPL_REQ:
            # Asynchronous snapshots go through the control-plane shadow
            # table: they are not on the latency-critical register path.
            slot = msg.aux
            if msg.seq >= rec.snapshot_seqs.get(slot, -1):
                rec.snapshot_vals[slot] = msg.vals[0] if msg.vals else 0
                rec.snapshot_seqs[slot] = msg.seq
                rec.initialized = True
                self._c_applied.inc()
            self._emit_reply(ctx, switch, RedPlaneMessage(
                seq=rec.snapshot_seqs.get(slot, msg.seq),
                msg_type=MessageType.SNAPSHOT_REPL_ACK,
                flow_key=key,
                vals=[rec.snapshot_vals.get(slot, 0)],
                aux=slot,
            ), requester_ip, origin_uid)
            return

        # Lease arbitration: one atomic RMW over the (owner, expiry)
        # pair. Grant if the lease is free, expired, or already ours.
        deadline = int(now + self.lease_period_us)
        granted = self.backend.reg_lease.access(
            ctx, idx,
            lambda owner, expiry: (
                (requester_ip, deadline, 1)
                if (owner == 0 or owner == requester_ip or expiry <= now)
                else (owner, expiry, 0)
            ),
        )
        if not granted:
            # Held by another switch. No DRAM to buffer the request in:
            # drop it and let the requester's retransmission retry until
            # the current lease lapses (fail-safe, never state-unsafe).
            return
        if rec.owner_ip != requester_ip:
            self._c_leases.inc()
        rec.owner_ip = requester_ip
        rec.lease_expiry = float(deadline)

        if mt is MessageType.LEASE_NEW_REQ:
            was_init = self.backend.reg_init.access(ctx, idx, _set_one)
            init_vals: List[int] = []
            if not was_init and self.allocator is not None:
                init_vals = list(self.allocator(key))
            n_new = len(init_vals)
            nvals = self.backend.reg_nvals.access(
                ctx, idx,
                lambda old: (old, old) if was_init else (n_new, n_new),
            )
            vals: List[int] = []
            for i, reg in enumerate(self.backend.reg_vals):
                seed = init_vals[i] if i < n_new else 0
                cur = reg.access(
                    ctx, idx,
                    lambda old, v=seed: (old, old) if was_init else (v, v),
                )
                vals.append(cur)
            last_seq = self.backend.reg_seq.access(ctx, idx, _keep)
            rec.vals = vals[:nvals]
            rec.initialized = True
            rec.last_seq = last_seq
            self._emit_reply(ctx, switch, RedPlaneMessage(
                seq=last_seq,
                msg_type=MessageType.LEASE_NEW_ACK,
                flow_key=key,
                vals=vals[:nvals],
                piggyback=msg.piggyback,
                aux=1 if was_init else 0,
            ), requester_ip, origin_uid)
            return

        if mt is MessageType.REPL_WRITE_REQ:
            seq = msg.seq & 0xFFFFFFFF
            old_seq = self.backend.reg_seq.access(
                ctx, idx, lambda old: (max(old, seq), old)
            )
            applied = seq > old_seq
            if applied:
                self._c_applied.inc()
                self.backend.reg_init.access(ctx, idx, _set_one)
                n_new = len(msg.vals)
                self.backend.reg_nvals.access(
                    ctx, idx, lambda _old: (n_new, n_new)
                )
                for i, reg in enumerate(self.backend.reg_vals):
                    seed = msg.vals[i] if i < n_new else 0
                    reg.access(ctx, idx, lambda _old, v=seed: (v, v))
                rec.vals = list(msg.vals)
                rec.initialized = True
                rec.last_seq = seq
            else:
                self._c_stale.inc()
            self._emit_reply(ctx, switch, RedPlaneMessage(
                seq=max(old_seq, seq),
                msg_type=MessageType.REPL_WRITE_ACK,
                flow_key=key,
                piggyback=msg.piggyback,
            ), requester_ip, origin_uid)
            return

        if mt is MessageType.LEASE_RENEW_REQ:
            last_seq = self.backend.reg_seq.access(ctx, idx, _keep)
            self._emit_reply(ctx, switch, RedPlaneMessage(
                seq=last_seq,
                msg_type=MessageType.LEASE_RENEW_ACK,
                flow_key=key,
            ), requester_ip, origin_uid)
            return

        raise ValueError(f"unexpected request type {mt!r}")

    def _emit_reply(self, ctx: PipelineContext, switch,
                    reply: RedPlaneMessage, requester_ip: int,
                    origin_uid: int) -> None:
        pkt = make_protocol_packet(
            switch.ip, requester_ip, reply,
            sport=NETCHAIN_UDP_PORT, dport=SWITCH_UDP_PORT,
        )
        if origin_uid:
            pkt.meta["parent_uid"] = origin_uid
        ctx.emit(pkt)

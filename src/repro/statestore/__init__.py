"""External state store: sharded, chain-replicated in-memory KV servers."""

from repro.statestore.server import (
    AUX_FRESH_FLOW,
    AUX_MIGRATED_STATE,
    CHAIN_UDP_PORT,
    FlowRecord,
    StateStoreNode,
    build_chain,
    reconfigure_chain,
)
from repro.statestore.failover import MutableShardMap, StoreFailoverCoordinator
from repro.statestore.sharding import ShardAddress, ShardMap

__all__ = [
    "StateStoreNode",
    "FlowRecord",
    "build_chain",
    "reconfigure_chain",
    "ShardAddress",
    "ShardMap",
    "MutableShardMap",
    "StoreFailoverCoordinator",
    "CHAIN_UDP_PORT",
    "AUX_FRESH_FLOW",
    "AUX_MIGRATED_STATE",
]

"""External state store: pluggable backends behind a chain-replicated RPC layer.

The package splits into three layers (docs/STATESTORE.md):

* :mod:`repro.statestore.server` — the transport/chain layer
  (:class:`StateStoreNode`): RPC handling, leases, sequencing, chain
  replication. Storage-agnostic.
* :mod:`repro.statestore.backend` — the :class:`StateStoreBackend`
  protocol plus the in-memory reference backend; :mod:`~.wal` adds the
  persistent write-ahead-log backend, :mod:`~.netchain` the NetChain-style
  in-switch backend.
* :mod:`repro.statestore.codec` — the wire/disk record formats shared by
  chain replication and the WAL.
"""

from repro.statestore.server import (
    AUX_FRESH_FLOW,
    AUX_MIGRATED_STATE,
    CHAIN_UDP_PORT,
    StateStoreNode,
    build_chain,
    reconfigure_chain,
)
from repro.statestore.backend import (
    FlowRecord,
    InMemoryBackend,
    StateStoreBackend,
)
from repro.statestore.codec import (
    pack_chain_update,
    pack_record,
    unpack_chain_update,
    unpack_record,
)
from repro.statestore.wal import WALBackend
from repro.statestore.netchain import (
    NETCHAIN_UDP_PORT,
    NetChainBackend,
    NetChainStoreBlock,
)
from repro.statestore.failover import MutableShardMap, StoreFailoverCoordinator
from repro.statestore.sharding import ShardAddress, ShardMap

__all__ = [
    "StateStoreNode",
    "FlowRecord",
    "StateStoreBackend",
    "InMemoryBackend",
    "WALBackend",
    "NetChainBackend",
    "NetChainStoreBlock",
    "build_chain",
    "reconfigure_chain",
    "ShardAddress",
    "ShardMap",
    "MutableShardMap",
    "StoreFailoverCoordinator",
    "CHAIN_UDP_PORT",
    "NETCHAIN_UDP_PORT",
    "AUX_FRESH_FLOW",
    "AUX_MIGRATED_STATE",
    "pack_chain_update",
    "unpack_chain_update",
    "pack_record",
    "unpack_record",
]

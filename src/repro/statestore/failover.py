"""State-store failure handling: chain reconfiguration + switch updates.

The paper delegates store fault tolerance to chain replication with a
group of three (§5.1.1) and does not evaluate store failures; production
chain replication needs a coordinator that detects dead nodes, rewires the
chain, and tells clients where the new head is. This module supplies that
piece so the reproduction is a complete system:

* :class:`StoreFailoverCoordinator` heartbeats every store node; on a
  missed-heartbeat threshold it splices the node out of its chain
  (:func:`reconfigure_chain`) and pushes the new head address to every
  RedPlane switch through the switch control plane (a table update — the
  slow path, which is fine: store failures are rare and the chain keeps
  serving during the update).

The shard map object is shared by reference with the switches' engines,
so a head change is one in-place update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.simulator import Simulator
from repro.core.protocol import STORE_UDP_PORT
from repro.statestore.server import StateStoreNode, reconfigure_chain
from repro.statestore.sharding import ShardAddress, ShardMap
from repro.telemetry import trace as tt


class MutableShardMap(ShardMap):
    """A shard map whose heads can be repointed after chain failover."""

    def set_head(self, shard_index: int, address: ShardAddress) -> None:
        if not 0 <= shard_index < len(self._shards):
            raise IndexError(f"no shard {shard_index}")
        self._shards[shard_index] = address


@dataclass
class _ShardChain:
    nodes: List[StateStoreNode]
    alive: List[StateStoreNode] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.alive = list(self.nodes)


class StoreFailoverCoordinator:
    """Detects store-node failures and repairs chains + shard maps."""

    def __init__(
        self,
        sim: Simulator,
        shard_map: MutableShardMap,
        chains: List[List[StateStoreNode]],
        switches: Optional[List] = None,
        heartbeat_interval_us: float = 100_000.0,
        missed_threshold: int = 3,
    ) -> None:
        if shard_map.num_shards != len(chains):
            raise ValueError("one chain per shard required")
        self.sim = sim
        self.shard_map = shard_map
        self.chains = [_ShardChain(nodes=list(chain)) for chain in chains]
        #: Switches whose control planes get shard-map update operations.
        self.switches = list(switches or [])
        self.heartbeat_interval_us = heartbeat_interval_us
        self.missed_threshold = missed_threshold
        self._missed: Dict[str, int] = {}
        self._c_reconfigurations = sim.metrics.counter(
            "store.chain_reconfigurations"
        )
        self.running = False

    @property
    def reconfigurations(self) -> int:
        return int(self._c_reconfigurations.value)

    def start(self) -> None:
        self.running = True
        self.sim.schedule(self.heartbeat_interval_us, self._tick)

    def stop(self) -> None:
        self.running = False

    # -- heartbeating ---------------------------------------------------------

    def _tick(self) -> None:
        if not self.running:
            return
        for shard_index, chain in enumerate(self.chains):
            for node in list(chain.alive):
                # Heartbeat: in the prototype this is an RPC; the model
                # reads liveness directly with the same detection latency
                # (interval x threshold).
                if node.failed:
                    missed = self._missed.get(node.name, 0) + 1
                    self._missed[node.name] = missed
                    if missed >= self.missed_threshold:
                        self._evict(shard_index, chain, node)
                else:
                    self._missed[node.name] = 0
        self.sim.schedule(self.heartbeat_interval_us, self._tick)

    def _evict(self, shard_index: int, chain: _ShardChain,
               node: StateStoreNode) -> None:
        chain.alive = [n for n in chain.alive if n is not node]
        if not any(not n.failed for n in chain.alive):
            raise RuntimeError(
                f"shard {shard_index}: every chain replica failed"
            )
        old_head_ip = self.shard_map.addresses()[shard_index].ip
        # Rewire the survivors; the new head re-propagates any chain
        # updates the evicted node may have swallowed mid-propagation.
        chain.alive = reconfigure_chain(chain.alive)
        new_head = chain.alive[0]
        self._c_reconfigurations.inc()
        self.sim.tracer.emit(
            tt.FAILOVER,
            shard=shard_index,
            evicted=node.name,
            new_head=new_head.name,
            survivors=len(chain.alive),
        )
        if new_head.ip != old_head_ip:
            address = ShardAddress(ip=new_head.ip, udp_port=STORE_UDP_PORT)
            self.shard_map.set_head(shard_index, address)
            # The shard map is shared by reference with the engines, but a
            # real deployment installs the new head through each switch's
            # control plane — model that latency.
            for switch in self.switches:
                switch.control_plane.submit(lambda: None)

    # -- introspection ----------------------------------------------------------

    def detection_latency_us(self) -> float:
        """Worst-case failure-detection time of the heartbeat scheme."""
        return self.heartbeat_interval_us * self.missed_threshold

    def alive_chain(self, shard_index: int) -> List[StateStoreNode]:
        return list(self.chains[shard_index].alive)

"""Pluggable storage backends for the state store.

:class:`~repro.statestore.server.StateStoreNode` is the *transport*
layer of the store — RPC handling, lease arbitration, and chain
orchestration. Where the per-flow records actually live is a backend
decision, expressed by the duck-typed :class:`StateStoreBackend`
contract below. Three implementations ship with the repo:

=====================  ========  =========  ====================================
backend                durable   in-switch  survives
=====================  ========  =========  ====================================
:class:`InMemoryBackend`  no        no      process restarts only (DRAM model)
``wal.WALBackend``        yes       no      full crash: replays log + snapshot
``netchain.NetChainBackend`` no     yes     nothing: SRAM registers are volatile
=====================  ========  =========  ====================================

Contract semantics (the conformance suite in ``tests/test_backends.py``
holds every backend to these):

* **ordered mapping** — ``records`` is a Mapping whose iteration order is
  insertion order; the invariant monitors and verdict reports iterate it
  into ordered effects, so backends must not expose set-ordered views.
* **idempotent writes** — ``commit(key, rec)`` is called after *every*
  record mutation, before any reply or chain propagation leaves the
  node. Committing the same record state twice must be harmless: chain
  retransmissions and re-propagated in-flight updates re-commit.
* **fail-safe durability** — ``wipe()`` models the crash (all volatile
  state is gone); ``recover()`` rebuilds whatever the medium preserved
  and returns the number of records restored. Because commit runs
  before the reply, any state a switch ever saw acknowledged is either
  recovered or the backend is honestly non-durable (returns 0).
* **volatile transport state** — buffered ``pending`` requests and the
  node's chain-inflight ledger are transport concerns and deliberately
  not the backend's to preserve (§4.2: inputs may be lost, outputs may
  be lost; acknowledged state may not).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.protocol import RedPlaneMessage
from repro.net.packet import FlowKey


@dataclass
class FlowRecord:
    """Everything the store knows about one flow."""

    vals: List[int] = field(default_factory=list)
    initialized: bool = False
    last_seq: int = 0
    owner_ip: Optional[int] = None
    lease_expiry: float = 0.0
    #: Buffered lease requests from other switches (head node only), as
    #: ``(msg, requester_ip, origin_uid)`` — the origin uid is the span id
    #: of the request packet, threaded into the eventual reply's lineage.
    pending: Deque[Tuple[RedPlaneMessage, int, int]] = field(
        default_factory=deque)
    #: Bounded-inconsistency snapshots: slot index -> (value, epoch seq).
    snapshot_vals: Dict[int, int] = field(default_factory=dict)
    snapshot_seqs: Dict[int, int] = field(default_factory=dict)

    def lease_active(self, now: float) -> bool:
        return self.owner_ip is not None and self.lease_expiry > now

    def held_by_other(self, requester_ip: int, now: float) -> bool:
        return self.lease_active(now) and self.owner_ip != requester_ip


class StateStoreBackend:
    """Base class and contract for state-store storage backends.

    The transport layer only ever talks to a backend through the methods
    below; subclasses override what their medium requires and inherit
    no-op defaults for the rest (an in-memory dict needs no commit).
    """

    #: Human-readable backend identifier (trace events, reports).
    name = "backend"
    #: Does acknowledged state survive :meth:`wipe` + :meth:`recover`?
    durable = False
    #: Does the backend serve from switch register arrays (sub-RTT path)?
    in_switch = False

    def __init__(self) -> None:
        self.node = None

    def bind(self, node) -> None:
        """Attach to the owning node (simulator, metrics, name access)."""
        self.node = node

    @property
    def records(self) -> Dict[FlowKey, FlowRecord]:
        """The live record mapping (insertion-ordered)."""
        raise NotImplementedError

    def get(self, key: FlowKey) -> Optional[FlowRecord]:
        return self.records.get(key)

    def record(self, key: FlowKey) -> FlowRecord:
        """Get-or-create the record for ``key``."""
        rec = self.records.get(key)
        if rec is None:
            rec = FlowRecord()
            self.records[key] = rec
        return rec

    def commit(self, key: FlowKey, rec: FlowRecord) -> None:
        """Make ``rec`` durable (idempotent; called before every reply)."""

    def wipe(self) -> None:
        """Crash: drop all volatile state. Durable media stay on disk."""
        raise NotImplementedError

    def recover(self) -> int:
        """Rebuild records from the durable medium; returns the count."""
        return 0

    def describe(self) -> str:
        """One-line backend description for reports and traces."""
        return self.name

    def close(self) -> None:
        """Release external resources (file handles); idempotent."""


class InMemoryBackend(StateStoreBackend):
    """The reference backend: a plain in-memory dict (store-server DRAM).

    Bit-identical to the storage the pre-refactor ``StateStoreNode``
    embedded: no commit cost, survives a process *restart* (the node's
    ``fail()``/``recover()`` pair models a reachable-again server whose
    DRAM is intact) but not a :meth:`wipe` crash.
    """

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._records: Dict[FlowKey, FlowRecord] = {}

    @property
    def records(self) -> Dict[FlowKey, FlowRecord]:
        return self._records

    def wipe(self) -> None:
        self._records.clear()

    def recover(self) -> int:
        return 0

    def describe(self) -> str:
        return f"memory({len(self._records)} records)"

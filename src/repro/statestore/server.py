"""The external state store: in-memory KV servers with chain replication.

Each :class:`StateStoreNode` is a commodity server holding per-flow records
(state values, last applied sequence number, lease ownership). Requests
arrive at the chain head, which runs the protocol decision logic of §5.1-5.3:

* **lease management** — grant a lease only if no other switch holds an
  active one; otherwise buffer the request until the current lease expires
  (Fig 7b), which is also how state migrates between switches;
* **sequencing** — apply a state update only if its per-flow sequence
  number is newer than the last applied one (Fig 6b);
* **piggyback echo** — return the piggybacked output packet in the
  acknowledgment so the switch can release it (§5.1, delay-line memory).

Mutating requests are propagated down the chain (van Renesse & Schneider
chain replication, group size 3 in the prototype); the tail emits the
acknowledgment. Non-mutating read-buffer requests bounce off the head.

Chain updates are individually acknowledged hop-by-hop from the tail back
toward the head: every node remembers the updates it forwarded downstream
until the matching chain ack returns. When a chain is rewired around a
dead node (:func:`reconfigure_chain`), the new head re-propagates its
unacknowledged updates down the repaired chain, so an update stranded
mid-propagation by the crash still reaches the tail — and the switch's
stranded reply is regenerated — without waiting for a switch-side
retransmission timeout.

This module is the store's *transport* layer only. Where the records
live is a pluggable decision: every mutation is committed through a
:class:`~repro.statestore.backend.StateStoreBackend` before the reply
or chain propagation leaves the node (write-ahead semantics), so a
durable backend guarantees any acknowledged state survives a
:meth:`StateStoreNode.crash` + :meth:`StateStoreNode.restart` cycle.
The wire formats live in :mod:`repro.statestore.codec`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.mutation import mutation_active
from repro.net import constants
from repro.net.hosts import Host
from repro.net.packet import FlowKey, Packet
from repro.net.simulator import Simulator
from repro.core.protocol import (
    MessageType,
    RedPlaneMessage,
    STORE_UDP_PORT,
    SWITCH_UDP_PORT,
    make_protocol_packet,
    parse_protocol_packet,
)
from repro.statestore.backend import (
    FlowRecord,
    InMemoryBackend,
    StateStoreBackend,
)
from repro.statestore.codec import (
    CHAIN_ACK,
    CHAIN_UPDATE,
    pack_chain_ack,
    pack_chain_update,
    unpack_chain_ack,
    unpack_chain_update,
)
from repro.telemetry import trace as tt

#: UDP port used for chain-replication propagation between store nodes.
CHAIN_UDP_PORT = 4802

#: Backward-compatible aliases: the chain codec moved to
#: :mod:`repro.statestore.codec`.
_CHAIN_UPDATE = CHAIN_UPDATE
_CHAIN_ACK = CHAIN_ACK
_pack_chain_update = pack_chain_update
_unpack_chain_update = unpack_chain_update

#: ACK aux values: did the flow's state already exist at the store?
AUX_FRESH_FLOW = 0
AUX_MIGRATED_STATE = 1

#: Computes initial state values for a brand-new flow. Models global state
#: (e.g. a NAT's port pool) being sharded across and managed by the store
#: servers (§3, "Scope"): the allocation happens here, not on the switch.
StateAllocator = Callable[[FlowKey], List[int]]


class StateStoreNode(Host):
    """One state-store server process (head, middle, or tail of a chain)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: int,
        lease_period_us: float = constants.LEASE_PERIOD_US,
        proc_delay_us: float = constants.STORE_PROC_US,
        allocator: Optional[StateAllocator] = None,
        backend: Optional[StateStoreBackend] = None,
    ) -> None:
        super().__init__(sim, name, ip)
        self.lease_period_us = lease_period_us
        self.proc_delay_us = proc_delay_us
        #: Per-request service time (us). Zero models latency only; set to
        #: ``1 / capacity`` to model a finite-capacity server whose queue
        #: becomes the bottleneck for write-heavy workloads (Figs 12/13).
        self.service_time_us = 0.0
        self._busy_until = 0.0
        self.allocator = allocator
        #: Storage backend holding the per-flow records. Defaults to the
        #: in-memory reference backend (bit-identical to the historical
        #: embedded dict).
        self.backend = backend if backend is not None else InMemoryBackend()
        self.backend.bind(self)
        #: Next node in the chain (None for the tail / unreplicated store).
        self.successor_ip: Optional[int] = None
        #: Chain updates forwarded downstream and not yet acknowledged:
        #: key -> (version, reply, requester_ip, upstream_ip, origin_uid).
        #: ``version`` is the (last_seq, lease_expiry) pair the update
        #: carried; ``upstream_ip`` is where the update came from (None at
        #: the head) and where the eventual chain ack is forwarded;
        #: ``origin_uid`` is the span id of the request packet that caused
        #: the update (0 when unknown), kept so a post-splice
        #: re-propagation preserves the reply's lineage.
        self._chain_inflight: Dict[
            FlowKey,
            Tuple[Tuple[int, float], RedPlaneMessage, int, Optional[int], int],
        ] = {}
        self.bind(STORE_UDP_PORT, self._on_request_packet)
        self.bind(CHAIN_UDP_PORT, self._on_chain_packet)
        # Per-node protocol statistics, published through the run's metric
        # registry (labeled by store node); the historical integer
        # attributes below are read-only properties over these counters.
        m = sim.metrics
        self._c_requests = m.counter("store.requests_processed", node=name)
        self._c_applied = m.counter("store.updates_applied", node=name)
        self._c_stale = m.counter("store.updates_rejected_stale", node=name)
        self._c_leases = m.counter("store.leases_granted", node=name)
        self._c_buffered = m.counter("store.requests_buffered", node=name)
        self._c_repairs = m.counter("store.chain_repairs", node=name)
        self._c_recoveries = m.counter("store.backend.recoveries", node=name)

    @property
    def requests_processed(self) -> int:
        return int(self._c_requests.value)

    @property
    def updates_applied(self) -> int:
        return int(self._c_applied.value)

    @property
    def updates_rejected_stale(self) -> int:
        return int(self._c_stale.value)

    @property
    def leases_granted(self) -> int:
        return int(self._c_leases.value)

    @property
    def requests_buffered(self) -> int:
        return int(self._c_buffered.value)

    @property
    def chain_repairs(self) -> int:
        return int(self._c_repairs.value)

    # -- helpers ------------------------------------------------------------

    @property
    def records(self) -> Dict[FlowKey, FlowRecord]:
        """The backend's live record mapping (insertion-ordered)."""
        return self.backend.records

    def record(self, key: FlowKey) -> FlowRecord:
        return self.backend.record(key)

    # -- crash / recovery ---------------------------------------------------

    def crash(self) -> None:
        """Hard crash: the process dies and its volatile memory is lost.

        Unlike a plain :meth:`fail` (unreachable but DRAM intact), a crash
        wipes the backend's volatile state and the chain-inflight ledger.
        Whatever the backend persisted to a durable medium stays there for
        :meth:`restart` to replay.
        """
        self.fail()
        self.backend.wipe()
        self._chain_inflight.clear()
        self._busy_until = 0.0

    def restart(self) -> int:
        """Restart after a crash, rebuilding records from the backend.

        Returns the number of records recovered. Emits a ``store.recover``
        trace event and flushes the fast-path lease/snapshot scopes: any
        cached lease or snapshot decision predating the crash may refer to
        state the (possibly non-durable) backend no longer holds.
        """
        recovered = self.backend.recover()
        self.recover()
        self._c_recoveries.inc()
        self.sim.tracer.emit(
            tt.STORE_RECOVER,
            node=self.name,
            records=recovered,
            backend=self.backend.name,
        )
        fp = self.sim.fastpath
        if fp is not None:
            fp.bus.publish("lease")
            fp.bus.publish("snapshot")
        return recovered

    def _reply(self, msg: RedPlaneMessage, to_ip: int,
               origin_uid: int = 0) -> None:
        # Processing time was already paid on the receive path.
        pkt = make_protocol_packet(
            self.ip, to_ip, msg, sport=STORE_UDP_PORT, dport=SWITCH_UDP_PORT
        )
        if origin_uid:
            # The reply's span descends from the request copy that won the
            # race to the store; the switch reads this as the ack's cause.
            pkt.meta["parent_uid"] = origin_uid
        self.send(pkt)

    # -- request path (chain head) -------------------------------------------

    def _on_request_packet(self, pkt: Packet) -> None:
        msg = parse_protocol_packet(pkt)
        requester_ip = pkt.ip.src
        origin_uid = int(pkt.meta.get("uid", 0))
        delay = self.proc_delay_us
        if self.service_time_us > 0.0:
            # Finite-capacity server: requests serialize through it.
            start = max(self.sim.now, self._busy_until)
            self._busy_until = start + self.service_time_us
            delay = (self._busy_until - self.sim.now)
        self.sim.schedule(delay, self._process_request, msg, requester_ip,
                          origin_uid)

    def _process_request(self, msg: RedPlaneMessage, requester_ip: int,
                         origin_uid: int = 0) -> None:
        if self.failed:
            return
        self._c_requests.inc()
        now = self.sim.now
        rec = self.record(msg.flow_key)

        if msg.msg_type is MessageType.READ_BUFFER_REQ:
            # Non-mutating: bounce the piggybacked packet straight back with
            # the last sequence number this store has applied.
            reply = RedPlaneMessage(
                seq=rec.last_seq,
                msg_type=MessageType.READ_BUFFER_ACK,
                flow_key=msg.flow_key,
                piggyback=msg.piggyback,
            )
            self._reply(reply, requester_ip, origin_uid)
            return

        if msg.msg_type is MessageType.SNAPSHOT_REPL_REQ:
            # Asynchronous snapshots are filtered by epoch sequencing only;
            # they never block on leases (bounded-inconsistency mode, §5.4).
            reply = self._apply(rec, msg, requester_ip, now)
            self.backend.commit(msg.flow_key, rec)
            self._propagate_or_reply(msg.flow_key, rec, reply, requester_ip,
                                     origin_uid=origin_uid)
            return

        if rec.held_by_other(requester_ip, now):
            # Another switch owns this flow: buffer until the lease expires
            # (this is both correctness under concurrent access, Fig 7b, and
            # the state-migration wait during failover). Header-only
            # retransmissions of an already-buffered request are deduped;
            # piggybacked requests are distinct held packets and all kept.
            if msg.piggyback is None and any(
                p_msg.msg_type is msg.msg_type and p_ip == requester_ip
                for p_msg, p_ip, _p_uid in rec.pending
            ):
                return
            rec.pending.append((msg, requester_ip, origin_uid))
            self._c_buffered.inc()
            self.sim.schedule_at(
                rec.lease_expiry + 1e-6, self._drain_pending, msg.flow_key
            )
            return

        reply = self._apply(rec, msg, requester_ip, now)
        # Write-ahead: the record is durable before the reply (or the
        # chain update that will eventually produce it) leaves this node.
        self.backend.commit(msg.flow_key, rec)
        self._propagate_or_reply(msg.flow_key, rec, reply, requester_ip,
                                 origin_uid=origin_uid)

    def _apply(
        self,
        rec: FlowRecord,
        msg: RedPlaneMessage,
        requester_ip: int,
        now: float,
    ) -> RedPlaneMessage:
        """Run the protocol state machine for one request at the head."""
        if msg.msg_type is MessageType.LEASE_NEW_REQ:
            migrated = rec.initialized
            if not rec.initialized:
                rec.vals = (
                    list(self.allocator(msg.flow_key)) if self.allocator else []
                )
                rec.initialized = True
            self._grant(rec, requester_ip, now)
            return RedPlaneMessage(
                seq=rec.last_seq,
                msg_type=MessageType.LEASE_NEW_ACK,
                flow_key=msg.flow_key,
                vals=list(rec.vals),
                piggyback=msg.piggyback,
                aux=AUX_MIGRATED_STATE if migrated else AUX_FRESH_FLOW,
            )

        if msg.msg_type is MessageType.REPL_WRITE_REQ:
            self._grant(rec, requester_ip, now)
            # ``skip_store_dedup`` is a seeded bug for mutation-testing the
            # chaos fuzzer (repro.mutation): with it on, the Fig 6b stale
            # guard is bypassed and a late duplicate regresses the record.
            if msg.seq > rec.last_seq or mutation_active("skip_store_dedup"):
                rec.vals = list(msg.vals)
                rec.initialized = True
                rec.last_seq = msg.seq
                self._c_applied.inc()
            else:
                # Out-of-order or duplicate: never let an older value
                # overwrite a newer one (Fig 6b).
                self._c_stale.inc()
            return RedPlaneMessage(
                seq=rec.last_seq,
                msg_type=MessageType.REPL_WRITE_ACK,
                flow_key=msg.flow_key,
                piggyback=msg.piggyback,
            )

        if msg.msg_type is MessageType.LEASE_RENEW_REQ:
            self._grant(rec, requester_ip, now)
            return RedPlaneMessage(
                seq=rec.last_seq,
                msg_type=MessageType.LEASE_RENEW_ACK,
                flow_key=msg.flow_key,
            )

        if msg.msg_type is MessageType.SNAPSHOT_REPL_REQ:
            slot = msg.aux
            if msg.seq >= rec.snapshot_seqs.get(slot, -1):
                rec.snapshot_vals[slot] = msg.vals[0] if msg.vals else 0
                rec.snapshot_seqs[slot] = msg.seq
                rec.initialized = True
                self._c_applied.inc()
            # Carry the applied slot value so chain replicas converge even
            # when an older epoch was rejected at the head.
            return RedPlaneMessage(
                seq=rec.snapshot_seqs.get(slot, msg.seq),
                msg_type=MessageType.SNAPSHOT_REPL_ACK,
                flow_key=msg.flow_key,
                vals=[rec.snapshot_vals.get(slot, 0)],
                aux=slot,
            )

        raise ValueError(f"unexpected request type {msg.msg_type!r}")

    def _grant(self, rec: FlowRecord, requester_ip: int, now: float) -> None:
        if rec.owner_ip != requester_ip:
            self._c_leases.inc()
        rec.owner_ip = requester_ip
        rec.lease_expiry = now + self.lease_period_us

    def _drain_pending(self, key: FlowKey) -> None:
        """Process buffered requests once the blocking lease has expired."""
        if self.failed:
            return
        rec = self.records.get(key)
        if rec is None or not rec.pending:
            return
        now = self.sim.now
        if rec.lease_active(now):
            head_msg, head_ip, _head_uid = rec.pending[0]
            if rec.owner_ip != head_ip:
                # Still owned by someone else; wait for the new expiry.
                self.sim.schedule_at(
                    rec.lease_expiry + 1e-6, self._drain_pending, key
                )
                return
        while rec.pending:
            msg, requester_ip, origin_uid = rec.pending.popleft()
            if rec.held_by_other(requester_ip, now):
                rec.pending.appendleft((msg, requester_ip, origin_uid))
                self.sim.schedule_at(
                    rec.lease_expiry + 1e-6, self._drain_pending, key
                )
                return
            reply = self._apply(rec, msg, requester_ip, now)
            self.backend.commit(key, rec)
            self._propagate_or_reply(key, rec, reply, requester_ip,
                                     origin_uid=origin_uid)

    # -- chain replication ------------------------------------------------------

    def _propagate_or_reply(
        self,
        key: FlowKey,
        rec: FlowRecord,
        reply: RedPlaneMessage,
        requester_ip: int,
        upstream_ip: Optional[int] = None,
        origin_uid: int = 0,
    ) -> None:
        if self.successor_ip is None:
            self._reply(reply, requester_ip, origin_uid)
            if upstream_ip is not None:
                # Tail: confirm the update up-chain so predecessors can
                # retire their in-flight copies.
                self._send_chain_ack(
                    key, rec.last_seq, rec.lease_expiry, upstream_ip,
                    origin_uid,
                )
            return
        version = (rec.last_seq, rec.lease_expiry)
        self._chain_inflight[key] = (
            version, reply, requester_ip, upstream_ip, origin_uid
        )
        payload = bytes([CHAIN_UPDATE]) + pack_chain_update(
            key, rec, reply, requester_ip
        )
        pkt = Packet.udp(
            self.ip, self.successor_ip, CHAIN_UDP_PORT, CHAIN_UDP_PORT, payload
        )
        pkt.meta["rp_kind"] = "chain"
        if origin_uid:
            # Chain updates (and, at the tail, the reply) descend from the
            # request copy that reached the head; the meta slot doubles as
            # the origin-uid carrier between chain hops.
            pkt.meta["parent_uid"] = origin_uid
        self.send(pkt)

    def _send_chain_ack(
        self, key: FlowKey, seq: int, expiry: float, to_ip: int,
        origin_uid: int = 0,
    ) -> None:
        payload = bytes([CHAIN_ACK]) + pack_chain_ack(key, seq, expiry)
        pkt = Packet.udp(self.ip, to_ip, CHAIN_UDP_PORT, CHAIN_UDP_PORT, payload)
        pkt.meta["rp_kind"] = "chain"
        if origin_uid:
            pkt.meta["parent_uid"] = origin_uid
        self.send(pkt)

    def _on_chain_packet(self, pkt: Packet) -> None:
        kind, body = pkt.payload[0], pkt.payload[1:]
        if kind == CHAIN_ACK:
            key, seq, expiry = unpack_chain_ack(body)
            self._handle_chain_ack(key, seq, expiry)
            return
        key, state, reply, requester_ip = unpack_chain_update(body)
        origin_uid = int(pkt.meta.get("parent_uid", 0))
        self.sim.schedule(
            self.proc_delay_us, self._apply_chain, key, state, reply,
            requester_ip, pkt.ip.src, origin_uid,
        )

    def _handle_chain_ack(self, key: FlowKey, seq: int, expiry: float) -> None:
        if self.failed:
            return
        entry = self._chain_inflight.get(key)
        if entry is None:
            return
        version, _reply, _requester_ip, upstream_ip, origin_uid = entry
        if version <= (seq, expiry):
            del self._chain_inflight[key]
        if upstream_ip is not None:
            # Relay the confirmation toward the head with the *received*
            # version: an ack for an older update must not retire a newer
            # in-flight copy held upstream.
            self._send_chain_ack(key, seq, expiry, upstream_ip, origin_uid)

    def _apply_chain(
        self,
        key: FlowKey,
        state: Tuple[List[int], bool, int, Optional[int], float],
        reply: RedPlaneMessage,
        requester_ip: int,
        upstream_ip: Optional[int] = None,
        origin_uid: int = 0,
    ) -> None:
        if self.failed:
            return
        rec = self.record(key)
        # Chain updates cross the (reorderable) fabric: apply only if the
        # carried version is not older than what this replica holds — a
        # late-arriving older update must never regress the record. The
        # version is (last_seq, lease_expiry): sequence numbers order
        # writes, lease expiry orders grants/renewals at equal sequence.
        vals, initialized, last_seq, owner_ip, lease_expiry = state
        if (last_seq, lease_expiry) >= (rec.last_seq, rec.lease_expiry):
            rec.vals = list(vals)
            rec.initialized = rec.initialized or initialized
            rec.last_seq = last_seq
            rec.owner_ip = owner_ip
            rec.lease_expiry = lease_expiry
        if reply.msg_type is MessageType.SNAPSHOT_REPL_ACK and reply.vals:
            if reply.seq >= rec.snapshot_seqs.get(reply.aux, -1):
                rec.snapshot_vals[reply.aux] = reply.vals[0]
                rec.snapshot_seqs[reply.aux] = reply.seq
        self.backend.commit(key, rec)
        # The reply (and its piggybacked outputs) must travel regardless:
        # even a stale-looking update acknowledges a real request.
        self._propagate_or_reply(
            key, rec, reply, requester_ip, upstream_ip, origin_uid=origin_uid
        )

    def repropagate_inflight(self) -> int:
        """Re-send every unacknowledged chain update down the current chain.

        Called after a chain splice: an update this node forwarded may have
        died with the spliced-out successor, stranding both the replica
        convergence and the requester's reply. Re-propagating from the
        node's *current* record state (never older than what the update
        carried) heals the survivors; if this node has become the tail the
        stranded reply is sent directly. Returns the number re-propagated.
        """
        if not self._chain_inflight:
            return 0
        stranded = list(self._chain_inflight.items())
        self._chain_inflight.clear()
        for key, (_version, reply, requester_ip, upstream_ip,
                  origin_uid) in stranded:
            self._propagate_or_reply(
                key, self.record(key), reply, requester_ip, upstream_ip,
                origin_uid=origin_uid,
            )
        self._c_repairs.inc(len(stranded))
        self.sim.tracer.emit(
            tt.CHAIN_REPAIR,
            node=self.name,
            updates=len(stranded),
            successor=self.successor_ip or 0,
        )
        return len(stranded)


def build_chain(nodes: List[StateStoreNode]) -> None:
    """Wire a list of store nodes into a replication chain (head first)."""
    if not nodes:
        raise ValueError("empty chain")
    for node, successor in zip(nodes, nodes[1:]):
        node.successor_ip = successor.ip
    nodes[-1].successor_ip = None
    # A node that just became the tail has nothing downstream left to
    # confirm; its in-flight ledger refers to the old successor.
    nodes[-1]._chain_inflight.clear()


def reconfigure_chain(nodes: List[StateStoreNode]) -> List[StateStoreNode]:
    """Drop failed nodes from a chain and rewire the survivors.

    Returns the surviving chain (possibly empty). Chain reconfiguration in
    the prototype is handled by an external coordination service; we model
    the end state. After the splice the new head re-propagates its
    unacknowledged chain updates so nothing an evicted node swallowed
    mid-propagation stays stranded (the repair is traced as
    ``chain.repair``).
    """
    alive = [node for node in nodes if not node.failed]
    if alive:
        build_chain(alive)
        # ``skip_chain_repair`` is a seeded bug for mutation-testing the
        # chaos fuzzer (repro.mutation): with it on, updates stranded by
        # the splice are never re-propagated to the repaired chain.
        if not mutation_active("skip_chain_repair"):
            alive[0].repropagate_inflight()
    return alive

"""Programmable-switch substrate: a Tofino-like data plane model.

Provides the abstractions the paper's P4 prototype is written against:
match-action pipelines, register arrays (one access per array per packet),
match tables, egress mirroring with truncation, a hardware packet
generator, a slow control-plane channel, and static resource accounting.
"""

from repro.switch.asic import SwitchASIC
from repro.switch.control_plane import SwitchControlPlane
from repro.switch.mirror import MirrorSession
from repro.switch.pipeline import (
    ControlBlock,
    Pipeline,
    PipelineContext,
    RegisterAccessError,
    Verdict,
)
from repro.switch.pktgen import PacketGenerator
from repro.switch.registers import PairedRegisterArray, RegisterArray
from repro.switch.resources import CAPACITY, ResourceModel, TABLE2_ROWS
from repro.switch.tables import ActionEntry, MatchKind, MatchTable

__all__ = [
    "SwitchASIC",
    "SwitchControlPlane",
    "MirrorSession",
    "ControlBlock",
    "Pipeline",
    "PipelineContext",
    "RegisterAccessError",
    "Verdict",
    "PacketGenerator",
    "RegisterArray",
    "PairedRegisterArray",
    "ResourceModel",
    "CAPACITY",
    "TABLE2_ROWS",
    "ActionEntry",
    "MatchKind",
    "MatchTable",
]

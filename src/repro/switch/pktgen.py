"""The switch ASIC's packet generator.

Tofino can synthesize batches of packets on a timer entirely in hardware.
RedPlane's bounded-inconsistency mode uses this (§5.4): every snapshot
period the generator emits one packet per data-structure entry; each packet
carries a unique index ``i`` which addresses the i-th slot so its value can
be copied into a replication message.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.switch.asic import SwitchASIC

#: Builds the i-th packet of a batch (0-based); may return None to skip.
PacketBuilder = Callable[[int], Optional[Packet]]


class PacketGenerator:
    """Periodic batch packet generation into the ingress pipeline."""

    #: Gap between consecutive packets of one batch (us); the generator
    #: emits at line rate, far faster than the batch period.
    INTRA_BATCH_GAP_US = 0.01

    def __init__(self, asic: "SwitchASIC") -> None:
        self.asic = asic
        self.period_us: Optional[float] = None
        self.batch_size = 0
        self.builder: Optional[PacketBuilder] = None
        self.enabled = False
        self.batches_generated = 0
        self.packets_generated = 0

    def configure(
        self, period_us: float, batch_size: int, builder: PacketBuilder
    ) -> None:
        if period_us <= 0:
            raise ValueError("period must be positive")
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        self.period_us = period_us
        self.batch_size = batch_size
        self.builder = builder

    def start(self) -> None:
        if self.builder is None:
            raise RuntimeError("packet generator not configured")
        if self.enabled:
            return
        self.enabled = True
        self.asic.sim.schedule(self.period_us, self._tick)

    def stop(self) -> None:
        self.enabled = False

    def _tick(self) -> None:
        if not self.enabled or self.asic.failed:
            self.enabled = False
            return
        self.batches_generated += 1
        for i in range(self.batch_size):
            pkt = self.builder(i)
            if pkt is None:
                continue
            self.packets_generated += 1
            self.asic.sim.schedule(
                i * self.INTRA_BATCH_GAP_US, self.asic.inject, pkt
            )
        self.asic.sim.schedule(self.period_us, self._tick)

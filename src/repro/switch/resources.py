"""Switch ASIC resource accounting (Table 2 reproduction).

The Tofino compiler reports, per program, the fraction of each hardware
resource consumed: match crossbar bits, stateful (meter) ALUs, gateways,
SRAM, TCAM, VLIW instruction slots, and hash bits. We reproduce that
accounting statically: every control block, table, and register array
declares the raw units it consumes, and :class:`ResourceModel` expresses
them against calibrated per-chip capacities.

Capacities are calibrated so that the RedPlane block inventory at 100 k
concurrent flows lands on the paper's Table 2 percentages; they are in the
ballpark of public Tofino-1 figures (12 stages x per-stage resources) but
are *calibrated*, not datasheet values — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

#: Resource capacity of one switch ASIC, in raw units.
CAPACITY: Dict[str, float] = {
    "match_crossbar_bits": 18_432.0,   # 12 stages x 1536 bits
    "meter_alus": 48.0,                # 12 stages x 4 stateful ALUs
    "gateways": 192.0,                 # 12 stages x 16
    "sram_bits": 169_700_000.0,        # ~21 MB of map RAM
    "tcam_bits": 6_660_000.0,          # ~0.8 MB of TCAM
    "vliw_instructions": 384.0,        # 12 stages x 32 slots
    "hash_bits": 4_992.0,              # 12 stages x 416
}

#: Human-readable labels in the order Table 2 lists them.
TABLE2_ROWS = [
    ("match_crossbar_bits", "Match Crossbar"),
    ("meter_alus", "Meter ALU"),
    ("gateways", "Gateway"),
    ("sram_bits", "SRAM"),
    ("tcam_bits", "TCAM"),
    ("vliw_instructions", "VLIW Instruction"),
    ("hash_bits", "Hash Bits"),
]


@dataclass
class ResourceModel:
    """Accumulates resource usage from pipeline components."""

    usage: Dict[str, float] = field(default_factory=dict)

    def register(self, usage: Mapping[str, float]) -> None:
        """Add a component's declared usage."""
        for key, amount in usage.items():
            if key not in CAPACITY:
                raise KeyError(f"unknown resource {key!r}")
            if amount < 0:
                raise ValueError(f"negative usage for {key!r}")
            self.usage[key] = self.usage.get(key, 0.0) + amount

    def percentage(self, key: str) -> float:
        """Usage of one resource as a percentage of chip capacity."""
        return 100.0 * self.usage.get(key, 0.0) / CAPACITY[key]

    def percentages(self) -> Dict[str, float]:
        return {key: self.percentage(key) for key in CAPACITY}

    def over_capacity(self) -> Iterable[str]:
        """Resources whose declared usage exceeds the chip."""
        return [k for k in CAPACITY if self.usage.get(k, 0.0) > CAPACITY[k]]

    def table2(self) -> Dict[str, float]:
        """The Table 2 rows: label -> additional usage percentage."""
        return {label: self.percentage(key) for key, label in TABLE2_ROWS}

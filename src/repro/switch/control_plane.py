"""The switch control plane and its ASIC-to-CPU channel.

The control plane is a CPU attached to the ASIC over PCIe with limited
bandwidth (O(10 Gbps)) and non-trivial latency — the mismatch between this
channel and the Tbps data plane is *the* reason checkpointing and
rollback-recovery fail on switches (§2.2), and why new-flow packets that
need a table insertion show up in the 99th-percentile latency of Fig 8.

Operations are serialized through a single busy-until CPU model; punted
packets cross PCIe, are processed in software, and may be re-injected into
the pipeline or trigger table installs.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.net import constants
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.switch.asic import SwitchASIC

PuntHandler = Callable[[Packet], None]


class SwitchControlPlane:
    """Software agent running on the switch CPU."""

    def __init__(self, asic: "SwitchASIC") -> None:
        self.asic = asic
        self.sim = asic.sim
        #: Application-installed handler for punted packets.
        self.punt_handler: Optional[PuntHandler] = None
        self._cpu_busy_until = 0.0
        self.ops_executed = 0
        self.packets_punted = 0
        self.pcie_bytes = 0

    # -- scheduling helpers -------------------------------------------------------

    def _cpu_run(self, cost_us: float, fn: Callable[..., None], *args: Any) -> None:
        """Serialize ``fn`` through the single control-plane CPU."""
        start = max(self.sim.now, self._cpu_busy_until)
        finish = start + cost_us
        self._cpu_busy_until = finish
        self.sim.schedule_at(finish, self._execute, fn, args)

    def _execute(self, fn: Callable[..., None], args: tuple) -> None:
        if self.asic.failed:
            return
        self.ops_executed += 1
        fp = self.sim.fastpath
        if fp is not None:
            # The callable is opaque and may install/remove table entries;
            # conservatively flush compiled flow-cache state at the moment
            # the operation's effects apply.
            fp.bus.publish("table")
        fn(*args)

    # -- public API ----------------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., None],
        *args: Any,
        cost_us: float = constants.CONTROL_PLANE_OP_US,
    ) -> None:
        """Run a control-plane operation (e.g. a table install).

        The operation crosses PCIe, executes on the CPU for ``cost_us``,
        and its effects (the callable) apply when it completes.
        """
        self.sim.schedule(
            constants.PCIE_ONEWAY_US, self._cpu_run, cost_us, fn, *args
        )

    def punt(self, pkt: Packet) -> None:
        """Deliver a data-plane packet to the CPU (slow path)."""
        self.packets_punted += 1
        self.pcie_bytes += pkt.byte_size()
        pcie_delay = constants.PCIE_ONEWAY_US + self._pcie_serialization_us(pkt)
        self.sim.schedule(pcie_delay, self._deliver_punt, pkt)

    def _deliver_punt(self, pkt: Packet) -> None:
        if self.asic.failed:
            return
        if self.punt_handler is None:
            self.sim.count(f"{self.asic.name}.cp.unhandled_punt")
            return
        self._cpu_run(constants.CONTROL_PLANE_OP_US, self.punt_handler, pkt)

    def reinject(self, pkt: Packet) -> None:
        """Send a packet from the CPU back into the data-plane pipeline."""
        self.pcie_bytes += pkt.byte_size()
        pcie_delay = constants.PCIE_ONEWAY_US + self._pcie_serialization_us(pkt)
        self.sim.schedule(pcie_delay, self._reinject_arrive, pkt)

    def _reinject_arrive(self, pkt: Packet) -> None:
        if self.asic.failed:
            return
        self.asic.inject(pkt)

    @staticmethod
    def _pcie_serialization_us(pkt: Packet) -> float:
        bits = pkt.byte_size() * 8
        return bits / (constants.PCIE_BANDWIDTH_GBPS * 1000.0)

"""Match-action tables.

Tables match a key (exact / LPM / ternary / range) and yield an action name
plus action data. As on Tofino, the data plane only *reads* tables; entry
insertion and deletion go through the switch control plane (the slow PCIe
path) — :meth:`MatchTable.install` exists for configuration time, while
runtime insertions should be submitted via
:class:`repro.switch.control_plane.SwitchControlPlane`.

SRAM/TCAM accounting feeds the Table 2 reproduction: exact-match tables
consume SRAM, ternary and range tables consume TCAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple


class MatchKind(enum.Enum):
    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"
    RANGE = "range"


@dataclass
class ActionEntry:
    """The result of a table hit: an action name and its parameters."""

    action: str
    data: Dict[str, Any]


class MatchTable:
    """A single match-action table."""

    def __init__(
        self,
        name: str,
        kind: MatchKind = MatchKind.EXACT,
        key_width_bits: int = 104,
        entry_data_bits: int = 64,
        max_entries: int = 1024,
    ) -> None:
        self.name = name
        self.kind = kind
        self.key_width_bits = key_width_bits
        self.entry_data_bits = entry_data_bits
        self.max_entries = max_entries
        self._exact: Dict[Hashable, ActionEntry] = {}
        #: LPM entries: (prefix, mask_len) -> entry, searched longest first.
        self._lpm: List[Tuple[int, int, ActionEntry]] = []
        #: Ternary entries: (value, mask, priority) -> entry.
        self._ternary: List[Tuple[int, int, int, ActionEntry]] = []
        #: Range entries: (lo, hi, priority) -> entry (inclusive bounds).
        self._range: List[Tuple[int, int, int, ActionEntry]] = []
        self.hits = 0
        self.misses = 0
        #: Bumped on every install/remove/clear so compiled fast-path
        #: state keyed to table contents can detect staleness without a
        #: simulator reference.
        self.version = 0

    # -- installation (control-plane side) --------------------------------------

    def install(self, key: Hashable, entry: ActionEntry) -> None:
        """Install an exact-match entry (configuration-time or via CP)."""
        self._require(MatchKind.EXACT)
        if len(self._exact) >= self.max_entries and key not in self._exact:
            raise RuntimeError(f"table {self.name} full ({self.max_entries})")
        self._exact[key] = entry
        self.version += 1

    def remove(self, key: Hashable) -> None:
        self._require(MatchKind.EXACT)
        self._exact.pop(key, None)
        self.version += 1

    def install_lpm(self, prefix: int, mask_len: int, entry: ActionEntry) -> None:
        self._require(MatchKind.LPM)
        self._lpm.append((prefix, mask_len, entry))
        self._lpm.sort(key=lambda item: -item[1])
        self.version += 1

    def install_ternary(
        self, value: int, mask: int, entry: ActionEntry, priority: int = 0
    ) -> None:
        self._require(MatchKind.TERNARY)
        self._ternary.append((value, mask, priority, entry))
        self._ternary.sort(key=lambda item: -item[2])
        self.version += 1

    def install_range(
        self, lo: int, hi: int, entry: ActionEntry, priority: int = 0
    ) -> None:
        self._require(MatchKind.RANGE)
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        self._range.append((lo, hi, priority, entry))
        self._range.sort(key=lambda item: -item[2])
        self.version += 1

    def clear(self) -> None:
        self._exact.clear()
        self._lpm.clear()
        self._ternary.clear()
        self._range.clear()
        self.version += 1

    # -- lookup (data-plane side) -------------------------------------------------

    def lookup(self, key: Hashable) -> Optional[ActionEntry]:
        entry = self._match(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def _match(self, key: Hashable) -> Optional[ActionEntry]:
        if self.kind is MatchKind.EXACT:
            return self._exact.get(key)
        if self.kind is MatchKind.LPM:
            assert isinstance(key, int)
            for prefix, mask_len, entry in self._lpm:
                shift = 32 - mask_len
                if mask_len == 0 or (key >> shift) == (prefix >> shift):
                    return entry
            return None
        if self.kind is MatchKind.TERNARY:
            assert isinstance(key, int)
            for value, mask, _prio, entry in self._ternary:
                if key & mask == value & mask:
                    return entry
            return None
        if self.kind is MatchKind.RANGE:
            assert isinstance(key, int)
            for lo, hi, _prio, entry in self._range:
                if lo <= key <= hi:
                    return entry
            return None
        raise AssertionError(f"unhandled match kind {self.kind}")

    def _require(self, kind: MatchKind) -> None:
        if self.kind is not kind:
            raise TypeError(
                f"table {self.name} is {self.kind.value}-match, not {kind.value}"
            )

    # -- accounting ------------------------------------------------------------

    def entry_count(self) -> int:
        return (
            len(self._exact) + len(self._lpm) + len(self._ternary) + len(self._range)
        )

    def sram_bits(self) -> int:
        """Exact/LPM tables live in SRAM (hash-based lookup)."""
        if self.kind in (MatchKind.EXACT, MatchKind.LPM):
            return self.max_entries * (self.key_width_bits + self.entry_data_bits)
        return 0

    def tcam_bits(self) -> int:
        """Ternary and range tables burn TCAM (range via expansion)."""
        if self.kind in (MatchKind.TERNARY, MatchKind.RANGE):
            return self.max_entries * (2 * self.key_width_bits + self.entry_data_bits)
        return 0

    def __repr__(self) -> str:
        return f"<MatchTable {self.name} {self.kind.value} {self.entry_count()} entries>"

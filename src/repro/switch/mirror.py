"""Egress-to-egress packet mirroring.

RedPlane repurposes the ASIC's mirroring capability as a retransmission
buffer (§5.2): when a replication request is sent, a *truncated* copy (the
RedPlane header only, not the piggybacked payload) is mirrored back into
the egress pipeline, where it circulates until either an acknowledgment
with an equal-or-higher sequence number arrives (drop the copy) or its
timeout expires (resend it to the state store and keep circulating).

While a copy circulates it occupies switch packet buffer; the ASIC tracks
current and peak occupancy, which is what Fig 15 measures via queue-depth
metadata.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.net import constants
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.switch.asic import SwitchASIC

#: Handler invoked on each recirculation pass; returns True to keep the
#: copy circulating, False to release it.
PassHandler = Callable[[Packet, Dict[str, object]], bool]


class MirrorCopy:
    """A handle to one circulating mirrored copy.

    In hardware the copy passes through egress every pass interval and the
    pipeline drops it as soon as its acknowledgment has been seen. The
    simulator models that with events at the *action* times only (the
    retransmission deadline), so whoever processes the acknowledgment must
    call :meth:`MirrorSession.release` — that is the "drop on next pass",
    collapsed to zero delay.
    """

    __slots__ = ("pkt", "meta", "size", "event", "released")

    def __init__(self, pkt: Packet, meta: Dict[str, object], size: int) -> None:
        self.pkt = pkt
        self.meta = meta
        self.size = size
        self.event = None
        self.released = False


class MirrorSession:
    """One mirroring session with optional truncation."""

    def __init__(
        self,
        asic: "SwitchASIC",
        session_id: int,
        truncate_to_bytes: Optional[int] = None,
        pass_interval_us: float = constants.MIRROR_PASS_US,
    ) -> None:
        self.asic = asic
        self.session_id = session_id
        self.truncate_to_bytes = truncate_to_bytes
        self.pass_interval_us = pass_interval_us
        self.handler: Optional[PassHandler] = None
        self._g_active = asic.sim.metrics.gauge(
            "mirror.active_copies", switch=asic.name, session=session_id
        )
        self._c_mirrored = asic.sim.metrics.counter(
            "mirror.copies_total", switch=asic.name, session=session_id
        )

    @property
    def active_copies(self) -> int:
        """Copies currently circulating (registry gauge view)."""
        return int(self._g_active.value)

    def mirror(
        self, pkt: Packet, meta: Optional[Dict[str, object]] = None
    ) -> MirrorCopy:
        """Mirror a (possibly truncated) copy into the egress pipeline."""
        if self.handler is None:
            raise RuntimeError(
                f"mirror session {self.session_id} has no pass handler"
            )
        dup = pkt.copy()
        # The copy is a derived object: it must not impersonate the span of
        # the packet it was mirrored from — demote an inherited uid to the
        # parent slot (resends create fresh packets with their own uids).
        inherited_uid = dup.meta.pop("uid", None)
        if inherited_uid is not None and "parent_uid" not in dup.meta:
            dup.meta["parent_uid"] = inherited_uid
        if self.truncate_to_bytes is not None:
            dup.meta["truncated_to"] = self.truncate_to_bytes
        copy_meta: Dict[str, object] = dict(meta or {})
        copy_meta["mirror_ts"] = self.asic.sim.now
        if dup.meta.get("parent_uid") is not None:
            copy_meta["parent_uid"] = dup.meta["parent_uid"]
        copy = MirrorCopy(dup, copy_meta, self.buffered_size(dup))
        self._g_active.add(1)
        self._c_mirrored.inc()
        self.asic.buffer_acquire(copy.size)
        copy.event = self.asic.sim.schedule(
            self.pass_interval_us, self._one_pass, copy
        )
        return copy

    def release(self, copy: MirrorCopy) -> None:
        """Drop a circulating copy (acknowledged, or no longer needed)."""
        if copy.released:
            return
        copy.released = True
        self._g_active.add(-1)
        self.asic.buffer_release(copy.size)
        if copy.event is not None:
            copy.event.cancel()
            copy.event = None

    def buffered_size(self, pkt: Packet) -> int:
        """Bytes this copy occupies in the packet buffer."""
        truncated = pkt.meta.get("truncated_to")
        if truncated is not None:
            return min(int(truncated), pkt.byte_size())
        return pkt.byte_size()

    def _one_pass(self, copy: MirrorCopy) -> None:
        if copy.released:
            return
        copy.event = None
        if self.asic.failed:
            # The switch died with the copy in its buffer; state is gone.
            self.release(copy)
            return
        keep = self.handler(copy.pkt, copy.meta)
        if keep:
            # Schedule the next *action* pass; the handler may set
            # ``meta['next_pass_us']`` to skip the no-op recirculations
            # between now and the retransmission deadline (pure
            # event-count savings; releases happen via release()).
            delay = max(
                self.pass_interval_us,
                float(copy.meta.pop("next_pass_us", 0.0)),
            )
            copy.event = self.asic.sim.schedule(delay, self._one_pass, copy)
        else:
            self.release(copy)

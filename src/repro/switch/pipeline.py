"""Match-action pipeline abstractions.

The model follows the Tofino architecture the paper targets (§2, "Primer on
programmable switches"): a packet traverses an ingress pipeline and an
egress pipeline, each a sequence of *control blocks*; state lives in
stateful objects (register arrays, tables) that the blocks access under
hardware constraints enforced here — most importantly, **one access per
register array per packet** (§5.4: "the switch is architected, and the P4
language is designed, to allow access to a single entry per register array
per packet").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, TYPE_CHECKING

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.switch.asic import SwitchASIC


class Verdict(enum.Enum):
    """What the pipeline decided to do with the original packet."""

    #: Continue normal L3 forwarding after the pipeline.
    FORWARD = "forward"
    #: Drop the packet.
    DROP = "drop"
    #: The packet was consumed/transformed; only ``emitted`` packets leave.
    CONSUMED = "consumed"
    #: Send to the switch CPU over the PCIe channel.
    PUNT = "punt"


@dataclass
class PipelineContext:
    """Per-packet execution context threading through the pipeline.

    Tracks the hardware access constraint: a register array may be touched
    at most once while processing one packet.
    """

    pkt: Packet
    now: float
    verdict: Verdict = Verdict.FORWARD
    #: Additional packets generated while processing (replication requests,
    #: mirrored copies already materialized, responses); each is routed
    #: independently after the pipeline completes.
    emitted: List[Packet] = field(default_factory=list)
    #: Scratch metadata (the P4 ``metadata`` struct equivalent).
    meta: Dict[str, Any] = field(default_factory=dict)
    _accessed_arrays: Set[int] = field(default_factory=set)

    def note_register_access(self, array: object) -> None:
        key = id(array)
        if key in self._accessed_arrays:
            raise RegisterAccessError(
                f"register array {getattr(array, 'name', array)!r} accessed "
                "twice for one packet; Tofino allows a single access per "
                "array per packet"
            )
        self._accessed_arrays.add(key)

    # -- verdict helpers ------------------------------------------------------

    def drop(self) -> None:
        self.verdict = Verdict.DROP

    def consume(self) -> None:
        self.verdict = Verdict.CONSUMED

    def punt(self) -> None:
        self.verdict = Verdict.PUNT

    def emit(self, pkt: Packet) -> None:
        self.emitted.append(pkt)


class RegisterAccessError(RuntimeError):
    """A P4 program violated the one-access-per-array-per-packet rule."""


class ControlBlock:
    """Base class for pipeline stages (the P4 ``control`` equivalent).

    Blocks are applied in order; a block may stop processing of later
    blocks by returning ``False`` from :meth:`process` (e.g. when the
    packet was consumed by the protocol engine).
    """

    name = "block"

    def process(self, ctx: PipelineContext, switch: "SwitchASIC") -> bool:
        raise NotImplementedError

    def resource_usage(self) -> Dict[str, float]:
        """Absolute resource units consumed; see :mod:`repro.switch.resources`."""
        return {}


class Pipeline:
    """An ordered list of control blocks applied to each packet."""

    def __init__(self, blocks: Optional[List[ControlBlock]] = None) -> None:
        self.blocks: List[ControlBlock] = list(blocks or [])

    def append(self, block: ControlBlock) -> None:
        self.blocks.append(block)

    def run(self, ctx: PipelineContext, switch: "SwitchASIC") -> None:
        for block in self.blocks:
            keep_going = block.process(ctx, switch)
            if keep_going is False:
                break

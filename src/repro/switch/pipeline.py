"""Match-action pipeline abstractions.

The model follows the Tofino architecture the paper targets (§2, "Primer on
programmable switches"): a packet traverses an ingress pipeline and an
egress pipeline, each a sequence of *control blocks*; state lives in
stateful objects (register arrays, tables) that the blocks access under
hardware constraints enforced here — most importantly, **one access per
register array per packet** (§5.4: "the switch is architected, and the P4
language is designed, to allow access to a single entry per register array
per packet").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, TYPE_CHECKING

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.switch.asic import SwitchASIC


class Verdict(enum.Enum):
    """What the pipeline decided to do with the original packet."""

    #: Continue normal L3 forwarding after the pipeline.
    FORWARD = "forward"
    #: Drop the packet.
    DROP = "drop"
    #: The packet was consumed/transformed; only ``emitted`` packets leave.
    CONSUMED = "consumed"
    #: Send to the switch CPU over the PCIe channel.
    PUNT = "punt"


@dataclass(slots=True)
class PipelineContext:
    """Per-packet execution context threading through the pipeline.

    Tracks the hardware access constraint: a register array may be touched
    at most once while processing one packet. ``slots=True`` because one
    is allocated per packet per switch traversal.
    """

    pkt: Packet
    now: float
    verdict: Verdict = Verdict.FORWARD
    #: The control block currently processing this packet (set by
    #: :meth:`Pipeline.run`); lets access-constraint errors cite the
    #: owning block/app the way ``repro.verify`` diagnostics do.
    block_obj: Optional[object] = None
    #: Additional packets generated while processing (replication requests,
    #: mirrored copies already materialized, responses); each is routed
    #: independently after the pipeline completes.
    emitted: List[Packet] = field(default_factory=list)
    #: Scratch metadata (the P4 ``metadata`` struct equivalent).
    meta: Dict[str, Any] = field(default_factory=dict)
    _accessed_arrays: Set[int] = field(default_factory=set)

    def note_register_access(self, array: object) -> None:
        key = id(array)
        if key in self._accessed_arrays:
            uid = self.pkt.meta.get("uid") if self.pkt is not None else None
            site = access_site(self.block_obj, uid)
            raise RegisterAccessError(
                access_violation_message(
                    getattr(array, "name", repr(array)), site
                )
            )
        self._accessed_arrays.add(key)

    # -- verdict helpers ------------------------------------------------------

    def drop(self) -> None:
        self.verdict = Verdict.DROP

    def consume(self) -> None:
        self.verdict = Verdict.CONSUMED

    def punt(self) -> None:
        self.verdict = Verdict.PUNT

    def emit(self, pkt: Packet) -> None:
        self.emitted.append(pkt)


class RegisterAccessError(RuntimeError):
    """A P4 program violated the one-access-per-array-per-packet rule."""


def describe_block(block: object) -> str:
    """Logical name of a control block, e.g. ``redplane(nat44)``.

    Blocks that wrap an application (the RedPlane engine) cite both so
    the report reader can tell which app's pipeline misbehaved.
    """
    if block is None:
        return "?"
    name = getattr(block, "name", None) or type(block).__name__
    app = getattr(block, "app", None)
    app_name = getattr(app, "name", None)
    return f"{name}({app_name})" if app_name else str(name)


def access_site(block: object, pkt_uid: object = None) -> str:
    """The shared site format cited by runtime errors and RP1xx
    diagnostics alike: ``block=redplane(nat44) pkt=17``."""
    site = f"block={describe_block(block)}"
    if pkt_uid is not None:
        site += f" pkt={pkt_uid}"
    return site


def access_violation_message(array_name: str, site: str) -> str:
    """One wording for the §5.4 single-access violation, shared by the
    runtime check above and the static RP101 rule in ``repro.verify``."""
    return (
        f"register array {array_name!r} accessed twice for one packet; "
        f"Tofino allows a single access per array per packet [{site}]"
    )


class ControlBlock:
    """Base class for pipeline stages (the P4 ``control`` equivalent).

    Blocks are applied in order; a block may stop processing of later
    blocks by returning ``False`` from :meth:`process` (e.g. when the
    packet was consumed by the protocol engine).
    """

    name = "block"

    def process(self, ctx: PipelineContext, switch: "SwitchASIC") -> bool:
        raise NotImplementedError

    def resource_usage(self) -> Dict[str, float]:
        """Absolute resource units consumed; see :mod:`repro.switch.resources`."""
        return {}


class Pipeline:
    """An ordered list of control blocks applied to each packet."""

    def __init__(self, blocks: Optional[List[ControlBlock]] = None) -> None:
        self.blocks: List[ControlBlock] = list(blocks or [])
        #: Composition version: bumped on every structural change so the
        #: fast path can cheaply detect that compiled per-switch state
        #: (which encodes this block sequence) is stale.
        self.version = len(self.blocks)

    def append(self, block: ControlBlock) -> None:
        self.blocks.append(block)
        self.version += 1

    def run(self, ctx: PipelineContext, switch: "SwitchASIC") -> None:
        for block in self.blocks:
            ctx.block_obj = block
            keep_going = block.process(ctx, switch)
            if keep_going is False:
                break
        ctx.block_obj = None

"""The programmable switch ASIC: pipeline + traffic manager + peripherals.

:class:`SwitchASIC` extends the plain L3 switch with everything the paper's
design leans on:

* a match-action :class:`~repro.switch.pipeline.Pipeline` of control blocks
  (the application and the RedPlane protocol engine);
* mirroring sessions with truncation (retransmission buffering, §5.2);
* a hardware packet generator (snapshot replication, §5.4);
* a slow control-plane channel (table installs, new-flow slow path);
* packet-buffer occupancy accounting (Fig 15);
* static resource accounting (Table 2).

A packet addressed to the switch's own protocol IP (§5.1.2 assigns each
RedPlane switch an IP) still traverses the pipeline — that is how state
store responses reach the protocol engine — but is dropped rather than
forwarded if no block consumes it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net import constants
from repro.net.links import Port
from repro.net.packet import Packet
from repro.net.routing import L3Switch
from repro.net.simulator import Simulator
from repro.switch.control_plane import SwitchControlPlane
from repro.switch.mirror import MirrorSession
from repro.switch.pipeline import ControlBlock, Pipeline, PipelineContext, Verdict
from repro.switch.pktgen import PacketGenerator
from repro.switch.resources import ResourceModel


class SwitchASIC(L3Switch):
    """A Tofino-like programmable switch."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: int,
        buffer_bytes: int = constants.SWITCH_BUFFER_BYTES,
        capacity_mpps: float = constants.SWITCH_MAX_FORWARD_MPPS,
    ) -> None:
        super().__init__(sim, name)
        #: The switch's protocol address (for RedPlane messages).
        self.ip = ip
        self.pipeline = Pipeline()
        self.control_plane = SwitchControlPlane(self)
        self.pktgen = PacketGenerator(self)
        self.resources = ResourceModel()
        self.buffer_bytes = buffer_bytes
        self.capacity_mpps = capacity_mpps
        self._mirror_sessions: Dict[int, MirrorSession] = {}
        self._next_mirror_id = 1
        # All per-switch accounting lives in the run's metric registry,
        # labeled by switch name; handles are cached for the hot path and
        # the historical attributes below are properties over them.
        m = sim.metrics
        self._g_buffer = m.gauge("switch.buffer_occupancy_bytes", switch=name)
        self._g_buffer_peak = m.gauge("switch.buffer_peak_bytes", switch=name)
        self._c_bytes_original_out = m.counter(
            "switch.bytes_original_out", switch=name)
        self._c_bytes_protocol_out = m.counter(
            "switch.bytes_protocol_out", switch=name)
        self._c_bytes_protocol_in = m.counter(
            "switch.bytes_protocol_in", switch=name)
        self._c_bytes_chain_transit = m.counter(
            "switch.bytes_chain_transit", switch=name)
        self._c_pkts_processed = m.counter("switch.pkts_processed", switch=name)

    # -- peripherals -----------------------------------------------------------

    def new_mirror_session(
        self,
        truncate_to_bytes: Optional[int] = None,
        pass_interval_us: float = constants.MIRROR_PASS_US,
    ) -> MirrorSession:
        session = MirrorSession(
            self, self._next_mirror_id, truncate_to_bytes, pass_interval_us
        )
        self._mirror_sessions[self._next_mirror_id] = session
        self._next_mirror_id += 1
        return session

    def add_block(self, block: ControlBlock) -> None:
        """Append a control block and account its resources."""
        self.pipeline.append(block)
        self.resources.register(block.resource_usage())

    # -- buffer accounting --------------------------------------------------------

    def buffer_acquire(self, nbytes: int) -> None:
        self._g_buffer.add(nbytes)
        self._g_buffer_peak.set_max(self._g_buffer.value)
        if self._g_buffer.value > self.buffer_bytes:
            raise RuntimeError(
                f"{self.name}: packet buffer overflow "
                f"({int(self._g_buffer.value)} > {self.buffer_bytes} bytes)"
            )

    def buffer_release(self, nbytes: int) -> None:
        self._g_buffer.add(-nbytes)
        if self._g_buffer.value < 0:
            raise AssertionError(f"{self.name}: negative buffer occupancy")

    @property
    def buffer_occupancy(self) -> int:
        """Packet-buffer bytes held by mirrored/held packets (gauge view)."""
        return int(self._g_buffer.value)

    @property
    def peak_buffer_occupancy(self) -> int:
        return int(self._g_buffer_peak.value)

    @peak_buffer_occupancy.setter
    def peak_buffer_occupancy(self, value: int) -> None:
        # Experiments reset the peak after warm-up (Fig 15's steady state).
        self._g_buffer_peak.set(value)

    # -- packet processing -----------------------------------------------------------

    def receive(self, pkt: Packet, port: Port) -> None:
        self.process(pkt)

    def inject(self, pkt: Packet) -> None:
        """Entry point for generated / CPU-reinjected packets."""
        # Injected packets never crossed a link, so they have no span uid
        # yet; tag here so requests they trigger can reference a parent.
        self.sim.tag_packet(pkt)
        self.process(pkt)

    def process(self, pkt: Packet) -> None:
        fp = self.sim.fastpath
        if fp is not None and fp.asic_process(self, pkt):
            # A valid flow-cache entry replayed the pipeline decision;
            # the replay's side effects match this path bit for bit.
            return
        self._c_pkts_processed.inc()
        if pkt.meta.get("rp_kind") == "response":
            # Piggybacked bytes are counted when the released output leaves.
            piggyback = int(pkt.meta.get("rp_piggyback_len", 0))
            self._c_bytes_protocol_in.inc(pkt.byte_size() - piggyback)
        ctx = PipelineContext(pkt=pkt, now=self.sim.now)
        self.pipeline.run(ctx, self)
        if ctx.verdict is Verdict.FORWARD:
            if pkt.ip is not None and pkt.ip.dst == self.ip:
                # Addressed to the switch itself but no block consumed it.
                self.sim.count(f"{self.name}.drops.to_self")
            else:
                self._egress(pkt)
        elif ctx.verdict is Verdict.PUNT:
            self.control_plane.punt(pkt)
        for out in ctx.emitted:
            self._egress(out)

    def emit_from_pipeline(self, pkt: Packet) -> None:
        """Send a pipeline-generated packet (e.g. a retransmission)."""
        self._egress(pkt)

    def _egress(self, pkt: Packet) -> None:
        kind = pkt.meta.get("rp_kind")
        if kind == "chain":
            self._c_bytes_chain_transit.inc(pkt.byte_size())
        elif kind in ("request", "response"):
            # Piggybacked original bytes ride inside protocol messages but
            # are application traffic; only the encapsulation + RedPlane
            # header count as replication overhead (Fig 10's accounting).
            piggyback = int(pkt.meta.get("rp_piggyback_len", 0))
            self._c_bytes_protocol_out.inc(pkt.byte_size() - piggyback)
            self._c_bytes_original_out.inc(piggyback)
        else:
            self._c_bytes_original_out.inc(pkt.byte_size())
        self.forward(pkt)

    # -- traffic accounting views (registry-backed) ---------------------------------

    @property
    def bytes_original_out(self) -> int:
        return int(self._c_bytes_original_out.value)

    @property
    def bytes_protocol_out(self) -> int:
        return int(self._c_bytes_protocol_out.value)

    @property
    def bytes_protocol_in(self) -> int:
        return int(self._c_bytes_protocol_in.value)

    @property
    def bytes_chain_transit(self) -> int:
        """Store-to-store chain traffic merely transiting this switch; not
        part of the app switch's own send/receive accounting (Fig 10)."""
        return int(self._c_bytes_chain_transit.value)

    @property
    def pkts_processed(self) -> int:
        return int(self._c_pkts_processed.value)

    # -- bandwidth overhead (Fig 10) -----------------------------------------------

    def protocol_byte_fraction(self) -> float:
        """Fraction of this switch's traffic that is RedPlane protocol bytes."""
        protocol = self.bytes_protocol_out + self.bytes_protocol_in
        total = protocol + self.bytes_original_out
        if total == 0:
            return 0.0
        return protocol / total

"""Stateful register arrays, the switch's data-plane memory.

Registers model Tofino stateful ALU semantics:

* a register array holds ``size`` entries of ``width_bits`` each (or pairs
  of entries, Tofino's ``pair<int,int>``);
* each array can be accessed **once per packet**, and that access is a
  single read-modify-write executed atomically by the stateful ALU;
* updates from the data plane are immediate; the control plane can also
  read/write them (slowly) over PCIe.

SRAM usage is accounted for the Table 2 reproduction.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.switch.pipeline import PipelineContext


class RegisterArray:
    """A register array of single values."""

    def __init__(
        self,
        name: str,
        size: int,
        width_bits: int = 32,
        initial: int = 0,
    ) -> None:
        if size <= 0:
            raise ValueError("register array size must be positive")
        if width_bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported register width: {width_bits}")
        self.name = name
        self.size = size
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self._values: List[int] = [initial & self._mask] * size

    # -- data-plane access (constrained) ---------------------------------------

    def access(
        self,
        ctx: PipelineContext,
        index: int,
        fn: Callable[[int], Tuple[int, int]],
    ) -> int:
        """One atomic read-modify-write: ``fn(old) -> (new, result)``.

        This is the single permitted data-plane touch of this array for
        ``ctx``'s packet; the returned ``result`` is what the stateful ALU
        hands back to the pipeline.
        """
        # Inlined access-constraint check (hot path: several calls per
        # packet); the method call only happens on the violation path,
        # where it raises with the full diagnostic.
        accessed = ctx._accessed_arrays
        key = id(self)
        if key in accessed:
            ctx.note_register_access(self)
        accessed.add(key)
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}[{index}] out of range (size {self.size})")
        new, result = fn(self._values[index])
        self._values[index] = new & self._mask
        return result

    def read(self, ctx: PipelineContext, index: int) -> int:
        """Data-plane read (counts as the packet's single access)."""
        accessed = ctx._accessed_arrays
        key = id(self)
        if key in accessed:
            ctx.note_register_access(self)
        accessed.add(key)
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}[{index}] out of range (size {self.size})")
        return self._values[index]

    def write(self, ctx: PipelineContext, index: int, value: int) -> int:
        """Data-plane write (counts as the packet's single access)."""
        accessed = ctx._accessed_arrays
        key = id(self)
        if key in accessed:
            ctx.note_register_access(self)
        accessed.add(key)
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}[{index}] out of range (size {self.size})")
        self._values[index] = value & self._mask
        return value

    # -- control-plane access (unconstrained but slow in real hardware) --------

    def cp_read(self, index: int) -> int:
        self._check_index(index)
        return self._values[index]

    def cp_write(self, index: int, value: int) -> None:
        self._check_index(index)
        self._values[index] = value & self._mask

    def cp_dump(self) -> List[int]:
        return list(self._values)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}[{index}] out of range (size {self.size})")

    # -- accounting -----------------------------------------------------------

    def sram_bits(self) -> int:
        return self.size * self.width_bits

    def __repr__(self) -> str:
        return f"<RegisterArray {self.name} {self.size}x{self.width_bits}b>"


class PairedRegisterArray:
    """A register array of ``pair<int,int>`` entries.

    Used by the lazy-snapshotting structure (Algorithm 1): each index holds
    two interleaved copies of one logical slot, and one packet's single
    access can read/update both halves atomically.
    """

    def __init__(self, name: str, size: int, width_bits: int = 32) -> None:
        self.name = name
        self.size = size
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self._values: List[Tuple[int, int]] = [(0, 0)] * size

    def access(
        self,
        ctx: PipelineContext,
        index: int,
        fn: Callable[[int, int], Tuple[int, int, int]],
    ) -> int:
        """Atomic RMW over the pair: ``fn(lo, hi) -> (new_lo, new_hi, result)``."""
        ctx.note_register_access(self)
        self._check_index(index)
        lo, hi = self._values[index]
        new_lo, new_hi, result = fn(lo, hi)
        self._values[index] = (new_lo & self._mask, new_hi & self._mask)
        return result

    def cp_read(self, index: int) -> Tuple[int, int]:
        self._check_index(index)
        return self._values[index]

    def cp_write(self, index: int, lo: int, hi: int) -> None:
        self._check_index(index)
        self._values[index] = (lo & self._mask, hi & self._mask)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}[{index}] out of range (size {self.size})")

    def sram_bits(self) -> int:
        return self.size * self.width_bits * 2

    def __repr__(self) -> str:
        return f"<PairedRegisterArray {self.name} {self.size}x2x{self.width_bits}b>"

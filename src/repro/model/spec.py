"""Python port of the paper's TLA+ specification (Appendix C).

The spec models the lease/sequencing core of the RedPlane protocol as four
process kinds — the state store, N switches, the lease-expiration timer,
and a packet generator — whose atomic steps correspond one-to-one to the
PlusCal labels of the original (``START_STORE``, ``TRANSFER_LEASE``,
``HAS_LEASE``, ``SW_FAILURE``, ...). :mod:`repro.model.checker` explores
every interleaving and checks the paper's invariants:

* ``SingleOwnerInvariant`` — only the owner has remaining lease time;
* the sequence assertion of ``WAIT_WRITE_RESPONSE`` — a write response
  always carries the sequence number the switch wrote (no lost/stale
  update is ever acknowledged);
* ``AtLeastOneAliveSwitch`` as a model constraint.

States are immutable value objects hashable for explicit-state search.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

# Query field tuples: ("request", kind, write_seq) or ("response", last_seq).
Query = Tuple


@dataclass(frozen=True)
class ModelConfig:
    switches: Tuple[str, ...] = ("s1", "s2")
    lease_period: int = 2
    total_pkts: int = 2
    #: Allow the nondeterministic fail/recover action (SW_FAILURE).
    allow_failures: bool = True


@dataclass(frozen=True)
class ModelState:
    """One global state of the specification."""

    pc: Tuple[Tuple[str, str], ...]            # process -> label
    query: Tuple[Tuple[str, Optional[Query]], ...]
    request_queue: Tuple[str, ...]
    pkt_queue: Tuple[Tuple[str, int], ...]
    lease_remaining: Tuple[Tuple[str, int], ...]
    owner: Optional[str]
    up: Tuple[Tuple[str, bool], ...]
    active: Tuple[Tuple[str, bool], ...]
    alive_num: int
    global_seqnum: int
    seqnum: Tuple[Tuple[str, int], ...]
    sent_pkts: int
    store_switch: Optional[str]
    store_q: Optional[Query]

    # -- dict-like helpers over the frozen tuples ---------------------------

    def d(self, attr: str) -> Dict:
        return dict(getattr(self, attr))

    def with_(self, **updates) -> "ModelState":
        frozen = {}
        for key, value in updates.items():
            if isinstance(value, dict):
                frozen[key] = tuple(sorted(value.items()))
            elif isinstance(value, list):
                frozen[key] = tuple(value)
            else:
                frozen[key] = value
        return replace(self, **frozen)


def initial_state(cfg: ModelConfig) -> ModelState:
    procs = {f"switch:{sw}": "START_SWITCH" for sw in cfg.switches}
    procs["store"] = "START_STORE"
    procs["timer"] = "START_TIMER"
    procs["pktgen"] = "START_PKTGEN"
    z = {sw: 0 for sw in cfg.switches}
    return ModelState(
        pc=tuple(sorted(procs.items())),
        query=tuple(sorted({sw: None for sw in cfg.switches}.items())),
        request_queue=(),
        pkt_queue=tuple(sorted(z.items())),
        lease_remaining=tuple(sorted(z.items())),
        owner=None,
        up=tuple(sorted({sw: True for sw in cfg.switches}.items())),
        active=tuple(sorted({sw: False for sw in cfg.switches}.items())),
        alive_num=len(cfg.switches),
        global_seqnum=0,
        seqnum=tuple(sorted(z.items())),
        sent_pkts=0,
        store_switch=None,
        store_q=None,
    )


class InvariantViolation(Exception):
    """Raised when an invariant or in-step assertion fails."""

    def __init__(self, name: str, state: ModelState, detail: str = "") -> None:
        super().__init__(f"{name}: {detail}")
        self.name = name
        self.state = state


# ---------------------------------------------------------------------------
# invariants
# ---------------------------------------------------------------------------


def check_invariants(state: ModelState, cfg: ModelConfig) -> None:
    lease = state.d("lease_remaining")
    for sw in cfg.switches:
        if sw != state.owner and lease[sw] != 0:
            raise InvariantViolation(
                "SingleOwnerInvariant",
                state,
                f"{sw} holds lease time {lease[sw]} but owner is {state.owner}",
            )
    if state.alive_num < 1:
        raise InvariantViolation("AtLeastOneAliveSwitch", state, "no switch up")


# ---------------------------------------------------------------------------
# transitions: each returns a list of successor states
# ---------------------------------------------------------------------------


def successors(state: ModelState, cfg: ModelConfig) -> List[ModelState]:
    out: List[ModelState] = []
    pc = state.d("pc")
    out.extend(_store_steps(state, pc["store"]))
    for sw in cfg.switches:
        out.extend(_switch_steps(state, sw, pc[f"switch:{sw}"], cfg))
    out.extend(_timer_steps(state))
    out.extend(_pktgen_steps(state, pc["pktgen"], cfg))
    return out


def _set_pc(state: ModelState, proc: str, label: str) -> Dict:
    pc = state.d("pc")
    pc[proc] = label
    return pc


def _store_steps(state: ModelState, label: str) -> List[ModelState]:
    if label == "START_STORE":
        return [state.with_(pc=_set_pc(state, "store", "STORE_PROCESSING"))]

    if label == "STORE_PROCESSING":
        if not state.request_queue:
            return [state.with_(pc=_set_pc(state, "store", "START_STORE"))]
        switch = state.request_queue[0]
        rest = state.request_queue[1:]
        q = state.d("query")[switch]
        if q is None or q[0] != "request":
            # Stale queue entry (e.g. the switch failed and its query was
            # cleared): drop it, as TLC's branch falls through to start.
            return [
                state.with_(
                    pc=_set_pc(state, "store", "START_STORE"),
                    request_queue=list(rest),
                    store_switch=switch,
                    store_q=q,
                )
            ]
        kind = q[1]
        base = state.with_(
            request_queue=list(rest), store_switch=switch, store_q=q
        )
        if kind == "new":
            nxt = "BUFFERING" if state.owner is not None else "TRANSFER_LEASE"
        elif kind == "renew":
            nxt = "RENEW_LEASE"
        else:
            nxt = "START_STORE"
        return [base.with_(pc=_set_pc(base, "store", nxt))]

    if label == "TRANSFER_LEASE":
        switch = state.store_switch
        query = state.d("query")
        query[switch] = ("response", state.global_seqnum)
        lease = state.d("lease_remaining")
        lease[switch] = LEASE_PERIOD_OF(state)
        return [
            state.with_(
                query=query,
                lease_remaining=lease,
                owner=switch,
                pc=_set_pc(state, "store", "START_STORE"),
            )
        ]

    if label == "BUFFERING":
        queue = list(state.request_queue) + [state.store_switch]
        return [
            state.with_(
                request_queue=queue,
                pc=_set_pc(state, "store", "STORE_PROCESSING"),
            )
        ]

    if label == "RENEW_LEASE":
        switch = state.store_switch
        q = state.store_q
        new_seq = q[2]
        query = state.d("query")
        query[switch] = ("response", new_seq)
        lease = state.d("lease_remaining")
        lease[switch] = LEASE_PERIOD_OF(state)
        return [
            state.with_(
                global_seqnum=new_seq,
                query=query,
                lease_remaining=lease,
                owner=switch,
                pc=_set_pc(state, "store", "START_STORE"),
            )
        ]

    return []


#: The lease period is a config constant; stashed on the module so the
#: transition functions stay signature-compatible with the TLA+ actions.
_LEASE_PERIOD = 2


def LEASE_PERIOD_OF(_state: ModelState) -> int:
    return _LEASE_PERIOD


def _switch_steps(
    state: ModelState, sw: str, label: str, cfg: ModelConfig
) -> List[ModelState]:
    proc = f"switch:{sw}"
    out: List[ModelState] = []

    if label == "START_SWITCH":
        up = state.d("up")
        pkts = state.d("pkt_queue")
        if up[sw] and pkts[sw] > 0:
            active = state.d("active")
            active[sw] = True
            lease = state.d("lease_remaining")
            nxt = "NO_LEASE" if lease[sw] == 0 else "HAS_LEASE"
            out.append(state.with_(active=active, pc=_set_pc(state, proc, nxt)))
        if cfg.allow_failures:
            out.append(state.with_(pc=_set_pc(state, proc, "SW_FAILURE")))
        return out

    if label == "NO_LEASE":
        query = state.d("query")
        query[sw] = ("request", "new", 0)
        queue = list(state.request_queue) + [sw]
        return [
            state.with_(
                query=query,
                request_queue=queue,
                pc=_set_pc(state, proc, "WAIT_LEASE_RESPONSE"),
            )
        ]

    if label == "WAIT_LEASE_RESPONSE":
        q = state.d("query")[sw]
        if q is None or q[0] != "response":
            return []
        seqnum = state.d("seqnum")
        seqnum[sw] = q[1]
        query = state.d("query")
        query[sw] = None
        return [
            state.with_(
                seqnum=seqnum, query=query, pc=_set_pc(state, proc, "HAS_LEASE")
            )
        ]

    if label == "HAS_LEASE":
        seqnum = state.d("seqnum")
        seqnum[sw] += 1
        query = state.d("query")
        query[sw] = ("request", "renew", seqnum[sw])
        queue = list(state.request_queue) + [sw]
        return [
            state.with_(
                seqnum=seqnum,
                query=query,
                request_queue=queue,
                pc=_set_pc(state, proc, "WAIT_WRITE_RESPONSE"),
            )
        ]

    if label == "WAIT_WRITE_RESPONSE":
        q = state.d("query")[sw]
        if q is None or q[0] != "response":
            return []
        if state.d("seqnum")[sw] != q[1]:
            raise InvariantViolation(
                "WriteSequenceAssertion",
                state,
                f"{sw} wrote seq {state.d('seqnum')[sw]} but response says {q[1]}",
            )
        query = state.d("query")
        query[sw] = None
        active = state.d("active")
        active[sw] = False
        pkts = state.d("pkt_queue")
        pkts[sw] -= 1
        return [
            state.with_(
                query=query,
                active=active,
                pkt_queue=pkts,
                pc=_set_pc(state, proc, "START_SWITCH"),
            )
        ]

    if label == "SW_FAILURE":
        up = state.d("up")
        query = state.d("query")
        alive = state.alive_num
        if alive > 1 and up[sw]:
            up[sw] = False
            alive -= 1
        elif not up[sw]:
            up[sw] = True
            query[sw] = None
            alive += 1
        return [
            state.with_(
                up=up,
                query=query,
                alive_num=alive,
                pc=_set_pc(state, proc, "START_SWITCH"),
            )
        ]

    return []


def _timer_steps(state: ModelState) -> List[ModelState]:
    if state.owner is None:
        return []
    lease = state.d("lease_remaining")
    active = state.d("active")
    if lease[state.owner] > 0 and not active[state.owner]:
        lease[state.owner] -= 1
        return [state.with_(lease_remaining=lease)]
    if lease[state.owner] == 0:
        return [state.with_(owner=None)]
    return []


def _pktgen_steps(
    state: ModelState, label: str, cfg: ModelConfig
) -> List[ModelState]:
    if label != "START_PKTGEN":
        return []
    if state.sent_pkts >= cfg.total_pkts:
        return [state.with_(pc=_set_pc(state, "pktgen", "Done"))]
    if state.alive_num < 1:
        return []
    out = []
    up = state.d("up")
    for sw, is_up in up.items():
        if not is_up:
            continue
        pkts = state.d("pkt_queue")
        pkts[sw] += 1
        out.append(
            state.with_(pkt_queue=pkts, sent_pkts=state.sent_pkts + 1)
        )
    return out


def set_lease_period(period: int) -> None:
    """Configure the model's LEASE_PERIOD constant (see checker)."""
    global _LEASE_PERIOD
    if period <= 0:
        raise ValueError("lease period must be positive")
    _LEASE_PERIOD = period

"""Explicit-state model checker for the protocol spec (Appendix C).

A breadth-first exploration of every interleaving of the spec's atomic
steps from the initial state, checking the invariants at every reachable
state — the same thing TLC does for the paper's TLA+ model, minus symmetry
reduction (the state spaces at the paper's constants are small enough).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.model.spec import (
    InvariantViolation,
    ModelConfig,
    ModelState,
    check_invariants,
    initial_state,
    set_lease_period,
    successors,
)


@dataclass
class CheckResult:
    """Outcome of one model-checking run."""

    ok: bool
    states_explored: int
    transitions: int
    violation: Optional[InvariantViolation] = None
    deadlocks: List[ModelState] = field(default_factory=list)
    max_depth: int = 0

    def summary(self) -> str:
        status = "OK" if self.ok else f"VIOLATION: {self.violation}"
        return (
            f"{status} — {self.states_explored} states, "
            f"{self.transitions} transitions, depth {self.max_depth}, "
            f"{len(self.deadlocks)} terminal states"
        )


def model_check(
    cfg: Optional[ModelConfig] = None,
    max_states: int = 2_000_000,
    check_deadlock: bool = True,
) -> CheckResult:
    """Explore the full reachable state space of the protocol model.

    A *deadlock* here is a non-final state with no enabled action; final
    states (all packets generated and processed, pktgen Done) are expected
    terminals and not reported. Raises nothing: violations are returned in
    the result so tests can assert on them explicitly.
    """
    cfg = cfg or ModelConfig()
    set_lease_period(cfg.lease_period)
    init = initial_state(cfg)
    seen: Set[ModelState] = {init}
    frontier = deque([(init, 0)])
    result = CheckResult(ok=True, states_explored=0, transitions=0)

    while frontier:
        state, depth = frontier.popleft()
        result.states_explored += 1
        result.max_depth = max(result.max_depth, depth)
        if result.states_explored > max_states:
            raise RuntimeError(f"state space exceeds {max_states} states")
        try:
            check_invariants(state, cfg)
            nexts = successors(state, cfg)
        except InvariantViolation as violation:
            result.ok = False
            result.violation = violation
            return result
        if not nexts:
            if check_deadlock and not _is_expected_terminal(state, cfg):
                result.deadlocks.append(state)
            continue
        for nxt in nexts:
            result.transitions += 1
            if nxt not in seen:
                seen.add(nxt)
                frontier.append((nxt, depth + 1))
    return result


def _is_expected_terminal(state: ModelState, cfg: ModelConfig) -> bool:
    """All packets generated and drained, pktgen finished."""
    pc = state.d("pc")
    if pc.get("pktgen") != "Done":
        return False
    return all(count == 0 for count in state.d("pkt_queue").values())


def liveness_probe(cfg: Optional[ModelConfig] = None) -> bool:
    """A weak liveness check: some reachable state has every packet drained.

    (The TLA+ spec states a leads-to property; full LTL checking is out of
    scope, but reachability of the drained state plus deadlock-freedom of
    the BFS gives the same practical assurance at these model sizes.)
    """
    cfg = cfg or ModelConfig()
    set_lease_period(cfg.lease_period)
    init = initial_state(cfg)
    seen: Set[ModelState] = {init}
    frontier = deque([init])
    while frontier:
        state = frontier.popleft()
        pc = state.d("pc")
        if pc.get("pktgen") == "Done" and all(
            c == 0 for c in state.d("pkt_queue").values()
        ):
            return True
        for nxt in successors(state, cfg):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False

"""Formal protocol model: TLA+ spec port, model checker, linearizability."""

from repro.model.checker import CheckResult, liveness_probe, model_check
from repro.model.monitors import InvariantMonitor, Violation
from repro.model.linearizability import (
    FlowHistory,
    check_counter_history,
    check_linearizable,
    counter_apply,
    kv_apply,
)
from repro.model.witness import ViolationWitness
from repro.model.spec import (
    InvariantViolation,
    ModelConfig,
    ModelState,
    initial_state,
    successors,
)

__all__ = [
    "CheckResult",
    "InvariantMonitor",
    "Violation",
    "liveness_probe",
    "model_check",
    "FlowHistory",
    "check_counter_history",
    "check_linearizable",
    "counter_apply",
    "kv_apply",
    "ViolationWitness",
    "InvariantViolation",
    "ModelConfig",
    "ModelState",
    "initial_state",
    "successors",
]

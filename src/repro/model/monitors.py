"""Online invariant monitors for live deployments.

The model checker (Appendix C) verifies the protocol over all
interleavings of a small model; these monitors check the same invariants
*continuously on a running simulation* — the runtime-verification
counterpart, usable under full-scale workloads where exhaustive checking
is impossible. Used by the fuzz tests and available to experiments.

Monitored invariants:

* **single owner** — across all store replicas, at most one switch holds
  an unexpired lease per flow (``SingleOwnerInvariant``);
* **sequence monotonicity** — a store record's applied sequence number
  never decreases between samples (what Fig 6b's sequencing guarantees);
* **no value regression** — a record's value list never reverts to an
  older version once a newer one was applied (counter-style apps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.packet import FlowKey
from repro.net.simulator import Simulator
from repro.statestore.server import StateStoreNode


@dataclass
class Violation:
    time_us: float
    invariant: str
    detail: str


class InvariantMonitor:
    """Samples store replicas periodically and records violations."""

    def __init__(
        self,
        sim: Simulator,
        stores: List[StateStoreNode],
        engines: Optional[list] = None,
        interval_us: float = 1_000.0,
        track_monotonic_values: bool = False,
    ) -> None:
        if interval_us <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.stores = list(stores)
        #: RedPlane engines whose lease beliefs are cross-checked; the
        #: switch-side view is conservative (expiry margin, §5.3), so two
        #: engines believing they own one flow is a genuine violation.
        self.engines = list(engines or [])
        self.interval_us = interval_us
        self.track_monotonic_values = track_monotonic_values
        self.violations: List[Violation] = []
        self.samples = 0
        self._last_seq: Dict[Tuple[str, FlowKey], int] = {}
        self._last_vals: Dict[Tuple[str, FlowKey], List[int]] = {}
        self.running = False

    def start(self) -> None:
        self.running = True
        self.sim.schedule(self.interval_us, self._sample)

    def stop(self) -> None:
        self.running = False

    # -- sampling ---------------------------------------------------------------

    def _sample(self) -> None:
        if not self.running:
            return
        self.samples += 1
        self._check_single_owner()
        self._check_sequences()
        self.sim.schedule(self.interval_us, self._sample)

    def _check_single_owner(self) -> None:
        """At most one live switch believes it holds a flow's lease.

        The switch-side expiry carries a safety margin below the store's
        grant (§5.3), so concurrent belief on two switches is a genuine
        single-owner violation, not clock skew.
        """
        now = self.sim.now
        keys = set()
        for engine in self.engines:
            if engine.switch.failed:
                continue
            keys.update(engine._flow_idx.keys())
        for key in keys:
            holders = [
                engine.switch.name
                for engine in self.engines
                if not engine.switch.failed and engine.lease_valid(key)
            ]
            if len(holders) > 1:
                self.violations.append(Violation(
                    now, "SingleOwnerInvariant",
                    f"{key}: held by {holders}"))

    def _check_sequences(self) -> None:
        now = self.sim.now
        for store in self.stores:
            if store.failed:
                continue
            for key, rec in store.records.items():
                tag = (store.name, key)
                prev = self._last_seq.get(tag)
                if prev is not None and rec.last_seq < prev:
                    self.violations.append(Violation(
                        now, "SequenceMonotonicity",
                        f"{store.name} {key}: {prev} -> {rec.last_seq}"))
                self._last_seq[tag] = rec.last_seq
                if self.track_monotonic_values and rec.vals:
                    prev_vals = self._last_vals.get(tag)
                    if prev_vals is not None and rec.vals[0] < prev_vals[0]:
                        self.violations.append(Violation(
                            now, "ValueRegression",
                            f"{store.name} {key}: {prev_vals} -> {rec.vals}"))
                    self._last_vals[tag] = list(rec.vals)

    # -- results ------------------------------------------------------------------

    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        if self.ok():
            return f"OK — {self.samples} samples, no violations"
        lines = [f"{len(self.violations)} violation(s):"]
        for violation in self.violations[:20]:
            lines.append(
                f"  t={violation.time_us:.1f}us {violation.invariant}: "
                f"{violation.detail}"
            )
        return "\n".join(lines)

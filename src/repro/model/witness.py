"""Violation witnesses: what exactly did a failed chaos run violate?

A :class:`ViolationWitness` distills a chaos verdict report's failure
modes into a small, comparable value: the set of violated property
*kinds* (invariant names, ``NonLinearizable``, ``NoProgress``) plus the
first violation detail for human consumption. The shrinker uses
witnesses as its oracle — a candidate schedule "still reproduces" the
failure iff its witness :meth:`covers` the original one, so shrinking
cannot wander from a linearizability break to an unrelated liveness
stall and call the result minimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Synthetic witness kinds (alongside the monitor's invariant names).
NON_LINEARIZABLE = "NonLinearizable"
NO_PROGRESS = "NoProgress"
#: The Definition-3 search ran out of node budget: undecided, which is
#: still a (distinct) failure mode — it must never be conflated with a
#: *proven* linearizability break.
LIN_SEARCH_EXCEEDED = "LinSearchExceeded"


@dataclass(frozen=True)
class ViolationWitness:
    """The failure modes one run exhibited, in canonical order."""

    #: Sorted, deduplicated property kinds that were violated.
    kinds: Tuple[str, ...]
    #: ``invariant -> first violation detail`` (human context, not
    #: compared by :meth:`covers`).
    first_details: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def from_report(cls, report: Dict[str, object]) -> "ViolationWitness":
        """Extract the witness from a verdict report (empty for PASS)."""
        kinds: List[str] = []
        details: Dict[str, str] = {}
        invariants = report.get("invariants", {})
        for violation in invariants.get("violations", ()):  # type: ignore[union-attr]
            name = str(violation["invariant"])  # type: ignore[index]
            if name not in details:
                kinds.append(name)
                details[name] = str(violation["detail"])  # type: ignore[index]
        if not report.get("linearizable", True):
            if report.get("linearizability_search_exhausted"):
                kinds.append(LIN_SEARCH_EXCEEDED)
            else:
                kinds.append(NON_LINEARIZABLE)
        traffic = report.get("traffic", {})
        if not traffic.get("delivered", 1):  # type: ignore[union-attr]
            kinds.append(NO_PROGRESS)
        return cls(
            kinds=tuple(sorted(set(kinds))),
            first_details=tuple(sorted(details.items())),
        )

    def __bool__(self) -> bool:
        return bool(self.kinds)

    def covers(self, other: "ViolationWitness") -> bool:
        """Does this witness reproduce ``other``'s failure?

        True iff every kind ``other`` exhibited is exhibited here too.
        A shrunk schedule may expose *additional* failure modes (a
        smaller schedule often fails harder); it must not lose any.
        """
        return set(other.kinds) <= set(self.kinds)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kinds": list(self.kinds),
            "first_details": {k: v for k, v in self.first_details},
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ViolationWitness":
        return cls(
            kinds=tuple(d.get("kinds", ())),  # type: ignore[arg-type]
            first_details=tuple(sorted(
                (str(k), str(v))
                for k, v in dict(d.get("first_details", {})).items())),  # type: ignore[arg-type]
        )

    def describe(self) -> str:
        if not self.kinds:
            return "clean (no violations)"
        parts = []
        detail_map = dict(self.first_details)
        for kind in self.kinds:
            if kind in detail_map:
                parts.append(f"{kind} ({detail_map[kind]})")
            else:
                parts.append(kind)
        return "; ".join(parts)

"""Per-flow linearizability checking over recorded histories (§4.2-4.3).

Definition 3: a history ``H`` (input events ``I_p`` and output events
``O_p``) is linearizable for program ``P`` iff some reordering ``S`` of the
inputs (1) reproduces every observed output value when ``P`` runs over
``S`` in sequence, and (2) respects real-time precedence: if ``O_x``
precedes ``I_y`` in ``H`` then ``I_x`` precedes ``I_y`` in ``S``.

Inputs *without* outputs are the two permitted anomalies (§4.2): a packet
lost before the switch (appears at the end of ``S`` with no effect) or
after it (appears anywhere, its state update visible to later packets).
The checker therefore allows unmatched inputs to take effect *or* be
appended, and searches orderings with backtracking — feasible for the
per-flow history sizes tests generate (a flow's packets, not a trace's).

Definition 4 (per-flow linearizability) follows by running the checker on
each flow's subhistory independently.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# A program for checking purposes: state x input -> (state, output value).
ApplyFn = Callable[[object, object], Tuple[object, object]]


@dataclass
class FlowHistory:
    """The recorded events of one flow, in wall-clock order."""

    #: (trace_id, input_value) in arrival order at the switch.
    inputs: List[Tuple[int, object]] = field(default_factory=list)
    #: trace_id -> observed output value (packets that made it out).
    outputs: Dict[int, object] = field(default_factory=dict)
    #: arrival time per input trace_id.
    input_times: Dict[int, float] = field(default_factory=dict)
    #: emission time per output trace_id.
    output_times: Dict[int, float] = field(default_factory=dict)

    def add_input(self, trace_id: int, value: object, time: float) -> None:
        self.inputs.append((trace_id, value))
        self.input_times[trace_id] = time

    def add_output(self, trace_id: int, value: object, time: float) -> None:
        self.outputs[trace_id] = value
        self.output_times[trace_id] = time

    def precedence_pairs(self) -> List[Tuple[int, int]]:
        """(x, y) pairs where O_x happened before I_y in real time."""
        pairs = []
        for x, t_out in self.output_times.items():
            for y, t_in in self.input_times.items():
                if x != y and t_out < t_in:
                    pairs.append((x, y))
        return pairs


def check_linearizable(
    history: FlowHistory,
    apply_fn: ApplyFn,
    initial_state: object,
    max_nodes: int = 2_000_000,
) -> bool:
    """Search for a valid sequential order ``S`` (Definition 3)."""
    ids = [tid for tid, _val in history.inputs]
    values = {tid: val for tid, val in history.inputs}
    must_precede: Dict[int, set] = {tid: set() for tid in ids}
    for x, y in history.precedence_pairs():
        if x in must_precede and y in must_precede:
            must_precede[y].add(x)

    outputs = history.outputs
    n = len(ids)
    nodes = 0
    # Memoize refuted subproblems: whether a completion exists depends
    # only on (state, remaining), not on the order already placed. Kept
    # best-effort — an unhashable program state just skips the memo.
    refuted: set = set()

    def search(placed: Tuple[int, ...], state: object, remaining: frozenset) -> bool:
        nonlocal nodes
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError("linearizability search exceeded node budget")
        if not remaining:
            return True
        try:
            memo_key = (state, remaining)
            if memo_key in refuted:
                return False
        except TypeError:
            memo_key = None
        for tid in sorted(remaining):
            if must_precede[tid] & remaining:
                continue  # some required predecessor not yet placed
            new_state, out_val = apply_fn(state, values[tid])
            if tid in outputs:
                if outputs[tid] != out_val:
                    continue  # observed output contradicts this position
                if search(placed + (tid,), new_state, remaining - {tid}):
                    return True
            else:
                # Anomaly case 1: input took effect, output lost in flight.
                if search(placed + (tid,), new_state, remaining - {tid}):
                    return True
                # Anomaly case 2: input never reached the program; it can
                # sit at the end of S with no visible effect — equivalent
                # to skipping it entirely, provided nothing must follow it.
                if not any(
                    tid in must_precede[other] for other in remaining - {tid}
                ):
                    if search(placed, state, remaining - {tid}):
                        return True
        if memo_key is not None:
            refuted.add(memo_key)
        return False

    return search((), initial_state, frozenset(ids))


def counter_apply(state: int, _value: object) -> Tuple[int, int]:
    """The per-flow counter program: increment, output the new count."""
    return state + 1, state + 1


def kv_apply(state: Optional[int], op: Tuple[str, Optional[int]]):
    """The in-switch KV program: ('r', None) reads, ('w', v) writes."""
    kind, val = op
    if kind == "w":
        return val, val
    return state, state


def counter_quick_reject(history: FlowHistory) -> bool:
    """Sound fast rejections for counter histories (no search).

    Along any sequential order the counter's output values are exactly
    the 1-based positions of the applied inputs, so they are *strictly
    increasing* and unique. Two cheap necessary conditions follow:

    * no two delivered outputs share a value;
    * if ``O_x`` really-happened-before ``I_y`` (so ``x`` must precede
      ``y`` in any valid order) then ``outputs[y] > outputs[x]``;
    * no output value can exceed the number of inputs available.

    Returns True when the history is definitely NOT linearizable.
    """
    vals = list(history.outputs.values())
    if len(vals) != len(set(vals)):
        return True
    if vals and max(vals) > len(history.inputs):  # type: ignore[type-var]
        return True
    for x, y in history.precedence_pairs():
        if x in history.outputs and y in history.outputs \
                and history.outputs[y] <= history.outputs[x]:
            return True
    return False


def counter_decide(history: FlowHistory) -> Optional[bool]:
    """Exact polynomial decision of Definition 3 for counter histories.

    The counter program outputs the 1-based position of each applied
    input, so every delivered output pins its input to position
    ``outputs[x]`` in any valid order ``S``. Precedence constraints
    (``O_x`` before ``I_y``) always originate at an *output-bearing*
    input — only those have an O event — which flattens the search:

    * constraints between two output-bearing inputs are checked by
      comparing their pinned positions (:func:`counter_quick_reject`);
    * an input with no output ("filler") has no successors, so it can
      always be placed at the end of ``S`` or dropped (§4.2 anomalies) —
      it is never *required* anywhere; its only constraint is an
      earliest position ``e_y = 1 + max(outputs[x])`` over incoming
      precedence edges.

    A valid order therefore exists iff, for the pinned positions
    ``v_1 < … < v_m``, each prefix can be filled: position ``v_k`` needs
    ``v_k − k`` fillers placed before it, drawn from fillers with
    ``e_y ≤ v_k − 1``. The prefix sets are nested, so the greedy /
    Hall's-condition count decides feasibility in ``O(n log n)``.

    Returns ``True``/``False``, or ``None`` when the history is not a
    well-formed counter history (non-integer outputs, outputs without a
    matching input) and the generic search must be used instead.
    """
    in_ids = {tid for tid, _val in history.inputs}
    for tid, val in history.outputs.items():
        if not isinstance(val, int) or val < 1 or tid not in in_ids:
            return None
    if counter_quick_reject(history):
        return False
    if not history.outputs:
        return True

    bearing = sorted(history.outputs.items(), key=lambda kv: kv[1])
    earliest: Dict[int, int] = {}
    for x, y in history.precedence_pairs():
        if x in history.outputs and y in in_ids and y not in history.outputs:
            earliest[y] = max(earliest.get(y, 1), history.outputs[x] + 1)
    filler_earliest = sorted(
        earliest.get(tid, 1) for tid in in_ids if tid not in history.outputs
    )
    for k, (_tid, val) in enumerate(bearing, start=1):
        need = val - k
        if need < 0:
            return False  # duplicate-free + sorted, so val >= k normally
        avail = bisect.bisect_right(filler_earliest, val - 1)
        if avail < need:
            return False
    return True


def check_counter_history(history: FlowHistory,
                          max_nodes: int = 2_000_000) -> bool:
    """Convenience: check a per-flow counter flow history.

    Uses the exact polynomial procedure (:func:`counter_decide`) when
    the history is a well-formed counter history — fault fuzzing
    produces runs with dozens of lost inputs, where the generic
    backtracking search is exponential — and falls back to the full
    Definition 3 search otherwise.
    """
    decided = counter_decide(history)
    if decided is not None:
        return decided
    if counter_quick_reject(history):
        return False
    return check_linearizable(history, counter_apply, 0,
                              max_nodes=max_nodes)

"""Per-flow linearizability checking over recorded histories (§4.2-4.3).

Definition 3: a history ``H`` (input events ``I_p`` and output events
``O_p``) is linearizable for program ``P`` iff some reordering ``S`` of the
inputs (1) reproduces every observed output value when ``P`` runs over
``S`` in sequence, and (2) respects real-time precedence: if ``O_x``
precedes ``I_y`` in ``H`` then ``I_x`` precedes ``I_y`` in ``S``.

Inputs *without* outputs are the two permitted anomalies (§4.2): a packet
lost before the switch (appears at the end of ``S`` with no effect) or
after it (appears anywhere, its state update visible to later packets).
The checker therefore allows unmatched inputs to take effect *or* be
appended, and searches orderings with backtracking — feasible for the
per-flow history sizes tests generate (a flow's packets, not a trace's).

Definition 4 (per-flow linearizability) follows by running the checker on
each flow's subhistory independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# A program for checking purposes: state x input -> (state, output value).
ApplyFn = Callable[[object, object], Tuple[object, object]]


@dataclass
class FlowHistory:
    """The recorded events of one flow, in wall-clock order."""

    #: (trace_id, input_value) in arrival order at the switch.
    inputs: List[Tuple[int, object]] = field(default_factory=list)
    #: trace_id -> observed output value (packets that made it out).
    outputs: Dict[int, object] = field(default_factory=dict)
    #: arrival time per input trace_id.
    input_times: Dict[int, float] = field(default_factory=dict)
    #: emission time per output trace_id.
    output_times: Dict[int, float] = field(default_factory=dict)

    def add_input(self, trace_id: int, value: object, time: float) -> None:
        self.inputs.append((trace_id, value))
        self.input_times[trace_id] = time

    def add_output(self, trace_id: int, value: object, time: float) -> None:
        self.outputs[trace_id] = value
        self.output_times[trace_id] = time

    def precedence_pairs(self) -> List[Tuple[int, int]]:
        """(x, y) pairs where O_x happened before I_y in real time."""
        pairs = []
        for x, t_out in self.output_times.items():
            for y, t_in in self.input_times.items():
                if x != y and t_out < t_in:
                    pairs.append((x, y))
        return pairs


def check_linearizable(
    history: FlowHistory,
    apply_fn: ApplyFn,
    initial_state: object,
    max_nodes: int = 2_000_000,
) -> bool:
    """Search for a valid sequential order ``S`` (Definition 3)."""
    ids = [tid for tid, _val in history.inputs]
    values = {tid: val for tid, val in history.inputs}
    must_precede: Dict[int, set] = {tid: set() for tid in ids}
    for x, y in history.precedence_pairs():
        if x in must_precede and y in must_precede:
            must_precede[y].add(x)

    outputs = history.outputs
    n = len(ids)
    nodes = 0

    def search(placed: Tuple[int, ...], state: object, remaining: frozenset) -> bool:
        nonlocal nodes
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError("linearizability search exceeded node budget")
        if not remaining:
            return True
        for tid in sorted(remaining):
            if must_precede[tid] & remaining:
                continue  # some required predecessor not yet placed
            new_state, out_val = apply_fn(state, values[tid])
            if tid in outputs:
                if outputs[tid] != out_val:
                    continue  # observed output contradicts this position
                if search(placed + (tid,), new_state, remaining - {tid}):
                    return True
            else:
                # Anomaly case 1: input took effect, output lost in flight.
                if search(placed + (tid,), new_state, remaining - {tid}):
                    return True
                # Anomaly case 2: input never reached the program; it can
                # sit at the end of S with no visible effect — equivalent
                # to skipping it entirely, provided nothing must follow it.
                if not any(
                    tid in must_precede[other] for other in remaining - {tid}
                ):
                    if search(placed, state, remaining - {tid}):
                        return True
        return False

    return search((), initial_state, frozenset(ids))


def counter_apply(state: int, _value: object) -> Tuple[int, int]:
    """The per-flow counter program: increment, output the new count."""
    return state + 1, state + 1


def kv_apply(state: Optional[int], op: Tuple[str, Optional[int]]):
    """The in-switch KV program: ('r', None) reads, ('w', v) writes."""
    kind, val = op
    if kind == "w":
        return val, val
    return state, state


def check_counter_history(history: FlowHistory) -> bool:
    """Convenience: check a per-flow counter flow history."""
    return check_linearizable(history, counter_apply, 0)

"""Server-based network functions (the "Server-NAT" baselines of Fig 8).

The NF runs on a commodity server as a one-armed appliance: clients tunnel
outbound packets to the NF (the standard NFV steering pattern), the NF
translates and emits the real packet; inbound traffic reaches the NF by
routing the NAT public address to its host. Per-packet cost is dominated
by the extra network detour plus software processing — the paper measures
7-14x the median latency of switch-based NATs.

The FT variant synchronously replicates each state-affecting packet's
update to a replica server before releasing output (Pico-style), adding
another network round trip on writes and a smaller logging cost per packet.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.net import constants
from repro.net.hosts import Host
from repro.net.packet import FlowKey, Packet, ip_aton
from repro.net.simulator import Simulator
from repro.net.topology import Testbed
from repro.apps.nat import NAT_PUBLIC_IP, is_internal

#: UDP port on which the NF accepts tunneled (encapsulated) packets.
NF_TUNNEL_PORT = 6000
#: UDP port for replication traffic between NF instances.
NF_REPL_PORT = 6001


def tunnel_to_nf(inner: Packet, src_ip: int, nf_ip: int) -> Packet:
    """Encapsulate a packet for steering to the NF server."""
    return Packet.udp(
        src_ip, nf_ip, NF_TUNNEL_PORT, NF_TUNNEL_PORT, payload=inner.to_bytes()
    )


class ServerNat(Host):
    """A software NAT on a server, optionally with synchronous replication."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: int,
        public_ip: int = NAT_PUBLIC_IP,
        replica_ips: Optional[List[int]] = None,
        proc_delay_us: float = constants.SERVER_NF_PROC_US,
    ) -> None:
        super().__init__(sim, name, ip)
        self.public_ip = public_ip
        self.extra_ips.add(public_ip)
        self.replica_ips = list(replica_ips or [])
        self.proc_delay_us = proc_delay_us
        #: public-side port -> internal (ip, port)
        self.translations: Dict[int, Tuple[int, int]] = {}
        self.bind(NF_TUNNEL_PORT, self._on_tunneled)
        self.bind(NF_REPL_PORT, self._on_replication)
        self.default_handler = self._on_inbound
        self.packets_processed = 0
        self.replications_sent = 0
        self._pending_release: Dict[int, List[Packet]] = {}
        self._next_repl_id = 0
        self._repl_acks_needed: Dict[int, int] = {}

    # -- outbound: tunneled from internal clients ----------------------------------

    def _on_tunneled(self, pkt: Packet) -> None:
        inner = Packet.from_bytes(pkt.payload)
        if inner.ip is None or inner.l4 is None:
            return
        self.packets_processed += 1
        new_entry = inner.l4.sport not in self.translations
        self.translations[inner.l4.sport] = (inner.ip.src, inner.l4.sport)
        inner.ip.src = self.public_ip
        if new_entry and self.replica_ips:
            self._replicate_then_send(inner.l4.sport, inner)
        else:
            self.send(inner, delay=self.proc_delay_us)

    # -- inbound: routed to us via the public address ---------------------------------

    def _on_inbound(self, pkt: Packet) -> None:
        if pkt.ip is None or pkt.l4 is None or pkt.ip.dst != self.public_ip:
            return
        entry = self.translations.get(pkt.l4.dport)
        if entry is None:
            self.sim.count(f"{self.name}.drops.no_translation")
            return
        self.packets_processed += 1
        int_ip, _int_port = entry
        pkt.ip.dst = int_ip
        self.send(pkt, delay=self.proc_delay_us)

    # -- synchronous replication to peer NF instances ------------------------------------

    def _replicate_then_send(self, port: int, out_pkt: Packet) -> None:
        repl_id = self._next_repl_id
        self._next_repl_id += 1
        self._pending_release.setdefault(repl_id, []).append(out_pkt)
        self._repl_acks_needed[repl_id] = len(self.replica_ips)
        int_ip, int_port = self.translations[port]
        payload = struct.pack("!IHIH", repl_id, port, int_ip, int_port)
        for replica_ip in self.replica_ips:
            msg = Packet.udp(self.ip, replica_ip, NF_REPL_PORT, NF_REPL_PORT,
                             payload=payload)
            self.send(msg, delay=self.proc_delay_us)
            self.replications_sent += 1

    def _on_replication(self, pkt: Packet) -> None:
        if len(pkt.payload) == struct.calcsize("!IHIH"):
            # A replication request from a peer: record and acknowledge.
            repl_id, port, int_ip, int_port = struct.unpack("!IHIH", pkt.payload)
            self.translations[port] = (int_ip, int_port)
            ack = Packet.udp(self.ip, pkt.ip.src, NF_REPL_PORT, NF_REPL_PORT,
                             payload=struct.pack("!I", repl_id))
            self.send(ack, delay=self.proc_delay_us)
            return
        # An acknowledgment for our own replication.
        (repl_id,) = struct.unpack("!I", pkt.payload[:4])
        needed = self._repl_acks_needed.get(repl_id)
        if needed is None:
            return
        needed -= 1
        if needed > 0:
            self._repl_acks_needed[repl_id] = needed
            return
        del self._repl_acks_needed[repl_id]
        for out_pkt in self._pending_release.pop(repl_id, []):
            self.send(out_pkt, delay=self.proc_delay_us)


def install_nf_routes(bed: Testbed, nf_host: Host,
                      public_ip: int = NAT_PUBLIC_IP) -> None:
    """Route the NAT public /32 to the NF server's attachment point."""
    nf_port = nf_host.nic.link.other_end(nf_host.nic)
    attach_switch = nf_port.node

    # The switch the NF hangs off gets a direct /32.
    attach_switch.table.add(public_ip, 32, [nf_port])

    # Everyone else routes toward that switch through the normal fabric.
    for tor in bed.tors:
        if tor is attach_switch:
            continue
        uplinks = [
            p for p in tor.ports
            if p.link is not None and p.link.other_end(p).node in bed.aggs
        ]
        if uplinks:
            tor.table.add(public_ip, 32, uplinks)
    for agg in bed.aggs:
        ports = [
            p for p in agg.ports
            if p.link is not None and p.link.other_end(p).node is attach_switch
        ]
        if ports:
            agg.table.add(public_ip, 32, ports)
    for core in bed.cores:
        ports = [
            p for p in core.ports
            if p.link is not None and p.link.other_end(p).node is attach_switch
        ]
        if not ports:
            ports = [
                p for p in core.ports
                if p.link is not None and p.link.other_end(p).node in bed.aggs
            ]
        if ports:
            core.table.add(public_ip, 32, ports)

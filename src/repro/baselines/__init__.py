"""Fault-tolerance baselines: §2.2 strawmen and the Fig 8 comparators."""

from repro.baselines.chain_switches import (
    CHAIN_SWITCH_PORT,
    SwitchChainBackup,
    SwitchChainHead,
    memory_overhead,
)
from repro.baselines.controller_ft import (
    CheckpointingAgent,
    ControllerFtBlock,
    ExternalController,
)
from repro.baselines.ftmb import sample_latencies as ftmb_sample_latencies
from repro.baselines.rollback import PacketLogger
from repro.baselines.server_nf import (
    NF_REPL_PORT,
    NF_TUNNEL_PORT,
    ServerNat,
    install_nf_routes,
    tunnel_to_nf,
)
from repro.baselines.switch_noft import PlainAppBlock

__all__ = [
    "CHAIN_SWITCH_PORT",
    "SwitchChainBackup",
    "SwitchChainHead",
    "memory_overhead",
    "CheckpointingAgent",
    "ControllerFtBlock",
    "ExternalController",
    "ftmb_sample_latencies",
    "PacketLogger",
    "NF_REPL_PORT",
    "NF_TUNNEL_PORT",
    "ServerNat",
    "install_nf_routes",
    "tunnel_to_nf",
    "PlainAppBlock",
]

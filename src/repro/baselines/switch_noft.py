"""Plain in-switch application without fault tolerance.

The "Switch-NAT" baseline of Fig 8 and the "w/o RedPlane" side of Fig 12:
the application runs with purely switch-local state. First packets of new
flows still pay the control-plane slow path when the app's state lives in
match tables (as a real P4 NAT does), which is what drives the baseline's
own 99th-percentile latency. All state is lost if the switch fails.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.net.packet import FlowKey, Packet
from repro.switch.asic import SwitchASIC
from repro.switch.pipeline import ControlBlock, PipelineContext, Verdict
from repro.core.app import AppVerdict, InSwitchApp


class PlainAppBlock(ControlBlock):
    """Runs an :class:`InSwitchApp` with local, unreplicated state."""

    name = "plain-app"

    def __init__(
        self,
        switch: SwitchASIC,
        app: InSwitchApp,
        allocator: Optional[Callable[[FlowKey], List[int]]] = None,
    ) -> None:
        self.switch = switch
        self.app = app
        #: Local allocator standing in for global state (e.g. a DIP pool)
        #: that the RedPlane deployment would keep at the state store.
        self.allocator = allocator
        self.state: Dict[FlowKey, List[int]] = {}
        self._installed: Set[FlowKey] = set()
        self.packets = 0
        self.slow_path_packets = 0

    def process(self, ctx: PipelineContext, switch: SwitchASIC) -> bool:
        pkt = ctx.pkt
        key = self.app.partition_key(pkt)
        if key is None:
            return True
        self.packets += 1

        if key not in self.state:
            if self.allocator is not None:
                vals = list(self.allocator(key))
            else:
                init = self.app.initial_state(key)
                vals = init if init is not None else self.app.state_spec.default_vals()
            self.state[key] = vals
            if self.app.requires_control_plane_install and not pkt.meta.get(
                "noft_reinjected"
            ):
                # New-flow slow path: the entry is installed through the
                # switch control plane; the packet waits for the install.
                self.slow_path_packets += 1
                self.switch.control_plane.submit(self._finish_install, key, pkt)
                ctx.consume()
                return False
            self._installed.add(key)

        return self._run_app(ctx, key)

    def _finish_install(self, key: FlowKey, pkt: Packet) -> None:
        self._installed.add(key)
        pkt.meta["noft_reinjected"] = True
        self.switch.inject(pkt)

    def _run_app(self, ctx: PipelineContext, key: FlowKey) -> bool:
        from repro.core.flowstate import FlowStateView

        view = FlowStateView(self.app.state_spec, self.state[key])
        verdict = self.app.process(view, ctx.pkt, ctx, self.switch)
        if view.write_occurred:
            self.state[key] = view.vals()
        if verdict is AppVerdict.DROP:
            ctx.drop()
            return False
        return True

    def lose_all_state(self) -> int:
        """Fail-stop semantics: everything is gone. Returns entries lost."""
        lost = len(self.state)
        self.state.clear()
        self._installed.clear()
        return lost

    def resource_usage(self) -> dict:
        return self.app.resource_usage()

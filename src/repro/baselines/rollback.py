"""Rollback-recovery by packet logging (FTMB-style, Fig 2b / §2.2).

Every packet that can affect state is copied to the switch control plane
and logged at an external controller; after a failure the log is replayed
through the application logic on a replacement switch to reconstruct
state. The fatal flaw on a hardware switch is the Tbps-vs-Gbps mismatch
between the data plane and the ASIC-to-CPU channel: under load the logging
channel saturates, log entries drop, and the replayed state is *wrong* —
which this model makes measurable (``log_drops`` / ``replay_divergence``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net import constants
from repro.net.packet import FlowKey, Packet
from repro.switch.asic import SwitchASIC
from repro.switch.pipeline import ControlBlock, PipelineContext
from repro.core.app import InSwitchApp
from repro.core.flowstate import FlowStateView
from repro.baselines.switch_noft import PlainAppBlock

#: Maximum backlog the PCIe logging queue tolerates before dropping (us of
#: queueing delay); beyond this the channel is considered saturated.
LOG_QUEUE_CAP_US = 500.0


class PacketLogger(ControlBlock):
    """Copies app packets to the control plane for logging.

    Placed ahead of a :class:`PlainAppBlock`. The copy crosses the PCIe
    channel, which serializes at ``PCIE_BANDWIDTH_GBPS``; when the queue
    backlog exceeds the cap the copy is dropped and the log is incomplete.
    """

    name = "packet-logger"

    def __init__(self, switch: SwitchASIC, app: InSwitchApp) -> None:
        self.switch = switch
        self.app = app
        self.log: List[Tuple[float, bytes]] = []
        self.logged = 0
        self.log_drops = 0
        self._queue_free_at = 0.0

    def process(self, ctx: PipelineContext, switch: SwitchASIC) -> bool:
        pkt = ctx.pkt
        if self.app.partition_key(pkt) is None:
            return True
        now = switch.sim.now
        bits = pkt.byte_size() * 8
        serialization = bits / (constants.PCIE_BANDWIDTH_GBPS * 1000.0)
        backlog = max(0.0, self._queue_free_at - now)
        if backlog > LOG_QUEUE_CAP_US:
            # Logging channel saturated: the packet proceeds unlogged.
            self.log_drops += 1
            return True
        self._queue_free_at = max(self._queue_free_at, now) + serialization
        arrival = self._queue_free_at + constants.PCIE_ONEWAY_US
        raw = pkt.to_bytes()
        switch.sim.schedule_at(arrival, self._commit, raw)
        return True

    def _commit(self, raw: bytes) -> None:
        if self.switch.failed:
            return
        self.log.append((self.switch.sim.now, raw))
        self.logged += 1

    # -- recovery ------------------------------------------------------------

    def replay(self) -> Dict[FlowKey, List[int]]:
        """Rebuild application state by replaying the (possibly lossy) log."""
        state: Dict[FlowKey, List[int]] = {}
        for _ts, raw in self.log:
            pkt = Packet.from_bytes(raw)
            key = self.app.partition_key(pkt)
            if key is None:
                continue
            vals = state.get(key)
            if vals is None:
                init = self.app.initial_state(key)
                vals = init if init is not None else self.app.state_spec.default_vals()
            view = FlowStateView(self.app.state_spec, vals)
            ctx = PipelineContext(pkt=pkt, now=0.0)
            self.app.process(view, pkt, ctx, self.switch)
            state[key] = view.vals()
        return state

    def replay_divergence(self, truth: PlainAppBlock) -> int:
        """Number of flows whose replayed state differs from the truth."""
        replayed = self.replay()
        divergent = 0
        keys = set(replayed) | set(truth.state)
        for key in keys:
            if replayed.get(key) != truth.state.get(key):
                divergent += 1
        return divergent

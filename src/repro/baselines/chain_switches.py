"""State replication between switch data planes (Fig 2c / §2.2).

The strawman the paper argues against: chain replication where the chain
nodes are *switch data planes*. The head switch processes packets and
forwards state updates to a backup switch over the data network — with no
reliable transport (the data plane cannot run TCP), so updates can be lost
or reordered, silently corrupting the backup. It also doubles the use of
the scarcest resource (data-plane SRAM), which :meth:`memory_overhead`
makes explicit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.packet import FlowKey, Packet
from repro.switch.asic import SwitchASIC
from repro.switch.pipeline import ControlBlock, PipelineContext
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import FlowStateView

#: UDP port carrying head->backup state updates.
CHAIN_SWITCH_PORT = 4899


class SwitchChainHead(ControlBlock):
    """Head of a two-switch chain: process, then push updates downstream."""

    name = "chain-head"

    def __init__(self, switch: SwitchASIC, app: InSwitchApp, backup_ip: int) -> None:
        self.switch = switch
        self.app = app
        self.backup_ip = backup_ip
        self.state: Dict[FlowKey, List[int]] = {}
        self.updates_sent = 0

    def process(self, ctx: PipelineContext, switch: SwitchASIC) -> bool:
        pkt = ctx.pkt
        key = self.app.partition_key(pkt)
        if key is None:
            return True
        vals = self.state.get(key)
        if vals is None:
            init = self.app.initial_state(key)
            vals = init if init is not None else self.app.state_spec.default_vals()
        view = FlowStateView(self.app.state_spec, vals)
        verdict = self.app.process(view, pkt, ctx, self.switch)
        if view.write_occurred:
            self.state[key] = view.vals()
            # Fire-and-forget update to the backup switch: no sequence
            # numbers, no acknowledgment, no retransmission — exactly the
            # unreliable channel §2.2 says breaks correctness.
            update = Packet.udp(
                self.switch.ip,
                self.backup_ip,
                CHAIN_SWITCH_PORT,
                CHAIN_SWITCH_PORT,
                payload=key.pack() + b"".join(
                    v.to_bytes(4, "big") for v in view.vals()
                ),
            )
            update.meta["rp_kind"] = "request"
            ctx.emit(update)
            self.updates_sent += 1
        if verdict is AppVerdict.DROP:
            ctx.drop()
            return False
        return True


class SwitchChainBackup(ControlBlock):
    """Backup switch: blindly applies whatever updates arrive."""

    name = "chain-backup"

    def __init__(self, switch: SwitchASIC, app: InSwitchApp) -> None:
        self.switch = switch
        self.app = app
        self.state: Dict[FlowKey, List[int]] = {}
        self.updates_applied = 0

    def process(self, ctx: PipelineContext, switch: SwitchASIC) -> bool:
        pkt = ctx.pkt
        if (
            pkt.ip is None
            or pkt.ip.dst != self.switch.ip
            or getattr(pkt.l4, "dport", None) != CHAIN_SWITCH_PORT
        ):
            return True
        key = FlowKey.unpack(pkt.payload[: FlowKey.PACKED_LEN])
        raw_vals = pkt.payload[FlowKey.PACKED_LEN :]
        vals = [
            int.from_bytes(raw_vals[i : i + 4], "big")
            for i in range(0, len(raw_vals), 4)
        ]
        # No sequencing: a reordered older update overwrites a newer one.
        self.state[key] = vals
        self.updates_applied += 1
        ctx.consume()
        return False

    def divergence(self, head: SwitchChainHead) -> int:
        """Flows whose backup state differs from the head's truth."""
        keys = set(self.state) | set(head.state)
        return sum(
            1 for key in keys if self.state.get(key) != head.state.get(key)
        )


def memory_overhead(app: InSwitchApp, flows: int) -> Dict[str, int]:
    """Data-plane SRAM bits consumed with vs. without chain replication.

    Replicating another switch's state doubles the footprint of the most
    limited resource; RedPlane keeps the replica in server DRAM instead.
    """
    per_flow_bits = app.state_spec.num_vals * 32
    return {
        "single_switch_bits": flows * per_flow_bits,
        "chain_bits": 2 * flows * per_flow_bits,
    }

"""SDN-controller-based fault tolerance (the "FT Switch-NAT w/ controller"
baseline of Fig 8, and the checkpoint-recovery strawman of §2.2/Fig 2a).

An external controller, reachable from the switch control plane over a
slow (1 Gbps) management network and itself chain-replicated for fault
tolerance, mirrors the application's state:

* in **per-update mode** every new-flow installation is synchronously
  recorded at the controller before the packet proceeds — this is the
  Morpheus/Ravana-style baseline whose extra management-network round trip
  shows up at the 99th percentile (185 us in the paper);
* in **checkpoint mode** the controller pulls periodic snapshots of the
  full state through the control plane; a failover restores the last
  snapshot, losing every update since it was taken — and the snapshot
  itself is throttled by the ASIC-to-CPU channel, which is why the
  approach cannot keep up (§2.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net import constants
from repro.net.packet import FlowKey, Packet
from repro.net.simulator import Simulator
from repro.switch.asic import SwitchASIC
from repro.switch.pipeline import ControlBlock, PipelineContext
from repro.core.app import InSwitchApp
from repro.baselines.switch_noft import PlainAppBlock

#: One-way latency of the management network (us): software forwarding
#: over a 1 Gbps channel between the switch CPU and the controller.
MGMT_ONEWAY_US = 18.0

#: Processing time of one controller operation (us).
CONTROLLER_OP_US = 12.0

#: Extra latency for replicating a controller update across its own
#: chain-replicated instances (us).
CONTROLLER_CHAIN_US = 22.0


class ExternalController:
    """A (chain-replicated) SDN controller holding mirrored switch state."""

    def __init__(self, sim: Simulator, replicated: bool = True) -> None:
        self.sim = sim
        self.replicated = replicated
        self.mirrored_state: Dict[FlowKey, List[int]] = {}
        self.snapshots: List[Dict[FlowKey, List[int]]] = []
        self.snapshot_times: List[float] = []
        self.updates_recorded = 0

    def update_latency_us(self) -> float:
        latency = 2 * MGMT_ONEWAY_US + CONTROLLER_OP_US
        if self.replicated:
            latency += CONTROLLER_CHAIN_US
        return latency

    def record_update(self, key: FlowKey, vals: List[int], done) -> None:
        """Synchronously mirror one state update, then call ``done``."""

        def commit() -> None:
            self.mirrored_state[key] = list(vals)
            self.updates_recorded += 1
            done()

        self.sim.schedule(self.update_latency_us(), commit)

    def store_snapshot(self, state: Dict[FlowKey, List[int]]) -> None:
        self.snapshots.append({k: list(v) for k, v in state.items()})
        self.snapshot_times.append(self.sim.now)

    def latest_snapshot(self) -> Dict[FlowKey, List[int]]:
        return dict(self.snapshots[-1]) if self.snapshots else {}


class ControllerFtBlock(PlainAppBlock):
    """Per-update controller mirroring: new-flow installs detour through
    the management network before the first packet is released."""

    name = "controller-ft-app"

    def __init__(
        self,
        switch: SwitchASIC,
        app: InSwitchApp,
        controller: ExternalController,
        allocator=None,
    ) -> None:
        super().__init__(switch, app, allocator)
        self.controller = controller

    def _finish_install(self, key: FlowKey, pkt: Packet) -> None:
        # The switch control plane has done its part; the packet is held
        # for the controller round trip, then released; the state the app
        # produces on release is what the controller mirrors.
        def released() -> None:
            super(ControllerFtBlock, self)._finish_install(key, pkt)
            self.controller.mirrored_state[key] = list(self.state[key])
            self.controller.updates_recorded += 1

        self.switch.sim.schedule(self.controller.update_latency_us(), released)

    def restore_from_controller(self) -> int:
        """Failover: populate local state from the controller's mirror."""
        self.state = {k: list(v) for k, v in self.controller.mirrored_state.items()}
        self._installed = set(self.state)
        return len(self.state)


class CheckpointingAgent:
    """Periodic state snapshots over the ASIC-to-CPU channel (Fig 2a).

    Every period the agent reads the full state through the control plane
    (paying PCIe bandwidth for each entry) and ships it to the controller.
    ``restore`` installs the most recent completed snapshot — everything
    newer is lost, which is the correctness gap of checkpoint-recovery.
    """

    #: Approximate bytes read over PCIe per state entry (key + values).
    ENTRY_BYTES = 64

    def __init__(
        self,
        block: PlainAppBlock,
        controller: ExternalController,
        period_us: float,
    ) -> None:
        self.block = block
        self.controller = controller
        self.period_us = period_us
        self.sim = block.switch.sim
        self.snapshots_taken = 0
        self.running = False

    def start(self) -> None:
        self.running = True
        self.sim.schedule(self.period_us, self._tick)

    def stop(self) -> None:
        self.running = False

    def snapshot_duration_us(self, entries: int) -> float:
        """Time to drain one snapshot over the PCIe channel."""
        bits = entries * self.ENTRY_BYTES * 8
        return bits / (constants.PCIE_BANDWIDTH_GBPS * 1000.0) + (
            2 * MGMT_ONEWAY_US
        )

    def _tick(self) -> None:
        if not self.running or self.block.switch.failed:
            self.running = False
            return
        # Reading state through the control plane takes time proportional
        # to the state size; the snapshot content is what existed when the
        # read completes (data-plane execution is NOT paused, so updates
        # racing the read are exactly the consistency hazard of §2.2).
        duration = self.snapshot_duration_us(len(self.block.state))
        self.sim.schedule(duration, self._complete)
        self.sim.schedule(max(self.period_us, duration), self._tick)

    def _complete(self) -> None:
        if self.block.switch.failed:
            return
        self.controller.store_snapshot(self.block.state)
        self.snapshots_taken += 1

    def restore(self, target: Optional[PlainAppBlock] = None) -> int:
        """Install the latest snapshot into ``target`` (default: source)."""
        block = target or self.block
        block.state = self.controller.latest_snapshot()
        block._installed = set(block.state)
        return len(block.state)

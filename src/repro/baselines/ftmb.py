"""FTMB (rollback-recovery for software middleboxes) latency model.

The paper could not obtain FTMB's full implementation and therefore plots
the latency *reported* in the FTMB paper (footnote 9); we do the same. The
model synthesizes a per-packet latency distribution with FTMB's reported
characteristics for a NAT-like middlebox: a software-forwarding median
roughly an order of magnitude above switch NATs, plus a heavy tail from
periodic output commits and packet-access-log (PAL) flushes.
"""

from __future__ import annotations

import random
from typing import List

#: Median per-packet latency (us): software NF + FTMB logging overhead.
FTMB_MEDIAN_US = 105.0
#: Fraction of packets delayed by an output-commit epoch boundary.
COMMIT_FRACTION = 0.04
#: Added delay at a commit boundary (us): up to one commit interval.
COMMIT_DELAY_US = 1_000.0


def sample_latencies(n: int, seed: int = 0) -> List[float]:
    """Draw ``n`` per-packet latencies (us) from the FTMB model."""
    rng = random.Random(seed)
    out: List[float] = []
    for _ in range(n):
        base = rng.lognormvariate(0.0, 0.35) * FTMB_MEDIAN_US
        if rng.random() < COMMIT_FRACTION:
            base += rng.random() * COMMIT_DELAY_US
        out.append(base)
    return out

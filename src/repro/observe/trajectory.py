"""The perf-trajectory spine: normalized throughput history + CI gate.

Wall-clock benchmarks answer "how fast is this machine today"; the
trajectory answers "is the *code* getting slower". ``repro.tools bench
--record`` measures the two committed figures — the event-loop pipeline
and the fast-path steady-state scenario — and appends one entry per
figure to ``BENCH_TRAJECTORY.json`` at the repository root. ``--check``
compares a fresh measurement against each figure's last committed entry
and fails (exit code, CI gate) on a throughput regression beyond
:data:`REGRESSION_THRESHOLD`.

Raw packets/s is useless across machines, so every figure is stored
twice: raw, and **normalized** by the same run's raw timer-churn
event-loop rate (:func:`run_raw_eventloop`). The raw loop exercises only
the scheduler heap — the floor under everything else — so the normalized
figure ("pipeline packets per raw-loop event") cancels the machine's
single-thread speed and survives comparing a laptop entry against a CI
runner. The gate reads only normalized figures.

Entries carry wall-clock metadata (when recorded, interpreter version)
for humans; the gate never reads it.

The measurement functions here are the single source of truth:
``benchmarks/test_perf_eventloop.py`` imports them, so the committed
``BENCH_eventloop.json`` baseline and the trajectory measure exactly the
same workloads.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Dict, List, Optional

from repro.telemetry import ScopedTimer

#: Fail the gate when a normalized figure drops by more than this
#: fraction vs the figure's last committed entry.
REGRESSION_THRESHOLD = 0.20

#: Default trajectory file, at the repository root next to
#: BENCH_eventloop.json.
DEFAULT_PATH = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..",
                 "BENCH_TRAJECTORY.json")
)

RAW_EVENTS = 200_000
PIPELINE_PACKETS = 2_000
SEED = 5

#: Shard-figure shape: small enough to measure in seconds, large enough
#: that per-shard work dominates the shared (ghost) overhead.
SHARD_WORKERS = 2
SHARD_PACKETS = 2_000
SHARD_POPULATION = 50_000


# -- measurements (shared with benchmarks/test_perf_eventloop.py) --------------


def run_raw_eventloop() -> dict:
    """Timer churn only: the scheduler/heap floor of everything else."""
    from repro import Simulator

    sim = Simulator(seed=SEED)

    def tick() -> None:
        if sim.events_executed < RAW_EVENTS:
            sim.schedule(1.0, tick)

    # A handful of concurrent timer chains approximates the heap depth of
    # a real run better than one serial chain.
    for i in range(8):
        sim.schedule(float(i), tick)
    with ScopedTimer("raw") as timer:
        sim.run_until_idle()
    return {
        "events": sim.events_executed,
        "wall_s": timer.elapsed_s,
        "events_per_s": timer.rate(sim.events_executed),
    }


def run_pipeline(observe: bool = False) -> dict:
    """Full stack: testbed, ASIC pipeline, replication, state store.

    ``observe=True`` attaches the self-profiler for the run (the overhead
    benchmark compares this against the plain run; the <10% bound is
    asserted on this scenario, whose ~tens-of-µs events give the
    per-event accounting something real to amortize against).
    """
    from repro import Simulator, deploy
    from repro.apps.counter import SyncCounterApp
    from repro.net.packet import Packet

    sim = Simulator(seed=SEED)
    dep = deploy(sim, SyncCounterApp)
    sender = dep.bed.externals[0]
    receiver = dep.bed.servers[0]

    def send_packet() -> None:
        sender.send(Packet.udp(sender.ip, receiver.ip, 5555, 7777))

    for i in range(PIPELINE_PACKETS):
        sim.schedule(i * 10.0, send_packet)
    bundle = None
    if observe:
        from repro.observe import attach

        bundle = attach(sim, profile=True)
    with ScopedTimer("pipeline") as timer:
        sim.run_until_idle()
    result = {
        "events": sim.events_executed,
        "packets": sum(e.stats["app_packets"] for e in dep.engines.values()),
        "wall_s": timer.elapsed_s,
        "events_per_s": timer.rate(sim.events_executed),
    }
    result["packets_per_s"] = timer.rate(result["packets"])
    if bundle is not None:
        result["profile"] = bundle.profiler.to_dict()
        sim.detach_observe()
    return result


def measure() -> List[dict]:
    """Measure both committed figures; return trajectory entries.

    One raw event-loop run normalizes both figures, so each entry's
    ``normalized`` field is comparable across machines.
    """
    from repro.fastpath.bench import run_scenario
    from repro.shard.bench import bench_point

    raw = run_raw_eventloop()
    pipe = run_pipeline()
    fast = run_scenario(fastpath=True)
    shard = bench_point(SHARD_WORKERS, packets=SHARD_PACKETS,
                        population=SHARD_POPULATION, fastpath=True)
    meta = {
        "recorded_unix": int(time.time()),  # repro: noqa[RD201] -- benchmark record metadata
        "python": platform.python_version(),
    }
    return [
        {
            "schema": 1,
            "bench": "eventloop",
            "raw_events_per_s": round(raw["events_per_s"], 1),
            "throughput": round(pipe["packets_per_s"], 1),
            "unit": "pipeline_packets_per_s",
            "normalized": _normalize(pipe["packets_per_s"],
                                     raw["events_per_s"]),
            "meta": meta,
        },
        {
            "schema": 1,
            "bench": "fastpath",
            "raw_events_per_s": round(raw["events_per_s"], 1),
            "throughput": round(fast["packets_per_s"], 1),
            "unit": "nat_packets_per_s",
            "normalized": _normalize(fast["packets_per_s"],
                                     raw["events_per_s"]),
            "meta": meta,
        },
        {
            "schema": 1,
            "bench": "shard",
            "raw_events_per_s": round(raw["events_per_s"], 1),
            "throughput": round(shard["pps_critical_path"], 1),
            "unit": f"shard{SHARD_WORKERS}_critical_path_pps",
            "normalized": _normalize(shard["pps_critical_path"],
                                     raw["events_per_s"]),
            "meta": meta,
        },
    ]


def _normalize(throughput: float, raw_events_per_s: float) -> float:
    """Machine-independent figure: throughput per raw-loop event/s."""
    if raw_events_per_s <= 0:
        return 0.0
    return round(throughput / raw_events_per_s, 6)


# -- the committed trajectory file ---------------------------------------------


def load(path: str = DEFAULT_PATH) -> Dict[str, object]:
    """Load the trajectory document ({"schema": 1, "entries": [...]})."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        return {"schema": 1, "entries": []}
    if not isinstance(doc, dict) or not isinstance(doc.get("entries"), list):
        raise ValueError(f"{path}: not a trajectory document")
    return doc


def last_by_bench(doc: Dict[str, object]) -> Dict[str, dict]:
    """Each figure's most recent committed entry."""
    latest: Dict[str, dict] = {}
    for entry in doc["entries"]:  # type: ignore[union-attr]
        latest[str(entry["bench"])] = entry
    return latest


def append(entries: List[dict], path: str = DEFAULT_PATH) -> Dict[str, object]:
    """Append measured entries to the trajectory file; return the doc."""
    doc = load(path)
    doc["entries"].extend(entries)  # type: ignore[union-attr]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def check(
    entries: List[dict],
    baseline: Dict[str, dict],
    threshold: float = REGRESSION_THRESHOLD,
) -> Dict[str, object]:
    """Gate fresh measurements against each figure's last committed entry.

    Pure function (measurement and file I/O stay outside) so the gate
    logic is unit-testable without running benchmarks. A figure with no
    committed baseline passes trivially (first recording seeds it).
    """
    comparisons: List[dict] = []
    ok = True
    for entry in entries:
        bench = str(entry["bench"])
        prev = baseline.get(bench)
        if prev is None:
            comparisons.append({"bench": bench, "status": "no-baseline"})
            continue
        before = float(prev["normalized"])
        after = float(entry["normalized"])
        ratio = after / before if before > 0 else 1.0
        regressed = ratio < (1.0 - threshold)
        if regressed:
            ok = False
        comparisons.append({
            "bench": bench,
            "status": "REGRESSED" if regressed else "ok",
            "normalized_before": before,
            "normalized_after": after,
            "ratio": round(ratio, 4),
        })
    return {"ok": ok, "threshold": threshold, "comparisons": comparisons}


def render_check(report: Dict[str, object]) -> str:
    """Human-readable gate report."""
    lines = []
    for comp in report["comparisons"]:  # type: ignore[union-attr]
        if comp["status"] == "no-baseline":
            lines.append(f"{comp['bench']:<12} no committed baseline "
                         f"(first --record seeds it)")
            continue
        lines.append(
            f"{comp['bench']:<12} {comp['status']:<9} "
            f"normalized {comp['normalized_before']:.6f} -> "
            f"{comp['normalized_after']:.6f} (x{comp['ratio']:.3f})"
        )
    pct = int(round(float(report["threshold"]) * 100))
    verdict = "PASS" if report["ok"] else "FAIL"
    lines.append(f"gate       : {verdict} (fails on >{pct}% normalized "
                 f"throughput drop)")
    return "\n".join(lines)


def record_and_check(
    path: str = DEFAULT_PATH,
    record: bool = True,
    gate: bool = False,
    measure_fn: Optional[Callable[[], List[dict]]] = None,
) -> Dict[str, object]:
    """The ``repro.tools bench --record/--check`` entry point.

    Measures once; gates against the committed baseline *before*
    appending (so a regressing commit fails even when it also records);
    then appends when ``record`` is set.
    """
    entries = (measure_fn or measure)()
    baseline = last_by_bench(load(path))
    report = check(entries, baseline) if gate \
        else {"ok": True, "threshold": REGRESSION_THRESHOLD,
              "comparisons": []}
    if record:
        append(entries, path)
    report["entries"] = entries
    report["recorded"] = bool(record)
    return report

"""The live campaign health console: ``repro.tools watch``.

Renders the NDJSON heartbeat stream a campaign writes (see
:mod:`repro.observe.heartbeat`) as one aligned line per snapshot, either
over a finished file or tailing a growing one (``--follow``) while a
campaign runs in another process.

Sharded campaigns write one heartbeat file per worker
(``heartbeat.shard0.ndjson``, ...); passing several files merges their
streams into one console, each line labeled with its source. Complete
files merge in simulated-time order; in follow mode each poll's batch
is time-sorted (a global sort is impossible while files still grow).

This module runs *outside* the simulation — it only ever reads a file —
so its polling sleep touches no simulator state and no determinism
contract. Rendering is a pure function of the snapshot dicts: the same
file always renders to the same text, which is what the console test
asserts.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, IO, Iterator, List, Optional, Sequence, Tuple, Union

#: Seconds between polls of a followed file.
POLL_S = 0.25

_HEADER = (f"{'sim time':>10} {'events':>9} {'ev/ms':>8} {'pend':>6} "
           f"{'backlog':>9} {'retx':>5} {'acks':>6} {'leases':>6} "
           f"{'recov':>5} {'drops':>5} {'faults':>6} {'deliv':>7}")


#: Width of the source-label column in merged (multi-file) mode.
_LABEL_W = 10


def render_header(labeled: bool = False) -> str:
    """Column header matching :func:`render_snapshot`."""
    if labeled:
        return f"{'source':>{_LABEL_W}} {_HEADER}"
    return _HEADER


def source_label(path: str) -> str:
    """Short per-file label: ``heartbeat.shard0.ndjson`` -> ``shard0``."""
    name = os.path.basename(path)
    if name.endswith(".ndjson"):
        name = name[: -len(".ndjson")]
    if name.startswith("heartbeat."):
        name = name[len("heartbeat."):]
    return name[:_LABEL_W] or path[:_LABEL_W]


def render_snapshot(snap: Dict[str, object], label: Optional[str] = None) -> str:
    """One fixed-width console line for one heartbeat snapshot."""
    if label is not None:
        return f"{label:>{_LABEL_W}} {render_snapshot(snap)}"
    queues = snap.get("queues", {})
    counters = snap.get("counters", {})
    t_ms = float(snap.get("t_us", 0.0)) / 1000.0
    backlog = float(queues.get("link_backlog_us", 0.0))
    faults = snap.get("faults_active", "-")
    delivered = snap.get("delivered", "-")
    return (
        f"{t_ms:>8.1f}ms {snap.get('events', 0):>9} "
        f"{float(snap.get('events_per_sim_ms', 0.0)):>8.1f} "
        f"{snap.get('pending', 0):>6} "
        f"{backlog:>7.1f}us "
        f"{counters.get('retransmissions', 0):>5} "
        f"{counters.get('acks_received', 0):>6} "
        f"{counters.get('lease_requests', 0):>6} "
        f"{counters.get('store_recoveries', 0):>5} "
        f"{counters.get('link_drops', 0):>5} "
        f"{faults!s:>6} "
        f"{delivered!s:>7}"
    )


def _lines(fh: IO[str], follow: bool) -> Iterator[str]:
    """Complete lines from ``fh``; in follow mode, poll for growth.

    A partially-written trailing line (no newline yet) is held back until
    its newline arrives, so a snapshot is never rendered half-parsed.
    """
    buffer = ""
    while True:
        chunk = fh.readline()
        if chunk:
            buffer += chunk
            if buffer.endswith("\n"):
                yield buffer.strip()
                buffer = ""
            continue
        if not follow:
            if buffer.strip():
                yield buffer.strip()
            return
        time.sleep(POLL_S)


def _parse(line: str) -> Optional[Dict[str, object]]:
    try:
        return json.loads(line)
    except ValueError:
        print(f"skipping unparseable line: {line[:60]}...", file=sys.stderr)
        return None


def watch(
    path: Union[str, Sequence[str]],
    follow: bool = False,
    out: Optional[IO[str]] = None,
    max_lines: Optional[int] = None,
) -> int:
    """Render heartbeat file(s) to ``out`` (default stdout); 0 on success.

    ``follow=True`` keeps tailing until interrupted. ``max_lines`` stops
    after that many snapshots (tests use it to bound follow mode). A
    list of paths merges the streams with per-line source labels — the
    sharded-campaign console.
    """
    paths = [path] if isinstance(path, str) else list(path)
    if len(paths) > 1:
        return _watch_merged(paths, follow, out, max_lines)
    sink = out if out is not None else sys.stdout
    try:
        fh = open(paths[0], encoding="utf-8")
    except OSError as exc:
        print(f"cannot open {paths[0]}: {exc}", file=sys.stderr)
        return 2
    shown = 0
    with fh:
        print(render_header(), file=sink)
        try:
            for line in _lines(fh, follow):
                if not line:
                    continue
                snap = _parse(line)
                if snap is None:
                    continue
                print(render_snapshot(snap), file=sink, flush=follow)
                shown += 1
                if max_lines is not None and shown >= max_lines:
                    break
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
    return 0


def _read_complete_lines(fh: IO[str], buffers: Dict[int, str],
                         key: int) -> List[str]:
    """Drain currently-available complete lines from one file handle."""
    lines: List[str] = []
    while True:
        chunk = fh.readline()
        if not chunk:
            return lines
        buf = buffers.get(key, "") + chunk
        if buf.endswith("\n"):
            buffers[key] = ""
            if buf.strip():
                lines.append(buf.strip())
        else:
            buffers[key] = buf


def _watch_merged(
    paths: Sequence[str],
    follow: bool,
    out: Optional[IO[str]],
    max_lines: Optional[int],
) -> int:
    """Merge several heartbeat streams into one labeled console."""
    sink = out if out is not None else sys.stdout
    handles: List[Tuple[str, IO[str]]] = []
    try:
        for p in paths:
            handles.append((source_label(p), open(p, encoding="utf-8")))
    except OSError as exc:
        for _label, fh in handles:
            fh.close()
        print(f"cannot open heartbeat file: {exc}", file=sys.stderr)
        return 2
    buffers: Dict[int, str] = {}
    shown = 0
    print(render_header(labeled=True), file=sink)
    try:
        while True:
            batch: List[Tuple[float, str, Dict[str, object]]] = []
            for i, (label, fh) in enumerate(handles):
                for line in _read_complete_lines(fh, buffers, i):
                    snap = _parse(line)
                    if snap is not None:
                        batch.append(
                            (float(snap.get("t_us", 0.0)), label, snap)
                        )
            batch.sort(key=lambda item: (item[0], item[1]))
            for _t, label, snap in batch:
                print(render_snapshot(snap, label=label), file=sink,
                      flush=follow)
                shown += 1
                if max_lines is not None and shown >= max_lines:
                    return 0
            if not follow:
                # Flush any final newline-less lines before finishing.
                tail: List[Tuple[float, str, Dict[str, object]]] = []
                for i, (label, _fh) in enumerate(handles):
                    line = buffers.get(i, "").strip()
                    if line:
                        snap = _parse(line)
                        if snap is not None:
                            tail.append(
                                (float(snap.get("t_us", 0.0)), label, snap)
                            )
                for _t, label, snap in sorted(
                    tail, key=lambda item: (item[0], item[1])
                ):
                    print(render_snapshot(snap, label=label), file=sink)
                    shown += 1
                    if max_lines is not None and shown >= max_lines:
                        break
                return 0
            time.sleep(POLL_S)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
    finally:
        for _label, fh in handles:
            fh.close()

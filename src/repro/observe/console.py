"""The live campaign health console: ``repro.tools watch``.

Renders the NDJSON heartbeat stream a campaign writes (see
:mod:`repro.observe.heartbeat`) as one aligned line per snapshot, either
over a finished file or tailing a growing one (``--follow``) while a
campaign runs in another process.

This module runs *outside* the simulation — it only ever reads a file —
so its polling sleep touches no simulator state and no determinism
contract. Rendering is a pure function of the snapshot dicts: the same
file always renders to the same text, which is what the console test
asserts.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, IO, Iterator, Optional

#: Seconds between polls of a followed file.
POLL_S = 0.25

_HEADER = (f"{'sim time':>10} {'events':>9} {'ev/ms':>8} {'pend':>6} "
           f"{'backlog':>9} {'retx':>5} {'acks':>6} {'leases':>6} "
           f"{'recov':>5} {'drops':>5} {'faults':>6} {'deliv':>7}")


def render_header() -> str:
    """Column header matching :func:`render_snapshot`."""
    return _HEADER


def render_snapshot(snap: Dict[str, object]) -> str:
    """One fixed-width console line for one heartbeat snapshot."""
    queues = snap.get("queues", {})
    counters = snap.get("counters", {})
    t_ms = float(snap.get("t_us", 0.0)) / 1000.0
    backlog = float(queues.get("link_backlog_us", 0.0))
    faults = snap.get("faults_active", "-")
    delivered = snap.get("delivered", "-")
    return (
        f"{t_ms:>8.1f}ms {snap.get('events', 0):>9} "
        f"{float(snap.get('events_per_sim_ms', 0.0)):>8.1f} "
        f"{snap.get('pending', 0):>6} "
        f"{backlog:>7.1f}us "
        f"{counters.get('retransmissions', 0):>5} "
        f"{counters.get('acks_received', 0):>6} "
        f"{counters.get('lease_requests', 0):>6} "
        f"{counters.get('store_recoveries', 0):>5} "
        f"{counters.get('link_drops', 0):>5} "
        f"{faults!s:>6} "
        f"{delivered!s:>7}"
    )


def _lines(fh: IO[str], follow: bool) -> Iterator[str]:
    """Complete lines from ``fh``; in follow mode, poll for growth.

    A partially-written trailing line (no newline yet) is held back until
    its newline arrives, so a snapshot is never rendered half-parsed.
    """
    buffer = ""
    while True:
        chunk = fh.readline()
        if chunk:
            buffer += chunk
            if buffer.endswith("\n"):
                yield buffer.strip()
                buffer = ""
            continue
        if not follow:
            if buffer.strip():
                yield buffer.strip()
            return
        time.sleep(POLL_S)


def watch(
    path: str,
    follow: bool = False,
    out: Optional[IO[str]] = None,
    max_lines: Optional[int] = None,
) -> int:
    """Render a heartbeat file to ``out`` (default stdout); 0 on success.

    ``follow=True`` keeps tailing until interrupted. ``max_lines`` stops
    after that many snapshots (tests use it to bound follow mode).
    """
    sink = out if out is not None else sys.stdout
    try:
        fh = open(path, encoding="utf-8")
    except OSError as exc:
        print(f"cannot open {path}: {exc}", file=sys.stderr)
        return 2
    shown = 0
    with fh:
        print(render_header(), file=sink)
        try:
            for line in _lines(fh, follow):
                if not line:
                    continue
                try:
                    snap = json.loads(line)
                except ValueError:
                    print(f"skipping unparseable line: {line[:60]}...",
                          file=sys.stderr)
                    continue
                print(render_snapshot(snap), file=sink, flush=follow)
                shown += 1
                if max_lines is not None and shown >= max_lines:
                    break
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
    return 0

"""Rolling health detectors over the heartbeat metric stream.

Detectors consume the snapshot stream a
:class:`~repro.observe.heartbeat.HeartbeatEmitter` produces and raise
schema-registered ``health.*`` trace events when a rolling condition
trips — the campaign-health analogue of the paper's §7 overhead and
recovery-latency measurements, watching the run *while it happens*:

===========================  =============================================
detector / trace type        fires when
===========================  =============================================
``health.resend_storm``      retransmissions grew by >= ``threshold``
                             within one heartbeat interval
``health.queue_growth``      summed link transmit backlog rose across
                             ``consecutive`` snapshots and ends above a
                             floor (a queue that only ever grows)
``health.slo_burn``          an injected fault is active and no
                             end-to-end delivery has landed for longer
                             than the recovery SLO
``health.wal_stall``         a store is crashed/down and its backend has
                             replayed nothing for longer than the window
===========================  =============================================

Each detector is edge-triggered: it fires once when its condition first
becomes true and re-arms only after the condition clears, so a sustained
storm produces one event per episode, not one per snapshot. Detectors
are pure functions of the snapshot series — a deterministic run yields a
deterministic detection list (and byte-identical verdicts/scorecards).

The chaos scorecard consumes the detection list
(:meth:`repro.chaos.scorecard.Scorecard.add` pools per-detector counts),
so fuzz sweeps rank fault classes by the health events they trigger.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry import trace as tt

#: One detection: (value, threshold) — what was seen vs what trips.
Firing = Tuple[float, float]


class Detector:
    """Base class: feed snapshots in order, get edge-triggered firings."""

    #: Stable detector name (the ``detector`` label / trace field).
    name = "detector"
    #: The ``health.*`` trace type raised on a firing.
    event_type = "health.generic"

    def update(self, snap: Dict[str, object]) -> Optional[Firing]:
        raise NotImplementedError


class ResendStormDetector(Detector):
    """Retransmission burst: delta >= threshold within one interval."""

    name = "resend_storm"
    event_type = tt.HEALTH_RESEND_STORM

    def __init__(self, threshold: int = 20) -> None:
        self.threshold = threshold
        self._last: Optional[int] = None
        self._armed = True

    def update(self, snap: Dict[str, object]) -> Optional[Firing]:
        resends = int(snap["counters"]["retransmissions"])
        last, self._last = self._last, resends
        if last is None:
            return None
        delta = resends - last
        if delta >= self.threshold:
            if self._armed:
                self._armed = False
                return (float(delta), float(self.threshold))
            return None
        self._armed = True
        return None


class QueueGrowthDetector(Detector):
    """Link backlog strictly rising for N snapshots, ending above a floor."""

    name = "queue_growth"
    event_type = tt.HEALTH_QUEUE_GROWTH

    def __init__(self, consecutive: int = 3, floor_us: float = 50.0) -> None:
        if consecutive < 2:
            raise ValueError("consecutive must be >= 2")
        self.consecutive = consecutive
        self.floor_us = floor_us
        self._last: Optional[float] = None
        self._rising = 0
        self._armed = True

    def update(self, snap: Dict[str, object]) -> Optional[Firing]:
        backlog = float(snap["queues"]["link_backlog_us"])
        last, self._last = self._last, backlog
        if last is None:
            return None
        if backlog > last:
            self._rising += 1
        else:
            self._rising = 0
            self._armed = True
            return None
        if (self._armed and self._rising >= self.consecutive - 1
                and backlog > self.floor_us):
            self._armed = False
            return (backlog, self.floor_us)
        return None


class RecoverySloDetector(Detector):
    """SLO burn: a fault is active and deliveries stalled past the SLO.

    Needs the ``delivered`` and ``faults_active`` provider fields the
    chaos runner wires in; snapshots without them are ignored (the
    detector cannot judge a run it cannot see).
    """

    name = "slo_burn"
    event_type = tt.HEALTH_SLO_BURN

    def __init__(self, slo_us: float = 200_000.0) -> None:
        self.slo_us = slo_us
        self._last_delivered: Optional[int] = None
        self._progress_t = 0.0
        self._armed = True

    def update(self, snap: Dict[str, object]) -> Optional[Firing]:
        if "delivered" not in snap or "faults_active" not in snap:
            return None
        delivered = int(snap["delivered"])
        t = float(snap["t_us"])
        if self._last_delivered is None or delivered > self._last_delivered:
            self._progress_t = t
            self._armed = True
        self._last_delivered = delivered
        stalled_us = t - self._progress_t
        if int(snap["faults_active"]) > 0 and stalled_us > self.slo_us:
            if self._armed:
                self._armed = False
                return (stalled_us, self.slo_us)
        return None


class WalStallDetector(Detector):
    """A crashed store whose backend replays nothing for too long.

    Needs the ``stores_down`` provider field. The replay counter advances
    only when a recovery actually rebuilds records, so "down for longer
    than the window with the counter flat" is exactly a stalled (or
    hopeless, for a volatile backend) recovery.
    """

    name = "wal_stall"
    event_type = tt.HEALTH_WAL_STALL

    def __init__(self, window_us: float = 150_000.0) -> None:
        self.window_us = window_us
        self._down_since: Optional[float] = None
        self._replayed: Optional[int] = None
        self._armed = True

    def update(self, snap: Dict[str, object]) -> Optional[Firing]:
        if "stores_down" not in snap:
            return None
        t = float(snap["t_us"])
        replayed = int(snap["counters"]["wal_replayed"])
        down = int(snap["stores_down"]) > 0
        if not down or (self._replayed is not None
                        and replayed > self._replayed):
            self._down_since = None
            self._armed = True
        elif self._down_since is None:
            self._down_since = t
        self._replayed = replayed
        if (down and self._down_since is not None
                and t - self._down_since > self.window_us):
            if self._armed:
                self._armed = False
                return (t - self._down_since, self.window_us)
        return None


def default_detectors() -> List[Detector]:
    return [
        ResendStormDetector(),
        QueueGrowthDetector(),
        RecoverySloDetector(),
        WalStallDetector(),
    ]


class HealthMonitor:
    """Runs detectors over a heartbeat stream; raises ``health.*`` events.

    Attach with ``emitter.add_monitor(monitor.observe)``. Detections are
    trace events (timestamped with the snapshot's simulated time — the
    tracer clock *is* the simulator clock when observing live), an
    ``observe.health.detections{detector=...}`` counter, and the
    :attr:`detections` list the scorecard pools.
    """

    def __init__(self, sim, detectors: Optional[List[Detector]] = None) -> None:
        self.sim = sim
        self.detectors = (detectors if detectors is not None
                          else default_detectors())
        self.detections: List[Dict[str, object]] = []

    def observe(self, snap: Dict[str, object]) -> None:
        for det in self.detectors:
            fired = det.update(snap)
            if fired is None:
                continue
            value, threshold = fired
            self.detections.append({
                "t_us": snap["t_us"],
                "detector": det.name,
                "value": round(value, 3),
                "threshold": threshold,
            })
            # det.event_type is one of the tt.HEALTH_* constants; the
            # field set below matches their shared schema entry.
            self.sim.tracer.emit(det.event_type, detector=det.name,
                                 value=round(value, 3), threshold=threshold)
            self.sim.metrics.counter("observe.health.detections",
                                     detector=det.name).inc()

    def counts(self) -> Dict[str, int]:
        """Detection counts per detector name (sorted keys)."""
        out: Dict[str, int] = {}
        for d in self.detections:
            name = str(d["detector"])
            out[name] = out.get(name, 0) + 1
        return dict(sorted(out.items()))

"""Periodic campaign health snapshots as newline-delimited JSON.

A :class:`HeartbeatEmitter` rides the simulator's observed drain loop
(it is *called*, never scheduled — it puts no events on the queue, so
attaching it cannot perturb event sequence numbers, lane-batching
proofs, or anything else ordering-sensitive). After each executed event
it checks whether the simulated clock crossed the next heartbeat
boundary and, if so, emits one snapshot of the run's health:

* simulated time, events executed, pending events, and the event rate
  over the last interval in events per simulated millisecond;
* queue depths — summed link transmit backlogs, circulating mirror
  copies, switch buffer occupancy;
* protocol counters — retransmissions, acks, lease requests, store
  recoveries, WAL records replayed, link drops;
* campaign context from pluggable ``providers`` (delivered count,
  active injected faults, ...).

Every field is a **pure function of simulator state** — no wall clock,
no randomness, no allocation-order artifacts — so two same-seed runs
produce byte-identical snapshot streams, and an A/B pair (fastpath
on/off, profiler on/off) that keeps the bit-identity contract produces
identical streams too. ``tests/test_observe.py`` enforces it.

Snapshots append to an in-memory list and, when ``path`` is given, to an
NDJSON sink (one canonically-serialized JSON object per line) that
``repro.tools watch`` tails live.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

#: Heartbeat cadence default: one snapshot per 10 simulated ms.
DEFAULT_INTERVAL_US = 10_000.0

#: Metric totals every snapshot carries, name -> registry query.
_COUNTER_FIELDS = (
    ("retransmissions", "redplane.retransmissions"),
    ("acks_received", "redplane.acks_received"),
    ("lease_requests", "redplane.lease_requests"),
    ("store_recoveries", "store.backend.recoveries"),
    ("wal_replayed", "store.backend.wal_replayed"),
    ("link_drops", "link.drops"),
)


def snapshot_json(snap: Dict[str, object]) -> str:
    """Canonical one-line serialization (sorted keys, no whitespace)."""
    return json.dumps(snap, sort_keys=True, separators=(",", ":"))


def read_heartbeats(path: str) -> List[Dict[str, object]]:
    """Load an NDJSON heartbeat file back into snapshot dicts."""
    snaps: List[Dict[str, object]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                snaps.append(json.loads(line))
    return snaps


class HeartbeatEmitter:
    """Emits health snapshots at simulated-time boundaries.

    Parameters
    ----------
    sim:
        The simulator whose state is snapshotted.
    interval_us:
        Boundary spacing in simulated microseconds. A boundary with no
        events after it emits nothing (the state could not have changed);
        a burst of boundaries crossed by one long event gap collapses to
        a single snapshot at the first event past them.
    path:
        Optional NDJSON sink, written as snapshots happen.
    links:
        Links whose transmit backlog the queue-depth field sums.
    providers:
        Extra snapshot fields: name -> zero-arg callable returning a
        JSON-safe value. Every provider must itself be a pure function
        of simulator state, or stream identity breaks.
    """

    def __init__(
        self,
        sim,
        interval_us: float = DEFAULT_INTERVAL_US,
        path: Optional[str] = None,
        links: Optional[list] = None,
        providers: Optional[Dict[str, Callable[[], object]]] = None,
    ) -> None:
        if interval_us <= 0:
            raise ValueError(f"heartbeat interval must be > 0 ({interval_us})")
        self.sim = sim
        self.interval_us = float(interval_us)
        self.links = list(links) if links else []
        self.providers = dict(providers or {})
        self.snapshots: List[Dict[str, object]] = []
        self._monitors: List[Callable[[Dict[str, object]], None]] = []
        self._next_due = self.interval_us
        self._last_t = 0.0
        self._last_events = 0
        self._sink = open(path, "w", encoding="utf-8") if path else None
        self._ctr = sim.metrics.counter("observe.heartbeats")

    # -- wiring ---------------------------------------------------------------

    def add_monitor(self, fn: Callable[[Dict[str, object]], None]) -> None:
        """Call ``fn(snapshot)`` after each emission (health detectors)."""
        self._monitors.append(fn)

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    # -- the observed-drain hook ----------------------------------------------

    def tick(self, now: float) -> None:
        """Called by the observed drain after every executed event."""
        if now < self._next_due:
            return
        snap = self.snapshot()
        self.snapshots.append(snap)
        self._ctr.inc()
        if self._sink is not None:
            self._sink.write(snapshot_json(snap) + "\n")
        self._last_t = now
        self._last_events = self.sim.events_executed
        while self._next_due <= now:
            self._next_due += self.interval_us
        for fn in self._monitors:
            fn(snap)

    # -- snapshot content ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """One health snapshot; a pure function of simulator state."""
        sim = self.sim
        metrics = sim.metrics
        dt_ms = (sim.now - self._last_t) / 1000.0
        d_events = sim.events_executed - self._last_events
        counters = {
            name: int(metrics.total(metric))
            for name, metric in _COUNTER_FIELDS
        }
        snap: Dict[str, object] = {
            "schema": 1,
            "t_us": sim.now,
            "events": sim.events_executed,
            "pending": sim.pending_events,
            "events_per_sim_ms":
                round(d_events / dt_ms, 3) if dt_ms > 0 else 0.0,
            "queues": {
                "link_backlog_us":
                    round(sum(l.backlog_us() for l in self.links), 3),
                "mirror_copies": int(metrics.total("mirror.active_copies")),
                "buffer_bytes":
                    int(metrics.total("switch.buffer_occupancy_bytes")),
            },
            "counters": counters,
        }
        for name, provider in sorted(self.providers.items()):
            snap[name] = provider()
        return snap

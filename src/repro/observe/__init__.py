"""``repro.observe`` — the observability layer.

Three parts, one contract:

* :mod:`repro.observe.profiler` — a deterministic self-profiler hooked
  into the simulator's drain loop: exact per-handler and per-subsystem
  event counts with wall-time attribution, a component table, and
  collapsed-stack flamegraph output (``repro.tools profile``).
* :mod:`repro.observe.heartbeat` — periodic NDJSON health snapshots
  whose content is a pure function of simulator state
  (``repro.tools watch`` tails them live).
* :mod:`repro.observe.health` — rolling detectors over the heartbeat
  stream (resend storms, queue growth, recovery-SLO burn, WAL-replay
  stalls) raising schema-registered ``health.*`` trace events that the
  chaos scorecard pools.

The contract: **observation never changes the run.** An observed
campaign's events, trace stream, records, and metrics (minus the
``observe.*`` namespace, and minus ``health.*`` trace events when
detectors are armed) are byte-identical to the unobserved run. The
profiler reads the wall clock for its own accounting only; the
heartbeat emitter is called from the drain loop rather than scheduled,
so it cannot perturb event sequence numbers.

:class:`Observe` is the bundle the simulator's
:meth:`~repro.net.simulator.Simulator.attach_observe` consumes;
:func:`attach` builds and attaches one in one call.

The fourth leg — the perf-trajectory spine (``repro.tools bench
--record`` and the ``BENCH_TRAJECTORY.json`` regression gate) — lives
in :mod:`repro.observe.trajectory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.observe.health import HealthMonitor, default_detectors
from repro.observe.heartbeat import HeartbeatEmitter, read_heartbeats
from repro.observe.profiler import Profiler

__all__ = [
    "Observe",
    "ObserveOptions",
    "Profiler",
    "HeartbeatEmitter",
    "HealthMonitor",
    "attach",
    "default_detectors",
    "read_heartbeats",
]


@dataclass(frozen=True)
class ObserveOptions:
    """What a campaign run should observe (``run_campaign(observe=...)``).

    Everything defaults off; the chaos runner wires providers (delivered
    count, active faults, stores down) and the deployment's links in
    when building the live bundle from these options.
    """

    profile: bool = False
    heartbeat: bool = False
    heartbeat_interval_us: float = 10_000.0
    heartbeat_path: Optional[str] = None
    health: bool = False

    @property
    def wants_heartbeat(self) -> bool:
        return bool(self.heartbeat or self.heartbeat_path or self.health)

    @property
    def enabled(self) -> bool:
        return bool(self.profile or self.wants_heartbeat)


class Observe:
    """What the simulator's observed drain loop consults per event.

    ``profiler`` is ``None`` or a :class:`Profiler`; ``heartbeat_tick``
    is ``None`` or a callable taking the current simulated time (a
    :meth:`HeartbeatEmitter.tick` bound method, usually). Keeping the
    two as plain attributes lets the drain loop hoist them into locals
    once per drain.
    """

    __slots__ = ("profiler", "heartbeat", "heartbeat_tick", "health")

    def __init__(
        self,
        profiler: Optional[Profiler] = None,
        heartbeat: Optional[HeartbeatEmitter] = None,
        health: Optional[HealthMonitor] = None,
    ) -> None:
        self.profiler = profiler
        self.heartbeat = heartbeat
        self.heartbeat_tick: Optional[Callable[[float], None]] = (
            heartbeat.tick if heartbeat is not None else None
        )
        self.health = health

    def close(self) -> None:
        """Flush and close owned sinks (the heartbeat NDJSON file)."""
        if self.heartbeat is not None:
            self.heartbeat.close()


def attach(
    sim,
    profile: bool = True,
    heartbeat_path: Optional[str] = None,
    heartbeat_interval_us: Optional[float] = None,
    links: Optional[list] = None,
    providers: Optional[dict] = None,
    health: bool = False,
) -> Observe:
    """Build an :class:`Observe` bundle for ``sim`` and attach it.

    ``health=True`` arms the default detector set over the heartbeat
    stream (requires a heartbeat; detectors without snapshots see
    nothing). Returns the bundle; call ``bundle.close()`` (or let the
    campaign runner do it) when the run ends.
    """
    profiler = Profiler() if profile else None
    heartbeat = None
    monitor = None
    if heartbeat_path is not None or heartbeat_interval_us is not None \
            or health:
        kwargs = {}
        if heartbeat_interval_us is not None:
            kwargs["interval_us"] = heartbeat_interval_us
        heartbeat = HeartbeatEmitter(sim, path=heartbeat_path, links=links,
                                     providers=providers, **kwargs)
        if health:
            monitor = HealthMonitor(sim)
            heartbeat.add_monitor(monitor.observe)
    bundle = Observe(profiler=profiler, heartbeat=heartbeat, health=monitor)
    sim.attach_observe(bundle)
    return bundle

"""Deterministic self-profiler for the event loop.

The simulator's observed drain loop (``Simulator.attach_observe``) calls
:meth:`Profiler.start` once per drain and :meth:`Profiler.tick` after
every executed event callback; the profiler owns the wall-clock reads
(one ``perf_counter`` per event) and attributes the elapsed time to a
*handler* — the callback's ``(subsystem, module, qualname)`` — keeping
exact per-handler event counts alongside the wall-time totals. Keeping
the clock inside this module means the simulator itself never reads
wall time (the RD201 determinism lint holds it to that).

Design constraints, in order:

* **Bit identity.** Profiling reads the wall clock only for its own
  accounting; it never touches simulator state, the RNG, the event
  queue, the tracer, or any non-``observe.*`` metric. A profiled run's
  events/trace/records are byte-identical to an unprofiled run
  (``tests/test_observe.py`` enforces it on a chaos campaign).
* **Bounded overhead.** The hot path is one ``perf_counter`` read, one
  dict probe keyed on the callback's underlying function object, and two
  float adds. Attribute resolution (module/qualname/subsystem mapping)
  happens once per distinct callback and is memoized; the memo is capped
  at :data:`CACHE_LIMIT` entries so schedule-churn workloads (one
  closure per fault, say) cannot grow it without bound — past the cap,
  callbacks resolve uncached (counted in :attr:`Profiler.cache_overflows`).
* **Exact counts.** Event counts per handler are exact and deterministic
  (they are a pure function of the event stream); wall times are honest
  wall clock and therefore machine-dependent — they feed the component
  table and flamegraph, never an identity-checked artifact.

Output shapes:

* :meth:`Profiler.subsystem_table` — per-subsystem calls/wall/share rows;
* :meth:`Profiler.handler_rows` — the same per handler, hottest first;
* :meth:`Profiler.collapsed_stacks` — Brendan-Gregg collapsed-stack
  lines (``sim;<subsystem>;<module>;<handler> <microseconds>``) that
  ``flamegraph.pl`` / speedscope / inferno all consume directly.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

#: Module-prefix -> subsystem, checked longest-prefix-first. Everything
#: the ISSUE's component table names, plus the remaining repro packages.
SUBSYSTEM_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("repro.core", "engine"),
    ("repro.statestore", "statestore"),
    ("repro.fastpath", "fastpath"),
    ("repro.net.links", "links"),
    ("repro.net.hosts", "hosts"),
    ("repro.net", "net"),
    ("repro.chaos", "chaos"),
    ("repro.workloads", "workload"),
    ("repro.model", "model"),
    ("repro.telemetry", "telemetry"),
    ("repro.switch", "switch"),
    ("repro.observe", "observe"),
    ("repro.apps", "app"),
    ("repro.baselines", "baseline"),
)

#: Memo cap for callback -> stats-entry resolution (see module docstring).
CACHE_LIMIT = 8192

#: Stats entry layout: a two-slot list mutated in place on the hot path.
_CALLS, _WALL = 0, 1


def subsystem_of(module: str) -> str:
    """Map a callback's defining module to its subsystem name."""
    for prefix, subsystem in SUBSYSTEM_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return subsystem
    return "other"


class Profiler:
    """Exact per-handler wall-time and event-count accounting."""

    def __init__(self) -> None:
        #: (subsystem, module, qualname) -> [calls, wall_s].
        self._stats: Dict[Tuple[str, str, str], List[float]] = {}
        #: Underlying-function-object -> stats entry memo (capped).
        self._cache: Dict[object, List[float]] = {}
        self.cache_overflows = 0
        #: Wall seconds spent inside observed drains but outside any
        #: handler (scheduler pop/push, the observer itself).
        self.overhead_s = 0.0
        #: One-slot mutable cell for the previous clock read, shared
        #: between :meth:`start` and the :attr:`tick` closure.
        self._t_prev = [0.0]
        #: The per-event hot path, prebuilt as a closure so the drain
        #: loop pays no method binding or ``self`` attribute loads —
        #: this is what keeps observed-run overhead inside the <10%
        #: budget (``benchmarks/test_perf_eventloop.py``).
        self.tick = self._make_tick()

    # -- hot path -------------------------------------------------------------

    def start(self) -> None:
        """Arm the clock at the top of an observed drain."""
        self._t_prev[0] = perf_counter()  # repro: noqa[RD201] -- profiler accounting only; never reaches simulator state

    def _make_tick(self):
        """Build the tick closure: attribute the wall time since the
        last tick (or :meth:`start`) to the finished callback, plus one
        event. All lookups are pre-bound; the body is one clock read,
        one ``getattr``, one dict probe, and two in-place adds."""
        t_prev = self._t_prev
        cache_get = self._cache.get
        resolve = self._resolve

        def tick(fn, _getattr=getattr):
            t_now = perf_counter()  # repro: noqa[RD201] -- profiler accounting only
            key = _getattr(fn, "__func__", fn)
            entry = cache_get(key)
            if entry is None:
                entry = resolve(key)
            entry[_CALLS] += 1
            entry[_WALL] += t_now - t_prev[0]
            t_prev[0] = t_now

        return tick

    def record(self, fn, dt: float) -> None:
        """Attribute ``dt`` wall seconds (and one event) to ``fn``."""
        key = getattr(fn, "__func__", fn)
        entry = self._cache.get(key)
        if entry is None:
            entry = self._resolve(key)
        entry[_CALLS] += 1
        entry[_WALL] += dt

    def _resolve(self, key) -> List[float]:
        module = getattr(key, "__module__", None) or "?"
        qualname = getattr(key, "__qualname__", None) or repr(key)
        stats_key = (subsystem_of(module), module, qualname)
        entry = self._stats.get(stats_key)
        if entry is None:
            entry = self._stats[stats_key] = [0, 0.0]
        if len(self._cache) < CACHE_LIMIT:
            self._cache[key] = entry
        else:
            self.cache_overflows += 1
        return entry

    # -- reading --------------------------------------------------------------

    @property
    def events(self) -> int:
        return int(sum(e[_CALLS] for e in self._stats.values()))

    @property
    def wall_s(self) -> float:
        return sum(e[_WALL] for e in self._stats.values())

    def handler_rows(self) -> List[Dict[str, object]]:
        """Per-handler rows, hottest wall time first (count, then name,
        break remaining ties — so rendering is stable)."""
        rows = [
            {
                "subsystem": sub,
                "module": mod,
                "handler": qual,
                "calls": int(entry[_CALLS]),
                "wall_s": entry[_WALL],
            }
            for (sub, mod, qual), entry in self._stats.items()
        ]
        rows.sort(key=lambda r: (-r["wall_s"], -r["calls"], r["module"],
                                 r["handler"]))
        return rows

    def subsystem_table(self) -> List[Dict[str, object]]:
        """Per-subsystem calls/wall/share rows, hottest first."""
        pooled: Dict[str, List[float]] = {}
        for (sub, _mod, _qual), entry in self._stats.items():
            agg = pooled.setdefault(sub, [0, 0.0])
            agg[_CALLS] += entry[_CALLS]
            agg[_WALL] += entry[_WALL]
        total = sum(e[_WALL] for e in pooled.values()) or 1.0
        rows = [
            {
                "subsystem": sub,
                "calls": int(agg[_CALLS]),
                "wall_s": agg[_WALL],
                "share": agg[_WALL] / total,
            }
            for sub, agg in pooled.items()
        ]
        rows.sort(key=lambda r: (-r["wall_s"], -r["calls"], r["subsystem"]))
        return rows

    def collapsed_stacks(self) -> List[str]:
        """Collapsed-stack flamegraph lines (value = integer microseconds).

        Handlers whose wall time rounds to zero microseconds are kept
        with value 0 so the event *count* story stays complete in the
        file's companion column tools ignore. Lines are sorted so the
        file is stable for a given stats table.
        """
        lines = [
            f"sim;{sub};{mod};{qual} {int(round(entry[_WALL] * 1e6))}"
            for (sub, mod, qual), entry in sorted(self._stats.items())
        ]
        return lines

    def write_flamegraph(self, path: str) -> int:
        """Write the collapsed stacks to ``path``; returns the line count."""
        lines = self.collapsed_stacks()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "wall_s": self.wall_s,
            "overhead_s": self.overhead_s,
            "cache_overflows": self.cache_overflows,
            "subsystems": self.subsystem_table(),
            "handlers": self.handler_rows(),
        }

    def publish(self, metrics) -> None:
        """Publish exact per-subsystem event counts as ``observe.*``
        metrics (the namespace identity checks exclude); wall times stay
        out of the registry entirely — wall clock never becomes a metric
        a figure might read."""
        for row in self.subsystem_table():
            ctr = metrics.counter("observe.profile.events",
                                  subsystem=row["subsystem"])
            ctr.inc(row["calls"] - ctr.value)

    def render(self, top: int = 12) -> str:
        """Human-readable component table plus the hottest handlers."""
        lines = [
            f"{'subsystem':<12} {'events':>10} {'wall':>10} {'share':>7}",
        ]
        for row in self.subsystem_table():
            lines.append(
                f"{row['subsystem']:<12} {row['calls']:>10d} "
                f"{row['wall_s'] * 1e3:>8.1f}ms {row['share'] * 100:>6.1f}%"
            )
        lines.append("")
        lines.append(f"hottest handlers (top {top}):")
        for row in self.handler_rows()[:top]:
            lines.append(
                f"  {row['wall_s'] * 1e3:>8.2f}ms {row['calls']:>9d}x  "
                f"{row['module']}.{row['handler']}"
            )
        if self.overhead_s:
            lines.append(f"observer overhead: {self.overhead_s * 1e3:.2f}ms "
                         f"(drain time outside handlers)")
        return "\n".join(lines)

"""Randomized fault-schedule fuzzing.

The hand-written campaigns of :mod:`repro.chaos.campaigns` sample a few
points of the reachable fault space; the fuzzer *generates* points. A
fuzz run is seeded and fully deterministic: schedule ``(seed, index)``
is always the same :class:`ScheduleSpec` — same topology shape, same
workload pacing, same fault tuple, same simulator seed — so any
violation it finds is replayable from two integers.

Layers:

* :class:`ScheduleSpec` — a frozen, JSON-round-trippable description of
  one generated campaign (run parameters + a tuple of
  :class:`~repro.workloads.failures.FaultSpec`). ``to_campaign()`` turns
  it into a regular :class:`~repro.chaos.campaigns.Campaign`, so the
  whole chaos runner/verdict machinery is reused unchanged.
* :func:`generate_spec` — the schedule generator. It draws fault groups
  from a weighted menu of composable patterns (switch failover, link
  flaps, gray links, duplicate+jitter storms on the store path,
  asymmetric partitions, store degradation/failover/crash, forced lease
  expiry) and keeps every schedule *fair*: fault windows close well
  before the drain, every fail has a matching recovery, crash faults
  only target WAL-backed stores, and impairment knobs stay inside the
  protocol's operating envelope (see docs/FAULTS.md).
* :func:`run_spec` / :func:`run_fuzz` — execute one spec or a budgeted
  sweep under the always-on auditors, optionally with a seeded bug from
  :mod:`repro.mutation` enabled, shrinking every violation to a minimal
  reproducer and pooling a per-fault-class resilience scorecard.
* :func:`mutation_self_check` — the fuzzer fuzzing itself: with a
  seeded bug enabled it must find a violation and shrink it within a
  bounded budget; with the bug disabled the same schedules must all
  pass; and both verdicts must be byte-stable across repeat runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import mutation
from repro.chaos.campaigns import Campaign
from repro.chaos.runner import RunResult, run_campaign_result, verdict_json
from repro.model.witness import ViolationWitness
from repro.workloads.failures import FailureSchedule, FaultSpec, apply_specs

#: Deployment shapes the generator draws from (num_shards, chain_length);
#: the testbed has three physical store nodes.
SHAPES: Tuple[Tuple[int, int], ...] = ((1, 3), (1, 3), (1, 2), (1, 1), (2, 1))

#: ``topology.links`` indices of the fabric links (core-agg, agg-tor,
#: core-core) that carry rerouteable traffic.
FABRIC_LINKS: Tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7, 8)

#: Store chain position -> (access-link index, node name). Only indices
#: below ``num_shards * chain_length`` are active in a deployment.
STORE_LINK: Dict[int, int] = {0: 11, 1: 14, 2: 19}
STORE_NODE: Dict[int, str] = {0: "st1", 1: "st2", 2: "st3"}

#: Faults never start before this (let the first lease settle) ...
EARLIEST_FAULT_US = 50_000.0
#: ... and every fault window closes at least this long before the main
#: phase ends, so verdicts measure recovery, not mid-fault state.
SETTLE_BEFORE_END_US = 300_000.0

#: All generated times snap to this grid (keeps shrinking's time search
#: finite and reproducer files readable).
TIME_GRID_US = 1_000.0


@dataclass(frozen=True)
class ScheduleSpec:
    """One generated campaign: run parameters plus the fault tuple."""

    name: str
    sim_seed: int
    duration_us: float
    packets: int
    gap_us: float
    lease_period_us: float
    detect_delay_us: float
    coordinator: bool
    store_backend: str
    num_shards: int
    chain_length: int
    faults: Tuple[FaultSpec, ...]

    def to_campaign(self) -> Campaign:
        faults = self.faults

        def build(schedule: FailureSchedule) -> None:
            apply_specs(schedule, faults)

        return Campaign(
            name=self.name,
            description="fuzz-generated schedule",
            duration_us=self.duration_us,
            packets=self.packets,
            gap_us=self.gap_us,
            lease_period_us=self.lease_period_us,
            build=build,
            coordinator=self.coordinator,
            detect_delay_us=self.detect_delay_us,
            store_backend=self.store_backend,
            num_shards=self.num_shards,
            chain_length=self.chain_length,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "sim_seed": self.sim_seed,
            "duration_us": self.duration_us,
            "packets": self.packets,
            "gap_us": self.gap_us,
            "lease_period_us": self.lease_period_us,
            "detect_delay_us": self.detect_delay_us,
            "coordinator": self.coordinator,
            "store_backend": self.store_backend,
            "num_shards": self.num_shards,
            "chain_length": self.chain_length,
            "faults": [f.to_dict() for f in sorted(
                self.faults, key=FaultSpec.sort_key)],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ScheduleSpec":
        return cls(
            name=str(d["name"]),
            sim_seed=int(d["sim_seed"]),  # type: ignore[arg-type]
            duration_us=float(d["duration_us"]),  # type: ignore[arg-type]
            packets=int(d["packets"]),  # type: ignore[arg-type]
            gap_us=float(d["gap_us"]),  # type: ignore[arg-type]
            lease_period_us=float(d["lease_period_us"]),  # type: ignore[arg-type]
            detect_delay_us=float(d["detect_delay_us"]),  # type: ignore[arg-type]
            coordinator=bool(d["coordinator"]),
            store_backend=str(d["store_backend"]),
            num_shards=int(d["num_shards"]),  # type: ignore[arg-type]
            chain_length=int(d["chain_length"]),  # type: ignore[arg-type]
            faults=tuple(FaultSpec.from_dict(f)  # type: ignore[arg-type]
                         for f in d["faults"]),  # type: ignore[union-attr]
        )


# -- schedule generation -------------------------------------------------------


def _grid(rng: random.Random, lo: float, hi: float) -> float:
    """A grid-snapped time drawn uniformly from [lo, hi]."""
    if hi < lo:
        hi = lo
    steps = int((hi - lo) / TIME_GRID_US)
    return lo + rng.randint(0, max(steps, 0)) * TIME_GRID_US


def _active_store(rng: random.Random, num_shards: int,
                  chain_length: int) -> int:
    return rng.randrange(num_shards * chain_length)


def _gen_switch_failover(rng, ctx) -> List[FaultSpec]:
    switch = rng.choice(("agg1", "agg2"))
    start = _grid(rng, EARLIEST_FAULT_US, ctx["last_us"] - 150_000.0)
    down = _grid(rng, 150_000.0, min(400_000.0, ctx["last_us"] - start))
    return [FaultSpec.make("fail_switch", start, switch=switch),
            FaultSpec.make("recover_switch", start + down, switch=switch)]


def _gen_link_flap(rng, ctx) -> List[FaultSpec]:
    link = rng.choice(FABRIC_LINKS)
    flaps = rng.randint(1, 3)
    period = _grid(rng, 100_000.0, 200_000.0)
    start = _grid(rng, EARLIEST_FAULT_US, ctx["last_us"] - flaps * period)
    # Half a grid-snapped period can land off-grid; re-snap so every
    # generated time honours TIME_GRID_US (no extra RNG draws — the
    # seed->schedule mapping of other groups must not shift).
    half = round(period / 2 / TIME_GRID_US) * TIME_GRID_US
    out: List[FaultSpec] = []
    for i in range(flaps):
        down_at = start + i * period
        out.append(FaultSpec.make("fail_link", down_at, link=link))
        out.append(FaultSpec.make("recover_link", down_at + half, link=link))
    return out


def _gen_gray_link(rng, ctx) -> List[FaultSpec]:
    # Classic gray failure: corruption/loss with small jitter, on a
    # fabric link or the active store path; routing never reacts.
    if rng.random() < 0.5:
        link = rng.choice(FABRIC_LINKS)
    else:
        link = STORE_LINK[_active_store(rng, ctx["num_shards"],
                                        ctx["chain_length"])]
    start = _grid(rng, EARLIEST_FAULT_US, ctx["last_us"] - 150_000.0)
    window = _grid(rng, 150_000.0, min(500_000.0, ctx["last_us"] - start))
    return [
        FaultSpec.make("impair_link", start, link=link,
                       corrupt_rate=round(rng.uniform(0.02, 0.15), 3),
                       drop_rate=round(rng.uniform(0.0, 0.05), 3),
                       jitter_us=float(rng.randint(0, 30))),
        FaultSpec.make("clear_link", start + window, link=link),
    ]


def _gen_dup_jitter_storm(rng, ctx) -> List[FaultSpec]:
    # Duplicate + heavy-jitter storm on the store access link: delayed
    # duplicates of old writes land after newer ones, stressing the §5.2
    # stale-write guard hard. Jitter stays below the protocol's operating
    # envelope (see docs/FAULTS.md) so the reference protocol must ride
    # it out.
    link = STORE_LINK[_active_store(rng, ctx["num_shards"],
                                    ctx["chain_length"])]
    start = _grid(rng, EARLIEST_FAULT_US, ctx["last_us"] - 200_000.0)
    window = _grid(rng, 200_000.0, min(500_000.0, ctx["last_us"] - start))
    out = [
        FaultSpec.make("impair_link", start, link=link,
                       duplicate_rate=round(rng.uniform(0.2, 0.35), 2),
                       jitter_us=float(rng.randint(4, 6) * 1_000)),
        FaultSpec.make("clear_link", start + window, link=link),
    ]
    # Force lease expiries inside the storm: a lease re-acquired while
    # delayed duplicates are still in flight is the way stale store
    # state gets surfaced back into a switch. Parameters sit inside the
    # protocol's operating envelope (see docs/FAULTS.md) — harsher
    # jitter breaks even the reference protocol.
    for _ in range(rng.randint(2, 4)):
        out.append(FaultSpec.make(
            "expire_leases", _grid(rng, start, start + window)))
    return out


def _gen_partition(rng, ctx) -> List[FaultSpec]:
    idx = _active_store(rng, ctx["num_shards"], ctx["chain_length"])
    link = STORE_LINK[idx]
    start = _grid(rng, EARLIEST_FAULT_US, ctx["last_us"] - 100_000.0)
    window = _grid(rng, 100_000.0, min(250_000.0, ctx["last_us"] - start))
    # 70% asymmetric (the store's egress blackholes: requests arrive,
    # acks vanish), otherwise a full bidirectional partition.
    from_node = STORE_NODE[idx] if rng.random() < 0.7 else None
    extra = {"from_node": from_node} if from_node else {}
    return [FaultSpec.make("impair_link", start, link=link, blocked=True,
                           **extra),
            FaultSpec.make("clear_link", start + window, link=link, **extra)]


def _gen_lease_expiry(rng, ctx) -> List[FaultSpec]:
    return [
        FaultSpec.make("expire_leases",
                       _grid(rng, 100_000.0, ctx["last_us"]))
        for _ in range(rng.randint(1, 3))
    ]


def _gen_store_degrade(rng, ctx) -> List[FaultSpec]:
    idx = _active_store(rng, ctx["num_shards"], ctx["chain_length"])
    start = _grid(rng, EARLIEST_FAULT_US, ctx["last_us"] - 100_000.0)
    window = _grid(rng, 100_000.0, min(400_000.0, ctx["last_us"] - start))
    return [
        FaultSpec.make("degrade_store", start, index=idx,
                       proc_delay_us=float(rng.randint(2, 8) * 1_000),
                       service_time_us=float(rng.randint(0, 4) * 100)),
        FaultSpec.make("restore_store", start + window, index=idx),
    ]


def _gen_store_failover(rng, ctx) -> List[FaultSpec]:
    idx = _active_store(rng, ctx["num_shards"], ctx["chain_length"])
    start = _grid(rng, EARLIEST_FAULT_US, ctx["last_us"] - 150_000.0)
    down = _grid(rng, 150_000.0, min(350_000.0, ctx["last_us"] - start))
    return [FaultSpec.make("fail_store", start, index=idx),
            FaultSpec.make("recover_store", start + down, index=idx)]


def _gen_store_crash(rng, ctx) -> List[FaultSpec]:
    # Only generated for WAL-backed deployments: on the volatile backend
    # a crash is genuine data loss and the run would rightly FAIL.
    idx = _active_store(rng, ctx["num_shards"], ctx["chain_length"])
    start = _grid(rng, EARLIEST_FAULT_US, ctx["last_us"] - 150_000.0)
    down = _grid(rng, 100_000.0, min(300_000.0, ctx["last_us"] - start))
    return [FaultSpec.make("crash_store", start, index=idx),
            FaultSpec.make("recover_store_from_disk", start + down,
                           index=idx)]


#: (weight, needs_wal, generator) rows of the fault-group menu.
_MENU: Tuple[Tuple[int, bool, Callable], ...] = (
    (3, False, _gen_switch_failover),
    (2, False, _gen_link_flap),
    (3, False, _gen_gray_link),
    (3, False, _gen_dup_jitter_storm),
    (2, False, _gen_partition),
    (3, False, _gen_lease_expiry),
    (1, False, _gen_store_degrade),
    (2, False, _gen_store_failover),
    (2, True, _gen_store_crash),
)


def generate_spec(fuzz_seed: int, index: int) -> ScheduleSpec:
    """Deterministically generate schedule ``index`` of seed ``fuzz_seed``.

    The derived RNG is seeded from a string, which Python hashes with
    SHA-512 — stable across processes, platforms, and PYTHONHASHSEED.
    """
    rng = random.Random(f"repro-chaos-fuzz/{fuzz_seed}/{index}")
    num_shards, chain_length = rng.choice(SHAPES)
    store_backend = "wal" if rng.random() < 0.3 else "memory"
    coordinator = chain_length > 1 and rng.random() < 0.6
    duration_us = rng.choice((1_200_000.0, 1_500_000.0))
    gap_us = float(rng.choice((4, 6, 8, 10, 12)) * 1_000)
    # Draw a traffic *span* and derive the packet count from it, so the
    # window in which faults can actually interact with load does not
    # shrink with the gap. Faults after the last packet are dead air.
    span_us = float(rng.choice((400, 500, 600, 700)) * 1_000)
    packets = max(30, int(span_us / gap_us))
    traffic_end_us = 10_000.0 + packets * gap_us
    lease_period_us = float(rng.choice((100, 150, 200)) * 1_000)
    ctx = {
        "num_shards": num_shards,
        "chain_length": chain_length,
        "last_us": min(duration_us - SETTLE_BEFORE_END_US, traffic_end_us),
    }

    menu = [(w, gen) for w, needs_wal, gen in _MENU
            if not needs_wal or store_backend == "wal"]
    weights = [w for w, _ in menu]
    faults: List[FaultSpec] = []
    hard_store_fault_used = False
    for _ in range(rng.randint(1, 3)):
        _, gen = rng.choices(menu, weights=weights, k=1)[0]
        if gen in (_gen_store_failover, _gen_store_crash):
            # A hard store fault needs a surviving chain replica, and two
            # overlapping ones could fail every replica of a shard (the
            # failover monitor rightly aborts the run). Substitute a
            # benign group rather than re-rolling, to keep generation a
            # pure function of the RNG stream.
            if chain_length < 2 or hard_store_fault_used:
                gen = _gen_lease_expiry
            else:
                hard_store_fault_used = True
        faults.extend(gen(rng, ctx))

    return ScheduleSpec(
        name=f"fuzz-s{fuzz_seed}-i{index}",
        sim_seed=rng.randint(0, 2**31 - 1),
        duration_us=duration_us,
        packets=packets,
        gap_us=gap_us,
        lease_period_us=lease_period_us,
        detect_delay_us=50_000.0,
        coordinator=coordinator,
        store_backend=store_backend,
        num_shards=num_shards,
        chain_length=chain_length,
        faults=tuple(sorted(faults, key=FaultSpec.sort_key)),
    )


# -- execution -----------------------------------------------------------------


def run_spec(spec: ScheduleSpec,
             bug: Optional[str] = None,
             trace_path: Optional[str] = None,
             observe=None) -> RunResult:
    """Run one spec (optionally with a seeded bug from :mod:`repro.mutation`
    enabled for the run's duration) and return the full result.

    ``observe`` takes a :class:`repro.observe.ObserveOptions`; the fuzz
    loop uses it to arm the health detectors so the scorecard can pool
    ``health.*`` detections per fault class."""
    campaign = spec.to_campaign()
    if bug is None:
        return run_campaign_result(campaign, seed=spec.sim_seed,
                                   trace_path=trace_path, observe=observe)
    with mutation.seeded_bug(bug):
        return run_campaign_result(campaign, seed=spec.sim_seed,
                                   trace_path=trace_path, observe=observe)


def spec_witness(spec: ScheduleSpec,
                 bug: Optional[str] = None) -> ViolationWitness:
    """Run a spec and distill its witness (empty witness == PASS)."""
    return ViolationWitness.from_report(run_spec(spec, bug=bug).report)


# -- the fuzz loop -------------------------------------------------------------


def run_fuzz(
    seed: int,
    budget: int,
    bug: Optional[str] = None,
    shrink_budget: int = 80,
    shrink_violations: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Fuzz ``budget`` schedules from ``seed``; shrink every violation.

    Returns a JSON-safe fuzz report: per-violation reproducers (original
    and minimized specs plus their witnesses) and the per-fault-class
    resilience scorecard. The report contains no wall-clock state, so
    identical (seed, budget, bug) invocations produce byte-identical
    reports.
    """
    from repro.chaos.scorecard import Scorecard
    from repro.chaos.shrink import shrink_spec
    from repro.observe import ObserveOptions

    emit = log if log is not None else (lambda _msg: None)
    scorecard = Scorecard()
    violations: List[Dict[str, object]] = []
    # Health detectors ride along on every fuzz run so the scorecard can
    # pool health.* detections per fault class. Shrink re-runs stay
    # unobserved: they only need witnesses, and health events are extra
    # trace records the delta-debugger would have to reproduce exactly.
    observe = ObserveOptions(health=True)
    for index in range(budget):
        spec = generate_spec(seed, index)
        result = run_spec(spec, bug=bug, observe=observe)
        witness = ViolationWitness.from_report(result.report)
        scorecard.add(spec, result, witness)
        if not witness:
            emit(f"[{index + 1}/{budget}] {spec.name}: PASS")
            continue
        emit(f"[{index + 1}/{budget}] {spec.name}: "
             f"VIOLATION {witness.describe()}")
        entry: Dict[str, object] = {
            "index": index,
            "spec": spec.to_dict(),
            "witness": witness.to_dict(),
        }
        if shrink_violations:
            shrunk = shrink_spec(spec, witness, bug=bug,
                                 budget=shrink_budget)
            entry["minimal"] = {
                "spec": shrunk.spec.to_dict(),
                "witness": shrunk.witness.to_dict(),
                "faults": len(shrunk.spec.faults),
                "runs_used": shrunk.runs_used,
            }
            emit(f"    shrunk {len(spec.faults)} -> "
                 f"{len(shrunk.spec.faults)} faults "
                 f"({shrunk.runs_used} runs)")
        violations.append(entry)

    return {
        "schema": 1,
        "kind": "chaos-fuzz-report",
        "seed": seed,
        "budget": budget,
        "mutation": bug,
        "schedules_run": budget,
        "violations": violations,
        "scorecard": scorecard.to_dict(),
    }


# -- regression files ----------------------------------------------------------


def regression_payload(entry: Dict[str, object], seed: int,
                       bug: Optional[str]) -> Dict[str, object]:
    """The replayable regression-campaign file for one fuzz violation."""
    minimal = entry.get("minimal")
    spec = minimal["spec"] if minimal else entry["spec"]  # type: ignore[index]
    witness = minimal["witness"] if minimal else entry["witness"]  # type: ignore[index]
    return {
        "schema": 1,
        "kind": "chaos-fuzz-regression",
        "fuzzer": {
            "seed": seed,
            "index": entry["index"],
            "mutation": bug,
        },
        "witness": witness,
        "spec": spec,
    }


def replay_regression(payload: Dict[str, object]) -> Dict[str, object]:
    """Replay a regression file; report whether it still reproduces.

    The recorded mutation (if any) is re-enabled for the replay: a
    regression minted by the mutation self-check documents the fuzzer's
    detection power, and replaying it proves that power is still there.
    A regression recorded against the *real* protocol (no mutation) is
    expected to be clean once the underlying bug is fixed.
    """
    if payload.get("kind") != "chaos-fuzz-regression":
        raise ValueError(
            f"not a chaos-fuzz regression file (kind={payload.get('kind')!r})")
    spec = ScheduleSpec.from_dict(payload["spec"])  # type: ignore[arg-type]
    recorded = ViolationWitness.from_dict(payload["witness"])  # type: ignore[arg-type]
    bug = payload["fuzzer"].get("mutation")  # type: ignore[union-attr]
    result = run_spec(spec, bug=bug)
    witness = ViolationWitness.from_report(result.report)
    return {
        "spec": spec.to_dict(),
        "mutation": bug,
        "recorded_witness": recorded.to_dict(),
        "replayed_witness": witness.to_dict(),
        "reproduces": witness.covers(recorded),
        "verdict": result.report["verdict"],
        "verdict_json": verdict_json(result.report),
    }


# -- the fuzzer fuzzing itself -------------------------------------------------


def mutation_self_check(
    seed: int = 1,
    budget: int = 20,
    bug: str = "skip_hold_dedup",
    shrink_budget: int = 80,
    max_minimal_faults: int = 3,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Prove the fuzzer's detection power with a seeded bug.

    Requirements (any miss marks the check failed):

    1. with ``bug`` enabled, some schedule in the budget produces a
       violation whose witness includes a linearizability break;
    2. the shrinker reduces it to at most ``max_minimal_faults`` faults
       within ``shrink_budget`` oracle runs;
    3. with the bug disabled, every schedule in the budget passes;
    4. the found schedule's verdict report is byte-identical across two
       runs (full determinism).
    """
    from repro.chaos.shrink import shrink_spec

    emit = log if log is not None else (lambda _msg: None)
    found_index: Optional[int] = None
    found_witness: Optional[ViolationWitness] = None
    found_lin = False
    for index in range(budget):
        spec = generate_spec(seed, index)
        witness = spec_witness(spec, bug=bug)
        if witness:
            has_lin = "NonLinearizable" in witness.kinds
            emit(f"[mutated {index + 1}/{budget}] {spec.name}: "
                 f"VIOLATION {witness.describe()}")
            if found_index is None or (has_lin and not found_lin):
                found_index, found_witness = index, witness
                found_lin = has_lin
            if found_lin:
                break
        else:
            emit(f"[mutated {index + 1}/{budget}] {spec.name}: pass")

    report: Dict[str, object] = {
        "schema": 1,
        "kind": "chaos-fuzz-self-check",
        "seed": seed,
        "budget": budget,
        "mutation": bug,
        "found": found_index is not None,
        "found_index": found_index,
        "found_linearizability_violation": found_lin,
    }
    if found_index is None or found_witness is None:
        report["ok"] = False
        report["reason"] = "mutated sweep produced no violation"
        return report

    spec = generate_spec(seed, found_index)
    shrunk = shrink_spec(spec, found_witness, bug=bug, budget=shrink_budget)
    emit(f"shrunk {len(spec.faults)} -> {len(shrunk.spec.faults)} faults "
         f"in {shrunk.runs_used} runs: {shrunk.witness.describe()}")
    report["minimal_faults"] = len(shrunk.spec.faults)
    report["shrink_runs_used"] = shrunk.runs_used
    report["minimal"] = {
        "spec": shrunk.spec.to_dict(),
        "witness": shrunk.witness.to_dict(),
    }

    clean_violations: List[int] = []
    for index in range(budget):
        if spec_witness(generate_spec(seed, index), bug=None):
            clean_violations.append(index)
    report["clean_violations"] = clean_violations
    emit(f"clean sweep: {budget - len(clean_violations)}/{budget} pass")

    first = verdict_json(run_spec(spec, bug=bug).report)
    second = verdict_json(run_spec(spec, bug=bug).report)
    report["deterministic"] = first == second

    ok = (
        found_lin
        and len(shrunk.spec.faults) <= max_minimal_faults
        and not clean_violations
        and report["deterministic"]
    )
    report["ok"] = bool(ok)
    if not ok:
        reasons = []
        if not found_lin:
            reasons.append("no linearizability violation found")
        if len(shrunk.spec.faults) > max_minimal_faults:
            reasons.append(
                f"minimal reproducer has {len(shrunk.spec.faults)} faults "
                f"(> {max_minimal_faults})")
        if clean_violations:
            reasons.append(
                f"clean sweep violated at indices {clean_violations}")
        if not report["deterministic"]:
            reasons.append("verdict not byte-stable across runs")
        report["reason"] = "; ".join(reasons)
    return report

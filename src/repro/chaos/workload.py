"""The chaos engine's reference workload: an echo counter under load.

Every campaign drives the same application — a sync-mode counter that
writes each packet's observed count into the payload — because it is the
strongest oracle the checker has (§4.2): each delivered packet exposes
the exact state value it saw, so the per-flow history can be checked for
linearizability against the counter's sequential specification, and the
sorted delivered values immediately reveal duplication or regression.

The workload mirrors ``tests/test_integration.py``'s echo-counter
harness but packages it as a reusable object that also tracks delivery
times, which the runner turns into recovery-latency percentiles.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.apps.counter import SyncCounterApp
from repro.core.app import AppVerdict
from repro.deploy import Deployment
from repro.model.linearizability import FlowHistory
from repro.net.packet import Packet


class EchoCounterApp(SyncCounterApp):
    """Sync counter that echoes the new count into the packet payload."""

    name = "chaos-echo-counter"

    def process(self, state, pkt, ctx, switch):
        count = state.increment("count")
        pkt.payload = struct.pack("!I", count)
        return AppVerdict.FORWARD


@dataclass
class CounterWorkload:
    """Sends a paced packet stream through the deployment and records
    what comes out the far end (value seen + delivery time)."""

    deployment: Deployment
    packets: int
    gap_us: float
    start_us: float = 0.0
    #: trace id -> (counter value observed, delivery time)
    outputs: Dict[int, Tuple[int, float]] = field(default_factory=dict)

    def start(self) -> None:
        dep = self.deployment
        sim = dep.sim
        source, sink = dep.bed.externals[0], dep.bed.servers[0]

        def on_receive(pkt: Packet) -> None:
            (value,) = struct.unpack_from("!I", pkt.payload, 0)
            self.outputs[pkt.ip.identification] = (value, sim.now)

        sink.default_handler = on_receive
        for i in range(self.packets):
            pkt = Packet.udp(source.ip, sink.ip, 5555, 7777)
            pkt.ip.identification = i
            sim.schedule_at(self.start_us + i * self.gap_us, source.send, pkt)

    # -- oracles -----------------------------------------------------------

    def history(self) -> FlowHistory:
        """Inputs from every switch's engine history, outputs from the sink."""
        history = FlowHistory()
        for engine in self.deployment.engines.values():
            for event in engine.history:
                if event.kind == "input":
                    history.add_input(event.trace_id, None, event.time)
        for trace_id, (value, time) in self.outputs.items():
            history.add_output(trace_id, value, time)
        return history

    def delivery_times(self) -> List[float]:
        return sorted(time for _v, time in self.outputs.values())

    def delivered_values(self) -> List[int]:
        return sorted(value for value, _t in self.outputs.values())

    @property
    def delivered(self) -> int:
        return len(self.outputs)

"""The named chaos campaigns.

A campaign is a deterministic composition: one reference workload (the
echo counter of :mod:`repro.chaos.workload`), one fault schedule built
from :class:`repro.workloads.failures.FailureSchedule` primitives, and
the run parameters (duration, pacing, lease period, whether the store
failover coordinator runs). Campaign builders receive the schedule after
the deployment exists, so they can resolve links and stores by name.

Campaign design notes:

* Traffic always flows ``e1 -> s11`` (external host, through the
  RedPlane aggregation layer, into rack 1), so rack-1 faults sit on the
  data path and the protocol path at once.
* The duplicate storm impairs only the ``tor1<->st1`` store access link:
  that link carries protocol traffic exclusively, so the storm exercises
  the store's per-flow sequencing dedup and the switch's stale-ack
  filtering (§5.2) without forging application-level duplicates (a
  duplicated *app* packet legitimately increments the counter twice,
  which is the network's fault, not the protocol's).
* Every fault window closes before the run ends, so a campaign's verdict
  measures recovery, not steady-state degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.net.links import LinkImpairment
from repro.workloads.failures import FailureSchedule

#: ``topology.links`` index of the agg1<->tor1 fabric link (4 core-agg
#: links precede it); used where a primitive takes an index.
AGG1_TOR1 = 4


@dataclass(frozen=True)
class Campaign:
    name: str
    description: str
    #: Simulated time the main phase runs before draining.
    duration_us: float
    #: Echo-counter packets sent, one every ``gap_us`` starting at t=10ms.
    packets: int
    gap_us: float
    lease_period_us: float = 200_000.0
    #: Builds the fault schedule once the deployment exists.
    build: Optional[Callable[[FailureSchedule], None]] = None
    #: Run a StoreFailoverCoordinator (needed when store nodes die).
    coordinator: bool = False
    heartbeat_interval_us: float = 50_000.0
    retransmit_timeout_us: Optional[float] = None
    #: Routing failure-detection delay for fail-stop faults (gray faults
    #: are never detected — that is what makes them gray).
    detect_delay_us: float = 50_000.0
    #: Storage backend of every store node: ``"memory"`` (the default
    #: volatile reference) or ``"wal"`` (the runner provisions a scratch
    #: directory per node and wires a
    #: :class:`~repro.statestore.wal.WALBackend` into it).
    store_backend: str = "memory"
    #: Deployment shape (``num_shards * chain_length <= 3`` store nodes).
    #: The hand-written campaigns keep the default single 3-chain; the
    #: fuzzer varies the shape per generated schedule.
    num_shards: int = 1
    chain_length: int = 3


def _single_failover(s: FailureSchedule) -> None:
    s.single_failover(fail_at_us=120_000.0, recover_at_us=700_000.0)


def _flapping_link(s: FailureSchedule) -> None:
    s.flapping_link(first_fail_us=100_000.0, period_us=150_000.0,
                    flaps=3, link_index=AGG1_TOR1)


def _gray_link(s: FailureSchedule) -> None:
    s.gray_link(start_us=50_000.0, duration_us=300_000.0,
                link=s.link_between("agg1", "tor1"),
                corrupt_rate=0.05, drop_rate=0.02,
                bandwidth_scale=0.5, jitter_us=20.0)


def _partitioned_store_head(s: FailureSchedule) -> None:
    link = s.link_between("tor1", "st1")
    s.block_direction_at(100_000.0, link, from_node="st1")
    s.clear_link_at(250_000.0, link, from_node="st1")


def _rolling_rack_failure(s: FailureSchedule) -> None:
    s.rack_failure(300_000.0, rack=1)
    s.rack_recovery(900_000.0, rack=1)


def _lease_race(s: FailureSchedule) -> None:
    for t in (150_000.0, 300_000.0, 450_000.0):
        s.expire_leases_at(t)


def _duplicate_storm(s: FailureSchedule) -> None:
    link = s.link_between("tor1", "st1")
    s.impair_link_at(100_000.0, link,
                     LinkImpairment(duplicate_rate=0.3, jitter_us=10.0))
    s.clear_link_at(400_000.0, link)


def _store_crash_recover(s: FailureSchedule) -> None:
    s.crash_store_at(250_000.0, 0)
    s.recover_store_from_disk_at(400_000.0, 0)


def _corruption_storm(s: FailureSchedule) -> None:
    # Sustained, not swept: one fabric link corrupts heavily for nearly
    # the whole traffic window while load keeps flowing (ROADMAP item 3's
    # LinkGuardian direction — the link never dies, so nothing reroutes).
    s.gray_link(start_us=50_000.0, duration_us=850_000.0,
                link=s.link_between("agg1", "tor1"), corrupt_rate=0.15)


def _corruption_storm_store(s: FailureSchedule) -> None:
    # Same storm aimed at the protocol-only store access link: every
    # corrupted frame is a lost write, ack, or chain update, so the
    # switch's retransmission path carries the entire load.
    s.gray_link(start_us=50_000.0, duration_us=700_000.0,
                link=s.link_between("tor1", "st1"), corrupt_rate=0.2)


def _corruption_sweep(s: FailureSchedule) -> None:
    pairs = [("core1", "agg1"), ("core1", "agg2"),
             ("core2", "agg1"), ("core2", "agg2")]
    for i, (a, b) in enumerate(pairs):
        start = 100_000.0 + i * 120_000.0
        s.gray_link(start_us=start, duration_us=120_000.0,
                    link=s.link_between(a, b), corrupt_rate=0.08)


CAMPAIGNS: Dict[str, Campaign] = {
    c.name: c
    for c in (
        Campaign(
            name="single_failover",
            description="§7.3 baseline: one aggregation switch fails and "
                        "recovers; state migrates via lease expiry.",
            duration_us=1_500_000.0, packets=40, gap_us=10_000.0,
            build=_single_failover,
        ),
        Campaign(
            name="flapping_link",
            description="agg1-tor1 flaps three times (Fig 7a hazard: the "
                        "switch keeps state across connectivity loss).",
            duration_us=1_200_000.0, packets=50, gap_us=10_000.0,
            build=_flapping_link,
        ),
        Campaign(
            name="gray_link",
            description="agg1-tor1 corrupts, drops, jitters, and runs at "
                        "half rate for 300ms; routing never reacts.",
            duration_us=1_000_000.0, packets=60, gap_us=6_000.0,
            build=_gray_link,
        ),
        Campaign(
            name="partitioned_store_head",
            description="Asymmetric partition: the chain head's egress "
                        "blackholes for 150ms; requests arrive, acks and "
                        "chain updates vanish; retransmission heals it.",
            duration_us=1_500_000.0, packets=40, gap_us=10_000.0,
            build=_partitioned_store_head,
        ),
        Campaign(
            name="rolling_rack_failure",
            description="Rack 1 dies whole (ToR + chain head st1); the "
                        "failover coordinator splices the chain and "
                        "repoints the shard head; the rack later returns.",
            duration_us=2_000_000.0, packets=60, gap_us=10_000.0,
            build=_rolling_rack_failure, coordinator=True,
        ),
        Campaign(
            name="lease_race",
            description="Forced switch-side lease expiry thrice mid-flow "
                        "with a short lease: re-acquisition races writes.",
            duration_us=1_200_000.0, packets=50, gap_us=10_000.0,
            lease_period_us=100_000.0, build=_lease_race,
        ),
        Campaign(
            name="duplicate_storm",
            description="The store access link duplicates 30% of protocol "
                        "frames for 300ms: per-flow sequencing and stale-"
                        "ack filtering (§5.2) must dedup the storm.",
            duration_us=1_200_000.0, packets=50, gap_us=8_000.0,
            build=_duplicate_storm,
        ),
        Campaign(
            name="store_crash_recover_wal",
            description="The chain head hard-crashes (DRAM lost) and "
                        "restarts 150ms later, replaying its write-ahead "
                        "log; every acknowledged write must survive the "
                        "rebuild (sequence monotonicity holds across it).",
            duration_us=1_500_000.0, packets=40, gap_us=10_000.0,
            build=_store_crash_recover, store_backend="wal",
        ),
        Campaign(
            name="corruption_storm",
            description="Sustained 15% corruption on agg1-tor1 for 850ms "
                        "under continuous load; the link never dies, so "
                        "retransmission alone must carry the storm.",
            duration_us=1_500_000.0, packets=60, gap_us=8_000.0,
            build=_corruption_storm,
        ),
        Campaign(
            name="corruption_storm_store",
            description="Sustained 20% corruption on the tor1-st1 store "
                        "access link: every corrupted frame is protocol "
                        "traffic, so switch-side retransmission and §5.2 "
                        "sequencing absorb the storm.",
            duration_us=1_500_000.0, packets=50, gap_us=8_000.0,
            build=_corruption_storm_store,
        ),
        Campaign(
            name="corruption_sweep",
            description="An 8% corruption window sweeps across all four "
                        "core-agg fabric links in sequence.",
            duration_us=1_500_000.0, packets=60, gap_us=8_000.0,
            build=_corruption_sweep,
        ),
    )
}

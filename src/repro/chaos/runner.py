"""Campaign execution and verdict reports.

``run_campaign`` deploys a fresh testbed, arms the always-on auditors
(:class:`repro.model.monitors.InvariantMonitor` plus the per-flow
linearizability checker over the real packet history), injects the
campaign's faults, and distills the run into a machine-readable verdict
report. The report is a plain dict of JSON-safe values;
:func:`verdict_json` serializes it canonically (sorted keys), so two
runs with the same seed must produce byte-identical reports — that
round-trip IS the determinism regression test the CI smoke job runs.

Verdict: ``PASS`` iff every invariant held over every sample, the
delivered history is linearizable, and the workload made progress.
Fault-induced losses are fine (§4.2 permits lost inputs/outputs);
safety violations and consistency breaks are not.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.chaos.campaigns import CAMPAIGNS, Campaign
from repro.chaos.workload import CounterWorkload, EchoCounterApp
from repro.core.engine import RedPlaneConfig
from repro.deploy import deploy
from repro.model.linearizability import check_counter_history
from repro.model.monitors import InvariantMonitor
from repro.net.simulator import Simulator
from repro.observe import ObserveOptions
from repro.statestore.failover import StoreFailoverCoordinator
from repro.statestore.wal import WALBackend
from repro.telemetry.metrics import percentile
from repro.workloads.failures import FailureSchedule

#: Extra simulated time after the main phase for retransmissions,
#: buffered packets, and chain traffic to drain.
DRAIN_US = 500_000.0

#: Fault kinds that end a fault (ignored when measuring recovery).
_CLEAR_KINDS = frozenset(
    {"recover_node", "recover_link", "clear_link", "restore_store",
     "restart_store"}
)


@dataclass
class RunResult:
    """One campaign run's verdict report plus the live objects behind it.

    ``run_campaign`` returns just the report (the stable public shape);
    the fuzzer and scorecard need the underlying schedule, monitor, and
    metric registry to classify faults and pool per-class telemetry, so
    ``run_campaign_result`` hands back everything.
    """

    report: Dict[str, object]
    workload: CounterWorkload
    schedule: FailureSchedule
    monitor: InvariantMonitor
    metrics: object  # the run's MetricRegistry
    #: The run's :class:`repro.observe.Observe` bundle (profiler,
    #: heartbeat snapshots, health detections), or ``None`` when the
    #: campaign ran unobserved.
    observe: Optional[object] = None


def run_campaign(
    name: str, seed: int = 42, trace_path: Optional[str] = None,
    fastpath: bool = False, observe: Optional[ObserveOptions] = None,
) -> Dict[str, object]:
    """Run one named campaign and return its verdict report.

    When ``trace_path`` is given, every trace record is streamed to that
    JSONL file as it is emitted — unlike the in-memory ring, the sink
    never truncates, so the file supports full span reconstruction.

    ``fastpath=True`` installs the :mod:`repro.fastpath` acceleration
    layer for the run. The verdict report must be byte-identical either
    way (the bit-identity contract); tests/test_chaos.py asserts it.
    """
    try:
        campaign = CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGNS))
        raise KeyError(f"unknown campaign {name!r}; known: {known}") from None
    return run_campaign_result(campaign, seed=seed, trace_path=trace_path,
                               fastpath=fastpath, observe=observe).report


def run_campaign_result(
    campaign: Campaign, seed: int = 42, trace_path: Optional[str] = None,
    fastpath: bool = False, observe: Optional[ObserveOptions] = None,
    sim_factory=None,
) -> RunResult:
    """Run a :class:`Campaign` object (named or generated) and return the
    full :class:`RunResult`. The schedule is validated after it is built:
    a fault at/after ``duration_us`` or a recover-before-fail ordering
    raises :class:`repro.workloads.failures.ScheduleError` before the
    simulation starts.

    ``sim_factory`` (``seed -> Simulator``) overrides simulator
    construction; the shard runner uses it to hand in a simulator with a
    :class:`~repro.shard.recorder.ShardRecorder` already attached."""
    sim = Simulator(seed=seed) if sim_factory is None else sim_factory(seed)
    if trace_path is not None:
        sim.tracer.open_sink(trace_path)
    config_kwargs = {"lease_period_us": campaign.lease_period_us}
    if campaign.retransmit_timeout_us is not None:
        config_kwargs["retransmit_timeout_us"] = campaign.retransmit_timeout_us

    # Durable campaigns run each store node on a WAL backend rooted in a
    # scratch directory that lives exactly as long as the run. The path
    # never reaches the verdict report, so reports stay byte-identical
    # across runs (and machines) despite the unique tempdir.
    scratch: Optional[str] = None
    backend_factory = None
    if campaign.store_backend == "wal":
        scratch = tempfile.mkdtemp(prefix="repro-chaos-wal-")
        root = scratch
        backend_factory = lambda name: WALBackend(os.path.join(root, name))
    elif campaign.store_backend != "memory":
        raise ValueError(
            f"unknown store backend {campaign.store_backend!r} "
            f"for campaign {campaign.name!r}"
        )

    try:
        return _run_deployed(campaign, seed, sim, trace_path, fastpath,
                             backend_factory, config_kwargs, observe)
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def _run_deployed(campaign, seed, sim, trace_path, fastpath,
                  backend_factory, config_kwargs,
                  observe: Optional[ObserveOptions] = None) -> RunResult:
    dep = deploy(sim, EchoCounterApp, config=RedPlaneConfig(**config_kwargs),
                 num_shards=campaign.num_shards,
                 chain_length=campaign.chain_length,
                 backend_factory=backend_factory)
    if fastpath:
        from repro.fastpath import FastPath

        FastPath.install(sim)

    monitor = InvariantMonitor(
        sim, dep.stores, engines=list(dep.engines.values()),
        interval_us=5_000.0, track_monotonic_values=True,
    )
    monitor.start()
    coordinator: Optional[StoreFailoverCoordinator] = None
    if campaign.coordinator:
        coordinator = StoreFailoverCoordinator(
            sim, dep.shard_map, dep.chains, switches=dep.bed.aggs,
            heartbeat_interval_us=campaign.heartbeat_interval_us,
        )
        coordinator.start()

    workload = CounterWorkload(
        dep, packets=campaign.packets, gap_us=campaign.gap_us,
        start_us=10_000.0,
    )
    workload.start()

    schedule = FailureSchedule(dep, detect_delay_us=campaign.detect_delay_us,
                               duration_us=campaign.duration_us)
    if campaign.build is not None:
        campaign.build(schedule)
    schedule.validate()

    bundle = None
    if observe is not None and observe.enabled:
        from repro.observe import attach as attach_observe

        providers = {
            "delivered": lambda: workload.delivered,
            "faults_active": lambda: len(schedule.active_at(sim.now)),
            "stores_down": lambda: schedule.stores_down_at(sim.now),
        }
        bundle = attach_observe(
            sim,
            profile=observe.profile,
            heartbeat_path=observe.heartbeat_path,
            heartbeat_interval_us=(
                observe.heartbeat_interval_us if observe.wants_heartbeat
                else None),
            links=list(dep.bed.topology.links),
            providers=providers,
            health=observe.health,
        )

    sim.run(until=campaign.duration_us)
    monitor.stop()
    if coordinator is not None:
        coordinator.stop()
    sim.run(until=campaign.duration_us + DRAIN_US)
    if bundle is not None:
        if bundle.profiler is not None:
            bundle.profiler.publish(sim.metrics)
        bundle.close()
        sim.detach_observe()
    if trace_path is not None:
        sim.tracer.close_sink()

    report = _build_report(campaign, seed, dep, workload, schedule, monitor,
                           coordinator)
    return RunResult(report=report, workload=workload, schedule=schedule,
                     monitor=monitor, metrics=sim.metrics, observe=bundle)


def _recovery_latencies(schedule: FailureSchedule,
                        deliveries: List[float]) -> Dict[str, object]:
    """Time from each fault injection to the next successful delivery."""
    latencies: List[float] = []
    unrecovered = 0
    for fault in schedule.log:
        if fault.kind in _CLEAR_KINDS:
            continue
        after = [t for t in deliveries if t > fault.time_us]
        if after:
            latencies.append(after[0] - fault.time_us)
        else:
            unrecovered += 1
    summary: Dict[str, object] = {
        "events": len(latencies),
        "unrecovered": unrecovered,
    }
    if latencies:
        summary.update(
            p50_us=round(percentile(latencies, 50.0), 3),
            p90_us=round(percentile(latencies, 90.0), 3),
            p99_us=round(percentile(latencies, 99.0), 3),
            max_us=round(max(latencies), 3),
        )
    return summary


def _build_report(
    campaign: Campaign,
    seed: int,
    dep,
    workload: CounterWorkload,
    schedule: FailureSchedule,
    monitor: InvariantMonitor,
    coordinator: Optional[StoreFailoverCoordinator],
) -> Dict[str, object]:
    metrics = dep.sim.metrics
    values = workload.delivered_values()
    try:
        linearizable = check_counter_history(workload.history())
        lin_exhausted = False
    except RuntimeError:
        # The Definition-3 search blew its node budget: the history is
        # too tangled to decide. Conservatively not linearizable, and
        # flagged so consumers (the fuzzer's witnesses) can tell
        # "undecided" apart from "proven broken".
        linearizable = False
        lin_exhausted = True
    invariants_held = monitor.ok()
    progressed = workload.delivered > 0
    verdict = "PASS" if (invariants_held and linearizable and progressed) \
        else "FAIL"

    counters = {
        "retransmissions": int(metrics.total("redplane.retransmissions")),
        "acks_received": int(metrics.total("redplane.acks_received")),
        "stale_acks_ignored": int(
            metrics.total("redplane.stale_acks_ignored")),
        "lease_requests": int(metrics.total("redplane.lease_requests")),
        "store_stale_rejections": int(
            metrics.total("store.updates_rejected_stale")),
        "chain_repairs": int(metrics.total("store.chain_repairs")),
        "chain_reconfigurations": int(
            metrics.total("store.chain_reconfigurations")),
        "store_recoveries": int(metrics.total("store.backend.recoveries")),
        "wal_records_replayed": int(
            metrics.total("store.backend.wal_replayed")),
        "link_drops_partition": int(
            metrics.total("link.drops", reason="partition")),
        "link_drops_corrupt": int(
            metrics.total("link.drops", reason="corrupt")),
        "link_drops_gray_loss": int(
            metrics.total("link.drops", reason="gray_loss")),
        "link_frames_duplicated": int(metrics.total("link.duplicated")),
    }

    return {
        "schema": 1,
        "campaign": campaign.name,
        "description": campaign.description,
        "seed": seed,
        "store_backend": campaign.store_backend,
        "duration_us": campaign.duration_us,
        "faults": schedule.detailed_summary(),
        "traffic": {
            "sent": campaign.packets,
            "delivered": workload.delivered,
            "final_count": max(values) if values else 0,
            "duplicate_values": len(values) - len(set(values)),
        },
        "invariants": {
            "held": invariants_held,
            "samples": monitor.samples,
            "violations": [
                {"time_us": v.time_us, "invariant": v.invariant,
                 "detail": v.detail}
                for v in monitor.violations
            ],
        },
        "linearizable": linearizable,
        "linearizability_search_exhausted": lin_exhausted,
        "recovery_latency_us": _recovery_latencies(
            schedule, workload.delivery_times()),
        "counters": counters,
        "trace": {
            "records_emitted": dep.sim.tracer.records_emitted,
            "records_dropped": dep.sim.tracer.records_dropped,
        },
        "verdict": verdict,
    }


def verdict_json(report: Dict[str, object]) -> str:
    """Canonical serialization: byte-identical for identical runs."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def render_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a verdict report."""
    traffic = report["traffic"]
    invariants = report["invariants"]
    recovery = report["recovery_latency_us"]
    counters = report["counters"]
    lines = [
        f"campaign   : {report['campaign']} (seed {report['seed']})",
        f"verdict    : {report['verdict']}",
        f"traffic    : {traffic['delivered']}/{traffic['sent']} delivered, "
        f"final count {traffic['final_count']}, "
        f"{traffic['duplicate_values']} duplicated values",
        f"invariants : {'held' if invariants['held'] else 'VIOLATED'} "
        f"over {invariants['samples']} samples "
        f"({len(invariants['violations'])} violations)",
        f"linearizable: {'yes' if report['linearizable'] else 'NO'}",
        "faults     :",
    ]
    for fault in report["faults"]:
        detail = f" [{fault['detail']}]" if fault["detail"] else ""
        lines.append(
            f"  t={fault['time_us'] / 1000.0:8.1f}ms {fault['kind']:<14} "
            f"{fault['target']}{detail}"
        )
    if recovery.get("events"):
        lines.append(
            f"recovery   : p50 {recovery['p50_us'] / 1000.0:.1f}ms  "
            f"p99 {recovery['p99_us'] / 1000.0:.1f}ms  "
            f"max {recovery['max_us'] / 1000.0:.1f}ms "
            f"({recovery['events']} faults, "
            f"{recovery['unrecovered']} unrecovered)"
        )
    interesting = {k: v for k, v in counters.items() if v}
    if interesting:
        lines.append("counters   : " + ", ".join(
            f"{k}={v}" for k, v in sorted(interesting.items())))
    for violation in invariants["violations"][:10]:
        lines.append(
            f"  VIOLATION t={violation['time_us']:.1f}us "
            f"{violation['invariant']}: {violation['detail']}"
        )
    return "\n".join(lines)

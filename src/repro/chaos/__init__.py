"""Deterministic chaos engine: seeded fault-injection campaigns with
always-on invariant auditing and linearizability checking.

Gray failures (corruption, duplication, jitter, asymmetric partitions,
degraded bandwidth), store crashes with mid-propagation chain repair,
and lease-expiry races — composed into named campaigns whose verdict
reports are byte-identical across same-seed runs.

Run one from the CLI: ``python -m repro.tools chaos <campaign>``.
"""

from repro.chaos.campaigns import CAMPAIGNS, Campaign
from repro.chaos.runner import (
    render_report,
    run_campaign,
    verdict_json,
)
from repro.chaos.workload import CounterWorkload, EchoCounterApp

__all__ = [
    "CAMPAIGNS",
    "Campaign",
    "CounterWorkload",
    "EchoCounterApp",
    "render_report",
    "run_campaign",
    "verdict_json",
]

"""Deterministic chaos engine: seeded fault-injection campaigns with
always-on invariant auditing and linearizability checking.

Gray failures (corruption, duplication, jitter, asymmetric partitions,
degraded bandwidth), store crashes with mid-propagation chain repair,
and lease-expiry races — composed into named campaigns whose verdict
reports are byte-identical across same-seed runs, plus a seeded
fault-schedule fuzzer (:mod:`repro.chaos.fuzz`) that generates
randomized schedules, shrinks every violation to a minimal reproducer
(:mod:`repro.chaos.shrink`), and pools a per-fault-class resilience
scorecard (:mod:`repro.chaos.scorecard`).

Run from the CLI: ``python -m repro.tools chaos <campaign>`` or
``python -m repro.tools fuzz run --seed 1 --budget 20``.
"""

from repro.chaos.campaigns import CAMPAIGNS, Campaign
from repro.chaos.fuzz import (
    ScheduleSpec,
    generate_spec,
    mutation_self_check,
    replay_regression,
    run_fuzz,
    run_spec,
)
from repro.chaos.runner import (
    RunResult,
    render_report,
    run_campaign,
    run_campaign_result,
    verdict_json,
)
from repro.chaos.scorecard import Scorecard
from repro.chaos.shrink import ShrinkResult, shrink_spec
from repro.chaos.workload import CounterWorkload, EchoCounterApp

__all__ = [
    "CAMPAIGNS",
    "Campaign",
    "CounterWorkload",
    "EchoCounterApp",
    "RunResult",
    "Scorecard",
    "ScheduleSpec",
    "ShrinkResult",
    "generate_spec",
    "mutation_self_check",
    "render_report",
    "replay_regression",
    "run_campaign",
    "run_campaign_result",
    "run_fuzz",
    "run_spec",
    "shrink_spec",
    "verdict_json",
]

"""Per-fault-class resilience scorecard.

A fuzz sweep is more than a pass/fail bit: every run also measures how
the system *coped*. The scorecard pools those measurements by fault
class (the :class:`~repro.workloads.failures.FaultSpec` kind), so a
sweep answers questions like "how long does recovery take after a
switch failover vs. an asymmetric partition?" and "which fault class
triggers the worst resend storms?".

Per class it tracks:

* how many schedules contained the class, how many individual faults
  of it ran, and how many of those schedules ended in a violation;
* the pooled recovery-latency distribution (time from each fault's
  injection to the next successful end-to-end delivery — the same
  measurement the chaos verdict reports make, but attributable per
  class because spec application order maps 1:1 onto the injected
  fault log);
* resend storms (the worst and pooled switch-side retransmission count
  over the runs containing the class) and records lost (inputs the
  workload sent that never produced a delivery — permitted under §4.2,
  but a resilience cost worth ranking).

The scorecard holds no wall-clock state, so a deterministic sweep
produces a byte-identical scorecard.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.model.witness import ViolationWitness
from repro.telemetry.metrics import percentile
from repro.workloads.failures import SPEC_CLEAR_MATCHES, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.fuzz import ScheduleSpec
    from repro.chaos.runner import RunResult


class _ClassStats:
    __slots__ = ("schedules", "faults", "violations", "latencies",
                 "unrecovered", "resends", "records_lost", "health")

    def __init__(self) -> None:
        self.schedules = 0
        self.faults = 0
        self.violations = 0
        self.latencies: List[float] = []
        self.unrecovered = 0
        self.resends: List[int] = []
        self.records_lost = 0
        #: detector name -> detections, pooled over runs with this class.
        self.health: Dict[str, int] = {}


class Scorecard:
    """Accumulates per-fault-class resilience statistics over runs."""

    def __init__(self) -> None:
        self._classes: Dict[str, _ClassStats] = {}
        self.schedules_run = 0
        self.schedules_violated = 0
        #: detector name -> detections, pooled over the whole sweep (runs
        #: that carried a :class:`repro.observe.HealthMonitor`).
        self.health_detections: Dict[str, int] = {}

    def add(self, spec: "ScheduleSpec", result: "RunResult",
            witness: ViolationWitness) -> None:
        """Fold one finished run into the scorecard."""
        self.schedules_run += 1
        if witness:
            self.schedules_violated += 1

        deliveries = sorted(result.workload.delivery_times())
        resends = int(result.metrics.total("redplane.retransmissions"))
        lost = spec.packets - result.workload.delivered
        health_counts: Dict[str, int] = {}
        observe = getattr(result, "observe", None)
        if observe is not None and observe.health is not None:
            health_counts = observe.health.counts()
            for name in sorted(health_counts):
                self.health_detections[name] = (
                    self.health_detections.get(name, 0)
                    + health_counts[name])

        seen_classes = set()
        for fault in sorted(spec.faults, key=FaultSpec.sort_key):
            if fault.kind in SPEC_CLEAR_MATCHES:
                continue  # clears end a fault; they are not one
            stats = self._classes.setdefault(fault.kind, _ClassStats())
            stats.faults += 1
            after = [t for t in deliveries if t > fault.time_us]
            if after:
                stats.latencies.append(after[0] - fault.time_us)
            else:
                stats.unrecovered += 1
            if fault.kind not in seen_classes:
                seen_classes.add(fault.kind)
                stats.schedules += 1
                if witness:
                    stats.violations += 1
                stats.resends.append(resends)
                stats.records_lost += lost
                for name in sorted(health_counts):
                    stats.health[name] = (
                        stats.health.get(name, 0) + health_counts[name])

    def to_dict(self) -> Dict[str, object]:
        classes: Dict[str, object] = {}
        for kind in sorted(self._classes):
            stats = self._classes[kind]
            entry: Dict[str, object] = {
                "schedules": stats.schedules,
                "faults": stats.faults,
                "violations": stats.violations,
                "unrecovered": stats.unrecovered,
                "records_lost": stats.records_lost,
                "max_resend_storm": max(stats.resends, default=0),
                "total_resends": sum(stats.resends),
            }
            if stats.latencies:
                entry["recovery_latency_us"] = {
                    "events": len(stats.latencies),
                    "p50_us": round(percentile(stats.latencies, 50.0), 3),
                    "p90_us": round(percentile(stats.latencies, 90.0), 3),
                    "max_us": round(max(stats.latencies), 3),
                }
            if stats.health:
                entry["health_detections"] = {
                    name: stats.health[name]
                    for name in sorted(stats.health)
                }
            classes[kind] = entry
        return {
            "schedules_run": self.schedules_run,
            "schedules_violated": self.schedules_violated,
            "health_detections": {
                name: self.health_detections[name]
                for name in sorted(self.health_detections)
            },
            "fault_classes": classes,
        }

    def render(self) -> str:
        """Human-readable scorecard table."""
        return self.render_dict(self.to_dict())

    @staticmethod
    def render_dict(d: Dict[str, object]) -> str:
        """Render a :meth:`to_dict` payload (e.g. from a saved report).

        Output ordering is fully deterministic regardless of the input
        dict's insertion order: fault classes and health detectors are
        sorted here, not trusted from the payload, and every float is
        formatted through an explicit ``.1f``/``.3f`` spec (never
        ``repr``), so two renders of equal payloads are byte-identical.
        """
        lines = [
            f"schedules  : {d['schedules_run']} run, "
            f"{d['schedules_violated']} violated",
            f"{'fault class':<26} {'scheds':>6} {'faults':>6} "
            f"{'viol':>5} {'rec p50':>9} {'rec max':>9} "
            f"{'resends':>8} {'lost':>5}",
        ]
        classes = d["fault_classes"]
        for kind in sorted(classes):  # type: ignore[arg-type]
            entry = classes[kind]  # type: ignore[index]
            rec = entry.get("recovery_latency_us", {})
            p50 = f"{rec['p50_us'] / 1000.0:.1f}ms" if rec else "-"
            mx = f"{rec['max_us'] / 1000.0:.1f}ms" if rec else "-"
            lines.append(
                f"{kind:<26} {entry['schedules']:>6} {entry['faults']:>6} "
                f"{entry['violations']:>5} {p50:>9} {mx:>9} "
                f"{entry['max_resend_storm']:>8} {entry['records_lost']:>5}"
            )
        health = d.get("health_detections") or {}
        if health:
            lines.append("health     : " + ", ".join(
                f"{name}={health[name]}" for name in sorted(health)))
        return "\n".join(lines)

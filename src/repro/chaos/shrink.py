"""Delta-debugging fault schedules down to minimal reproducers.

When the fuzzer finds a violating schedule it usually carries faults
that have nothing to do with the failure. The shrinker reduces the
schedule in two phases, re-running the simulation as its oracle:

1. **drop faults** — classic ddmin (Zeller & Hildebrandt) over *fault
   units*. A unit is a fault plus the clearing fault that undoes it
   (dropping a ``fail_link`` but keeping its ``recover_link`` would just
   produce an invalid schedule), or a standalone fault like
   ``expire_leases``. Trailing clears whose fault was dropped go with
   it.
2. **tighten times** — snap each surviving fault's time to the coarsest
   grid that still reproduces (100ms, then 10ms), then shorten the
   campaign duration to the smallest menu value that still fits.

The oracle is witness coverage, not just "FAIL": a candidate reproduces
iff its :class:`~repro.model.witness.ViolationWitness` covers the
original one, so shrinking a linearizability break cannot drift into an
unrelated no-progress stall and declare victory. Every oracle run costs
one simulation; ``budget`` caps the total, and the whole process is
deterministic (no RNG), so the same violating schedule always shrinks
to the same minimal reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.chaos.fuzz import ScheduleSpec, run_spec
from repro.model.witness import ViolationWitness
from repro.workloads.failures import SPEC_CLEAR_MATCHES, FaultSpec

#: Candidate durations (ascending) the duration-tightening pass tries.
DURATION_MENU_US: Tuple[float, ...] = (800_000.0, 1_000_000.0, 1_200_000.0)

#: Time grids (coarse to fine) the time-tightening pass snaps to.
SNAP_GRIDS_US: Tuple[float, ...] = (100_000.0, 10_000.0)

#: A fault window must close at least this long before the duration the
#: tightening pass proposes (mirrors the generator's settle margin).
_DURATION_MARGIN_US = 200_000.0


@dataclass
class ShrinkResult:
    spec: ScheduleSpec
    witness: ViolationWitness
    runs_used: int
    original_faults: int


def _units(faults: Sequence[FaultSpec]) -> List[Tuple[FaultSpec, ...]]:
    """Group a fault tuple into droppable units (fault + its clear).

    Each clearing fault attaches to the nearest earlier unmatched fault
    of a kind it undoes on the same target; an unmatched clear becomes
    its own unit (it will be rejected by schedule validation if kept
    alone, which the oracle treats as non-reproducing — fine, ddmin
    simply keeps its partner).
    """
    ordered = sorted(faults, key=FaultSpec.sort_key)
    units: List[List[FaultSpec]] = []
    # Open units eligible to absorb a clear: (kind, target_key, unit).
    open_units: List[Tuple[str, Tuple[str, object], List[FaultSpec]]] = []
    for fault in ordered:
        matches = SPEC_CLEAR_MATCHES.get(fault.kind)
        if matches is not None:
            for i in range(len(open_units) - 1, -1, -1):
                kind, key, unit = open_units[i]
                if kind in matches and key == fault.target_key():
                    unit.append(fault)
                    del open_units[i]
                    break
            else:
                unit = [fault]
                units.append(unit)
            continue
        unit = [fault]
        units.append(unit)
        open_units.append((fault.kind, fault.target_key(), unit))
    return [tuple(u) for u in units]


def _with_faults(spec: ScheduleSpec,
                 units: Sequence[Tuple[FaultSpec, ...]]) -> ScheduleSpec:
    faults = tuple(sorted((f for unit in units for f in unit),
                          key=FaultSpec.sort_key))
    return replace(spec, faults=faults)


class _Oracle:
    """Budget-capped reproduction test with memoization."""

    def __init__(self, original: ViolationWitness, bug: Optional[str],
                 budget: int) -> None:
        self.original = original
        self.bug = bug
        self.budget = budget
        self.runs_used = 0
        self._seen: dict = {}

    def exhausted(self) -> bool:
        return self.runs_used >= self.budget

    def reproduces(self, spec: ScheduleSpec) -> Optional[ViolationWitness]:
        """The spec's witness if it covers the original, else None."""
        key = (
            tuple(tuple(sorted(f.to_dict().items()))
                  for f in sorted(spec.faults, key=FaultSpec.sort_key)),
            spec.duration_us,
        )
        if key in self._seen:
            return self._seen[key]
        if self.exhausted():
            return None
        self.runs_used += 1
        try:
            witness = ViolationWitness.from_report(
                run_spec(spec, bug=self.bug).report)
        except Exception:
            # An invalid candidate (e.g. a stranded clear) does not
            # reproduce anything.
            self._seen[key] = None
            return None
        verdict = witness if witness.covers(self.original) else None
        self._seen[key] = verdict
        return verdict


def _ddmin(units: List[Tuple[FaultSpec, ...]], spec: ScheduleSpec,
           oracle: _Oracle) -> Tuple[List[Tuple[FaultSpec, ...]],
                                     ViolationWitness]:
    """Classic ddmin over fault units; returns (minimal units, witness)."""
    witness = oracle.original
    n = 2
    while len(units) >= 2 and not oracle.exhausted():
        chunk = max(1, len(units) // n)
        reduced = False
        start = 0
        while start < len(units) and not oracle.exhausted():
            candidate = units[:start] + units[start + chunk:]
            got = oracle.reproduces(_with_faults(spec, candidate))
            if got is not None:
                units = candidate
                witness = got
                n = max(n - 1, 2)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if n >= len(units):
                break
            n = min(n * 2, len(units))
    return units, witness


def _tighten_times(spec: ScheduleSpec, witness: ViolationWitness,
                   oracle: _Oracle) -> Tuple[ScheduleSpec,
                                             ViolationWitness]:
    """Snap each fault time to the coarsest grid that still reproduces."""
    for grid in SNAP_GRIDS_US:
        faults = list(sorted(spec.faults, key=FaultSpec.sort_key))
        for i, fault in enumerate(faults):
            if oracle.exhausted():
                return spec, witness
            snapped = round(fault.time_us / grid) * grid
            if snapped == fault.time_us or snapped <= 0:
                continue
            candidate_faults = list(faults)
            candidate_faults[i] = replace(fault, time_us=snapped)
            candidate = replace(spec, faults=tuple(
                sorted(candidate_faults, key=FaultSpec.sort_key)))
            got = oracle.reproduces(candidate)
            if got is not None:
                spec, witness = candidate, got
                faults = list(sorted(spec.faults, key=FaultSpec.sort_key))
    return spec, witness


def _tighten_duration(spec: ScheduleSpec, witness: ViolationWitness,
                      oracle: _Oracle) -> Tuple[ScheduleSpec,
                                                ViolationWitness]:
    latest = max((f.time_us for f in spec.faults), default=0.0)
    for duration in DURATION_MENU_US:
        if duration >= spec.duration_us:
            break
        if latest + _DURATION_MARGIN_US > duration or oracle.exhausted():
            continue
        candidate = replace(spec, duration_us=duration)
        got = oracle.reproduces(candidate)
        if got is not None:
            return candidate, got
    return spec, witness


def shrink_spec(
    spec: ScheduleSpec,
    witness: ViolationWitness,
    bug: Optional[str] = None,
    budget: int = 80,
) -> ShrinkResult:
    """Shrink a violating schedule to a minimal reproducer.

    ``witness`` is the failure the original spec exhibited; ``bug`` is
    the seeded mutation active when it was found (None for a real bug).
    ``budget`` caps the number of oracle simulations across all phases.
    """
    original_faults = len(spec.faults)
    oracle = _Oracle(witness, bug, budget)
    units, witness = _ddmin(_units(spec.faults), spec, oracle)
    spec = _with_faults(spec, units)
    spec, witness = _tighten_times(spec, witness, oracle)
    spec, witness = _tighten_duration(spec, witness, oracle)
    return ShrinkResult(
        spec=replace(spec, name=spec.name + "-min"),
        witness=witness,
        runs_used=oracle.runs_used,
        original_faults=original_faults,
    )

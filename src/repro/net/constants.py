"""Timing and capacity constants calibrating the simulation to the testbed.

All times are in microseconds of *simulated* time. The values are chosen so
that failure-free latencies land in the regime the paper reports (e.g. a
median end-to-end RTT of 7-8 us for a switch NAT) while preserving the
relative costs between components; see DESIGN.md "Calibration".
"""

# --- Link layer ------------------------------------------------------------

#: One-way propagation latency of an intra-datacenter cable (us).
LINK_LATENCY_US = 0.35

#: Default link bandwidth in Gbit/s (testbed uses 100 GbE everywhere except
#: the management network).
LINK_BANDWIDTH_GBPS = 100.0

#: Management-network bandwidth (used by the external-controller baseline).
MGMT_BANDWIDTH_GBPS = 1.0

#: Extra delay applied to reordered packets (us).
REORDER_EXTRA_US = 12.0

# --- Switch ASIC -----------------------------------------------------------

#: Time for a packet to traverse one switch pipeline (ingress+egress), us.
SWITCH_PIPELINE_US = 0.6

#: Latency of one egress-to-egress mirror recirculation pass (us).
MIRROR_PASS_US = 1.0

#: One-way latency of the ASIC-to-CPU PCIe channel (us).
PCIE_ONEWAY_US = 4.0

#: Control-plane software processing time for one table operation (us).
#: Dominates the 99th-percentile latency of new-flow packets (Fig 8).
CONTROL_PLANE_OP_US = 88.0

#: ASIC-to-CPU channel bandwidth (Gbit/s); O(10 Gbps) per the paper.
PCIE_BANDWIDTH_GBPS = 10.0

#: Total switch packet buffer (bytes); Tofino has a few tens of MB.
SWITCH_BUFFER_BYTES = 22 * 1024 * 1024

#: Maximum forwarding rate observed through one aggregation switch (Mpps).
#: The paper measures 122.5 Mpps as the aggregation-to-core bottleneck.
SWITCH_MAX_FORWARD_MPPS = 122.5

# --- State store -----------------------------------------------------------

#: Software processing time of a request at one state-store server (us).
STORE_PROC_US = 0.8

#: One-way latency between two chain-replication servers (different racks).
CHAIN_HOP_US = 2.4

#: Packet-processing capacity of one state-store server (Mpps). Three
#: servers bound Sync-Counter at roughly half of 122.5 Mpps (Fig 12).
STORE_CAPACITY_MPPS = 20.5

# --- RedPlane protocol -----------------------------------------------------

#: Lease duration granted by the state store (us) == 1 second.
LEASE_PERIOD_US = 1_000_000.0

#: Interval between explicit lease renewals for read-centric flows (us).
LEASE_RENEW_INTERVAL_US = 500_000.0

#: Retransmission timeout for unacknowledged replication requests (us).
RETRANSMIT_TIMEOUT_US = 48.0

#: Default snapshot period for bounded-inconsistency mode (us) == 1 ms.
SNAPSHOT_PERIOD_US = 1_000.0

# --- Routing / failure handling -------------------------------------------

#: Time for a neighbour switch to detect a link/node failure and reroute
#: (BFD-style detection plus route withdrawal), us.
FAILURE_DETECT_US = 350_000.0

#: Time for routing to converge after a failed element recovers, us.
RECOVERY_DETECT_US = 350_000.0

# --- Hosts ------------------------------------------------------------------

#: Host NIC + kernel-bypass stack processing time per packet (us).
HOST_PROC_US = 0.5

#: Server-based network function processing time per packet (us); server
#: NFs see 7-14x the median latency of switch NFs (Fig 8).
SERVER_NF_PROC_US = 21.0

"""Byte-accurate packet model: Ethernet / IPv4 / UDP / TCP headers.

Packets carry real header fields and serialize to real bytes so that the
bandwidth experiments (Figs 10, 11, 15) count the same bytes a hardware
testbed would put on the wire. Application payloads (including the RedPlane
protocol header, Fig 4) live in :attr:`Packet.payload` as raw bytes; the
:mod:`repro.core.protocol` module packs and parses them.

A per-packet ``meta`` dict carries simulation bookkeeping (timestamps,
mirror metadata, provenance) and contributes nothing to the wire size.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

PROTO_TCP = 6
PROTO_UDP = 17

ETH_HEADER_LEN = 14
IPV4_HEADER_LEN = 20
UDP_HEADER_LEN = 8
TCP_HEADER_LEN = 20

#: Minimum Ethernet frame size (without FCS) used for wire-size accounting.
MIN_FRAME_BYTES = 60

# TCP flag bits.
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10


def ip_aton(dotted: str) -> int:
    """Parse a dotted-quad IPv4 address into a 32-bit integer."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {dotted!r}")
        value = (value << 8) | octet
    return value


def ip_ntoa(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad IPv4 address."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ipv4_checksum(header: bytes) -> int:
    """Compute the 16-bit ones'-complement IPv4 header checksum."""
    if len(header) % 2:
        header += b"\x00"
    total = sum(struct.unpack(f"!{len(header) // 2}H", header))
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass
class EthernetHeader:
    """Ethernet II header; MACs are 48-bit integers."""

    src: int = 0
    dst: int = 0
    ethertype: int = 0x0800

    def pack(self) -> bytes:
        return (
            self.dst.to_bytes(6, "big")
            + self.src.to_bytes(6, "big")
            + struct.pack("!H", self.ethertype)
        )

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < ETH_HEADER_LEN:
            raise ValueError("truncated Ethernet header")
        dst = int.from_bytes(data[0:6], "big")
        src = int.from_bytes(data[6:12], "big")
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(src=src, dst=dst, ethertype=ethertype)


@dataclass
class IPv4Header:
    """IPv4 header (no options); addresses are 32-bit integers."""

    src: int = 0
    dst: int = 0
    proto: int = PROTO_UDP
    ttl: int = 64
    total_length: int = IPV4_HEADER_LEN
    identification: int = 0
    dscp: int = 0

    def pack(self) -> bytes:
        version_ihl = (4 << 4) | 5
        head = struct.pack(
            "!BBHHHBBH",
            version_ihl,
            self.dscp << 2,
            self.total_length,
            self.identification,
            0,  # flags/fragment offset
            self.ttl,
            self.proto,
            0,  # checksum placeholder
        ) + struct.pack("!II", self.src, self.dst)
        checksum = ipv4_checksum(head)
        return head[:10] + struct.pack("!H", checksum) + head[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        if len(data) < IPV4_HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (version_ihl, tos, total_length, ident, _flags, ttl, proto, _csum) = (
            struct.unpack("!BBHHHBBH", data[:12])
        )
        if version_ihl >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        src, dst = struct.unpack("!II", data[12:20])
        return cls(
            src=src,
            dst=dst,
            proto=proto,
            ttl=ttl,
            total_length=total_length,
            identification=ident,
            dscp=tos >> 2,
        )


@dataclass
class UDPHeader:
    sport: int = 0
    dport: int = 0
    length: int = UDP_HEADER_LEN

    def pack(self) -> bytes:
        return struct.pack("!HHHH", self.sport, self.dport, self.length, 0)

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        if len(data) < UDP_HEADER_LEN:
            raise ValueError("truncated UDP header")
        sport, dport, length, _csum = struct.unpack("!HHHH", data[:8])
        return cls(sport=sport, dport=dport, length=length)


@dataclass
class TCPHeader:
    sport: int = 0
    dport: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    def pack(self) -> bytes:
        data_offset = (5 << 4) << 8  # 20-byte header, no options
        return struct.pack(
            "!HHIIHHHH",
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            data_offset | self.flags,
            self.window,
            0,  # checksum
            0,  # urgent pointer
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TCPHeader":
        if len(data) < TCP_HEADER_LEN:
            raise ValueError("truncated TCP header")
        sport, dport, seq, ack, off_flags, window, _csum, _urg = struct.unpack(
            "!HHIIHHHH", data[:20]
        )
        return cls(
            sport=sport,
            dport=dport,
            seq=seq,
            ack=ack,
            flags=off_flags & 0x1FF,
            window=window,
        )

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)


@dataclass(frozen=True)
class FlowKey:
    """An IP 5-tuple: the default RedPlane state-partitioning key."""

    src_ip: int
    dst_ip: int
    proto: int
    sport: int
    dport: int

    def reversed(self) -> "FlowKey":
        """The key of the reverse direction of this flow."""
        return FlowKey(self.dst_ip, self.src_ip, self.proto, self.dport, self.sport)

    def canonical(self) -> "FlowKey":
        """Direction-independent form (smaller endpoint first).

        Used when both directions of a connection must map to the same
        state partition, e.g. a NAT translation entry.
        """
        a = (self.src_ip, self.sport)
        b = (self.dst_ip, self.dport)
        return self if a <= b else self.reversed()

    def pack(self) -> bytes:
        return struct.pack("!IIBHH", self.src_ip, self.dst_ip, self.proto,
                           self.sport, self.dport)

    @classmethod
    def unpack(cls, data: bytes) -> "FlowKey":
        src_ip, dst_ip, proto, sport, dport = struct.unpack("!IIBHH", data[:13])
        return cls(src_ip, dst_ip, proto, sport, dport)

    PACKED_LEN = 13

    def __str__(self) -> str:
        return (
            f"{ip_ntoa(self.src_ip)}:{self.sport}->"
            f"{ip_ntoa(self.dst_ip)}:{self.dport}/{self.proto}"
        )


@dataclass
class Packet:
    """A simulated packet: parsed headers plus an opaque payload.

    ``meta`` is simulation-side metadata (timestamps, mirror state, trace
    ids); it does not exist on the wire and is *shared* across hops unless
    the packet is copied, which mirrors how annotations ride through a
    pipeline.
    """

    eth: EthernetHeader = field(default_factory=EthernetHeader)
    ip: Optional[IPv4Header] = None
    l4: Optional[object] = None  # UDPHeader | TCPHeader | None
    payload: bytes = b""
    vlan: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def udp(
        cls,
        src_ip: int,
        dst_ip: int,
        sport: int,
        dport: int,
        payload: bytes = b"",
        vlan: Optional[int] = None,
    ) -> "Packet":
        ip = IPv4Header(src=src_ip, dst=dst_ip, proto=PROTO_UDP)
        udp = UDPHeader(sport=sport, dport=dport, length=UDP_HEADER_LEN + len(payload))
        ip.total_length = IPV4_HEADER_LEN + udp.length
        return cls(ip=ip, l4=udp, payload=payload, vlan=vlan)

    @classmethod
    def tcp(
        cls,
        src_ip: int,
        dst_ip: int,
        sport: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        payload: bytes = b"",
        vlan: Optional[int] = None,
    ) -> "Packet":
        ip = IPv4Header(src=src_ip, dst=dst_ip, proto=PROTO_TCP)
        tcp = TCPHeader(sport=sport, dport=dport, seq=seq, ack=ack, flags=flags)
        ip.total_length = IPV4_HEADER_LEN + TCP_HEADER_LEN + len(payload)
        return cls(ip=ip, l4=tcp, payload=payload, vlan=vlan)

    # -- inspection -----------------------------------------------------------

    def flow_key(self) -> FlowKey:
        """Derive the IP 5-tuple key; ports are zero for non-TCP/UDP."""
        if self.ip is None:
            raise ValueError("packet has no IP header")
        sport = dport = 0
        if isinstance(self.l4, (UDPHeader, TCPHeader)):
            sport, dport = self.l4.sport, self.l4.dport
        return FlowKey(self.ip.src, self.ip.dst, self.ip.proto, sport, dport)

    def byte_size(self) -> int:
        """Wire size in bytes (headers + payload, >= minimum frame)."""
        size = ETH_HEADER_LEN
        if self.vlan is not None:
            size += 4
        if self.ip is not None:
            size += IPV4_HEADER_LEN
        if isinstance(self.l4, UDPHeader):
            size += UDP_HEADER_LEN
        elif isinstance(self.l4, TCPHeader):
            size += TCP_HEADER_LEN
        size += len(self.payload)
        return max(size, MIN_FRAME_BYTES)

    def copy(self) -> "Packet":
        """Deep-enough copy: headers and meta are duplicated."""
        return Packet(
            eth=replace(self.eth),
            ip=replace(self.ip) if self.ip is not None else None,
            l4=replace(self.l4) if self.l4 is not None else None,
            payload=self.payload,
            vlan=self.vlan,
            meta=dict(self.meta),
        )

    # -- serialization ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize headers + payload into on-the-wire bytes."""
        out = bytearray(self.eth.pack())
        if self.vlan is not None:
            # Rewrite the ethertype to 802.1Q and insert the tag.
            out[12:14] = struct.pack("!H", 0x8100)
            out += struct.pack("!HH", self.vlan & 0x0FFF, 0x0800)
        if self.ip is not None:
            out += self.ip.pack()
        if isinstance(self.l4, UDPHeader):
            out += self.l4.pack()
        elif isinstance(self.l4, TCPHeader):
            out += self.l4.pack()
        out += self.payload
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        """Parse wire bytes back into a structured packet."""
        eth = EthernetHeader.unpack(data)
        offset = ETH_HEADER_LEN
        vlan = None
        ethertype = eth.ethertype
        if ethertype == 0x8100:
            tag, inner_type = struct.unpack("!HH", data[offset : offset + 4])
            vlan = tag & 0x0FFF
            ethertype = inner_type
            eth.ethertype = inner_type
            offset += 4
        ip = None
        l4: Optional[object] = None
        if ethertype == 0x0800:
            ip = IPv4Header.unpack(data[offset:])
            offset += IPV4_HEADER_LEN
            if ip.proto == PROTO_UDP:
                l4 = UDPHeader.unpack(data[offset:])
                offset += UDP_HEADER_LEN
            elif ip.proto == PROTO_TCP:
                l4 = TCPHeader.unpack(data[offset:])
                offset += TCP_HEADER_LEN
        return cls(eth=eth, ip=ip, l4=l4, payload=data[offset:], vlan=vlan)
